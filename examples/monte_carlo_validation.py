#!/usr/bin/env python
"""Validate the analytical model against the Monte-Carlo simulator.

For each of the paper's eight configurations, the BiCrit optimum is
computed analytically and then 20,000 independent pattern executions
are simulated at exactly that operating point.  The sample means of
time and energy must match Propositions 2/3 within sampling noise —
this is the evidence that the closed forms describe the stochastic
process correctly.

Also demonstrates the combined fail-stop + silent model of Section 5
and prints a Figure-1-style event trace of a small application run.

Run:
    python examples/monte_carlo_validation.py
"""

from __future__ import annotations

import repro
from repro.errors import CombinedErrors
from repro.simulation import ApplicationSimulator, check_agreement


def validate_all_configs() -> None:
    print("=== Propositions 2/3 vs Monte-Carlo (silent errors) ===")
    print(f"{'configuration':28} {'E[T] model':>11} {'E[T] sim':>11} "
          f"{'z_T':>6} {'z_E':>6}  verdict")
    for name in repro.configuration_names():
        cfg = repro.get_configuration(name)
        best = repro.solve_bicrit(cfg, 3.0).best
        report = check_agreement(
            cfg, work=best.work, sigma1=best.sigma1, sigma2=best.sigma2,
            n=20_000, rng=hash(name) % 2**31,
        )
        s = report.summary
        verdict = "PASS" if report.agrees() else "FAIL"
        print(
            f"{name:28} {report.expected_time:>11.1f} {s.mean_time:>11.1f} "
            f"{report.time_zscore:>+6.2f} {report.energy_zscore:>+6.2f}  {verdict}"
        )


def validate_combined() -> None:
    print("\n=== Section 5 closed forms vs Monte-Carlo (fail-stop + silent) ===")
    cfg = repro.get_configuration("hera-xscale")
    for f in (0.25, 0.5, 1.0):
        errors = CombinedErrors(total_rate=5e-4, failstop_fraction=f)
        report = check_agreement(
            cfg, work=3000.0, sigma1=0.4, sigma2=0.8,
            errors=errors, n=20_000, rng=int(f * 1000),
        )
        verdict = "PASS" if report.agrees() else "FAIL"
        print(f"  f = {f:4.2f}: z_time = {report.time_zscore:+.2f}, "
              f"z_energy = {report.energy_zscore:+.2f}  {verdict}")


def show_figure1_trace() -> None:
    print("\n=== Figure-1-style event trace (high error rate for visibility) ===")
    cfg = repro.get_configuration("hera-xscale").with_error_rate(2e-4)
    sim = ApplicationSimulator(cfg, rng=20160601)
    res = sim.run(total_work=12_000.0, work=3000.0, sigma1=0.4, sigma2=0.8)
    print(f"patterns: {res.num_patterns}, silent errors: {res.num_silent}, "
          f"total time: {res.total_time:.0f} s")
    for e in res.events[:24]:
        label = e.kind.value.upper()
        speed = f"@{e.speed:g}" if e.speed else "     "
        print(f"  t={e.start:>9.1f}s  {label:<10} {speed:<6} "
              f"dur={e.duration:>8.1f}s  pattern {e.pattern_index} attempt {e.attempt}")
    if len(res.events) > 24:
        print(f"  ... ({len(res.events) - 24} more events)")


if __name__ == "__main__":
    validate_all_configs()
    validate_combined()
    show_figure1_trace()
