#!/usr/bin/env python
"""Tour of the extensions beyond the paper's evaluated scope.

Four studies the paper motivates but does not evaluate:

1. **Pareto frontier** — the full energy-vs-time trade-off curve that
   BiCrit samples one bound at a time, with its knee.
2. **Fail-stop fraction sweep** — the Section-5 combined model solved
   numerically across the whole f in [0, 1] range (the paper only
   analyses the limits).
3. **Multi-verification patterns** — q verifications per checkpoint
   (the related-work direction of Benoit/Robert/Raina) combined with
   two-speed re-execution.
4. **2-D region maps** — where in the (C, lambda) plane does a second
   speed actually pay?

Run:
    python examples/extensions_tour.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import map_regions, pareto_frontier
from repro.core.numeric import solve_bicrit_exact
from repro.extensions import solve_bicrit_multiverif
from repro.sweep import checkpoint_axis, error_rate_axis, sweep_failstop_fraction


def show_pareto() -> None:
    print("=== 1. Pareto frontier (Hera/XScale) ===")
    cfg = repro.get_configuration("hera-xscale")
    frontier = pareto_frontier(cfg, n=60)
    knee = frontier.knee()
    for p in frontier.points:
        marker = "   <- knee (diminishing returns beyond here)" if p is knee else ""
        print(f"  T/W = {p.time_overhead:6.3f}  E/W = {p.energy_overhead:8.1f}  "
              f"pair = ({p.solution.sigma1}, {p.solution.sigma2}){marker}")


def show_fraction_sweep() -> None:
    print("\n=== 2. Fail-stop fraction sweep (Section 5, numeric solver) ===")
    cfg = repro.get_configuration("hera-xscale")
    sweep = sweep_failstop_fraction(
        cfg, rho=3.0, total_rate=5e-4, fractions=np.linspace(0, 1, 6)
    )
    print("  f     pair          Wopt      E/W")
    for f, s1, s2, w, e in zip(
        sweep.fractions, sweep.sigma1(), sweep.sigma2(),
        sweep.work(), sweep.energy_overhead(),
    ):
        print(f"  {f:4.2f}  ({s1}, {s2})   {w:7.0f}  {e:8.1f}")
    print("  -> fail-stop errors are detected early, so the more of the")
    print("     error budget they take, the cheaper the optimal pattern.")


def show_multiverif() -> None:
    print("\n=== 3. Multi-verification patterns (q checks per checkpoint) ===")
    base = repro.get_configuration("hera-xscale")
    print("  lambda      best q  pair         E/W       gain over q=1")
    for rate in (base.lam, 3e-5, 1e-4, 3e-4):
        cfg = base.with_error_rate(rate)
        multi = solve_bicrit_multiverif(cfg, 3.0, max_q=6)
        single = solve_bicrit_exact(cfg, 3.0)
        gain = (1 - multi.energy_overhead / single.energy_overhead) * 100
        print(
            f"  {rate:8.2e}  {multi.q:>5}   ({multi.sigma1}, {multi.sigma2})"
            f"  {multi.energy_overhead:8.1f}   {gain:6.2f}%"
        )
    print("  -> extra verifications only pay once errors are frequent")
    print("     enough that early detection beats their overhead.")


def show_regions() -> None:
    print("\n=== 4. Where do two speeds help? (C x lambda region map) ===")
    cfg = repro.get_configuration("hera-xscale")
    m = map_regions(
        cfg, rho=3.0,
        x_axis=checkpoint_axis(lo=100.0, hi=5000.0, n=10),
        y_axis=error_rate_axis(lo=1e-6, hi=3e-4, n=8),
    )
    region = m.two_speed_region(threshold=1.0)  # >1% saving
    print("  rows: C from 100 to 5000 s; cols: lambda from 1e-6 to 3e-4 (log)")
    for i, c in enumerate(m.x_values):
        cells = "".join(
            "#" if region[i, j] else ("." if m.feasible_mask()[i, j] else " ")
            for j in range(len(m.y_values))
        )
        print(f"  C={c:6.0f}  |{cells}|")
    print(f"  '#' = two speeds save > 1%  ({m.fraction_two_speed(1.0) * 100:.0f}% "
          f"of feasible cells); '.' = diagonal pair optimal")
    print(f"  distinct winning pairs on this grid: {len(m.distinct_pairs())}")


if __name__ == "__main__":
    show_pareto()
    show_fraction_sweep()
    show_multiverif()
    show_regions()
