#!/usr/bin/env python
"""Pluggable error models: Weibull/Gamma/trace arrivals end to end.

The paper assumes memoryless (exponential) error arrivals; real HPC
failure traces are famously Weibull with shape < 1.  Because recovery
restarts the arrival pattern, each attempt draws a fresh inter-arrival
— a renewal process — so the per-attempt evaluator generalises to any
arrival CDF.  This example:

1. compares the attempt-failure profile of exponential, Weibull, Gamma
   and trace-driven models at one MTBF;
2. solves the BiCrit problem under a Weibull model (speed pairs
   enumerated through the batched ``schedule-grid`` backend);
3. sweeps a mixed-model Study grid in one lockstep pass;
4. cross-checks the Gamma evaluator against a Monte-Carlo replay.

Run:
    python examples/error_models.py
"""

from __future__ import annotations

import repro
from repro.simulation import check_agreement

MTBF = 3e5  # seconds, around the catalog's hera-xscale rate


def main() -> None:
    cfg = repro.get_configuration("hera-xscale")
    rho = 3.0

    models = {
        "exponential": repro.parse_error_model(f"exp:mtbf={MTBF}"),
        "weibull 0.7": repro.parse_error_model(f"weibull:shape=0.7,mtbf={MTBF}"),
        "gamma 2": repro.parse_error_model(f"gamma:shape=2,mtbf={MTBF}"),
        "trace": repro.parse_error_model(
            "trace:times=2e4;9e4;1.5e5;4e5;8e5;2.1e6"
        ),
    }

    # 1. Same MTBF, very different per-attempt risk profiles.
    print(f"attempt failure probability at speed 0.4 (all MTBFs ~ {MTBF:.0e} s):")
    print(f"{'model':14s} {'W=1e3':>9s} {'W=1e4':>9s} {'W=1e5':>9s}")
    for name, model in models.items():
        probs = [
            model.attempt_failure_probability(w, 0.4, cfg.verification_time)
            for w in (1e3, 1e4, 1e5)
        ]
        print(f"{name:14s} " + " ".join(f"{p:>9.5f}" for p in probs))
    print("(shape<1 front-loads risk: short attempts fail *more* than exponential)")
    print()

    # 2. Solve under the Weibull model: no schedule given, so the DVFS
    # speed pairs are enumerated as TwoSpeed rows in one batched pass.
    weibull = models["weibull 0.7"].with_failstop_fraction(0.2)
    result = repro.Scenario(config=cfg, rho=rho, errors=weibull).solve()
    best = result.best
    print(f"Weibull solve  : {weibull.spec()}")
    print(f"backend        : {result.provenance.backend}")
    print(f"speed pair     : ({best.sigma1:g}, {best.sigma2:g})")
    print(f"pattern size   : Wopt = {best.work:.0f} work units")
    print(f"energy overhead: E/W  = {best.energy_overhead:.2f} mJ/work")
    print()

    # 3. A mixed-model grid under a geometric ramp — one lockstep pass.
    study = repro.Study.from_grid(
        configs=(cfg,),
        rhos=(rho,),
        error_models=tuple(m.spec() for m in models.values()),
        schedules=("geom:0.4,1.5,1",),
        name="error-model-axis",
    )
    results = study.solve()
    print("mixed-model grid under geom:0.4,1.5,1 "
          f"(backend: {', '.join(results.backends_used())}):")
    print(f"{'model':34s} {'W':>8s} {'E/W':>8s} {'T/W':>8s}")
    for res in results:
        spec = res.scenario.errors.spec()
        print(f"{spec[:34]:34s} {res.best.work:>8.0f} "
              f"{res.best.energy_overhead:>8.2f} {res.best.time_overhead:>8.4f}")
    print()

    # 4. Monte-Carlo cross-check: the simulator samples fresh
    # inter-arrivals per attempt through the model (amplified MTBF so
    # failures actually occur within the sample budget).
    gamma = repro.parse_error_model("gamma:shape=2,mtbf=2000,failstop=0.5")
    report = check_agreement(
        cfg, work=1500.0, sigma1=0.4, sigma2=0.8,
        errors=gamma, n=30_000, rng=20160601,
    )
    s = report.summary
    print(f"Monte-Carlo vs renewal evaluator ({gamma.spec()}, 30k samples):")
    print(f"  expected time   : {report.expected_time:.2f} s/pattern")
    print(f"  simulated time  : {s.mean_time:.2f} +- {s.sem_time:.2f} s "
          f"(z = {report.time_zscore:+.2f})")
    print(f"  expected energy : {report.expected_energy:.1f} mJ/pattern")
    print(f"  simulated energy: {s.mean_energy:.1f} +- {s.sem_energy:.1f} mJ "
          f"(z = {report.energy_zscore:+.2f})")
    ok = report.agrees()
    print(f"  agreement (|z| <= 4): {'PASS' if ok else 'FAIL'}")
    if not ok:  # pragma: no cover - deterministic seed keeps this false
        raise SystemExit(1)


if __name__ == "__main__":
    main()
