#!/usr/bin/env python
"""Reproduce Figure 2: energy savings vs checkpoint cost on Atlas/Crusoe.

Sweeps the checkpointing cost C from 50 s to 5000 s, solving the
two-speed and single-speed problems at each point, and prints the three
panels of the paper's Figure 2 as one table: optimal speeds, optimal
pattern sizes, energy overheads — plus the savings column that yields
the paper's "up to 35%" headline.

Run:
    python examples/energy_savings_sweep.py
"""

from __future__ import annotations

import repro
from repro.analysis import series_savings, summarize_savings, find_pair_changes
from repro.sweep import checkpoint_axis, run_sweep


def main() -> None:
    cfg = repro.get_configuration("atlas-crusoe")
    rho = 3.0
    axis = checkpoint_axis(lo=50.0, hi=5000.0, n=34)
    print(f"sweeping C over [{axis.values[0]:g}, {axis.values[-1]:g}] s "
          f"on {cfg.name} at rho = {rho} ...\n")
    series = run_sweep(cfg, rho, axis)
    savings = series_savings(series)

    print(f"{'C':>7}  {'s1':>5} {'s2':>5} | {'s':>5}  "
          f"{'W(s1,s2)':>9} {'W(s,s)':>9}  {'E2/W':>8} {'E1/W':>8}  {'saving':>7}")
    for i, p in enumerate(series.points):
        two, one = p.two_speed, p.single_speed
        print(
            f"{p.value:>7.0f}  {two.sigma1:>5.2f} {two.sigma2:>5.2f} | "
            f"{one.sigma1:>5.2f}  {two.work:>9.0f} {one.work:>9.0f}  "
            f"{two.energy_overhead:>8.1f} {one.energy_overhead:>8.1f}  "
            f"{savings[i]:>6.1f}%"
        )

    print()
    summary = summarize_savings(series)
    print(f"maximum saving: {summary.max_savings_percent:.1f}% at C = {summary.argmax_value:g} s")
    print("(paper's Section 4.3.1 claim: 'up to 35% improvement')")

    print("\noptimal-pair crossovers along the sweep:")
    for ch in find_pair_changes(series):
        print(f"  C in ({ch.value_before:.0f}, {ch.value_after:.0f}]: "
              f"{ch.pair_before} -> {ch.pair_after}")


if __name__ == "__main__":
    main()
