#!/usr/bin/env python
"""The composable Experiment pipeline: lazy plans, batched analyses.

The paper's deliverables are derived analyses — Pareto frontiers,
savings curves, sensitivity maps — not single solves.  Since v1.5 they
compose through one query-style pipeline:

1. declare a scenario grid fluently (``Experiment.over``), filter it
   lazily (``.where``);
2. inspect the compiled :class:`ExecutionPlan` — duplicates are solved
   once, compatible scenarios are grouped into batched backend calls;
3. execute with progress callbacks (interrupted runs resume from the
   solve cache);
4. read the analyses off the result with typed verbs:
   ``.frontier()``, ``.savings()``, ``.sensitivity()``,
   ``.crossover()`` — for *any* schedule x error-model scenario, not
   just the paper's exponential two-speed case.

Run:
    python examples/experiment_pipeline.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.api import Experiment


def main() -> None:
    rhos = tuple(float(r) for r in np.linspace(2.2, 6.0, 16))

    # ------------------------------------------------------------------
    # 1-2. A lazy grid and its compiled plan.  The grid deliberately
    # spells some scenarios twice (two:0.5,0.5 == const:0.5): the plan
    # solves each distinct point once.
    experiment = Experiment.over(
        configs=("hera-xscale",),
        rhos=rhos,
        schedules=(None, "two:0.5,0.5", "const:0.5"),
        name="pipeline-tour",
    ).where(lambda sc: sc.rho < 5.5)
    plan = experiment.plan()
    print(plan.describe())
    print()

    # ------------------------------------------------------------------
    # 3. Execute with a progress callback; run it twice to show the
    # cache-backed resume (second pass is all replays).
    results = plan.execute(
        progress=lambda p: print(
            f"  shard {p.done_shards}/{p.total_shards} [{p.backend}] "
            f"{p.solved_scenarios}/{p.total_scenarios} scenarios"
        )
    )
    replay = experiment.solve()
    print(f"first pass: {results.cache_hits()} replays; "
          f"second pass: {replay.cache_hits()}/{len(replay)} replays")
    print()

    # ------------------------------------------------------------------
    # 4a. Frontier verb: the energy-vs-time trade-off with its knee.
    frontier = results.frontier()
    knee = frontier.knee()
    print(f"frontier: {len(frontier)} non-dominated points, "
          f"knee at rho={knee.rho:.2f} "
          f"(T/W={knee.x:.3f}, E/W={knee.y:.1f})")

    # 4b. Savings verb: two-speed vs the one-speed baseline per bound.
    two_speed = Experiment.over(
        configs=("atlas-crusoe",), rhos=rhos, name="two-speed"
    ).solve()
    one_speed = Experiment.over(
        configs=("atlas-crusoe",), rhos=rhos, modes=("single-speed",),
        name="one-speed",
    ).solve()
    savings = two_speed.savings(one_speed)
    print(f"savings : up to {savings.max_savings_percent:.1f}% "
          f"at rho={savings.argmax_value:g} "
          f"({savings.num_points_with_savings()} points save energy)")

    # 4c. Sensitivity + crossover verbs along the bound axis.
    sens = two_speed.sensitivity()
    crossings = two_speed.crossover()
    print(f"analysis: |d ln E*/d ln rho| peaks at "
          f"{sens.max_abs_elasticity():.2f}; "
          f"{len(crossings)} optimal-pair crossovers, winners "
          f"{crossings.distinct_pairs()[:3]} ...")
    print()

    # ------------------------------------------------------------------
    # The pre-pipeline impossibility: a frontier over a *renewal* error
    # model under a *geometric* schedule, batched through the
    # schedule-grid kernel in one pass.
    renewal = Experiment.over(
        configs=("hera-xscale",),
        rhos=rhos,
        schedules=("geom:0.4,1.5,1",),
        error_models=("weibull:shape=0.7,mtbf=3e5",),
        name="weibull-geometric",
    ).solve()
    fr = renewal.frontier()
    print(f"renewal frontier (weibull x geometric): {len(fr)} trade-offs "
          f"via {', '.join(fr.provenance.backends)}, monotone={fr.is_monotone()}")

    # Legacy entry points ride the same pipeline underneath.
    legacy = repro.pareto_frontier(
        repro.get_configuration("hera-xscale"), n=20, rho_hi=6.0
    )
    print(f"legacy pareto_frontier still works: {len(legacy)} points")


if __name__ == "__main__":
    main()
