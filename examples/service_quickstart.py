#!/usr/bin/env python
"""Drive the solver service end to end, in one process.

Boots the HTTP job service on a loopback socket (stdlib carrier, no
third-party packages), submits a 30-point frontier grid as a JSON
spec, follows the job's Server-Sent Events stream to completion,
downloads the CSV artifact, and then re-submits the identical spec to
show the cross-request shared cache serving the whole grid as hits.

The same spec works against a standalone `repro serve` deployment —
see docs/service.md for the full spec grammar, auth, and metrics.

Run:
    python examples/service_quickstart.py
"""

from __future__ import annotations

import csv
import io

from repro.api.cache import SolveCache
from repro.service import InMemoryArtifactStore, ServiceApp, ServiceConfig
from repro.service.testing import InProcessClient, run_service, sse_events

SPEC = {
    "name": "quickstart-frontier",
    "grid": {
        "configs": ["hera-xscale"],
        "rhos": {"start": 2.6, "stop": 5.5, "count": 30},
    },
    "analyses": ["frontier"],
}


def main() -> None:
    app = ServiceApp(
        ServiceConfig(transport="inline", job_workers=1),
        cache=SolveCache(),
        artifacts=InMemoryArtifactStore(),
    )
    with run_service(app) as server:
        print(f"service listening on {server.url}\n")
        client = InProcessClient(app)

        accepted = client.submit(SPEC)
        job_id = accepted["id"]
        print(f"submitted {SPEC['name']!r} -> {job_id} ({accepted['state']})")

        print("streaming events:")
        for event in sse_events(server, job_id):
            line = {k: v for k, v in event["data"].items() if k != "backends"}
            print(f"  [{event['id']:>3}] {event['event']:<9} {line}")

        final = client.wait_job(job_id)
        result = final["result"]
        print(
            f"\njob {final['state']}: {result['scenarios']} scenarios in "
            f"{result['elapsed_seconds']:.3f} s "
            f"({result['cache_hits']} cache hits)"
        )

        body = client.get(f"/v1/jobs/{job_id}/artifacts/results.csv").text
        rows = list(csv.DictReader(io.StringIO(body)))
        print(f"results.csv: {len(rows)} rows; first optimal pair = "
              f"({float(rows[0]['sigma1']):.3f}, {float(rows[0]['sigma2']):.3f})")

        rerun = client.submit(SPEC)
        redo = client.wait_job(rerun["id"])
        hits = redo["result"]["cache_hits"]
        total = redo["result"]["scenarios"]
        print(f"\nidentical re-submission: {hits}/{total} served from the "
              f"shared cache ({100.0 * hits / total:.0f}%)")


if __name__ == "__main__":
    main()
