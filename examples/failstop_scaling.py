#!/usr/bin/env python
"""Theorem 2: re-executing twice faster changes the checkpointing law.

The classical Young/Daly result says the optimal checkpointing period
scales as Theta(sqrt(MTBF)).  Theorem 2 of the paper shows that with
fail-stop errors and a re-execution speed sigma2 = 2 sigma1, the
Young/Daly lambda*W term *cancels* and the optimum becomes

    Wopt = (12 C / lambda^2)^(1/3) * sigma = Theta(lambda^(-2/3)).

This example verifies the claim numerically: it minimises the *exact*
expected time overhead (no Taylor approximation) across a range of
error rates, fits the scaling exponent, and compares against both the
Theorem-2 formula and the Young/Daly baseline at sigma2 = sigma1.

Run:
    python examples/failstop_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fit_power_law
from repro.core.youngdaly import work_failstop
from repro.errors import CombinedErrors
from repro.failstop import theorem2_work, time_optimal_work
from repro.platforms import Configuration, Platform, XSCALE

CHECKPOINT = 300.0  # seconds (Hera-like)
SIGMA = 0.4


def exact_optimum(lam: float, sigma2_ratio: float) -> float:
    cfg = Configuration(
        platform=Platform("failstop", error_rate=lam,
                          checkpoint_time=CHECKPOINT, verification_time=0.0),
        processor=XSCALE,
    )
    return time_optimal_work(
        cfg, CombinedErrors(lam, failstop_fraction=1.0), SIGMA, sigma2_ratio * SIGMA
    )


def main() -> None:
    lams = np.logspace(-7, -4, 8)

    print("=== sigma2 = 2 sigma1 (Theorem 2 regime) ===")
    print(f"{'lambda':>10}  {'W exact':>12}  {'W = (12C/l^2)^(1/3) s':>22}  {'ratio':>7}")
    w_double = []
    for lam in lams:
        w_num = exact_optimum(float(lam), 2.0)
        w_th = theorem2_work(float(lam), CHECKPOINT, SIGMA)
        w_double.append(w_num)
        print(f"{lam:>10.1e}  {w_num:>12.1f}  {w_th:>22.1f}  {w_num / w_th:>7.4f}")
    fit2 = fit_power_law(lams, np.array(w_double))
    print(f"fitted exponent: {fit2.exponent:+.4f}   (Theorem 2: -2/3 = {-2/3:+.4f})")

    print("\n=== sigma2 = sigma1 (classical Young/Daly regime) ===")
    print(f"{'lambda':>10}  {'W exact':>12}  {'W = s*sqrt(2C/l)':>18}  {'ratio':>7}")
    w_same = []
    for lam in lams:
        w_num = exact_optimum(float(lam), 1.0)
        w_yd = work_failstop(CHECKPOINT, float(lam), SIGMA)
        w_same.append(w_num)
        print(f"{lam:>10.1e}  {w_num:>12.1f}  {w_yd:>18.1f}  {w_num / w_yd:>7.4f}")
    fit1 = fit_power_law(lams, np.array(w_same))
    print(f"fitted exponent: {fit1.exponent:+.4f}   (Young/Daly: -1/2 = {-0.5:+.4f})")

    print(
        "\nThe two regimes genuinely differ: re-executing twice faster "
        f"yields exponent {fit2.exponent:+.3f} instead of {fit1.exponent:+.3f} - "
        "the first known deviation from the sqrt(MTBF) law."
    )


if __name__ == "__main__":
    main()
