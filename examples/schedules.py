#!/usr/bin/env python
"""Per-attempt re-execution speed schedules: solve + simulate cross-check.

The paper fixes one speed for the first execution and one for all
re-executions.  The `SpeedSchedule` subsystem generalises that to any
eventually-constant per-attempt policy; this example solves the BiCrit
problem under a *geometric* ramp (each re-execution 1.5x faster,
clamped to the platform's top speed), cross-checks the exact
expectations against a Monte-Carlo replay of the same policy, and
compares the outcome with the paper's two-speed optimum.

Run:
    python examples/schedules.py
"""

from __future__ import annotations

import repro
from repro.schedules import evaluate_schedule


def main() -> None:
    cfg = repro.get_configuration("hera-xscale")
    rho = 3.0
    schedule = repro.Geometric(0.4, 1.5, sigma_max=1.0)

    print(f"configuration : {cfg.name}   (rho = {rho})")
    print(f"schedule      : {schedule.spec()}")
    print(f"attempt speeds: {schedule.speeds_for_attempts(5)} ...")
    print()

    # Solve through the unified API: the 'schedule' backend finds the
    # energy-optimal pattern size under the exact attempt-series model.
    result = repro.Scenario(config=cfg, rho=rho, schedule=schedule).solve()
    best = result.best
    print(f"backend        : {result.provenance.backend}")
    print(f"pattern size   : Wopt = {best.work:.0f} work units")
    print(f"energy overhead: E/W  = {best.energy_overhead:.2f} mJ/work")
    print(f"time overhead  : T/W  = {best.time_overhead:.4f} s/work")
    print()

    # Cross-check: expected vs simulated energy for the geometric policy.
    expectation = evaluate_schedule(cfg, schedule, best.work)
    report = result.simulate(n=50_000, rng=20160601)
    s = report.summary
    print("model vs Monte-Carlo (50k samples, same per-attempt speeds):")
    print(f"  expected energy : {expectation.energy:.2f} mJ/pattern")
    print(f"  simulated energy: {s.mean_energy:.2f} +- {s.sem_energy:.2f} mJ "
          f"(z = {report.energy_zscore:+.2f})")
    print(f"  expected time   : {expectation.time:.2f} s/pattern")
    print(f"  simulated time  : {s.mean_time:.2f} +- {s.sem_time:.2f} s "
          f"(z = {report.time_zscore:+.2f})")
    print(f"  expected re-execs: {expectation.reexecutions:.4f}  "
          f"simulated: {s.mean_reexecutions:.4f}")
    ok = report.agrees()
    print(f"  agreement (|z| <= 4): {'PASS' if ok else 'FAIL'}")
    if not ok:  # pragma: no cover - deterministic seed keeps this false
        raise SystemExit(1)
    print()

    # How does the ramp compare with the paper's optimal two-speed pair?
    # Compare on the *exact* model both ways: the schedule solver reports
    # exact overheads, while the Theorem-1 winner's headline number is
    # first-order (its exact value rides along as energy_overhead_exact).
    paper = repro.Scenario(config=cfg, rho=rho).solve()
    paper_exact = paper.best.energy_overhead_exact
    print(f"paper optimum  : pair {paper.best.speed_pair}  "
          f"E/W = {paper_exact:.2f} mJ/work (exact model)")
    delta = (best.energy_overhead / paper_exact - 1) * 100
    print(f"geometric ramp : {delta:+.2f}% energy vs the two-speed optimum")
    print("(escalating re-executions buy back time that the bound rho")
    print(" then converts into a larger, cheaper pattern — or not: the")
    print(" solver quantifies the trade for any policy you can spec.)")


if __name__ == "__main__":
    main()
