#!/usr/bin/env python
"""Quickstart: solve BiCrit for a catalog configuration.

Reproduces the headline workflow of the paper in a dozen lines: pick a
platform/processor pair, set the admissible performance degradation
``rho``, and get back the energy-optimal speed pair and checkpointing
pattern size.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.reporting import format_speed_pair_table
from repro.sweep import speed_pair_table


def main() -> None:
    # Hera platform (LLNL, via Moody et al.) + Intel XScale DVFS processor.
    cfg = repro.get_configuration("hera-xscale")
    print(f"configuration : {cfg.name}")
    print(f"error rate    : lambda = {cfg.lam:.3g} /s  (MTBF {cfg.platform.mtbf/3600:.0f} h)")
    print(f"checkpoint    : C = {cfg.checkpoint_time:g} s, verification V = {cfg.verification_time:g} s")
    print(f"DVFS speeds   : {cfg.speeds}")
    print()

    # Solve for the paper's default performance bound rho = 3: the
    # expected time per unit of work may be at most 3 seconds.
    rho = 3.0
    solution = repro.solve_bicrit(cfg, rho)
    best = solution.best
    print(f"BiCrit optimum at rho = {rho}:")
    print(f"  first-execution speed  sigma1 = {best.sigma1}")
    print(f"  re-execution speed     sigma2 = {best.sigma2}")
    print(f"  pattern size           Wopt   = {best.work:.0f} work units")
    print(f"  energy overhead        E/W    = {best.energy_overhead:.1f} mJ per work unit")
    print(f"  time overhead          T/W    = {best.time_overhead:.3f} s per work unit")
    print()

    # The full per-sigma1 table (Section 4.2 of the paper).
    print(format_speed_pair_table(speed_pair_table(cfg, rho)))
    print()

    # Tighten the bound: a different (two-speed!) pair wins.
    tight = repro.solve_bicrit(cfg, 1.775).best
    print(
        f"at rho = 1.775 the optimum becomes ({tight.sigma1}, {tight.sigma2}) "
        f"with Wopt = {tight.work:.0f} - a genuinely different re-execution speed."
    )
    print()

    # The same solves through the unified API: declarative scenarios,
    # batched studies, and provenance (see docs/api.md).
    result = repro.Scenario(config="hera-xscale", rho=rho).solve()
    print(
        f"Scenario API: best pair {result.best.speed_pair} "
        f"via the {result.provenance.backend!r} backend "
        f"(cache hit: {result.provenance.cache_hit})"
    )
    study = repro.Study.from_grid(rhos=(1.775, 3.0))  # full catalog x 2 bounds
    results = study.solve(backend="grid")  # one vectorised broadcast pass
    feasible = int(results.feasible_mask().sum())
    print(
        f"Study API: solved {len(results)} scenarios in one grid batch "
        f"({feasible} feasible, {results.total_wall_time()*1e3:.1f} ms total)"
    )


if __name__ == "__main__":
    main()
