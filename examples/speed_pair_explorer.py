#!/usr/bin/env python
"""Explore which speed pairs can be optimal, and when.

Section 4.2 of the paper observes that "it is possible, for a
well-chosen rho, to have almost any speed pair as the optimal solution
(except the pairs with very low speeds)".  This example makes that
concrete: it scans the performance bound rho and prints the maximal
intervals over which each speed pair wins, for every catalog
configuration, then shows the combined-error (Section 5) optimum for a
few fail-stop fractions.

Run:
    python examples/speed_pair_explorer.py
"""

from __future__ import annotations

import repro
from repro.analysis import optimal_pairs_by_rho
from repro.errors import CombinedErrors
from repro.failstop import first_order_window, solve_bicrit_combined


def rho_intervals() -> None:
    print("=== optimal speed pair as a function of rho ===")
    for name in ("hera-xscale", "atlas-crusoe"):
        cfg = repro.get_configuration(name)
        print(f"\n{cfg.name}:")
        for iv in optimal_pairs_by_rho(cfg, rho_lo=1.05, rho_hi=12.0, n=600):
            print(
                f"  rho in [{iv.rho_min:6.3f}, {iv.rho_max:6.3f}]  ->  "
                f"(sigma1, sigma2) = {iv.pair}"
            )


def combined_error_optima() -> None:
    print("\n=== Section 5: combined fail-stop + silent optima (numeric solver) ===")
    cfg = repro.get_configuration("hera-xscale")
    print(f"{cfg.name}, rho = 3, total rate = {cfg.lam:g}/s")
    print(f"{'f (fail-stop share)':>20}  {'pair':>12}  {'Wopt':>8}  {'E/W':>8}  "
          f"{'FO validity window':>20}")
    for f in (0.0, 0.25, 0.5, 0.75, 1.0):
        errors = CombinedErrors(cfg.lam, f)
        sol = solve_bicrit_combined(cfg, errors, rho=3.0)
        lo, hi = first_order_window(errors)
        window = "unbounded" if hi == float("inf") else f"({lo:.3f}, {hi:.3f})"
        print(
            f"{f:>20.2f}  ({sol.sigma1}, {sol.sigma2})"
            f"{'':>2}  {sol.work:>8.0f}  {sol.energy_overhead:>8.1f}  {window:>20}"
        )
    print(
        "\nNote: the numeric solver works even where the paper's first-order"
        "\nanalysis breaks down (sigma2/sigma1 outside the validity window)."
    )


if __name__ == "__main__":
    rho_intervals()
    combined_error_optima()
