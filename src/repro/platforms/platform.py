"""Checkpointing-platform parameters (Table 1 of the paper).

A :class:`Platform` bundles the resilience parameters of a machine:
error rate ``lambda``, checkpoint cost ``C`` (seconds), verification
cost ``V`` (work-like seconds at full speed) and recovery cost ``R``
(seconds).  The paper sets ``R = C`` throughout (Section 4.1: a read
costs the same as a write); we keep ``R`` explicit so sweeps and
what-if analyses can decouple them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..quantities import require_nonnegative, require_positive

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """Resilience parameters of a checkpointing platform.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"Hera"``).
    error_rate:
        Silent-error (or total-error, for Section 5 studies) rate
        ``lambda`` per second.
    checkpoint_time:
        ``C`` in seconds; I/O-bound, does not scale with CPU speed.
    verification_time:
        ``V`` in seconds *at full speed*; CPU-bound, a verification at
        speed ``sigma`` takes ``V / sigma`` seconds.
    recovery_time:
        ``R`` in seconds.  ``None`` (the default) means ``R = C``.

    Examples
    --------
    >>> p = Platform("Toy", error_rate=1e-5, checkpoint_time=60.0,
    ...              verification_time=6.0)
    >>> p.recovery_time == p.checkpoint_time
    True
    >>> round(p.mtbf)
    100000
    """

    name: str
    error_rate: float
    checkpoint_time: float
    verification_time: float
    recovery_time: float | None = field(default=None)

    def __post_init__(self) -> None:
        require_positive(self.error_rate, "error_rate")
        require_nonnegative(self.checkpoint_time, "checkpoint_time")
        require_nonnegative(self.verification_time, "verification_time")
        if self.recovery_time is None:
            # Frozen dataclass: route the default through __setattr__.
            object.__setattr__(self, "recovery_time", self.checkpoint_time)
        else:
            require_nonnegative(self.recovery_time, "recovery_time")

    # ------------------------------------------------------------------
    @property
    def mtbf(self) -> float:
        """Platform mean time between errors, ``mu = 1 / lambda`` seconds."""
        return 1.0 / self.error_rate

    # ------------------------------------------------------------------
    # Sweep helpers — each returns a modified copy (dataclass is frozen).
    # ------------------------------------------------------------------
    def with_error_rate(self, error_rate: float) -> "Platform":
        """Copy with a different ``lambda`` (Figure 4 sweeps)."""
        return replace(self, error_rate=error_rate)

    def with_checkpoint_time(self, checkpoint_time: float, *, keep_recovery: bool = False) -> "Platform":
        """Copy with a different ``C`` (Figure 2 sweeps).

        Unless ``keep_recovery`` is set, ``R`` tracks the new ``C`` — the
        paper keeps ``R = C`` when varying the checkpoint cost.
        """
        r = self.recovery_time if keep_recovery else None
        return replace(self, checkpoint_time=checkpoint_time, recovery_time=r)

    def with_verification_time(self, verification_time: float) -> "Platform":
        """Copy with a different ``V`` (Figure 3 sweeps)."""
        return replace(self, verification_time=verification_time)

    def with_recovery_time(self, recovery_time: float) -> "Platform":
        """Copy with a different ``R`` (decoupled from ``C``)."""
        return replace(self, recovery_time=recovery_time)
