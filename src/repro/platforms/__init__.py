"""Platform & processor catalog substrate (Tables 1 and 2 of the paper)."""

from .catalog import (
    ATLAS,
    COASTAL,
    COASTAL_SSD,
    CRUSOE,
    HERA,
    PLATFORMS,
    PROCESSORS,
    XSCALE,
    all_configurations,
    configuration_names,
    get_configuration,
)
from .configuration import Configuration
from .platform import Platform
from .processor import Processor

__all__ = [
    "Platform",
    "Processor",
    "Configuration",
    "HERA",
    "ATLAS",
    "COASTAL",
    "COASTAL_SSD",
    "XSCALE",
    "CRUSOE",
    "PLATFORMS",
    "PROCESSORS",
    "all_configurations",
    "configuration_names",
    "get_configuration",
]
