"""The paper's platform and processor catalog (Tables 1 and 2).

Platforms (Table 1, from Moody et al., SC'10):

==============  ========  ======  ======
Platform        lambda    C (s)   V (s)
==============  ========  ======  ======
Hera            3.38e-6   300     15.4
Atlas           7.78e-6   439     9.1
Coastal         2.01e-6   1051    4.5
Coastal SSD     2.01e-6   2500    180.0
==============  ========  ======  ======

Processors (Table 2, from Rizvandi et al.):

=================  ============================  =====================
Processor          Normalised speeds             P(sigma) (mW)
=================  ============================  =====================
Intel XScale       0.15, 0.4, 0.6, 0.8, 1        1550 sigma^3 + 60
Transmeta Crusoe   0.45, 0.6, 0.8, 0.9, 1        5756 sigma^3 + 4.4
=================  ============================  =====================

The experiments combine each platform with each processor into eight
virtual configurations (Section 4.1); :func:`all_configurations`
enumerates them and :func:`get_configuration` resolves names like
``"atlas-crusoe"``.
"""

from __future__ import annotations

from .configuration import Configuration
from .platform import Platform
from .processor import Processor

__all__ = [
    "HERA",
    "ATLAS",
    "COASTAL",
    "COASTAL_SSD",
    "PLATFORMS",
    "XSCALE",
    "CRUSOE",
    "PROCESSORS",
    "all_configurations",
    "get_configuration",
    "configuration_names",
]

# ----------------------------------------------------------------------
# Table 1 — platforms
# ----------------------------------------------------------------------
HERA = Platform(
    name="Hera",
    error_rate=3.38e-6,
    checkpoint_time=300.0,
    verification_time=15.4,
)

ATLAS = Platform(
    name="Atlas",
    error_rate=7.78e-6,
    checkpoint_time=439.0,
    verification_time=9.1,
)

COASTAL = Platform(
    name="Coastal",
    error_rate=2.01e-6,
    checkpoint_time=1051.0,
    verification_time=4.5,
)

COASTAL_SSD = Platform(
    name="Coastal SSD",
    error_rate=2.01e-6,
    checkpoint_time=2500.0,
    verification_time=180.0,
)

PLATFORMS: tuple[Platform, ...] = (HERA, ATLAS, COASTAL, COASTAL_SSD)

# ----------------------------------------------------------------------
# Table 2 — processors
# ----------------------------------------------------------------------
XSCALE = Processor(
    name="Intel XScale",
    speeds=(0.15, 0.4, 0.6, 0.8, 1.0),
    kappa=1550.0,
    idle_power=60.0,
)

CRUSOE = Processor(
    name="Transmeta Crusoe",
    speeds=(0.45, 0.6, 0.8, 0.9, 1.0),
    kappa=5756.0,
    idle_power=4.4,
)

PROCESSORS: tuple[Processor, ...] = (XSCALE, CRUSOE)

# ----------------------------------------------------------------------
# The eight virtual configurations of Section 4.1
# ----------------------------------------------------------------------
_SLUGS = {
    "hera": HERA,
    "atlas": ATLAS,
    "coastal": COASTAL,
    "coastal-ssd": COASTAL_SSD,
    "xscale": XSCALE,
    "crusoe": CRUSOE,
}


def _slug(name: str) -> str:
    """Canonical slug for a platform/processor name ("Coastal SSD" -> "coastal-ssd")."""
    return name.lower().replace(" ", "-").replace("_", "-")


def all_configurations() -> tuple[Configuration, ...]:
    """The eight platform x processor configurations of the paper, in the
    order (Hera, Atlas, Coastal, Coastal SSD) x (XScale, Crusoe)."""
    return tuple(
        Configuration(platform=p, processor=c) for p in PLATFORMS for c in PROCESSORS
    )


def configuration_names() -> tuple[str, ...]:
    """Canonical ``"<platform>-<processor>"`` names of the eight configs."""
    return tuple(
        f"{_slug(p.name)}-{_slug(c.name.split()[-1])}"
        for p in PLATFORMS
        for c in PROCESSORS
    )


def get_configuration(name: str) -> Configuration:
    """Resolve a configuration by name, e.g. ``"hera-xscale"``.

    The name is ``"<platform>-<processor>"`` with platform one of
    ``hera | atlas | coastal | coastal-ssd`` and processor one of
    ``xscale | crusoe`` (case-insensitive; spaces and underscores accepted).

    Raises
    ------
    KeyError
        If the name does not resolve, listing the valid choices.
    """
    slug = _slug(name)
    for proc_key in ("xscale", "crusoe"):
        suffix = f"-{proc_key}"
        if slug.endswith(suffix):
            plat_key = slug[: -len(suffix)]
            if plat_key in _SLUGS and proc_key in _SLUGS:
                platform = _SLUGS[plat_key]
                processor = _SLUGS[proc_key]
                if isinstance(platform, Platform) and isinstance(processor, Processor):
                    return Configuration(platform=platform, processor=processor)
    raise KeyError(
        f"unknown configuration {name!r}; valid names: {', '.join(configuration_names())}"
    )
