"""DVFS-processor parameters (Table 2 of the paper).

A :class:`Processor` bundles a discrete set of normalised speeds and the
coefficients of its power law ``P(sigma) = kappa * sigma**3 + Pidle``
(milliwatts).  The two catalog entries reproduce Table 2: the Intel
XScale (``1550 sigma^3 + 60``) and the Transmeta Crusoe
(``5756 sigma^3 + 4.4``), with speed sets normalised to the maximum.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Iterable

from ..exceptions import SpeedNotAvailableError
from ..quantities import require_nonnegative, require_positive, require_speed_set

__all__ = ["Processor"]


@dataclass(frozen=True)
class Processor:
    """A DVFS-capable processor.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"Intel XScale"``).
    speeds:
        The discrete DVFS speed set ``S`` (normalised, ascending after
        canonicalisation).
    kappa:
        Cubic dynamic-power coefficient (mW).
    idle_power:
        Static power ``Pidle`` (mW).

    Examples
    --------
    >>> cpu = Processor("Toy", speeds=(0.5, 1.0), kappa=1000.0, idle_power=10.0)
    >>> cpu.min_speed, cpu.max_speed
    (0.5, 1.0)
    >>> cpu.power(1.0)
    1010.0
    """

    name: str
    speeds: tuple[float, ...]
    kappa: float
    idle_power: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "speeds", require_speed_set(self.speeds))
        require_positive(self.kappa, "kappa")
        require_nonnegative(self.idle_power, "idle_power")

    # ------------------------------------------------------------------
    @property
    def min_speed(self) -> float:
        """Lowest available DVFS speed."""
        return self.speeds[0]

    @property
    def max_speed(self) -> float:
        """Highest available DVFS speed."""
        return self.speeds[-1]

    @property
    def num_speeds(self) -> int:
        """``K``, the size of the speed set."""
        return len(self.speeds)

    # ------------------------------------------------------------------
    def power(self, speed: float) -> float:
        """Total power ``kappa * sigma**3 + Pidle`` at ``speed`` (mW).

        ``speed`` need not belong to the discrete set — the power law is
        defined for any speed (used when sweeping hypothetical speeds).
        """
        require_positive(speed, "speed")
        return self.kappa * speed**3 + self.idle_power

    def dynamic_power(self, speed: float) -> float:
        """Dynamic share only, ``kappa * sigma**3`` (mW)."""
        require_positive(speed, "speed")
        return self.kappa * speed**3

    def require_member(self, speed: float) -> float:
        """Validate that ``speed`` belongs to the DVFS set and return it.

        Raises
        ------
        SpeedNotAvailableError
            If the speed is not in the set (exact float match; the
            catalog values are exact decimals so no tolerance is used).
        """
        if speed not in self.speeds:
            raise SpeedNotAvailableError(speed, self.speeds)
        return speed

    # ------------------------------------------------------------------
    def with_idle_power(self, idle_power: float) -> "Processor":
        """Copy with a different ``Pidle`` (Figure 6 sweeps)."""
        return replace(self, idle_power=idle_power)

    def with_speeds(self, speeds: Iterable[float]) -> "Processor":
        """Copy with a different speed set (solver-scaling ablations)."""
        return replace(self, speeds=tuple(speeds))
