"""A virtual configuration = platform x processor (+ I/O power).

Section 4.1 of the paper builds eight virtual configurations by
combining each of the four platforms of Table 1 with each of the two
processors of Table 2.  The dynamic I/O power defaults to the CPU's
dynamic power at its *lowest* speed ("the default value of Pio is set to
be equivalent to the power used when the CPU runs at the lowest speed").

:class:`Configuration` is the single object every model function takes:
it exposes the resilience parameters (``lam``, ``C``, ``V``, ``R``), the
DVFS speed set, and the assembled :class:`~repro.power.model.PowerModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..power.model import PowerModel
from ..quantities import require_nonnegative
from .platform import Platform
from .processor import Processor

__all__ = ["Configuration"]


@dataclass(frozen=True)
class Configuration:
    """Everything the BiCrit model needs, in one immutable object.

    Parameters
    ----------
    platform:
        Resilience parameters (Table 1 entry or custom).
    processor:
        DVFS parameters (Table 2 entry or custom).
    io_power:
        Dynamic I/O power ``Pio`` (mW).  ``None`` (default) uses the
        paper's convention ``Pio = kappa * sigma_min**3``.

    Examples
    --------
    >>> from repro.platforms.catalog import HERA, XSCALE
    >>> cfg = Configuration(platform=HERA, processor=XSCALE)
    >>> round(cfg.io_power, 5)   # 1550 * 0.15**3
    5.23125
    >>> cfg.speeds
    (0.15, 0.4, 0.6, 0.8, 1.0)
    """

    platform: Platform
    processor: Processor
    io_power: float | None = field(default=None)

    def __post_init__(self) -> None:
        if self.io_power is None:
            default_io = self.processor.dynamic_power(self.processor.min_speed)
            object.__setattr__(self, "io_power", default_io)
        else:
            require_nonnegative(self.io_power, "io_power")

    # ------------------------------------------------------------------
    # Short accessors used pervasively by the model formulas
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """``"<Platform>/<Processor>"`` label, e.g. ``"Hera/Intel XScale"``."""
        return f"{self.platform.name}/{self.processor.name}"

    @property
    def lam(self) -> float:
        """Error rate ``lambda`` (per second)."""
        return self.platform.error_rate

    @property
    def checkpoint_time(self) -> float:
        """Checkpoint cost ``C`` (seconds)."""
        return self.platform.checkpoint_time

    @property
    def verification_time(self) -> float:
        """Verification cost ``V`` (seconds at full speed; work-like)."""
        return self.platform.verification_time

    @property
    def recovery_time(self) -> float:
        """Recovery cost ``R`` (seconds)."""
        return self.platform.recovery_time  # type: ignore[return-value]

    @property
    def speeds(self) -> tuple[float, ...]:
        """The discrete DVFS speed set ``S``."""
        return self.processor.speeds

    @property
    def power(self) -> PowerModel:
        """The assembled power model (``kappa``, ``Pidle``, ``Pio``)."""
        return PowerModel(
            kappa=self.processor.kappa,
            idle=self.processor.idle_power,
            io=self.io_power,  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    # Sweep helpers: each returns a modified copy, used by repro.sweep.axes
    # ------------------------------------------------------------------
    def with_checkpoint_time(self, value: float) -> "Configuration":
        """Copy with ``C = value`` (and ``R`` tracking ``C``, per §4.1)."""
        return replace(self, platform=self.platform.with_checkpoint_time(value))

    def with_verification_time(self, value: float) -> "Configuration":
        """Copy with ``V = value``."""
        return replace(self, platform=self.platform.with_verification_time(value))

    def with_error_rate(self, value: float) -> "Configuration":
        """Copy with ``lambda = value``."""
        return replace(self, platform=self.platform.with_error_rate(value))

    def with_idle_power(self, value: float) -> "Configuration":
        """Copy with ``Pidle = value`` (keeps the explicit or default Pio)."""
        return replace(
            self,
            processor=self.processor.with_idle_power(value),
            io_power=self.io_power,
        )

    def with_io_power(self, value: float) -> "Configuration":
        """Copy with an explicit ``Pio = value``."""
        return replace(self, io_power=value)
