"""Adaptive Monte-Carlo: simulate until a target precision is reached.

Fixed-size batches either waste samples (easy regimes) or under-resolve
(heavy re-execution regimes).  :func:`simulate_until` grows the sample
geometrically until the relative half-width of the 95% confidence
interval of *both* the mean time and the mean energy drops below the
target, and reports the full trajectory for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors.combined import CombinedErrors
from ..exceptions import ConvergenceError, InvalidParameterError
from ..platforms.configuration import Configuration
from ..quantities import require_positive
from .engine import PatternSimulator
from .outcomes import BatchSummary, PatternBatch

__all__ = ["ConvergedEstimate", "simulate_until"]

_Z95 = 1.959963984540054


@dataclass(frozen=True)
class ConvergedEstimate:
    """Result of an adaptive simulation run."""

    summary: BatchSummary
    target_precision: float
    achieved_precision: float
    rounds: int

    @property
    def n(self) -> int:
        """Total number of simulated patterns."""
        return self.summary.n

    @property
    def converged(self) -> bool:
        """True when the target precision was met."""
        return self.achieved_precision <= self.target_precision


def _precision(summary: BatchSummary) -> float:
    """Worst relative CI half-width across time and energy."""
    rel_t = _Z95 * summary.sem_time / summary.mean_time
    rel_e = _Z95 * summary.sem_energy / summary.mean_energy
    return max(rel_t, rel_e)


def simulate_until(
    cfg: Configuration,
    work: float,
    sigma1: float,
    sigma2: float | None = None,
    *,
    errors: CombinedErrors | None = None,
    precision: float = 0.005,
    initial_n: int = 2_000,
    max_n: int = 2_000_000,
    rng: np.random.Generator | int | None = None,
) -> ConvergedEstimate:
    """Simulate pattern executions until the CI is tight enough.

    Parameters
    ----------
    precision:
        Target relative 95%-CI half-width (applies to both the mean
        time and the mean energy).  The default 0.5% resolves the
        paper-table values to ~2 significant digits of their overheads.
    initial_n, max_n:
        Starting batch size and hard sample cap; the batch doubles each
        round, so at most ``log2(max_n / initial_n)`` rounds run.

    Raises
    ------
    ConvergenceError
        If ``max_n`` samples do not reach the target (the estimate so
        far is attached to the exception message).

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> est = simulate_until(get_configuration("hera-xscale"), 2764.0, 0.4,
    ...                      precision=0.01, rng=5)
    >>> est.converged
    True
    """
    require_positive(precision, "precision")
    if initial_n < 2:
        raise InvalidParameterError("initial_n must be >= 2")
    sim = PatternSimulator(cfg, errors=errors, rng=rng)

    batches: list[PatternBatch] = []
    total = 0
    n_next = initial_n
    rounds = 0
    while True:
        rounds += 1
        batches.append(sim.run(work=work, sigma1=sigma1, sigma2=sigma2, n=n_next))
        total += n_next
        merged = PatternBatch(
            times=np.concatenate([b.times for b in batches]),
            energies=np.concatenate([b.energies for b in batches]),
            attempts=np.concatenate([b.attempts for b in batches]),
            failstop_errors=np.concatenate([b.failstop_errors for b in batches]),
            silent_errors=np.concatenate([b.silent_errors for b in batches]),
        )
        summary = merged.summary()
        achieved = _precision(summary)
        if achieved <= precision:
            return ConvergedEstimate(
                summary=summary,
                target_precision=precision,
                achieved_precision=achieved,
                rounds=rounds,
            )
        if total >= max_n:
            raise ConvergenceError(
                f"{total} samples reached precision {achieved:.2e}, "
                f"short of the target {precision:.2e}"
            )
        n_next = min(total, max_n - total)  # double, capped at the budget
