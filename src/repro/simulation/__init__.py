"""Monte-Carlo simulation substrate: pattern engine, application runs, estimators."""

from .application import (
    ApplicationResult,
    ApplicationSimulator,
    EventKind,
    TraceEvent,
)
from .convergence import ConvergedEstimate, simulate_until
from .engine import PatternSimulator
from .estimators import AgreementReport, check_agreement
from .outcomes import BatchSummary, PatternBatch

__all__ = [
    "PatternSimulator",
    "PatternBatch",
    "BatchSummary",
    "ApplicationSimulator",
    "ApplicationResult",
    "EventKind",
    "TraceEvent",
    "AgreementReport",
    "check_agreement",
    "ConvergedEstimate",
    "simulate_until",
]
