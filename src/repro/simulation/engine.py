"""Vectorised Monte-Carlo simulation of pattern executions.

The simulator replays, sample by sample, exactly the stochastic process
the paper's expectations describe (Sections 2.2 and 5.1):

* an attempt at speed ``sigma`` executes for ``tau = (W+V)/sigma``
  seconds unless a fail-stop error interrupts it at ``t_f < tau``
  (``t_f ~ Exp(lambda_f)``, fresh per attempt — the process is
  memoryless);
* independently, a silent corruption occurs within the computation
  window with probability ``1 - exp(-lambda_s W / sigma)``; it is
  caught by the end-of-pattern verification, so the full ``tau`` is
  paid before the recovery;
* a fail-stop interruption pre-empts the attempt regardless of silent
  corruption (the paper's recursion branches on the fail-stop event
  first);
* every failed attempt pays a recovery ``R``; the final successful
  attempt pays the checkpoint ``C``.  Attempt speeds follow the run's
  :class:`~repro.schedules.base.SpeedSchedule` — the legacy
  ``(sigma1, sigma2)`` arguments are sugar for ``TwoSpeed(sigma1,
  sigma2)`` (first attempt at ``sigma1``, all re-executions at
  ``sigma2``), and any eventually-constant per-attempt policy replays
  the same way.

Energy accounting mirrors :mod:`repro.power.energy`: compute segments
(including the truncated one) draw ``Pidle + kappa sigma^3``; recovery
and checkpoint draw ``Pidle + Pio``.

The implementation is fully vectorised over samples: each loop
iteration advances *all* still-failing samples by one attempt, so the
cost is O(n x E[attempts]) NumPy operations with no Python-level
per-sample work — following the hpc-parallel guides (vectorise the
inner loop; operate in place on index subsets).  Per-attempt schedules
keep this property for free: every sample in re-execution round ``k``
is at attempt ``k``, so the attempt index selects one scalar speed per
round.
"""

from __future__ import annotations

import numpy as np

from ..errors.combined import CombinedErrors
from ..errors.models import ErrorModel, collapse_memoryless
from ..exceptions import ConvergenceError, InvalidParameterError
from ..platforms.configuration import Configuration
from ..quantities import require_positive
from ..schedules.base import SpeedSchedule, TwoSpeed
from .outcomes import PatternBatch

__all__ = ["PatternSimulator"]

#: Hard cap on re-execution rounds.  The per-attempt success probability
#: for any sane configuration is >> 1e-3, so 100k rounds is unreachable
#: except for pathological parameters, where we fail loudly.
_MAX_ROUNDS = 100_000


class PatternSimulator:
    """Monte-Carlo executor of checkpointing patterns.

    Parameters
    ----------
    cfg:
        Platform/processor configuration (supplies ``C``, ``V``, ``R``
        and the power model).
    errors:
        Optional error model: a legacy
        :class:`~repro.errors.combined.CombinedErrors` split, or a
        renewal :class:`~repro.errors.models.ErrorModel`
        (Weibull/Gamma/trace arrivals — each attempt draws a fresh
        inter-arrival through the model's ``sample_interarrivals``, the
        renewal semantics the analytical evaluator assumes).  A
        memoryless model collapses to its byte-identical
        ``CombinedErrors`` so the exponential sampling path — and its
        RNG stream — is exactly the legacy one.  ``None`` (default)
        means silent errors only at the configuration's own rate — the
        model of Sections 2-4.
    rng:
        NumPy random generator or integer seed.  Defaults to a fresh
        unseeded generator; pass a seed for reproducibility.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> sim = PatternSimulator(get_configuration("hera-xscale"), rng=42)
    >>> batch = sim.run(work=2764.0, sigma1=0.4, n=1000)
    >>> batch.size
    1000
    """

    def __init__(
        self,
        cfg: Configuration,
        errors: CombinedErrors | ErrorModel | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        self.cfg = cfg
        if errors is None:
            errors = CombinedErrors(total_rate=cfg.lam, failstop_fraction=0.0)
        self.errors = collapse_memoryless(errors)
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)

    # ------------------------------------------------------------------
    def run(
        self,
        work: float,
        sigma1: float | None = None,
        sigma2: float | None = None,
        n: int = 10_000,
        *,
        schedule: SpeedSchedule | None = None,
    ) -> PatternBatch:
        """Simulate ``n`` independent pattern executions.

        Speeds come either from the legacy ``(sigma1, sigma2)`` pair
        (first attempt at ``sigma1``, re-executions at ``sigma2``,
        defaulting to ``sigma1``) or from an arbitrary per-attempt
        ``schedule`` — passing both is an error.  Returns a
        :class:`~repro.simulation.outcomes.PatternBatch` whose sample
        means converge (by construction) to the exact expectations of
        Propositions 1-5 and their schedule generalisations.
        """
        require_positive(work, "work")
        if schedule is not None:
            if sigma1 is not None or sigma2 is not None:
                raise InvalidParameterError(
                    "pass either schedule= or sigma1/sigma2, not both"
                )
        else:
            if sigma1 is None:
                raise InvalidParameterError("sigma1 is required without a schedule")
            require_positive(sigma1, "sigma1")
            if sigma2 is None:
                sigma2 = sigma1
            require_positive(sigma2, "sigma2")
            schedule = TwoSpeed(sigma1, sigma2)
        if n < 1:
            raise InvalidParameterError("n must be >= 1")

        cfg = self.cfg
        pm = cfg.power
        p_io = pm.io_total_power()
        V = cfg.verification_time
        R = cfg.recovery_time
        C = cfg.checkpoint_time

        # One per-round sampler, chosen by model type up front.  Both
        # samplers draw the fail-stop arrival first, then the silent
        # indicator, so the exponential path consumes the RNG stream
        # exactly as the legacy engine did.
        if isinstance(self.errors, ErrorModel):
            fs_proc = self.errors.failstop_arrivals
            sil_proc = self.errors.silent_arrivals

            def draw(
                m: int, tau: float, omega: float
            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
                # Renewal semantics: recovery restarts the arrival
                # pattern, so every attempt draws a fresh inter-arrival
                # from the model (the assumption the analytical
                # evaluator's per-attempt primitives encode).  The
                # window test is <= to match the model CDF's P(X <= t)
                # convention — immaterial for continuous families, but
                # a trace ECDF has atoms, and an arrival exactly at the
                # window's end must count as a failure on both sides.
                if fs_proc is not None:
                    t_fail = fs_proc.sample_interarrivals(self.rng, m)
                    failstop = t_fail <= tau
                else:
                    t_fail = np.empty(m)
                    failstop = np.zeros(m, dtype=bool)
                if sil_proc is not None:
                    p_sil = sil_proc.failure_probability(omega)
                    silent = self.rng.random(m) < p_sil
                else:
                    silent = np.zeros(m, dtype=bool)
                return t_fail, failstop, silent

        else:
            lam_f = self.errors.failstop_rate
            lam_s = self.errors.silent_rate

            def draw(
                m: int, tau: float, omega: float
            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
                # Fail-stop: first arrival within the (W+V)/sigma window.
                if lam_f > 0.0:
                    t_fail = self.rng.exponential(scale=1.0 / lam_f, size=m)
                    failstop = t_fail < tau
                else:
                    t_fail = np.empty(m)
                    failstop = np.zeros(m, dtype=bool)
                # Silent: strike within the computation window W/sigma.
                if lam_s > 0.0:
                    silent = self.rng.random(m) < -np.expm1(-lam_s * omega)
                else:
                    silent = np.zeros(m, dtype=bool)
                return t_fail, failstop, silent

        times = np.zeros(n)
        energies = np.zeros(n)
        attempts = np.zeros(n, dtype=np.int64)
        failstop_errors = np.zeros(n, dtype=np.int64)
        silent_errors = np.zeros(n, dtype=np.int64)

        active = np.arange(n)
        rounds = 0
        while active.size:
            rounds += 1
            if rounds > _MAX_ROUNDS:  # pragma: no cover - pathological only
                raise ConvergenceError(
                    f"patterns failed to complete within {_MAX_ROUNDS} attempts; "
                    "check that lambda * W / sigma is not enormous"
                )
            # Attempt index selects the speed: all active samples are in
            # the same round, so the schedule lookup stays scalar.
            speed = schedule.speed_for_attempt(rounds)
            m = active.size
            tau = (work + V) / speed
            omega = work / speed
            p_cpu = pm.compute_power(speed)

            t_fail, failstop, silent = draw(m, tau, omega)

            exec_time = np.where(failstop, t_fail, tau)
            times[active] += exec_time
            energies[active] += exec_time * p_cpu
            attempts[active] += 1

            failed = failstop | silent
            failstop_errors[active] += failstop
            # A silent corruption in a fail-stop-interrupted attempt is
            # never observed (the attempt is redone anyway): charge the
            # attempt to the fail-stop branch, as recursion (8) does.
            silent_errors[active] += silent & ~failstop

            failed_idx = active[failed]
            done_idx = active[~failed]
            times[failed_idx] += R
            energies[failed_idx] += R * p_io
            times[done_idx] += C
            energies[done_idx] += C * p_io

            active = failed_idx

        return PatternBatch(
            times=times,
            energies=energies,
            attempts=attempts,
            failstop_errors=failstop_errors,
            silent_errors=silent_errors,
        )

    # ------------------------------------------------------------------
    def spawn(self) -> "PatternSimulator":
        """An independent simulator with a child RNG stream.

        Use to fan simulations out over parameters without correlating
        their randomness (NumPy's ``spawn`` guarantees independence).
        """
        child = self.rng.spawn(1)[0]
        return PatternSimulator(self.cfg, self.errors, child)
