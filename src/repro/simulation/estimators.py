"""Model-agreement estimators: does the simulator match the propositions?

The Monte-Carlo engine and the analytical expectations describe the same
stochastic process, so for any ``(W, sigma1, sigma2)`` the sample means
must match Propositions 1-5 within sampling noise.  This module wraps
that check: it simulates a batch, computes the exact expectations, and
reports standardised deviations (z-scores) for both time and energy.

These checks are the validation backbone of the substitution argument
in DESIGN.md (we replaced the authors' real platforms by a simulator —
this is the evidence the simulator is faithful to the model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import exact as silent_exact
from ..errors.combined import CombinedErrors
from ..errors.models import ErrorModel
from ..exceptions import InvalidParameterError
from ..failstop import exact as combined_exact
from ..platforms.configuration import Configuration
from ..schedules.base import SpeedSchedule, TwoSpeed
from ..schedules.evaluator import evaluate_schedule
from .engine import PatternSimulator
from .outcomes import BatchSummary

__all__ = ["AgreementReport", "check_agreement"]


@dataclass(frozen=True)
class AgreementReport:
    """Monte-Carlo vs analytical comparison for one pattern setting.

    ``sigma1``/``sigma2`` are the first two attempt speeds; for runs
    driven by a general policy the full per-attempt map is carried in
    ``schedule`` (``None`` for legacy two-speed runs).
    """

    work: float
    sigma1: float
    sigma2: float
    n: int
    expected_time: float
    expected_energy: float
    summary: BatchSummary
    schedule: SpeedSchedule | None = None

    @property
    def time_zscore(self) -> float:
        """Standardised deviation of the sample mean time."""
        return self.summary.time_zscore(self.expected_time)

    @property
    def energy_zscore(self) -> float:
        """Standardised deviation of the sample mean energy."""
        return self.summary.energy_zscore(self.expected_energy)

    @property
    def max_abs_zscore(self) -> float:
        """The worse of the two deviations (agreement gate value)."""
        return max(abs(self.time_zscore), abs(self.energy_zscore))

    def agrees(self, z_threshold: float = 4.0) -> bool:
        """True when both means lie within ``z_threshold`` standard errors.

        The default 4-sigma gate gives a per-check false-alarm rate of
        ~6e-5, low enough to run hundreds of checks in CI without
        flaking while still catching any real model/simulator mismatch
        (a faithful pair agrees at z ~ 1).
        """
        return self.max_abs_zscore <= z_threshold


def check_agreement(
    cfg: Configuration,
    work: float,
    sigma1: float | None = None,
    sigma2: float | None = None,
    *,
    schedule: SpeedSchedule | None = None,
    errors: CombinedErrors | ErrorModel | None = None,
    n: int = 20_000,
    rng: np.random.Generator | int | None = None,
) -> AgreementReport:
    """Simulate a batch and compare against the exact expectations.

    Uses Propositions 2/3 when ``errors`` is ``None`` or silent-only,
    the combined closed forms otherwise, and the general schedule
    evaluator when a per-attempt ``schedule`` is given (exclusive with
    ``sigma1``/``sigma2``).  A renewal :class:`ErrorModel`
    (Weibull/Gamma/trace arrivals) is validated against the schedule
    evaluator's renewal primitives — the exponential closed forms do
    not apply to it.
    """
    if schedule is not None:
        if sigma1 is not None or sigma2 is not None:
            raise InvalidParameterError(
                "pass either schedule= or sigma1/sigma2, not both"
            )
        sim = PatternSimulator(cfg, errors=errors, rng=rng)
        batch = sim.run(work=work, schedule=schedule, n=n)
        eff_errors = sim.errors
        expectation = evaluate_schedule(cfg, schedule, work, errors=eff_errors)
        return AgreementReport(
            work=work,
            sigma1=schedule.speed_for_attempt(1),
            sigma2=schedule.speed_for_attempt(2),
            n=n,
            expected_time=float(expectation.time),
            expected_energy=float(expectation.energy),
            summary=batch.summary(),
            schedule=schedule,
        )
    if sigma1 is None:
        raise InvalidParameterError("sigma1 is required without a schedule")
    if sigma2 is None:
        sigma2 = sigma1
    sim = PatternSimulator(cfg, errors=errors, rng=rng)
    batch = sim.run(work=work, sigma1=sigma1, sigma2=sigma2, n=n)
    eff_errors = sim.errors
    if isinstance(eff_errors, ErrorModel):
        # Non-memoryless model (the simulator collapses memoryless ones
        # to CombinedErrors): the two-speed closed forms assume
        # exponential arrivals, so the expectation comes from the
        # schedule evaluator's renewal primitives instead.
        expectation = evaluate_schedule(
            cfg, TwoSpeed(sigma1, sigma2), work, errors=eff_errors
        )
        return AgreementReport(
            work=work,
            sigma1=sigma1,
            sigma2=sigma2,
            n=n,
            expected_time=float(expectation.time),
            expected_energy=float(expectation.energy),
            summary=batch.summary(),
        )
    if eff_errors.failstop_fraction == 0.0:
        # Silent-only: Props 2/3 with the model's silent rate.
        cfg_eff = cfg.with_error_rate(eff_errors.silent_rate)
        t_exp = silent_exact.expected_time(cfg_eff, work, sigma1, sigma2)
        e_exp = silent_exact.expected_energy(cfg_eff, work, sigma1, sigma2)
    else:
        t_exp = combined_exact.expected_time(cfg, eff_errors, work, sigma1, sigma2)
        e_exp = combined_exact.expected_energy(cfg, eff_errors, work, sigma1, sigma2)
    return AgreementReport(
        work=work,
        sigma1=sigma1,
        sigma2=sigma2,
        n=n,
        expected_time=t_exp,
        expected_energy=e_exp,
        summary=batch.summary(),
    )
