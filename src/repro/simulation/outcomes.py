"""Result containers for Monte-Carlo pattern simulations."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from ..exceptions import InvalidParameterError

__all__ = ["PatternBatch", "BatchSummary"]


@dataclass(frozen=True)
class PatternBatch:
    """Per-sample outcomes of ``n`` independent pattern executions.

    All arrays have the same length ``n`` (one entry per simulated
    pattern):

    Attributes
    ----------
    times:
        Wall-clock seconds until the pattern's checkpoint commits.
    energies:
        Millijoules consumed until the checkpoint commits.
    attempts:
        Total number of executions (1 = clean run, 2 = one re-execution…).
    failstop_errors:
        Count of fail-stop interruptions suffered.
    silent_errors:
        Count of silent corruptions caught by a verification (a silent
        error masked by a fail-stop interruption in the same attempt is
        not counted — the attempt is charged to the fail-stop error,
        matching the branch structure of the paper's recursion (8)).
    """

    times: np.ndarray
    energies: np.ndarray
    attempts: np.ndarray
    failstop_errors: np.ndarray
    silent_errors: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.times)
        for name in ("energies", "attempts", "failstop_errors", "silent_errors"):
            if len(getattr(self, name)) != n:
                raise InvalidParameterError(f"{name} must have the same length as times")

    @property
    def size(self) -> int:
        """Number of simulated patterns."""
        return int(len(self.times))

    def summary(self) -> "BatchSummary":
        """Mean/sem summary for model-agreement checks."""
        return BatchSummary.from_batch(self)


@dataclass(frozen=True)
class BatchSummary:
    """Sample means with standard errors for a :class:`PatternBatch`."""

    n: int
    mean_time: float
    sem_time: float
    mean_energy: float
    sem_energy: float
    mean_attempts: float
    mean_reexecutions: float
    total_failstop: int
    total_silent: int

    @classmethod
    def from_batch(cls, batch: PatternBatch) -> "BatchSummary":
        n = batch.size
        if n < 2:
            raise InvalidParameterError("need at least 2 samples to estimate a standard error")
        sqrt_n = math.sqrt(n)
        return cls(
            n=n,
            mean_time=float(np.mean(batch.times)),
            sem_time=float(np.std(batch.times, ddof=1) / sqrt_n),
            mean_energy=float(np.mean(batch.energies)),
            sem_energy=float(np.std(batch.energies, ddof=1) / sqrt_n),
            mean_attempts=float(np.mean(batch.attempts)),
            mean_reexecutions=float(np.mean(batch.attempts - 1)),
            total_failstop=int(np.sum(batch.failstop_errors)),
            total_silent=int(np.sum(batch.silent_errors)),
        )

    def _zscore(self, mean: float, expected: float, sem: float) -> float:
        """``(mean - expected) / sem``, zero-variance batches handled.

        A (numerically) zero ``sem`` means every sample was identical —
        typically a batch that observed *no failures* at a large-MTBF
        operating point (easy to hit with renewal models whose CDF is
        tiny at the attempt window).  The z-test is then inapplicable:
        dividing would raise ZeroDivisionError on an exact zero, or
        standardise against the ~1e-16-relative summation noise
        ``np.std`` leaves on identical samples.  Instead the deviation
        is judged against what *unobserved* failures could explain:
        zero failures in ``n`` samples bounds the per-pattern failure
        probability at ~3/n (the rule of three), and the expectation's
        failure-weighted correction is of that relative order — within
        ``30/n`` relative the batch carries no evidence against the
        model (z = 0), beyond it the model is genuinely off the
        deterministic no-failure outcome (z = +-inf, fail loudly).
        """
        dev = mean - expected
        scale = max(abs(mean), abs(expected))
        if sem <= 1e-12 * scale:
            if abs(dev) <= scale * 30.0 / self.n:
                return 0.0
            return math.copysign(math.inf, dev)
        return dev / sem

    def time_zscore(self, expected: float) -> float:
        """Standardised deviation of the sample mean time from ``expected``."""
        return self._zscore(self.mean_time, expected, self.sem_time)

    def energy_zscore(self, expected: float) -> float:
        """Standardised deviation of the sample mean energy from ``expected``."""
        return self._zscore(self.mean_energy, expected, self.sem_energy)

    def time_ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean time."""
        h = 1.959963984540054 * self.sem_time
        return (self.mean_time - h, self.mean_time + h)

    def energy_ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean energy."""
        h = 1.959963984540054 * self.sem_energy
        return (self.mean_energy - h, self.mean_energy + h)
