"""Full-application simulation with an event trace.

The paper treats a single pattern in expectation and multiplies by
``W_base / W`` (Section 2.3).  This module simulates the *whole*
divisible-load application pattern by pattern, producing the event
timeline of Figure 1: execution segments, fail-stop interruptions,
silent-error detections at verifications, recoveries and checkpoints.

Useful for (a) demonstrating the execution model concretely (the
Figure-1 scenarios appear verbatim in the trace), and (b) validating the
``T_total ~ (T(W)/W) * W_base`` extrapolation on finite applications.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from ..errors.combined import CombinedErrors
from ..errors.models import ErrorModel, collapse_memoryless
from ..exceptions import ConvergenceError
from ..platforms.configuration import Configuration
from ..quantities import require_positive

__all__ = ["EventKind", "TraceEvent", "ApplicationResult", "ApplicationSimulator"]

_MAX_ATTEMPTS_PER_PATTERN = 100_000


class EventKind(enum.Enum):
    """Kinds of timeline events (the segments of Figure 1)."""

    EXECUTE = "execute"          # a full W/sigma computation segment
    PARTIAL_EXECUTE = "partial"  # computation cut short by a fail-stop error
    VERIFY = "verify"            # the end-of-pattern verification
    SILENT_DETECTED = "silent"   # verification failed: silent error caught
    FAILSTOP = "failstop"        # fail-stop interruption (zero duration marker)
    RECOVER = "recover"          # rollback to the last checkpoint
    CHECKPOINT = "checkpoint"    # verified checkpoint committed


@dataclass(frozen=True)
class TraceEvent:
    """One timeline segment.

    ``speed`` is the execution speed for CPU segments and ``0.0`` for
    I/O segments and markers; markers (FAILSTOP / SILENT_DETECTED) have
    zero duration.
    """

    kind: EventKind
    start: float
    duration: float
    speed: float
    pattern_index: int
    attempt: int

    @property
    def end(self) -> float:
        """``start + duration``."""
        return self.start + self.duration


@dataclass(frozen=True)
class ApplicationResult:
    """Outcome of one full application run."""

    total_time: float
    total_energy: float
    num_patterns: int
    num_failstop: int
    num_silent: int
    events: tuple[TraceEvent, ...] = field(repr=False)

    @property
    def num_errors(self) -> int:
        """Total errors suffered across the run."""
        return self.num_failstop + self.num_silent

    def events_of(self, kind: EventKind) -> tuple[TraceEvent, ...]:
        """All events of one kind, in timeline order."""
        return tuple(e for e in self.events if e.kind is kind)


class ApplicationSimulator:
    """Simulate a divisible-load application of ``total_work`` work units.

    The work is split into ``ceil(total_work / work)`` patterns; the last
    pattern may be smaller.  Each pattern follows the Section-2.2
    execution model (first attempt at ``sigma1``, re-executions at
    ``sigma2``).

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> sim = ApplicationSimulator(get_configuration("hera-xscale"), rng=7)
    >>> res = sim.run(total_work=20_000.0, work=2764.0, sigma1=0.4)
    >>> res.num_patterns
    8
    """

    def __init__(
        self,
        cfg: Configuration,
        errors: CombinedErrors | ErrorModel | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        self.cfg = cfg
        if errors is None:
            errors = CombinedErrors(total_rate=cfg.lam, failstop_fraction=0.0)
        # Memoryless models collapse to the legacy split: the
        # exponential sampling path (and its RNG stream) stays exactly
        # the legacy one.
        self.errors = collapse_memoryless(errors)
        if isinstance(rng, np.random.Generator):
            self.rng = rng
        else:
            self.rng = np.random.default_rng(rng)

    # ------------------------------------------------------------------
    def run(
        self,
        total_work: float,
        work: float,
        sigma1: float,
        sigma2: float | None = None,
        *,
        record_events: bool = True,
    ) -> ApplicationResult:
        """Run the application to completion and return the result.

        Set ``record_events=False`` for long runs where only the totals
        matter (the trace can dominate memory for millions of patterns).
        """
        require_positive(total_work, "total_work")
        require_positive(work, "work")
        require_positive(sigma1, "sigma1")
        if sigma2 is None:
            sigma2 = sigma1
        require_positive(sigma2, "sigma2")

        cfg = self.cfg
        # Per-attempt samplers, chosen by model type up front.  The
        # silent draw happens only on attempts a fail-stop error did
        # not pre-empt — both for the model semantics and to keep the
        # legacy exponential RNG stream (and its seeded traces) exactly
        # as before.  A sampler returns the interruption time, or
        # +inf when the attempt's window survives.
        if isinstance(self.errors, ErrorModel):
            # Renewal branch, mirroring PatternSimulator: fresh
            # inter-arrival per attempt; <= window test to match the
            # model CDF's P(X <= t) convention at trace atoms.
            fs_proc = self.errors.failstop_arrivals
            sil_proc = self.errors.silent_arrivals

            def sample_fail(window: float) -> float:
                if fs_proc is None:
                    return math.inf
                t_fail = float(fs_proc.sample_interarrivals(self.rng, 1)[0])
                return t_fail if t_fail <= window else math.inf

            def sample_silent(exec_span: float) -> bool:
                return sil_proc is not None and self.rng.random() < float(
                    sil_proc.failure_probability(exec_span)
                )

        else:
            lam_f = self.errors.failstop_rate
            lam_s = self.errors.silent_rate

            def sample_fail(window: float) -> float:
                t_fail = (
                    self.rng.exponential(scale=1.0 / lam_f) if lam_f > 0 else math.inf
                )
                return t_fail if t_fail < window else math.inf

            def sample_silent(exec_span: float) -> bool:
                return (
                    lam_s > 0
                    and self.rng.random() < -np.expm1(-lam_s * exec_span)
                )

        pm = cfg.power
        p_io = pm.io_total_power()
        V, R, C = cfg.verification_time, cfg.recovery_time, cfg.checkpoint_time

        num_patterns = math.ceil(total_work / work)
        t = 0.0
        energy = 0.0
        n_failstop = 0
        n_silent = 0
        events: list[TraceEvent] = []

        def emit(kind: EventKind, duration: float, speed: float, p: int, a: int) -> None:
            nonlocal t, energy
            if record_events:
                events.append(
                    TraceEvent(kind=kind, start=t, duration=duration, speed=speed,
                               pattern_index=p, attempt=a)
                )
            t += duration
            if kind in (EventKind.EXECUTE, EventKind.PARTIAL_EXECUTE, EventKind.VERIFY):
                energy += duration * pm.compute_power(speed)
            elif kind in (EventKind.RECOVER, EventKind.CHECKPOINT):
                energy += duration * p_io

        for p in range(num_patterns):
            w = min(work, total_work - p * work)
            attempt = 0
            while True:
                attempt += 1
                if attempt > _MAX_ATTEMPTS_PER_PATTERN:  # pragma: no cover
                    raise ConvergenceError(
                        f"pattern {p} failed to complete within "
                        f"{_MAX_ATTEMPTS_PER_PATTERN} attempts"
                    )
                speed = sigma1 if attempt == 1 else sigma2
                exec_span = w / speed
                verify_span = V / speed
                window = exec_span + verify_span

                t_fail = sample_fail(window)
                if math.isfinite(t_fail):
                    # Fail-stop interruption mid-computation or mid-verify.
                    n_failstop += 1
                    emit(EventKind.PARTIAL_EXECUTE, t_fail, speed, p, attempt)
                    emit(EventKind.FAILSTOP, 0.0, 0.0, p, attempt)
                    emit(EventKind.RECOVER, R, 0.0, p, attempt)
                    continue

                silent = sample_silent(exec_span)
                emit(EventKind.EXECUTE, exec_span, speed, p, attempt)
                emit(EventKind.VERIFY, verify_span, speed, p, attempt)
                if silent:
                    n_silent += 1
                    emit(EventKind.SILENT_DETECTED, 0.0, 0.0, p, attempt)
                    emit(EventKind.RECOVER, R, 0.0, p, attempt)
                    continue
                emit(EventKind.CHECKPOINT, C, 0.0, p, attempt)
                break

        return ApplicationResult(
            total_time=t,
            total_energy=energy,
            num_patterns=num_patterns,
            num_failstop=n_failstop,
            num_silent=n_silent,
            events=tuple(events),
        )
