"""Unit conventions and validation helpers shared across the library.

Unit conventions (see DESIGN.md §5)
-----------------------------------
* **Work** is measured in seconds-at-full-speed: executing ``w`` units of
  work at speed ``sigma`` takes ``w / sigma`` seconds.  The verification
  cost ``V`` is work-like (it scales with ``1/sigma``), whereas the
  checkpoint ``C`` and recovery ``R`` are plain wall-clock seconds (I/O
  does not speed up with the CPU clock).
* **Speeds** are dimensionless, normalised to the processor's maximum
  (``0 < sigma <= 1`` for the paper's processors, although the model
  itself accepts any positive speed).
* **Power** is in milliwatts and **energy** in millijoules, matching the
  processor table of the paper (Table 2).
* Error rates ``lambda`` are per second; the platform MTBF is ``1/lambda``.

The helpers below centralise argument validation so that every public
constructor raises :class:`repro.exceptions.InvalidParameterError` with a
consistent message instead of failing deep inside NumPy.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from typing import TypeAlias

import numpy as np
import numpy.typing as npt

from .exceptions import InvalidParameterError

__all__ = [
    "FloatArray",
    "ScalarOrArray",
    "require_positive",
    "require_nonnegative",
    "require_probability",
    "require_speed",
    "require_speed_set",
    "as_float_array",
    "is_scalar",
    "fmt_round_trip",
]

#: A float64 NumPy array — the element type every kernel computes in.
FloatArray: TypeAlias = npt.NDArray[np.float64]

#: The broadcastable in/out type of the model functions: a scalar input
#: yields a scalar result, an array input yields an elementwise array
#: (see :func:`as_float_array` / :func:`is_scalar`).
ScalarOrArray: TypeAlias = "float | FloatArray"


def fmt_round_trip(value: float) -> str:
    """Compact *round-tripping* float formatting for spec strings.

    ``%g`` keeps clean values clean (``0.4``, ``1``); when its 6
    significant digits would lose the value (e.g. the ``0.6000...01``
    speeds a geometric ramp produces, or a derived Weibull scale), fall
    back to ``repr`` so ``float(fmt_round_trip(x)) == x`` always holds.
    The single formatter behind both the schedule and the error-model
    spec grammars — their round-trip guarantees must stay in lockstep.
    """
    s = f"{value:g}"
    return s if float(s) == value else repr(value)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite, strictly positive float.

    Returns the value coerced to ``float`` so callers can write
    ``self.rate = require_positive(rate, "rate")``.
    """
    v = float(value)
    if not math.isfinite(v) or v <= 0.0:
        raise InvalidParameterError(f"{name} must be finite and > 0, got {value!r}")
    return v


def require_nonnegative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite float >= 0 and return it."""
    v = float(value)
    if not math.isfinite(v) or v < 0.0:
        raise InvalidParameterError(f"{name} must be finite and >= 0, got {value!r}")
    return v


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    v = float(value)
    if not math.isfinite(v) or not 0.0 <= v <= 1.0:
        raise InvalidParameterError(f"{name} must lie in [0, 1], got {value!r}")
    return v


def require_speed(value: float, name: str = "speed") -> float:
    """Validate a DVFS speed: finite and strictly positive.

    Speeds above 1 are permitted by the model (only the paper's catalog
    normalises to 1); zero or negative speeds would make ``W/sigma``
    meaningless and are rejected.
    """
    return require_positive(value, name)


def require_speed_set(speeds: Iterable[float]) -> tuple[float, ...]:
    """Validate and canonicalise a DVFS speed set.

    The set must be non-empty, every member must be a valid speed, and
    duplicates are rejected (a duplicated speed would silently double the
    solver's O(K^2) work and suggests a typo in a catalog entry).  The
    result is returned sorted ascending, which the solvers rely on when
    reporting "lowest/highest" speeds.
    """
    canon = tuple(sorted(require_speed(s, "every speed in the set") for s in speeds))
    if not canon:
        raise InvalidParameterError("the DVFS speed set must not be empty")
    if len(set(canon)) != len(canon):
        raise InvalidParameterError(f"duplicate speeds in DVFS set: {canon!r}")
    return canon


def as_float_array(value: npt.ArrayLike) -> FloatArray:
    """Coerce scalars/sequences to a float64 ndarray without copying arrays.

    Model functions accept either a scalar ``W`` or an array of pattern
    sizes; this helper makes them uniformly array-valued internally while
    :func:`is_scalar` lets the public wrappers return plain floats for
    scalar inputs.
    """
    return np.asarray(value, dtype=np.float64)


def is_scalar(value: npt.ArrayLike) -> bool:
    """True when ``value`` is a Python/NumPy scalar (0-d) input."""
    return np.ndim(value) == 0
