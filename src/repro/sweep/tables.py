"""The Section-4.2 speed-pair tables.

For a configuration and bound ``rho``, the paper tabulates, for every
first speed ``sigma1``: the best re-execution speed ``sigma2``, the
optimal pattern size ``Wopt``, and the energy overhead — with "-" where
no ``sigma2`` makes ``sigma1`` feasible, and the overall best pair in
bold.  :func:`speed_pair_table` regenerates exactly those rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.solution import BiCritSolution, PatternSolution
from ..core.solver import solve_bicrit
from ..exceptions import InfeasibleBoundError
from ..platforms.configuration import Configuration

__all__ = ["TableRow", "SpeedPairTable", "speed_pair_table", "infeasible_table"]


@dataclass(frozen=True)
class TableRow:
    """One row of a Section-4.2 table (one first speed).

    ``solution`` is ``None`` for the "-" rows (no feasible ``sigma2``);
    ``is_best`` marks the paper's bold row.
    """

    sigma1: float
    solution: PatternSolution | None
    is_best: bool

    @property
    def feasible(self) -> bool:
        """True when this first speed admits a feasible re-execution speed."""
        return self.solution is not None

    @property
    def best_sigma2(self) -> float | None:
        """The energy-minimal re-execution speed, or ``None``."""
        return self.solution.sigma2 if self.solution else None

    @property
    def work(self) -> float | None:
        """``Wopt`` for the row's best pair, or ``None``."""
        return self.solution.work if self.solution else None

    @property
    def energy_overhead(self) -> float | None:
        """Energy overhead for the row's best pair, or ``None``."""
        return self.solution.energy_overhead if self.solution else None


@dataclass(frozen=True)
class SpeedPairTable:
    """A full Section-4.2 table: one row per first speed."""

    config_name: str
    rho: float
    rows: tuple[TableRow, ...]

    @property
    def best_row(self) -> TableRow | None:
        """The bold row (overall energy-minimal pair), if any is feasible."""
        for row in self.rows:
            if row.is_best:
                return row
        return None

    def row_for(self, sigma1: float) -> TableRow:
        """The row for a given first speed.

        Raises
        ------
        KeyError
            If ``sigma1`` is not a row of this table.
        """
        for row in self.rows:
            if row.sigma1 == sigma1:
                return row
        raise KeyError(f"no row for sigma1={sigma1!r}")


def infeasible_table(cfg: Configuration, rho: float) -> SpeedPairTable:
    """The all-dash table of an infeasible bound (every row "-")."""
    rows = tuple(
        TableRow(sigma1=s1, solution=None, is_best=False) for s1 in cfg.speeds
    )
    return SpeedPairTable(config_name=cfg.name, rho=rho, rows=rows)


def speed_pair_table(
    cfg: Configuration,
    rho: float,
    *,
    solution: BiCritSolution | None = None,
) -> SpeedPairTable:
    """Regenerate one Section-4.2 table for ``cfg`` under ``rho``.

    The table exists even when the whole problem is infeasible (all rows
    are then "-" rows), matching how the paper's tables degrade as
    ``rho`` tightens.

    ``solution`` lets callers that already solved the scenario through
    :mod:`repro.api` (e.g. the CLI) pass the ``BiCritSolution`` in
    instead of re-solving; by default the solve is delegated to the
    registry via :func:`repro.core.solver.solve_bicrit`.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> t = speed_pair_table(get_configuration("hera-xscale"), rho=3.0)
    >>> t.row_for(0.15).feasible
    False
    >>> t.best_row.sigma1
    0.4
    """
    if solution is None:
        try:
            solution = solve_bicrit(cfg, rho)
        except InfeasibleBoundError:
            return infeasible_table(cfg, rho)

    best = solution.best
    rows = []
    for s1 in cfg.speeds:
        row_sol = solution.best_for_sigma1(s1)
        rows.append(
            TableRow(
                sigma1=s1,
                solution=row_sol,
                is_best=row_sol is not None and row_sol.speed_pair == best.speed_pair,
            )
        )
    return SpeedPairTable(config_name=cfg.name, rho=rho, rows=tuple(rows))
