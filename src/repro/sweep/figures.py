"""Figure specifications: which sweep regenerates which paper figure.

Figures 2-7 are the six parameter sweeps (``C``, ``V``, ``lambda``,
``rho``, ``Pidle``, ``Pio``) for Atlas/Crusoe; Figures 8-14 repeat all
six panels for the remaining seven configurations.  Each spec knows its
configuration, its panels, and the axis ranges (the paper narrows the
``lambda`` axis to 1e-3 for the two low-rate Coastal platforms).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..platforms.catalog import get_configuration
from ..platforms.configuration import Configuration
from .axes import SweepAxis, axis_by_name
from .runner import SweepSeries, run_sweep

__all__ = ["FigureSpec", "FIGURES", "figure_spec", "run_figure", "run_panel"]

#: Default performance bound of the experiments (Section 4.1).
DEFAULT_RHO = 3.0

#: Panel order used by every multi-panel figure of the paper.
PANEL_ORDER: tuple[str, ...] = ("C", "V", "lambda", "rho", "Pidle", "Pio")


@dataclass(frozen=True)
class FigureSpec:
    """One paper figure: a configuration plus one or more axis panels."""

    figure_id: str
    config_name: str
    panels: tuple[str, ...]
    lambda_max: float
    description: str

    def configuration(self) -> Configuration:
        """Resolve the spec's configuration from the catalog."""
        return get_configuration(self.config_name)

    def axis(self, panel: str, n: int | None = None) -> SweepAxis:
        """Build the axis for one panel, honouring the figure's
        ``lambda`` range; ``n`` overrides the default resolution."""
        if panel not in self.panels:
            raise KeyError(f"{self.figure_id} has no panel {panel!r}")
        kwargs: dict = {}
        if n is not None:
            kwargs["n"] = n
        if panel == "lambda":
            kwargs["hi"] = self.lambda_max
        return axis_by_name(panel, **kwargs)


def _spec(
    fid: str,
    config: str,
    lambda_max: float,
    desc: str,
    panels: Sequence[str] = PANEL_ORDER,
) -> FigureSpec:
    return FigureSpec(
        figure_id=fid,
        config_name=config,
        panels=tuple(panels),
        lambda_max=lambda_max,
        description=desc,
    )


#: Figure-id -> spec, covering every data figure of the paper.  Figures
#: 2-7 are the six individual Atlas/Crusoe panels; 8-14 bundle all six
#: panels per remaining configuration.
FIGURES: dict[str, FigureSpec] = {
    "fig2": _spec("fig2", "atlas-crusoe", 1e-2, "Atlas/Crusoe vs C", ("C",)),
    "fig3": _spec("fig3", "atlas-crusoe", 1e-2, "Atlas/Crusoe vs V", ("V",)),
    "fig4": _spec("fig4", "atlas-crusoe", 1e-2, "Atlas/Crusoe vs lambda", ("lambda",)),
    "fig5": _spec("fig5", "atlas-crusoe", 1e-2, "Atlas/Crusoe vs rho", ("rho",)),
    "fig6": _spec("fig6", "atlas-crusoe", 1e-2, "Atlas/Crusoe vs Pidle", ("Pidle",)),
    "fig7": _spec("fig7", "atlas-crusoe", 1e-2, "Atlas/Crusoe vs Pio", ("Pio",)),
    "fig8": _spec("fig8", "hera-xscale", 1e-2, "Hera/XScale, all six sweeps"),
    "fig9": _spec("fig9", "atlas-xscale", 1e-2, "Atlas/XScale, all six sweeps"),
    "fig10": _spec("fig10", "coastal-xscale", 1e-3, "Coastal/XScale, all six sweeps"),
    "fig11": _spec("fig11", "coastal-ssd-xscale", 1e-3, "Coastal SSD/XScale, all six sweeps"),
    "fig12": _spec("fig12", "hera-crusoe", 1e-2, "Hera/Crusoe, all six sweeps"),
    "fig13": _spec("fig13", "coastal-crusoe", 1e-3, "Coastal/Crusoe, all six sweeps"),
    "fig14": _spec("fig14", "coastal-ssd-crusoe", 1e-3, "Coastal SSD/Crusoe, all six sweeps"),
}


def figure_spec(figure_id: str) -> FigureSpec:
    """Look a figure spec up by id (``"fig2"`` .. ``"fig14"``)."""
    try:
        return FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; valid ids: {', '.join(FIGURES)}"
        ) from None


def run_panel(
    spec: FigureSpec,
    panel: str,
    *,
    rho: float = DEFAULT_RHO,
    n: int | None = None,
    backend: str | None = None,
) -> SweepSeries:
    """Run one panel of a figure and return its series.

    ``backend`` forwards a :mod:`repro.api` registry name to the sweep
    (e.g. ``"grid"`` for the vectorised batch path).
    """
    cfg = spec.configuration()
    return run_sweep(cfg, rho, spec.axis(panel, n=n), backend=backend)


def run_figure(
    figure_id: str,
    *,
    rho: float = DEFAULT_RHO,
    n: int | None = None,
    backend: str | None = None,
) -> dict[str, SweepSeries]:
    """Run every panel of a figure; returns ``panel -> SweepSeries``.

    ``n`` lowers the per-panel resolution (useful for quick looks and
    benchmarks; the defaults match the paper's visual resolution).
    ``backend`` forwards a :mod:`repro.api` registry name to the
    per-panel sweeps.
    """
    spec = figure_spec(figure_id)
    return {
        panel: run_panel(spec, panel, rho=rho, n=n, backend=backend)
        for panel in spec.panels
    }
