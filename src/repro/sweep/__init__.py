"""Experiment harness: sweep axes, runner, tables and figure specs."""

from .axes import (
    AXIS_NAMES,
    SweepAxis,
    axis_by_name,
    checkpoint_axis,
    error_rate_axis,
    idle_power_axis,
    io_power_axis,
    rho_axis,
    verification_axis,
)
from .figures import (
    DEFAULT_RHO,
    FIGURES,
    FigureSpec,
    figure_spec,
    run_figure,
    run_panel,
)
from .fraction import FractionSweep, sweep_failstop_fraction
from .runner import SweepPoint, SweepSeries, run_sweep
from .tables import SpeedPairTable, TableRow, speed_pair_table
from .vectorized import (
    GridSolution,
    ScheduleSweepSolution,
    run_schedule_sweep_fast,
    run_sweep_fast,
    solve_bicrit_grid,
)

__all__ = [
    "SweepAxis",
    "AXIS_NAMES",
    "axis_by_name",
    "checkpoint_axis",
    "verification_axis",
    "error_rate_axis",
    "rho_axis",
    "idle_power_axis",
    "io_power_axis",
    "SweepPoint",
    "SweepSeries",
    "run_sweep",
    "TableRow",
    "SpeedPairTable",
    "speed_pair_table",
    "FigureSpec",
    "FIGURES",
    "DEFAULT_RHO",
    "figure_spec",
    "run_figure",
    "run_panel",
    "FractionSweep",
    "sweep_failstop_fraction",
    "GridSolution",
    "solve_bicrit_grid",
    "run_sweep_fast",
    "ScheduleSweepSolution",
    "run_schedule_sweep_fast",
]
