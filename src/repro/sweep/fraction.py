"""Fail-stop-fraction sweeps — the Section-5 study the paper leaves open.

Section 5 parameterises the error mix by the fail-stop fraction ``f``
but only analyses limiting cases (the first-order validity window, the
``f = 1`` Theorem 2).  With the numeric combined solver
(:mod:`repro.failstop.solver`) the *full* curve "optimal solution vs
``f``" is computable; this module sweeps it, producing the natural
companion figure to the paper's future-work section.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..failstop.solver import CombinedSolution
from ..platforms.configuration import Configuration

__all__ = ["FractionSweep", "sweep_failstop_fraction"]


@dataclass(frozen=True)
class FractionSweep:
    """Optimal combined-error solutions across fail-stop fractions."""

    config_name: str
    rho: float
    total_rate: float
    fractions: np.ndarray
    solutions: tuple[CombinedSolution | None, ...] = field(repr=False)

    def __len__(self) -> int:
        return len(self.fractions)

    def _get(self, attr: str) -> np.ndarray:
        return np.array(
            [getattr(s, attr) if s is not None else np.nan for s in self.solutions]
        )

    def sigma1(self) -> np.ndarray:
        """Optimal first speed per fraction (NaN where infeasible)."""
        return self._get("sigma1")

    def sigma2(self) -> np.ndarray:
        """Optimal re-execution speed per fraction."""
        return self._get("sigma2")

    def work(self) -> np.ndarray:
        """Optimal pattern size per fraction."""
        return self._get("work")

    def energy_overhead(self) -> np.ndarray:
        """Optimal energy overhead per fraction."""
        return self._get("energy_overhead")

    def time_overhead(self) -> np.ndarray:
        """Achieved time overhead per fraction."""
        return self._get("time_overhead")


def sweep_failstop_fraction(
    cfg: Configuration,
    rho: float,
    *,
    total_rate: float | None = None,
    fractions: np.ndarray | None = None,
    processes: int | None = None,
) -> FractionSweep:
    """Solve the combined-error BiCrit across fail-stop fractions.

    ``total_rate`` defaults to the configuration's own rate; ``fractions``
    defaults to 11 points over [0, 1].  Infeasible fractions (none, for
    sane bounds — feasibility barely depends on ``f``) yield ``None``
    entries.

    .. note:: Legacy-shaped wrapper.  Builds one ``combined``-mode
       :class:`repro.api.Scenario` per fraction and compiles them into
       a :class:`repro.api.Experiment` plan — which deduplicates
       repeated fractions, memoises repeated sweeps and, with
       ``processes > 1``, fans the expensive numeric solves out over
       worker processes.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> sw = sweep_failstop_fraction(get_configuration("hera-xscale"), 3.0)
    >>> len(sw)
    11
    """
    from ..api.experiment import Experiment
    from ..api.scenario import Scenario

    if total_rate is None:
        total_rate = cfg.lam
    if fractions is None:
        fractions = np.linspace(0.0, 1.0, 11)
    fractions = np.asarray(fractions, dtype=float)

    experiment = Experiment.from_scenarios(
        (
            Scenario(
                config=cfg,
                rho=rho,
                mode="combined",
                failstop_fraction=float(f),
                error_rate=total_rate,
                label=f"f={f:g}",
            )
            for f in fractions
        ),
        name=f"failstop-fraction:{cfg.name}",
    )
    results = experiment.solve(processes=processes)
    return FractionSweep(
        config_name=cfg.name,
        rho=rho,
        total_rate=total_rate,
        fractions=fractions,
        solutions=tuple(r.raw if r.feasible else None for r in results),
    )
