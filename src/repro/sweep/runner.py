"""Sweep runner: solve BiCrit (two-speed and one-speed) along an axis.

For every axis value the runner solves both the full two-speed problem
and the single-speed baseline, yielding exactly the three series each
paper figure plots:

1. the optimal speeds (``sigma1``, ``sigma2``, and the one-speed
   ``sigma``);
2. the optimal pattern sizes ``Wopt(sigma1, sigma2)`` and
   ``Wopt(sigma, sigma)``;
3. the energy overheads ``E(Wopt,.)/Wopt`` for both solvers.

Infeasible points (e.g. ``rho`` below the minimum feasible bound in the
``rho`` sweep) are kept as ``None`` entries so the series aligns with
the axis values; the array accessors encode them as NaN.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.solution import PatternSolution
from ..platforms.configuration import Configuration
from .axes import SweepAxis

__all__ = ["SweepPoint", "SweepSeries", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Both solver outcomes at one axis value (``None`` = infeasible)."""

    value: float
    two_speed: PatternSolution | None
    single_speed: PatternSolution | None


@dataclass(frozen=True)
class SweepSeries:
    """The full figure data: one :class:`SweepPoint` per axis value.

    Array accessors return NaN at infeasible points, which keeps the
    series plot-ready and comparison-friendly (NaN-propagating).
    """

    config_name: str
    axis_name: str
    axis_label: str
    rho: float
    points: tuple[SweepPoint, ...] = field(repr=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    @property
    def values(self) -> np.ndarray:
        """The axis values."""
        return np.array([p.value for p in self.points])

    def _two(self, attr: str) -> np.ndarray:
        return np.array(
            [getattr(p.two_speed, attr) if p.two_speed else np.nan for p in self.points]
        )

    def _one(self, attr: str) -> np.ndarray:
        return np.array(
            [
                getattr(p.single_speed, attr) if p.single_speed else np.nan
                for p in self.points
            ]
        )

    # -- speed panel ----------------------------------------------------
    def sigma1(self) -> np.ndarray:
        """Two-speed optimal first speed per value."""
        return self._two("sigma1")

    def sigma2(self) -> np.ndarray:
        """Two-speed optimal re-execution speed per value."""
        return self._two("sigma2")

    def sigma_single(self) -> np.ndarray:
        """One-speed optimal speed per value."""
        return self._one("sigma1")

    # -- pattern-size panel ----------------------------------------------
    def work_two(self) -> np.ndarray:
        """``Wopt(sigma1, sigma2)`` per value."""
        return self._two("work")

    def work_single(self) -> np.ndarray:
        """``Wopt(sigma, sigma)`` per value."""
        return self._one("work")

    # -- energy panel ----------------------------------------------------
    def energy_two(self) -> np.ndarray:
        """Two-speed energy overhead per value."""
        return self._two("energy_overhead")

    def energy_single(self) -> np.ndarray:
        """One-speed energy overhead per value."""
        return self._one("energy_overhead")

    # ------------------------------------------------------------------
    def feasible_mask(self) -> np.ndarray:
        """Boolean mask of values where the two-speed problem is feasible."""
        return np.array([p.two_speed is not None for p in self.points])

    def speed_pairs(self) -> list[tuple[float, float] | None]:
        """The optimal ``(sigma1, sigma2)`` per value (``None`` = infeasible)."""
        return [
            (p.two_speed.sigma1, p.two_speed.sigma2) if p.two_speed else None
            for p in self.points
        ]


def run_sweep(
    cfg: Configuration,
    rho: float,
    axis: SweepAxis,
    *,
    backend: str | None = None,
) -> SweepSeries:
    """Solve both problems at every value of ``axis``.

    .. note:: Legacy wrapper.  Delegates to
       ``repro.api.Experiment.over_axis(...).solve()``, compiling the
       two-speed and single-speed scenarios of every axis value into
       one deduplicated plan through the backend registry.  ``backend``
       forwards a registry name (e.g. ``"grid"`` for the vectorised
       batch path); ``None`` uses the scalar ``firstorder`` backend.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> from repro.sweep.axes import checkpoint_axis
    >>> s = run_sweep(get_configuration("atlas-crusoe"), 3.0, checkpoint_axis(n=5))
    >>> len(s)
    5
    """
    from ..api.experiment import Experiment

    experiment = Experiment.over_axis(cfg, rho, axis, modes=("silent", "single-speed"))
    results = experiment.solve(backend=backend)
    points: list[SweepPoint] = []
    for i, value in enumerate(axis.values):
        points.append(
            SweepPoint(
                value=value,
                two_speed=results[2 * i].best,
                single_speed=results[2 * i + 1].best,
            )
        )
    return SweepSeries(
        config_name=cfg.name,
        axis_name=axis.name,
        axis_label=axis.label,
        rho=rho,
        points=tuple(points),
    )
