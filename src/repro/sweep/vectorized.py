"""Vectorised Theorem-1 solver: whole sweeps in a handful of NumPy ops.

The reference sweep path (:mod:`repro.sweep.runner`) solves one
configuration at a time — clear, but Python-loop-bound.  Because the
entire Theorem-1 pipeline (Eq. 2/3 coefficients -> feasibility quadratic
-> We -> clamp -> energy) is closed-form arithmetic, it vectorises
perfectly: this module evaluates *all sweep values x all K^2 speed
pairs at once* on broadcast arrays, then reduces with ``argmin``.

This is the hpc-parallel playbook (vectorise the inner loop, avoid
Python-level per-item work); the equivalence tests pin it bit-for-bit
against the scalar solver and the ablation bench measures the speedup
(typically ~100x on figure-resolution sweeps).

Since PR 3 the same treatment covers *schedule axes*: sweeping many
per-attempt speed policies under one ``(configuration, rho)`` goes
through the batched kernel of :mod:`repro.schedules.vectorized` via
:func:`run_schedule_sweep_fast` (two-speed entries keep the
closed-form fast paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..platforms.configuration import Configuration
from ..quantities import FloatArray, ScalarOrArray
from ..sweep.axes import SweepAxis
from ..exceptions import InvalidParameterError

__all__ = [
    "GridSolution",
    "ScheduleSweepSolution",
    "solve_bicrit_grid",
    "run_sweep_fast",
    "run_schedule_sweep_fast",
]


@dataclass(frozen=True)
class GridSolution:
    """Vectorised solver output: one entry per sweep value.

    All arrays have the sweep's length; NaN marks infeasible values.
    ``*_single`` fields are the diagonal-restricted (one-speed) optimum.
    """

    values: np.ndarray
    sigma1: np.ndarray
    sigma2: np.ndarray
    work: np.ndarray
    energy: np.ndarray
    time: np.ndarray
    sigma_single: np.ndarray = field(repr=False)
    work_single: np.ndarray = field(repr=False)
    energy_single: np.ndarray = field(repr=False)

    def feasible_mask(self) -> np.ndarray:
        """Values where the two-speed problem is feasible."""
        return np.isfinite(self.energy)

    def savings_percent(self) -> np.ndarray:
        """Two-speed saving over the one-speed baseline, per value (%)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return (1.0 - self.energy / self.energy_single) * 100.0


def solve_bicrit_grid(
    *,
    lam: ScalarOrArray,
    checkpoint: ScalarOrArray,
    verification: ScalarOrArray,
    recovery: ScalarOrArray,
    kappa: ScalarOrArray,
    idle_power: ScalarOrArray,
    io_power: ScalarOrArray,
    rho: ScalarOrArray,
    speeds: tuple[float, ...],
) -> GridSolution:
    """Solve BiCrit for arrays of parameters in one broadcast pass.

    Every scalar parameter of the model may instead be a 1-D array of
    length ``n`` (all arrays must share that length; scalars broadcast).
    Returns per-value optima over the ``K x K`` speed-pair grid and over
    its diagonal (the single-speed baseline).
    """
    n = max(
        np.size(a)
        for a in (lam, checkpoint, verification, recovery, kappa, idle_power, io_power, rho)
    )

    def col(a: ScalarOrArray) -> FloatArray:
        # shape (n, 1, 1) for broadcasting against the (K, K) pair grid
        arr = np.broadcast_to(np.asarray(a, dtype=np.float64), (n,))
        return arr.reshape(n, 1, 1)

    lam_, C, V, R = col(lam), col(checkpoint), col(verification), col(recovery)
    kap, p_idle, p_io_dyn, rho_ = col(kappa), col(idle_power), col(io_power), col(rho)

    s = np.asarray(speeds, dtype=np.float64)
    k = s.size
    s1 = s.reshape(1, k, 1)  # first speed varies along axis 1
    s2 = s.reshape(1, 1, k)  # re-execution speed along axis 2

    p1 = kap * s1**3 + p_idle
    p2 = kap * s2**3 + p_idle
    p_io = p_io_dyn + p_idle

    # Eq. (2) time coefficients.
    x_t = 1.0 / s1 + lam_ * (R / s1 + V / (s1 * s2))
    y_t = lam_ / (s1 * s2)
    z_t = C + V / s1

    # Theorem-1 feasibility quadratic.
    b = x_t - rho_
    disc = b * b - 4.0 * y_t * z_t
    feasible = (b <= 0.0) & (disc >= 0.0)
    sq = np.sqrt(np.maximum(disc, 0.0))
    with np.errstate(divide="ignore", invalid="ignore"):
        w_hi = (-b + sq) / (2.0 * y_t)
        w_lo = z_t / (y_t * w_hi)

    # Eq. (3) energy coefficients and Eq. (5) We.
    x_e = p1 / s1 + lam_ * R * p_io / s1 + lam_ * V * p1 / (s1 * s2)
    y_e = lam_ * p2 / (s1 * s2)
    z_e = C * p_io + V * p1 / s1
    with np.errstate(divide="ignore", invalid="ignore"):
        w_e = np.sqrt(z_e / y_e)
        w_opt = np.clip(w_e, w_lo, w_hi)
        energy = x_e + y_e * w_opt + z_e / w_opt
        time = x_t + y_t * w_opt + z_t / w_opt

    energy = np.where(feasible, energy, np.inf)

    def reduce(
        energy_grid: FloatArray, mask: "FloatArray | np.ndarray"
    ) -> tuple[FloatArray, FloatArray, FloatArray, FloatArray, FloatArray]:
        """argmin over the pair grid (optionally masked) per value."""
        e = np.where(mask, energy_grid, np.inf)
        flat = e.reshape(n, -1)
        idx = np.argmin(flat, axis=1)
        best_e = flat[np.arange(n), idx]
        ok = np.isfinite(best_e)
        i1, i2 = np.unravel_index(idx, (k, k))
        out_s1 = np.where(ok, s[i1], np.nan)
        out_s2 = np.where(ok, s[i2], np.nan)
        w = w_opt.reshape(n, -1)[np.arange(n), idx]
        t = time.reshape(n, -1)[np.arange(n), idx]
        return (
            out_s1,
            out_s2,
            np.where(ok, w, np.nan),
            np.where(ok, best_e, np.nan),
            np.where(ok, t, np.nan),
        )

    all_mask = np.ones((1, k, k), dtype=bool)
    diag_mask = np.eye(k, dtype=bool).reshape(1, k, k)
    b1, b2, bw, be, bt = reduce(energy, all_mask)
    d1, _, dw, de, _ = reduce(energy, diag_mask)

    return GridSolution(
        values=np.arange(n, dtype=float),
        sigma1=b1,
        sigma2=b2,
        work=bw,
        energy=be,
        time=bt,
        sigma_single=d1,
        work_single=dw,
        energy_single=de,
    )


def run_sweep_fast(cfg: Configuration, rho: float, axis: SweepAxis) -> GridSolution:
    """Vectorised equivalent of :func:`repro.sweep.runner.run_sweep`.

    .. note:: Legacy wrapper.  Delegates to the ``grid`` backend of
       the :mod:`repro.api` registry, which batches every axis value's
       scenario through one :func:`solve_bicrit_grid` broadcast pass.
       Because the scenarios are materialised with the axis's own
       ``apply`` rule, any axis works here — no per-axis vectorised
       mapping to maintain.  The equivalence tests pin the output
       against the scalar path.
    """
    from ..api.backends import get_backend
    from ..api.scenario import Scenario

    vals = np.asarray(axis.values, dtype=np.float64)
    scenarios = []
    for value in axis.values:
        cfg_v, rho_v = axis.apply(cfg, rho, value)
        scenarios.append(Scenario(config=cfg_v, rho=rho_v))
    results = get_backend("grid").solve_batch(scenarios)
    points = [r.raw for r in results]  # GridPoint per value (NaN = infeasible)
    return GridSolution(
        values=vals,
        sigma1=np.array([p.sigma1 for p in points]),
        sigma2=np.array([p.sigma2 for p in points]),
        work=np.array([p.work for p in points]),
        energy=np.array([p.energy_overhead for p in points]),
        time=np.array([p.time_overhead for p in points]),
        sigma_single=np.array([p.sigma_single for p in points]),
        work_single=np.array([p.work_single for p in points]),
        energy_single=np.array([p.energy_single for p in points]),
    )


@dataclass(frozen=True)
class ScheduleSweepSolution:
    """Vectorised schedule-axis sweep output: one entry per schedule.

    All arrays have the axis's length; NaN marks schedules that cannot
    meet the bound.  ``specs`` carries each policy's spec string in
    axis order (the CSV/plot label).
    """

    specs: tuple[str, ...]
    work: np.ndarray
    energy: np.ndarray
    time: np.ndarray
    rho_min: np.ndarray

    def feasible_mask(self) -> np.ndarray:
        """Schedules that meet the bound."""
        return np.isfinite(self.energy)

    def best_index(self) -> int:
        """Index of the energy-minimal feasible schedule.

        Raises
        ------
        ValueError
            When no schedule on the axis is feasible.
        """
        if not self.feasible_mask().any():
            raise InvalidParameterError("no schedule on the axis meets the bound")
        return int(np.nanargmin(self.energy))


def run_schedule_sweep_fast(
    cfg: Configuration | str,
    rho: float,
    schedules: Sequence,
    *,
    mode: str = "silent",
    failstop_fraction: float | None = None,
    error_rate: float | None = None,
) -> ScheduleSweepSolution:
    """One vectorised pass over a *schedule axis*.

    The schedule-space analogue of :func:`run_sweep_fast`: every entry
    of ``schedules`` (policies or spec strings) is solved for the same
    ``(cfg, rho, error model)`` through the ``schedule-grid`` backend —
    general schedules in one broadcast batch, two-speed entries via the
    closed-form fast paths.
    """
    from ..api.backends import get_backend
    from ..api.scenario import Scenario

    scenarios = [
        Scenario(
            config=cfg,
            rho=rho,
            mode=mode,
            failstop_fraction=failstop_fraction,
            error_rate=error_rate,
            schedule=schedule,
        )
        for schedule in schedules
    ]
    results = get_backend("schedule-grid").solve_batch(scenarios)
    nan = float("nan")
    return ScheduleSweepSolution(
        specs=tuple(sc.schedule.spec() for sc in scenarios),
        work=np.array([r.best.work if r.feasible else nan for r in results]),
        energy=np.array(
            [r.best.energy_overhead if r.feasible else nan for r in results]
        ),
        time=np.array(
            [r.best.time_overhead if r.feasible else nan for r in results]
        ),
        rho_min=np.array(
            [nan if r.feasible else (r.rho_min if r.rho_min is not None else nan)
             for r in results]
        ),
    )
