"""Sweep axes: the six parameters the paper varies (Figures 2-14).

Each axis knows how to apply one value to a ``(Configuration, rho)``
pair: the ``C``, ``V``, ``lambda``, ``Pidle`` and ``Pio`` axes rebuild
the configuration; the ``rho`` axis rebinds the performance bound.

Default ranges follow the paper: cost/power axes span 0..5000 (with the
lone zero replaced where it would degenerate the model — e.g. sweeping
``V`` to 0 is fine while ``C > 0``), ``rho`` spans 1..3.5, and the error
rate is log-spaced from 1e-6 up to 1e-2 (1e-3 for the low-rate Coastal
platforms, matching the paper's axes).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from ..platforms.configuration import Configuration

__all__ = [
    "SweepAxis",
    "checkpoint_axis",
    "verification_axis",
    "error_rate_axis",
    "rho_axis",
    "idle_power_axis",
    "io_power_axis",
    "axis_by_name",
    "AXIS_NAMES",
]


@dataclass(frozen=True)
class SweepAxis:
    """A named parameter axis with values and an application rule.

    ``apply(cfg, rho, value) -> (cfg', rho')`` returns the configuration
    and bound to solve at ``value``.
    """

    name: str
    label: str
    values: tuple[float, ...]
    _apply: Callable[[Configuration, float, float], tuple[Configuration, float]]

    def apply(
        self, cfg: Configuration, rho: float, value: float
    ) -> tuple[Configuration, float]:
        """Materialise the ``(cfg, rho)`` pair for one axis value."""
        return self._apply(cfg, rho, value)

    def __len__(self) -> int:
        return len(self.values)


def _linspace(lo: float, hi: float, n: int) -> tuple[float, ...]:
    return tuple(float(v) for v in np.linspace(lo, hi, n))


def _logspace(lo: float, hi: float, n: int) -> tuple[float, ...]:
    return tuple(float(v) for v in np.logspace(np.log10(lo), np.log10(hi), n))


def checkpoint_axis(lo: float = 50.0, hi: float = 5000.0, n: int = 34) -> SweepAxis:
    """Vary the checkpoint cost ``C`` (with ``R`` tracking ``C``).

    The paper plots from 0; we start at a small positive cost because
    ``C = 0`` with ``V = 0`` would degenerate ``We`` to 0 — every catalog
    platform has ``V > 0`` so 0 *is* admissible there, but a small floor
    keeps the axis safe for arbitrary configurations.
    """
    return SweepAxis(
        name="C",
        label="checkpoint time C (s)",
        values=_linspace(lo, hi, n),
        _apply=lambda cfg, rho, v: (cfg.with_checkpoint_time(v), rho),
    )


def verification_axis(lo: float = 0.0, hi: float = 5000.0, n: int = 34) -> SweepAxis:
    """Vary the verification cost ``V`` (at full speed)."""
    return SweepAxis(
        name="V",
        label="verification time V (s)",
        values=_linspace(lo, hi, n),
        _apply=lambda cfg, rho, v: (cfg.with_verification_time(v), rho),
    )


def error_rate_axis(lo: float = 1e-6, hi: float = 1e-2, n: int = 25) -> SweepAxis:
    """Vary the error rate ``lambda`` on a log scale."""
    return SweepAxis(
        name="lambda",
        label="error rate lambda (1/s)",
        values=_logspace(lo, hi, n),
        _apply=lambda cfg, rho, v: (cfg.with_error_rate(v), rho),
    )


def rho_axis(lo: float = 1.05, hi: float = 3.5, n: int = 50) -> SweepAxis:
    """Vary the performance bound ``rho`` (points below the minimum
    feasible bound simply yield infeasible sweep points)."""
    return SweepAxis(
        name="rho",
        label="performance bound rho",
        values=_linspace(lo, hi, n),
        _apply=lambda cfg, rho, v: (cfg, v),
    )


def idle_power_axis(lo: float = 0.0, hi: float = 5000.0, n: int = 34) -> SweepAxis:
    """Vary the static power ``Pidle`` (mW)."""
    return SweepAxis(
        name="Pidle",
        label="idle power Pidle (mW)",
        values=_linspace(lo, hi, n),
        _apply=lambda cfg, rho, v: (cfg.with_idle_power(v), rho),
    )


def io_power_axis(lo: float = 0.0, hi: float = 5000.0, n: int = 34) -> SweepAxis:
    """Vary the dynamic I/O power ``Pio`` (mW)."""
    return SweepAxis(
        name="Pio",
        label="I/O power Pio (mW)",
        values=_linspace(lo, hi, n),
        _apply=lambda cfg, rho, v: (cfg.with_io_power(v), rho),
    )


#: Axis factories by canonical name (the panel order of Figures 8-14).
_FACTORIES: dict[str, Callable[..., SweepAxis]] = {
    "C": checkpoint_axis,
    "V": verification_axis,
    "lambda": error_rate_axis,
    "rho": rho_axis,
    "Pidle": idle_power_axis,
    "Pio": io_power_axis,
}

AXIS_NAMES: tuple[str, ...] = tuple(_FACTORIES)


def axis_by_name(name: str, **kwargs: object) -> SweepAxis:
    """Build a default axis by canonical name (``C``, ``V``, ``lambda``,
    ``rho``, ``Pidle``, ``Pio``); ``kwargs`` forward to the factory."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown axis {name!r}; valid names: {', '.join(AXIS_NAMES)}"
        ) from None
    return factory(**kwargs)
