"""Combined fail-stop + silent error model (Section 5 of the paper).

Section 5.2 parameterises the two error sources by a *total* rate
``lambda = 1/mu`` and the fraction ``f`` of errors that are fail-stop;
the remaining fraction ``s = 1 - f`` are silent.  The arrival rates are
then ``lambda_f = f * lambda`` and ``lambda_s = s * lambda``, and the two
processes are independent.

Semantics of the two sources (Section 5.1):

* **fail-stop** errors can strike during computation *and* verification
  (exposure window ``(W + V) / sigma``), are detected immediately, and
  interrupt the execution losing ``T_lost`` time;
* **silent** errors strike during computation only (exposure window
  ``W / sigma``) and are detected by the verification at the end of the
  pattern, so the whole ``(W + V)/sigma`` is always paid before recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import InvalidParameterError
from ..quantities import (
    ScalarOrArray,
    as_float_array,
    is_scalar,
    require_positive,
    require_probability,
)
from .exponential import ExponentialErrors, capped_exposure

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .models import ErrorModel

__all__ = ["CombinedErrors"]


@dataclass(frozen=True)
class CombinedErrors:
    """Total error rate split into fail-stop and silent fractions.

    Parameters
    ----------
    total_rate:
        The combined arrival rate ``lambda`` (per second) across both
        sources.
    failstop_fraction:
        ``f`` in [0, 1]: fraction of errors that are fail-stop.  ``f = 0``
        recovers the silent-error-only model of Sections 2-4; ``f = 1``
        is the classical fail-stop setting of Theorem 2.

    Examples
    --------
    >>> m = CombinedErrors(total_rate=1e-4, failstop_fraction=0.25)
    >>> m.failstop_rate, m.silent_rate
    (2.5e-05, 7.5e-05)
    >>> m.silent_only().silent_rate == 1e-4
    True
    """

    total_rate: float
    failstop_fraction: float

    def __post_init__(self) -> None:
        require_positive(self.total_rate, "total_rate")
        require_probability(self.failstop_fraction, "failstop_fraction")

    # ------------------------------------------------------------------
    @property
    def silent_fraction(self) -> float:
        """``s = 1 - f``: fraction of errors that are silent."""
        return 1.0 - self.failstop_fraction

    @property
    def failstop_rate(self) -> float:
        """``lambda_f = f * lambda`` (per second)."""
        return self.failstop_fraction * self.total_rate

    @property
    def silent_rate(self) -> float:
        """``lambda_s = s * lambda`` (per second)."""
        return self.silent_fraction * self.total_rate

    # ------------------------------------------------------------------
    def failstop_process(self) -> ExponentialErrors:
        """The fail-stop :class:`ExponentialErrors` process.

        Raises
        ------
        InvalidParameterError
            If ``f == 0`` (there is no fail-stop process to return).
        """
        if self.failstop_rate == 0.0:
            raise InvalidParameterError(
                "failstop_fraction is 0: no fail-stop process exists"
            )
        return ExponentialErrors(rate=self.failstop_rate)

    def silent_process(self) -> ExponentialErrors:
        """The silent :class:`ExponentialErrors` process.

        Raises
        ------
        InvalidParameterError
            If ``f == 1`` (there is no silent process to return).
        """
        if self.silent_rate == 0.0:
            raise InvalidParameterError(
                "failstop_fraction is 1: no silent process exists"
            )
        return ExponentialErrors(rate=self.silent_rate)

    # ------------------------------------------------------------------
    def silent_only(self) -> "CombinedErrors":
        """The same total rate with every error silent (``f = 0``)."""
        return CombinedErrors(total_rate=self.total_rate, failstop_fraction=0.0)

    def failstop_only(self) -> "CombinedErrors":
        """The same total rate with every error fail-stop (``f = 1``)."""
        return CombinedErrors(total_rate=self.total_rate, failstop_fraction=1.0)

    def with_total_rate(self, total_rate: float) -> "CombinedErrors":
        """A copy with a different total rate (same split)."""
        return CombinedErrors(
            total_rate=total_rate, failstop_fraction=self.failstop_fraction
        )

    def to_model(self) -> "ErrorModel":
        """Lift into the renewal-model layer
        (:class:`repro.errors.models.ErrorModel` over exponential
        arrivals; the inverse of ``ErrorModel.to_combined``)."""
        from .models import ErrorModel

        return ErrorModel.from_combined(self)

    # ------------------------------------------------------------------
    # Per-attempt expectations (the speed-schedule building blocks)
    # ------------------------------------------------------------------
    def attempt_failure_probability(
        self, work: ScalarOrArray, speed: float, verification_time: float = 0.0
    ) -> ScalarOrArray:
        """Probability that one attempt at ``speed`` fails.

        An attempt fails when a fail-stop error strikes within its
        ``(W+V)/sigma`` window *or* a silent error strikes within its
        ``W/sigma`` computation window: ``p = 1 - q`` with survival
        ``q = exp(-(lambda_f (W+V)/sigma + lambda_s W/sigma))``.
        Broadcasts over ``work``; this is the per-attempt primitive the
        schedule evaluator (:mod:`repro.schedules.evaluator`) chains
        over arbitrary per-attempt speed sequences.
        """
        w = as_float_array(work)
        if np.any(w <= 0):
            raise InvalidParameterError("work must be > 0")
        if speed <= 0:
            raise InvalidParameterError("speed must be > 0")
        tau = (w + verification_time) / speed
        omega = w / speed
        p = -np.expm1(-(self.failstop_rate * tau + self.silent_rate * omega))
        return float(p) if is_scalar(work) else p

    def attempt_exposure(
        self, work: ScalarOrArray, speed: float, verification_time: float = 0.0
    ) -> ScalarOrArray:
        """Expected busy seconds of one attempt at ``speed``.

        ``E[min(T_f, tau)] = (1 - e^{-lambda_f tau}) / lambda_f`` with
        ``tau = (W+V)/sigma`` — the fail-stop-capped exposure; without
        fail-stop errors the full ``tau`` is always paid (silent errors
        are only detected by the end-of-attempt verification).
        Multiplied by the compute power this is the attempt's expected
        energy; broadcasts over ``work``.
        """
        w = as_float_array(work)
        if np.any(w <= 0):
            raise InvalidParameterError("work must be > 0")
        if speed <= 0:
            raise InvalidParameterError("speed must be > 0")
        tau = (w + verification_time) / speed
        m = capped_exposure(self.failstop_rate, tau)
        return float(m) if is_scalar(work) else m

    # ------------------------------------------------------------------
    def speed_ratio_validity_window(self) -> tuple[float, float]:
        """First-order validity window for ``sigma2 / sigma1`` (Section 5.2).

        With both sources and ``Pidle = 0`` the first-order approximation
        yields a valid optimum iff

        ``(2(1+s/f))**-0.5  <  sigma2/sigma1  <  2(1+s/f)``.

        Returns the ``(low, high)`` bounds.  With ``f = 0`` (silent only)
        the constraint vanishes, returned as ``(0, inf)``.
        """
        f = self.failstop_fraction
        if f == 0.0:
            return (0.0, float("inf"))
        s = self.silent_fraction
        high = 2.0 * (1.0 + s / f)
        return (high**-0.5, high)
