"""Pluggable renewal arrival processes (the error-model subsystem).

The paper — and, until this module, every layer of this repo — models
error arrivals as a Poisson process: memoryless, with per-attempt
failure probability ``1 - exp(-lambda t)``.  Real HPC failure traces
are famously *not* exponential (Weibull fits with shape < 1 are the
standard finding), but the pattern structure rescues generality:
**recovery restarts the arrival pattern**, so each attempt draws a
fresh inter-arrival time — a *renewal process* — and every per-attempt
quantity the schedule evaluator needs reduces to two primitives of the
inter-arrival distribution:

* ``failure_probability(t)`` — the CDF: probability that the first
  arrival lands within ``t`` seconds of the attempt's start;
* ``expected_exposure(t)`` — ``E[min(X, t)]``: the expected busy time
  before the first arrival or the window's end (what an interrupting
  fail-stop error actually costs).

This module defines the :class:`ArrivalProcess` abstraction plus four
concrete families — :class:`ExponentialArrivals` (byte-identical to the
legacy closed forms), :class:`WeibullArrivals`, :class:`GammaArrivals`
and :class:`TraceArrivals` (empirical CDF from a failure log) — and the
:class:`ErrorModel` that generalises
:class:`~repro.errors.combined.CombinedErrors` to an arbitrary family:
a total arrival process split into fail-stop and silent sources.

**Splitting semantics.**  ``CombinedErrors`` splits a Poisson process
of rate ``lambda`` into independent Poisson sources ``f lambda`` and
``(1-f) lambda``; for a Poisson process that *is* what independent
thinning produces.  For a general renewal family thinning does not stay
in the family, so the model *defines* the split the same way the
exponential case comes out: each source is an independent renewal
process of the same family with its MTBF scaled to ``mu / f`` (resp.
``mu / (1-f)``).  :meth:`ArrivalProcess.thinned` implements this
scaling, and with :class:`ExponentialArrivals` the definition coincides
exactly with the classical split.

**Serialisation.**  Models round-trip through one-line spec strings
(``weibull:shape=0.7,mtbf=5e3,failstop=0.2``; grammar:
``<kind>:<key>=<value>,...`` — see :func:`parse_error_model` and
``repro errors`` on the CLI) and JSON dicts, and carry a canonical
identity (:meth:`ErrorModel.canonical`) that equality, hashing and the
solve cache all share.

**What keeps working closed-form.**  The per-attempt geometric tail of
the schedule evaluator survives for *any* renewal process: once the
schedule reaches its constant tail speed, the per-attempt failure
probability is the constant ``CDF(tau)``, so the attempt series still
ends in an exactly-summable geometric tail.  What does *not* survive is
the two-speed closed forms (Theorem 1, Section 5) — those rest on
memorylessness, and their entry points raise
:class:`~repro.exceptions.UnsupportedErrorModelError` via
:func:`require_memoryless` instead of silently computing with the
wrong formula.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable
from typing import Any

import numpy as np
from scipy.special import gammainc, gammaincc

from ..exceptions import InvalidParameterError, UnsupportedErrorModelError
from ..quantities import (
    FloatArray,
    ScalarOrArray,
    as_float_array,
    fmt_round_trip as _fmt,
    is_scalar,
    require_positive,
    require_probability,
)
from .combined import CombinedErrors
from .exponential import ExponentialErrors, capped_exposure

__all__ = [
    "ArrivalProcess",
    "ExponentialArrivals",
    "WeibullArrivals",
    "GammaArrivals",
    "TraceArrivals",
    "ErrorModel",
    "parse_error_model",
    "error_model_from_dict",
    "error_model_kinds",
    "as_error_model",
    "collapse_memoryless",
    "require_memoryless",
]

#: Schema tag for :meth:`ErrorModel.to_dict` payloads.
_MODEL_SCHEMA = "repro/error-model/v1"

#: Registered arrival families, spec-prefix -> class (filled at import).
_KINDS: dict[str, type["ArrivalProcess"]] = {}


def _nonneg_exposure(exposure: ScalarOrArray) -> FloatArray:
    t = as_float_array(exposure)
    if np.any(t < 0):
        raise InvalidParameterError("exposure must be >= 0")
    return t


class ArrivalProcess(abc.ABC):
    """One renewal error-arrival family: fresh inter-arrival per attempt.

    Subclasses are frozen dataclasses describing the distribution of the
    inter-arrival time ``X`` (seconds).  The per-attempt primitives —
    :meth:`failure_probability` (the CDF) and :meth:`expected_exposure`
    (``E[min(X, t)]``) — are what the schedule evaluator, the vectorised
    kernel and the Monte-Carlo engine consume; everything else derives
    from them.  All primitives broadcast over array exposures.

    Equality and hashing go through :meth:`canonical`, so processes of
    the same family with the same parameters are one process for the
    solve cache.
    """

    #: Spec-string prefix of the family (``"exp"``, ``"weibull"``, ...).
    kind: str = "abstract"

    # ------------------------------------------------------------------
    # Primitives every family must provide
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def mtbf(self) -> float:
        """Mean inter-arrival time ``E[X]`` in seconds."""

    @abc.abstractmethod
    def failure_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        """CDF: probability of >= 1 arrival within ``exposure`` seconds.

        Broadcasts over ``exposure``; rejects negative windows.
        """

    @abc.abstractmethod
    def expected_exposure(self, window: ScalarOrArray) -> ScalarOrArray:
        """``E[min(X, t)]``: expected busy seconds before the first
        arrival or the window's end.  Broadcasts over ``window``."""

    @abc.abstractmethod
    def sample_interarrivals(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> FloatArray:
        """Draw fresh first-arrival times ``X`` (seconds), one per attempt."""

    @abc.abstractmethod
    def thinned(self, fraction: float) -> "ArrivalProcess":
        """The same family with its MTBF scaled to ``mtbf / fraction``.

        The source-splitting primitive: a fraction-``f`` sub-source of
        this process (see the module docstring for the semantics).
        """

    @abc.abstractmethod
    def _params(self) -> dict[str, Any]:
        """Ordered parameter dict (spec-string / JSON payload fields)."""

    @classmethod
    @abc.abstractmethod
    def _from_spec_kv(cls, kv: dict[str, str]) -> "ArrivalProcess":
        """Build from the parsed ``key=value`` pairs of a spec string."""

    def _dict_params(self) -> dict[str, Any]:
        """Constructor-kwarg payload for JSON round-trips.

        Defaults to :meth:`_params`; families whose spec parameters are
        not literal constructor kwargs (trace files) override this so
        ``error_model_from_dict`` can rebuild without side lookups.
        """
        return self._params()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def is_memoryless(self) -> bool:
        """True only for the exponential family.

        Gates the closed-form fast paths: everything byte-identical to
        the legacy model keys off this flag, never off parameter values
        (a Weibull with shape 1 is mathematically exponential but stays
        on the generic renewal path).
        """
        return False

    def survival_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        """``1 - CDF``: probability no arrival strikes within the window."""
        t = _nonneg_exposure(exposure)
        q = 1.0 - self.failure_probability(t)
        return float(q) if is_scalar(exposure) else q

    def expected_time_lost(self, window: ScalarOrArray) -> ScalarOrArray:
        """``E[X | X < t]``: mean arrival time given an in-window strike.

        Derived from the primitives via
        ``E[min(X,t)] = E[X ; X < t] + t S(t)``; the renewal analogue of
        :meth:`repro.errors.exponential.ExponentialErrors.expected_time_lost`.
        Where the strike probability underflows to 0 the conditional is
        returned as ``t / 2`` (the universal small-window limit for a
        locally flat density) rather than NaN.
        """
        t = _nonneg_exposure(window)
        p = np.asarray(self.failure_probability(t), dtype=np.float64)
        m = np.asarray(self.expected_exposure(t), dtype=np.float64)
        s = 1.0 - p
        with np.errstate(divide="ignore", invalid="ignore"):
            cond = (m - t * s) / p
        out = np.where(p > 0.0, cond, t / 2.0)
        return float(out) if is_scalar(window) else out

    # ------------------------------------------------------------------
    # Identity / serialisation
    # ------------------------------------------------------------------
    def canonical(self) -> tuple:
        """Canonical identity: ``(tag, kind, sorted parameter items)``."""
        items = tuple(
            (k, v if not isinstance(v, (list, np.ndarray)) else tuple(v))
            for k, v in sorted(self._params().items())
        )
        return ("arrival-process", self.kind, items)

    def spec(self) -> str:
        """One-line spec string (:func:`parse_error_model` inverse,
        modulo the ``failstop=`` split the model adds)."""
        args = ",".join(f"{k}={self._spec_value(k, v)}" for k, v in self._params().items())
        return f"{self.kind}:{args}"

    def _spec_value(self, key: str, value: Any) -> str:
        return _fmt(float(value))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrivalProcess):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return hash(self.canonical())

    def describe(self) -> str:
        """Short human-readable tag (the spec string)."""
        return self.spec()


def _register_kind(cls: type[ArrivalProcess]) -> type[ArrivalProcess]:
    """Class decorator: add a family to the spec/serialisation registry."""
    if cls.kind in _KINDS:  # pragma: no cover - programming error
        raise InvalidParameterError(f"arrival-process kind {cls.kind!r} already registered")
    _KINDS[cls.kind] = cls
    return cls


def _parse_kv(args: str, kind: str) -> dict[str, str]:
    """Parse ``key=value`` comma-separated spec arguments."""
    kv: dict[str, str] = {}
    for part in (p.strip() for p in args.split(",") if p.strip()):
        key, sep, value = part.partition("=")
        key = key.strip().lower()
        if not sep or not key or not value.strip():
            raise InvalidParameterError(
                f"bad error-model argument {part!r} for kind {kind!r}; "
                f"the grammar is <kind>:<key>=<value>,..."
            )
        if key in kv:
            raise InvalidParameterError(
                f"duplicate error-model argument {key!r} in {args!r}"
            )
        kv[key] = value.strip()
    return kv


def _pop_float(kv: dict[str, str], key: str, kind: str) -> float:
    raw = kv.pop(key)
    try:
        return float(raw)
    except ValueError:
        raise InvalidParameterError(
            f"bad number {raw!r} for {key!r} in error-model kind {kind!r}"
        ) from None


def _reject_unknown(kv: dict[str, str], kind: str) -> None:
    if kv:
        raise InvalidParameterError(
            f"unknown error-model argument(s) {sorted(kv)} for kind {kind!r}"
        )


def _scale_from_spec(
    kv: dict[str, str],
    kind: str,
    mtbf_to_scale: Callable[[float], float],
    *,
    required: bool = True,
) -> float | None:
    """Resolve the ``scale=`` / ``mtbf=`` alternative of a spec string.

    Exactly one of the two keys must be present (``mtbf`` is the sugar
    users think in; ``scale`` is the stored parameter the canonical spec
    emits so round-trips are exact).  ``mtbf_to_scale`` converts.
    """
    has_scale = "scale" in kv
    has_mtbf = "mtbf" in kv
    if has_scale and has_mtbf:
        raise InvalidParameterError(
            f"error-model kind {kind!r} takes scale= or mtbf=, not both"
        )
    if has_scale:
        return _pop_float(kv, "scale", kind)
    if has_mtbf:
        return mtbf_to_scale(_pop_float(kv, "mtbf", kind))
    if required:
        raise InvalidParameterError(
            f"error-model kind {kind!r} needs scale= or mtbf="
        )
    return None


# ----------------------------------------------------------------------
# Concrete families
# ----------------------------------------------------------------------
@_register_kind
@dataclass(frozen=True, eq=False)
class ExponentialArrivals(ArrivalProcess):
    """Memoryless (Poisson) arrivals — the legacy model, bit for bit.

    Every primitive evaluates the *same expression* as
    :class:`~repro.errors.exponential.ExponentialErrors`, so any path
    that dispatches through this class instead of the legacy closed
    forms produces byte-identical floats (the equivalence tests pin
    this).

    Examples
    --------
    >>> p = ExponentialArrivals(rate=1e-4)
    >>> p.mtbf
    10000.0
    >>> p.thinned(0.25).rate
    2.5e-05
    """

    rate: float

    kind = "exp"

    def __post_init__(self) -> None:
        require_positive(self.rate, "rate")

    @property
    def is_memoryless(self) -> bool:
        return True

    @property
    def mtbf(self) -> float:
        return 1.0 / self.rate

    def failure_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        t = _nonneg_exposure(exposure)
        p = -np.expm1(-self.rate * t)
        return float(p) if is_scalar(exposure) else p

    def survival_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        t = _nonneg_exposure(exposure)
        q = np.exp(-self.rate * t)
        return float(q) if is_scalar(exposure) else q

    def expected_exposure(self, window: ScalarOrArray) -> ScalarOrArray:
        _nonneg_exposure(window)
        return capped_exposure(self.rate, window)

    def expected_time_lost(self, window: ScalarOrArray) -> ScalarOrArray:
        # The numerically hardened exponential form (series fallback for
        # denormal lambda*t), identical to the legacy process.
        return ExponentialErrors(rate=self.rate).expected_time_lost(window, 1.0)

    def sample_interarrivals(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> FloatArray:
        return rng.exponential(scale=self.mtbf, size=size)

    def thinned(self, fraction: float) -> "ExponentialArrivals":
        return ExponentialArrivals(rate=self.rate * require_positive(fraction, "fraction"))

    def _params(self) -> dict[str, Any]:
        return {"rate": self.rate}

    @classmethod
    def _from_spec_kv(cls, kv: dict[str, str]) -> "ExponentialArrivals":
        has_rate = "rate" in kv
        has_mtbf = "mtbf" in kv
        if has_rate and has_mtbf:
            raise InvalidParameterError("exp takes rate= or mtbf=, not both")
        if has_rate:
            rate = _pop_float(kv, "rate", cls.kind)
        elif has_mtbf:
            rate = 1.0 / _pop_float(kv, "mtbf", cls.kind)
        else:
            raise InvalidParameterError("exp needs rate= or mtbf=")
        _reject_unknown(kv, cls.kind)
        return cls(rate=rate)


@_register_kind
@dataclass(frozen=True, eq=False)
class WeibullArrivals(ArrivalProcess):
    """Weibull inter-arrivals: the standard fit for HPC failure traces.

    ``CDF(t) = 1 - exp(-(t/scale)^shape)``.  ``shape < 1`` (the
    empirically typical regime) means a decreasing hazard rate — infant
    mortality: young attempts fail more readily than the exponential
    model predicts; ``shape > 1`` models wear-out; ``shape = 1`` is
    mathematically exponential (but stays on the generic renewal path —
    use :class:`ExponentialArrivals` for the closed-form fast paths).

    ``E[min(X, t)] = mtbf * P(1/shape, (t/scale)^shape)`` with ``P`` the
    regularised lower incomplete gamma function (substitute
    ``v = (u/scale)^shape`` in the survival integral).

    Examples
    --------
    >>> w = WeibullArrivals.from_mtbf(shape=0.7, mtbf=5e3)
    >>> round(w.mtbf, 6)
    5000.0
    """

    shape: float
    scale: float

    kind = "weibull"

    def __post_init__(self) -> None:
        require_positive(self.shape, "shape")
        require_positive(self.scale, "scale")

    @classmethod
    def from_mtbf(cls, shape: float, mtbf: float) -> "WeibullArrivals":
        """The shape-``k`` Weibull with mean ``mtbf``
        (``scale = mtbf / Gamma(1 + 1/k)``)."""
        require_positive(shape, "shape")
        require_positive(mtbf, "mtbf")
        return cls(shape=shape, scale=mtbf / math.gamma(1.0 + 1.0 / shape))

    @property
    def mtbf(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def failure_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        t = _nonneg_exposure(exposure)
        p = -np.expm1(-((t / self.scale) ** self.shape))
        return float(p) if is_scalar(exposure) else p

    def survival_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        t = _nonneg_exposure(exposure)
        q = np.exp(-((t / self.scale) ** self.shape))
        return float(q) if is_scalar(exposure) else q

    def expected_exposure(self, window: ScalarOrArray) -> ScalarOrArray:
        t = _nonneg_exposure(window)
        x = (t / self.scale) ** self.shape
        m = self.mtbf * gammainc(1.0 / self.shape, x)
        return float(m) if is_scalar(window) else m

    def sample_interarrivals(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> FloatArray:
        return self.scale * rng.weibull(self.shape, size=size)

    def thinned(self, fraction: float) -> "WeibullArrivals":
        return WeibullArrivals(
            shape=self.shape,
            scale=self.scale / require_positive(fraction, "fraction"),
        )

    def _params(self) -> dict[str, Any]:
        return {"shape": self.shape, "scale": self.scale}

    @classmethod
    def _from_spec_kv(cls, kv: dict[str, str]) -> "WeibullArrivals":
        if "shape" not in kv:
            raise InvalidParameterError("weibull needs shape=")
        shape = _pop_float(kv, "shape", cls.kind)
        require_positive(shape, "shape")
        scale = _scale_from_spec(
            kv, cls.kind, lambda mtbf: mtbf / math.gamma(1.0 + 1.0 / shape)
        )
        _reject_unknown(kv, cls.kind)
        return cls(shape=shape, scale=scale)


@_register_kind
@dataclass(frozen=True, eq=False)
class GammaArrivals(ArrivalProcess):
    """Gamma inter-arrivals: arrivals gated behind ``shape`` latent stages.

    ``CDF(t) = P(shape, t/scale)`` (regularised lower incomplete gamma).
    ``shape > 1`` models a latency before failures become likely (e.g.
    memory occupancy building up); ``shape < 1`` clusters arrivals near
    the start; ``shape = 1`` is exponential.

    ``E[min(X, t)] = t Q(k, x) + k scale P(k+1, x)`` with ``x = t/scale``
    (integrate the survival function by parts; ``u p_k(u) = k theta
    p_{k+1}(u)`` collapses the density term).

    Examples
    --------
    >>> g = GammaArrivals(shape=2.0, scale=2500.0)
    >>> g.mtbf
    5000.0
    """

    shape: float
    scale: float

    kind = "gamma"

    def __post_init__(self) -> None:
        require_positive(self.shape, "shape")
        require_positive(self.scale, "scale")

    @classmethod
    def from_mtbf(cls, shape: float, mtbf: float) -> "GammaArrivals":
        """The shape-``k`` Gamma with mean ``mtbf`` (``scale = mtbf/k``)."""
        require_positive(shape, "shape")
        require_positive(mtbf, "mtbf")
        return cls(shape=shape, scale=mtbf / shape)

    @property
    def mtbf(self) -> float:
        return self.shape * self.scale

    def failure_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        t = _nonneg_exposure(exposure)
        p = gammainc(self.shape, t / self.scale)
        return float(p) if is_scalar(exposure) else p

    def survival_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        t = _nonneg_exposure(exposure)
        q = gammaincc(self.shape, t / self.scale)
        return float(q) if is_scalar(exposure) else q

    def expected_exposure(self, window: ScalarOrArray) -> ScalarOrArray:
        t = _nonneg_exposure(window)
        x = t / self.scale
        m = t * gammaincc(self.shape, x) + self.mtbf * gammainc(self.shape + 1.0, x)
        return float(m) if is_scalar(window) else m

    def sample_interarrivals(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> FloatArray:
        return rng.gamma(self.shape, self.scale, size=size)

    def thinned(self, fraction: float) -> "GammaArrivals":
        return GammaArrivals(
            shape=self.shape,
            scale=self.scale / require_positive(fraction, "fraction"),
        )

    def _params(self) -> dict[str, Any]:
        return {"shape": self.shape, "scale": self.scale}

    @classmethod
    def _from_spec_kv(cls, kv: dict[str, str]) -> "GammaArrivals":
        if "shape" not in kv:
            raise InvalidParameterError("gamma needs shape=")
        shape = _pop_float(kv, "shape", cls.kind)
        require_positive(shape, "shape")
        scale = _scale_from_spec(kv, cls.kind, lambda mtbf: mtbf / shape)
        _reject_unknown(kv, cls.kind)
        return cls(shape=shape, scale=scale)


@_register_kind
@dataclass(frozen=True, eq=False)
class TraceArrivals(ArrivalProcess):
    """Empirical arrivals: the ECDF of observed inter-failure times.

    ``times`` are inter-arrival samples (seconds) from a failure log;
    the process uses their empirical CDF directly, so the model *is*
    the trace — no distributional fit.  Order is irrelevant (a sample
    set); the canonical identity sorts.  ``E[min(X, t)]`` is the exact
    sample mean of ``min(x_i, t)``, computed from a prefix-sum over the
    sorted samples so array windows stay vectorised.

    Build from a log file with :meth:`from_log` (one inter-arrival per
    line, ``#`` comments and blank lines skipped).

    Examples
    --------
    >>> tr = TraceArrivals(times=(1000.0, 3000.0, 8000.0))
    >>> tr.mtbf
    4000.0
    >>> tr.failure_probability(3000.0)  # 2 of 3 samples within window
    0.6666666666666666
    """

    times: tuple[float, ...]
    #: Provenance: the log path when built via :meth:`from_log` (the
    #: spec string then round-trips through the file).
    source: str | None = None
    _sorted: np.ndarray = field(init=False, repr=False, compare=False)
    _prefix: np.ndarray = field(init=False, repr=False, compare=False)

    kind = "trace"

    def __post_init__(self) -> None:
        times = tuple(float(t) for t in self.times)
        if not times:
            raise InvalidParameterError("TraceArrivals needs at least one sample")
        for t in times:
            if not math.isfinite(t) or t <= 0.0:
                raise InvalidParameterError(
                    f"trace inter-arrival times must be finite and > 0, got {t!r}"
                )
        object.__setattr__(self, "times", times)
        srt = np.sort(np.asarray(times, dtype=np.float64))
        object.__setattr__(self, "_sorted", srt)
        object.__setattr__(
            self, "_prefix", np.concatenate([[0.0], np.cumsum(srt)])
        )

    @classmethod
    def from_log(cls, path: str | Path) -> "TraceArrivals":
        """Load inter-arrival samples from a failure log file.

        Raises
        ------
        InvalidParameterError
            For unreadable paths and malformed contents alike, so spec
            parsing (``trace:file=...``) surfaces one typed error for
            every bad input instead of leaking ``OSError``.
        """
        p = Path(path)
        try:
            text = p.read_text()
        except OSError as exc:
            raise InvalidParameterError(
                f"cannot read failure log {p}: {exc}"
            ) from exc
        times: list[float] = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            entry = line.split("#", 1)[0].strip()
            if not entry:
                continue
            try:
                times.append(float(entry))
            except ValueError:
                raise InvalidParameterError(
                    f"bad inter-arrival value {entry!r} at {p}:{lineno}"
                ) from None
        if not times:
            raise InvalidParameterError(f"failure log {p} holds no samples")
        return cls(times=tuple(times), source=str(p))

    @property
    def n_samples(self) -> int:
        """Number of trace samples behind the ECDF."""
        return len(self.times)

    @property
    def mtbf(self) -> float:
        return float(self._prefix[-1] / self.n_samples)

    def failure_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        t = _nonneg_exposure(exposure)
        k = np.searchsorted(self._sorted, t, side="right")
        p = k / self.n_samples
        return float(p) if is_scalar(exposure) else p

    def expected_exposure(self, window: ScalarOrArray) -> ScalarOrArray:
        t = _nonneg_exposure(window)
        n = self.n_samples
        k = np.searchsorted(self._sorted, t, side="right")
        m = (self._prefix[k] + (n - k) * t) / n
        return float(m) if is_scalar(window) else m

    def sample_interarrivals(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> FloatArray:
        return rng.choice(self._sorted, size=size, replace=True)

    def thinned(self, fraction: float) -> "TraceArrivals":
        f = require_positive(fraction, "fraction")
        return TraceArrivals(times=tuple(t / f for t in self.times))

    def _params(self) -> dict[str, Any]:
        if self.source is not None:
            return {"file": self.source}
        return {"times": self.times}

    def _dict_params(self) -> dict[str, Any]:
        # JSON payloads always embed the samples (a spec string may
        # defer to the log file, but a serialized result must not
        # depend on the file still existing at load time).
        return {"times": self.times, "source": self.source}

    def _spec_value(self, key: str, value: Any) -> str:
        if key == "file":
            return str(value)
        return ";".join(_fmt(t) for t in value)

    def canonical(self) -> tuple:
        # Identity is the sample *set*, not its provenance: the same
        # trace loaded from a file or passed inline is one process.
        return ("arrival-process", self.kind, tuple(sorted(self.times)))

    @classmethod
    def _from_spec_kv(cls, kv: dict[str, str]) -> "TraceArrivals":
        has_file = "file" in kv
        has_times = "times" in kv
        if has_file == has_times:
            raise InvalidParameterError("trace needs exactly one of file= or times=")
        if has_file:
            path = kv.pop("file")
            _reject_unknown(kv, cls.kind)
            return cls.from_log(path)
        raw = kv.pop("times")
        _reject_unknown(kv, cls.kind)
        try:
            times = tuple(float(p) for p in raw.split(";") if p.strip())
        except ValueError:
            raise InvalidParameterError(
                f"bad trace times list {raw!r} (semicolon-separated numbers)"
            ) from None
        return cls(times=times)


# ----------------------------------------------------------------------
# The generalised error model (one process per source)
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class ErrorModel:
    """Fail-stop/silent error split over an arbitrary renewal family.

    The renewal generalisation of
    :class:`~repro.errors.combined.CombinedErrors`: a total arrival
    ``process`` plus the fraction ``failstop_fraction`` of errors that
    are fail-stop, with each source an independent renewal process of
    the same family at MTBF ``mu/f`` resp. ``mu/(1-f)`` (exactly the
    classical split when the family is exponential).

    The per-attempt primitives mirror ``CombinedErrors`` — fail-stop
    errors expose the whole ``(W+V)/sigma`` attempt, silent errors the
    ``W/sigma`` computation window — so the schedule evaluator, the
    vectorised kernel and the Monte-Carlo engine all dispatch through
    either type interchangeably.  For memoryless models prefer
    :meth:`to_combined` and the legacy closed forms (byte-identical and
    faster); the routing layers do this automatically.

    Examples
    --------
    >>> m = parse_error_model("weibull:shape=0.7,mtbf=5e3,failstop=0.2")
    >>> m.failstop_fraction, m.process.kind
    (0.2, 'weibull')
    >>> parse_error_model(m.spec()) == m
    True
    """

    process: ArrivalProcess
    failstop_fraction: float = 0.0
    _failstop: ArrivalProcess | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _silent: ArrivalProcess | None = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if not isinstance(self.process, ArrivalProcess):
            raise InvalidParameterError(
                f"process must be an ArrivalProcess, got "
                f"{type(self.process).__name__}"
            )
        require_probability(self.failstop_fraction, "failstop_fraction")
        f = self.failstop_fraction
        # Cache the per-source processes: thinning a TraceArrivals copies
        # its sample arrays, and the solvers call the primitives in hot
        # bracketing loops.
        failstop = None if f == 0.0 else (self.process if f == 1.0 else self.process.thinned(f))
        silent = None if f == 1.0 else (self.process if f == 0.0 else self.process.thinned(1.0 - f))
        object.__setattr__(self, "_failstop", failstop)
        object.__setattr__(self, "_silent", silent)

    # ------------------------------------------------------------------
    @property
    def silent_fraction(self) -> float:
        """``s = 1 - f``: fraction of errors that are silent."""
        return 1.0 - self.failstop_fraction

    @property
    def is_memoryless(self) -> bool:
        """True when the arrival family is exponential (closed forms apply)."""
        return self.process.is_memoryless

    @property
    def mtbf(self) -> float:
        """Mean time between errors of the total process (seconds)."""
        return self.process.mtbf

    @property
    def failstop_arrivals(self) -> ArrivalProcess | None:
        """The fail-stop source process, or ``None`` when ``f = 0``."""
        return self._failstop

    @property
    def silent_arrivals(self) -> ArrivalProcess | None:
        """The silent source process, or ``None`` when ``f = 1``."""
        return self._silent

    def failstop_process(self) -> ArrivalProcess:
        """The fail-stop source (raises when ``f = 0``, mirroring
        :meth:`CombinedErrors.failstop_process`)."""
        if self._failstop is None:
            raise InvalidParameterError(
                "failstop_fraction is 0: no fail-stop process exists"
            )
        return self._failstop

    def silent_process(self) -> ArrivalProcess:
        """The silent source (raises when ``f = 1``)."""
        if self._silent is None:
            raise InvalidParameterError(
                "failstop_fraction is 1: no silent process exists"
            )
        return self._silent

    # ------------------------------------------------------------------
    # Bridges to the legacy exponential model
    # ------------------------------------------------------------------
    def to_combined(self) -> CombinedErrors:
        """The byte-identical :class:`CombinedErrors` of a memoryless model.

        Raises
        ------
        UnsupportedErrorModelError
            When the family is not exponential (there is no equivalent
            closed-form model to return).
        """
        if not self.is_memoryless:
            raise UnsupportedErrorModelError("ErrorModel.to_combined", self)
        return CombinedErrors(
            total_rate=self.process.rate,  # type: ignore[attr-defined]
            failstop_fraction=self.failstop_fraction,
        )

    @classmethod
    def from_combined(cls, errors: CombinedErrors) -> "ErrorModel":
        """Lift a legacy :class:`CombinedErrors` into the model layer."""
        return cls(
            process=ExponentialArrivals(rate=errors.total_rate),
            failstop_fraction=errors.failstop_fraction,
        )

    # ------------------------------------------------------------------
    # Per-attempt expectations (the schedule-evaluator primitives)
    # ------------------------------------------------------------------
    def per_window_primitives(
        self, tau: ScalarOrArray, omega: ScalarOrArray
    ) -> tuple[FloatArray, FloatArray]:
        """``(failure probability, capped busy time)`` for one attempt
        with fail-stop window ``tau`` and computation window ``omega``.

        The renewal analogue of the ``CombinedErrors`` primitives: an
        attempt fails when the fail-stop source strikes within ``tau``
        *or* the silent source strikes within ``omega`` (independent
        sources), and the busy time is the fail-stop-capped exposure
        ``E[min(X_f, tau)]`` (the full ``tau`` when no fail-stop
        source exists — silent errors are only caught by the
        verification).  Broadcasts over arrays; used directly by the
        vectorised kernel, wrapped by :meth:`attempt_failure_probability`
        / :meth:`attempt_exposure`.
        """
        tau = as_float_array(tau)
        omega = as_float_array(omega)
        if self._failstop is None:
            p = self.process.failure_probability(omega)
            m = tau
        elif self._silent is None:
            p = self.process.failure_probability(tau)
            m = self.process.expected_exposure(tau)
        else:
            # Inclusion-exclusion on the per-source CDFs rather than
            # 1 - S_f S_s: the survival product cancels catastrophically
            # for small probabilities (1 - exp(-x) loses ~x relative
            # digits), while each family's failure_probability is
            # expm1-stable and the combination below never subtracts
            # near-equal quantities.
            p_f = self._failstop.failure_probability(tau)
            p_s = self._silent.failure_probability(omega)
            # Inclusion-exclusion in the form p_f + p_s (1 - p_f): free
            # of the 1 - S_f S_s cancellation for small probabilities,
            # exactly 1 once the fail-stop CDF saturates, and <= 1 in
            # exact arithmetic (clamp the last-ulp rounding excursions).
            p = np.minimum(p_f + p_s * (1.0 - p_f), 1.0)
            m = self._failstop.expected_exposure(tau)
        return np.asarray(p, dtype=np.float64), np.asarray(m, dtype=np.float64)

    def attempt_failure_probability(
        self, work: ScalarOrArray, speed: float, verification_time: float = 0.0
    ) -> ScalarOrArray:
        """Probability that one attempt at ``speed`` fails (renewal CDFs).

        Drop-in for :meth:`CombinedErrors.attempt_failure_probability`;
        each attempt draws fresh inter-arrivals, so the probability
        depends only on the attempt's own windows.
        """
        w = as_float_array(work)
        if np.any(w <= 0):
            raise InvalidParameterError("work must be > 0")
        if speed <= 0:
            raise InvalidParameterError("speed must be > 0")
        p, _ = self.per_window_primitives((w + verification_time) / speed, w / speed)
        return float(p) if is_scalar(work) else p

    def attempt_exposure(
        self, work: ScalarOrArray, speed: float, verification_time: float = 0.0
    ) -> ScalarOrArray:
        """Expected busy seconds of one attempt at ``speed``.

        Drop-in for :meth:`CombinedErrors.attempt_exposure`.
        """
        w = as_float_array(work)
        if np.any(w <= 0):
            raise InvalidParameterError("work must be > 0")
        if speed <= 0:
            raise InvalidParameterError("speed must be > 0")
        _, m = self.per_window_primitives((w + verification_time) / speed, w / speed)
        return float(m) if is_scalar(work) else m

    # ------------------------------------------------------------------
    # Identity / serialisation
    # ------------------------------------------------------------------
    def canonical(self) -> tuple:
        """Canonical identity: what equality, hashing and the solve
        cache key on."""
        return ("error-model", self.process.canonical(), self.failstop_fraction)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ErrorModel):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return hash(self.canonical())

    def spec(self) -> str:
        """One-line spec string (:func:`parse_error_model` inverse)."""
        base = self.process.spec()
        if self.failstop_fraction == 0.0:
            return base
        return f"{base},failstop={_fmt(self.failstop_fraction)}"

    def describe(self) -> str:
        """Short human-readable tag (the spec string)."""
        return self.spec()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable payload (see :func:`error_model_from_dict`)."""
        params = {
            k: (list(v) if isinstance(v, tuple) else v)
            for k, v in self.process._dict_params().items()
        }
        return {
            "schema": _MODEL_SCHEMA,
            "kind": self.process.kind,
            "params": params,
            "failstop_fraction": self.failstop_fraction,
        }

    # ------------------------------------------------------------------
    def with_failstop_fraction(self, fraction: float) -> "ErrorModel":
        """A copy with a different fail-stop split (same arrival family)."""
        return ErrorModel(process=self.process, failstop_fraction=fraction)


# ----------------------------------------------------------------------
# Parsing / coercion front doors
# ----------------------------------------------------------------------
def parse_error_model(spec: str) -> ErrorModel:
    """Parse a spec string such as ``weibull:shape=0.7,mtbf=5e3,failstop=0.2``.

    The grammar is ``<kind>:<key>=<value>,...`` with the per-family keys
    documented on each :class:`ArrivalProcess` class (``repro errors``
    lists them from the CLI).  The optional ``failstop=`` key gives the
    fail-stop fraction of the split (default 0: all errors silent).
    """
    kind, sep, args = spec.partition(":")
    kind = kind.strip().lower()
    if not sep or kind not in _KINDS:
        raise InvalidParameterError(
            f"unknown error-model spec {spec!r}; valid kinds: "
            f"{', '.join(sorted(_KINDS))} (e.g. 'weibull:shape=0.7,mtbf=5e3')"
        )
    kv = _parse_kv(args, kind)
    failstop = 0.0
    if "failstop" in kv:
        failstop = _pop_float(kv, "failstop", kind)
    process = _KINDS[kind]._from_spec_kv(kv)
    return ErrorModel(process=process, failstop_fraction=failstop)


def error_model_from_dict(data: dict[str, Any]) -> ErrorModel:
    """Restore a model from :meth:`ErrorModel.to_dict` output."""
    if data.get("schema") != _MODEL_SCHEMA:
        raise InvalidParameterError(f"not an error-model payload: {data.get('schema')!r}")
    kind = data.get("kind")
    if kind not in _KINDS:
        raise InvalidParameterError(f"unknown error-model kind {kind!r}")
    params = dict(data["params"])
    if "times" in params:
        params["times"] = tuple(params["times"])
    process = _KINDS[kind](**params)  # type: ignore[call-arg]
    return ErrorModel(
        process=process, failstop_fraction=data.get("failstop_fraction", 0.0)
    )


def error_model_kinds() -> dict[str, type[ArrivalProcess]]:
    """The registered arrival families, spec-prefix -> class (sorted copy)."""
    return dict(sorted(_KINDS.items()))


def as_error_model(
    value: "ErrorModel | ArrivalProcess | CombinedErrors | str | None",
) -> ErrorModel | None:
    """Coerce ``value`` to an :class:`ErrorModel`.

    Spec strings parse, bare :class:`ArrivalProcess` instances become a
    silent-only model, legacy :class:`CombinedErrors` lift via
    :meth:`ErrorModel.from_combined`, ``None`` passes through.
    """
    if value is None or isinstance(value, ErrorModel):
        return value
    if isinstance(value, ArrivalProcess):
        return ErrorModel(process=value, failstop_fraction=0.0)
    if isinstance(value, CombinedErrors):
        return ErrorModel.from_combined(value)
    if isinstance(value, str):
        return parse_error_model(value)
    raise InvalidParameterError(
        f"errors must be an ErrorModel, ArrivalProcess, CombinedErrors or "
        f"spec string, got {type(value).__name__}"
    )


def collapse_memoryless(
    errors: "CombinedErrors | ErrorModel | None",
) -> "CombinedErrors | ErrorModel | None":
    """Collapse a *memoryless* :class:`ErrorModel` to its byte-identical
    :class:`CombinedErrors`; everything else passes through.

    The single source of the routing invariant every consumer (the
    schedule evaluator, the vectorised kernel, the Scenario API, both
    simulators) relies on: exponential models always reach the legacy
    closed forms and sampling paths as ``CombinedErrors``, so those
    paths stay bit-for-bit the pre-model-era code, and anything still
    an :class:`ErrorModel` afterwards is a general renewal family.
    """
    if isinstance(errors, ErrorModel) and errors.is_memoryless:
        return errors.to_combined()
    return errors


def require_memoryless(
    errors: "CombinedErrors | ErrorModel | None", where: str
) -> CombinedErrors | None:
    """Gate a closed form on memoryless arrivals.

    Legacy :class:`CombinedErrors` (and ``None``) pass through; a
    memoryless :class:`ErrorModel` converts to its byte-identical
    ``CombinedErrors``; any other renewal model raises
    :class:`~repro.exceptions.UnsupportedErrorModelError` naming the
    entry point — the audit hook that keeps the exponential-only
    solvers from silently computing with the wrong formula.
    """
    if errors is None or isinstance(errors, CombinedErrors):
        return errors
    if isinstance(errors, ErrorModel):
        if errors.is_memoryless:
            return errors.to_combined()
        raise UnsupportedErrorModelError(where, errors)
    raise UnsupportedErrorModelError(where, errors)
