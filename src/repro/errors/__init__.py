"""Error-process substrate: exponential arrivals and the fail-stop/silent split."""

from .combined import CombinedErrors
from .exponential import ExponentialErrors

__all__ = ["ExponentialErrors", "CombinedErrors"]
