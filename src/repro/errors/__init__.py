"""Error-process substrate: exponential arrivals, the fail-stop/silent
split, and the pluggable renewal arrival-process models."""

from .combined import CombinedErrors
from .exponential import ExponentialErrors
from .models import (
    ArrivalProcess,
    ErrorModel,
    ExponentialArrivals,
    GammaArrivals,
    TraceArrivals,
    WeibullArrivals,
    as_error_model,
    collapse_memoryless,
    error_model_from_dict,
    error_model_kinds,
    parse_error_model,
    require_memoryless,
)

__all__ = [
    "ExponentialErrors",
    "CombinedErrors",
    "ArrivalProcess",
    "ExponentialArrivals",
    "WeibullArrivals",
    "GammaArrivals",
    "TraceArrivals",
    "ErrorModel",
    "parse_error_model",
    "error_model_from_dict",
    "error_model_kinds",
    "as_error_model",
    "collapse_memoryless",
    "require_memoryless",
]
