"""Exponential (Poisson-arrival) error processes.

The paper models both silent and fail-stop errors as Poisson processes:
the probability that at least one error strikes during ``T`` seconds of
exposure is ``p(T) = 1 - exp(-lambda * T)`` (Section 2.1).  The platform
MTBF is ``mu = 1 / lambda``.

This module provides the :class:`ExponentialErrors` process used by both
the analytical model and the Monte-Carlo simulator, including the
expected time lost to an *interrupting* (fail-stop) error,

.. math::

    T_{lost}(w, \\sigma) = \\frac{1}{\\lambda}
        - \\frac{w/\\sigma}{e^{\\lambda w / \\sigma} - 1},

which is the conditional mean of an exponential arrival truncated to the
execution window ``w / sigma`` (Section 5.1, citing Herault & Robert).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..quantities import (
    FloatArray,
    ScalarOrArray,
    as_float_array,
    is_scalar,
    require_positive,
)
from ..exceptions import InvalidParameterError

__all__ = ["ExponentialErrors", "capped_exposure"]


def capped_exposure(rate: float, window: ScalarOrArray) -> ScalarOrArray:
    """Expected busy time before the first arrival or the window's end.

    ``E[min(X, tau)] = (1 - e^{-rate * tau}) / rate`` for
    ``X ~ Exp(rate)`` and exposure ``tau = window`` — the fail-stop
    analogue of :meth:`ExponentialErrors.expected_time_lost`'s setup.
    ``rate = 0`` means no arrivals: the full window is always paid.

    For ``rate * tau`` below ~1e-8 the direct ``expm1`` form loses
    precision (denormal products divide away their mantissa bits), so
    the Taylor value ``tau (1 - x/2 + x^2/6)`` is used instead — the
    same guard :meth:`ExponentialErrors.expected_time_lost` applies.
    Broadcasts over ``window``.
    """
    tau = as_float_array(window)
    if rate < 0.0:
        raise InvalidParameterError("rate must be >= 0")
    if rate == 0.0:
        out = tau
    else:
        x = rate * tau
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            direct = -np.expm1(-x) / rate
        series = tau * (1.0 - x / 2.0 + x * x / 6.0)
        out = np.where(x < 1e-8, series, direct)
    return float(out) if is_scalar(window) else out


@dataclass(frozen=True)
class ExponentialErrors:
    """A memoryless error process with arrival rate ``rate`` (per second).

    Parameters
    ----------
    rate:
        Arrival rate ``lambda`` in errors per second.  Must be > 0; use
        rates around ``1e-6`` .. ``1e-2`` to match the paper's platforms.

    Examples
    --------
    >>> errs = ExponentialErrors(rate=1e-4)
    >>> round(errs.mtbf)
    10000
    >>> 0 < errs.strike_probability(100.0) < 1
    True
    """

    rate: float

    def __post_init__(self) -> None:
        require_positive(self.rate, "rate")

    # ------------------------------------------------------------------
    # Analytic quantities
    # ------------------------------------------------------------------
    @property
    def mtbf(self) -> float:
        """Mean time between errors ``mu = 1 / lambda`` in seconds."""
        return 1.0 / self.rate

    def strike_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        """Probability ``p(T) = 1 - exp(-lambda T)`` of >= 1 error in ``T`` s.

        Accepts scalars or arrays; negative exposures are rejected because
        a negative time window has no physical meaning.
        """
        t = as_float_array(exposure)
        if np.any(t < 0):
            raise InvalidParameterError("exposure must be >= 0")
        p = -np.expm1(-self.rate * t)
        return float(p) if is_scalar(exposure) else p

    def survival_probability(self, exposure: ScalarOrArray) -> ScalarOrArray:
        """Probability ``exp(-lambda T)`` that no error strikes in ``T`` s."""
        t = as_float_array(exposure)
        if np.any(t < 0):
            raise InvalidParameterError("exposure must be >= 0")
        q = np.exp(-self.rate * t)
        return float(q) if is_scalar(exposure) else q

    def expected_time_lost(self, work: ScalarOrArray, speed: ScalarOrArray) -> ScalarOrArray:
        """Expected time lost to an interrupting error, ``T_lost(w, sigma)``.

        This is the mean arrival time of the first error *conditioned on
        the error striking within the window* ``tau = work / speed``:

        ``E[X | X < tau] = 1/lambda - tau / (exp(lambda tau) - 1)``.

        For ``lambda * tau -> 0`` this tends to ``tau / 2`` (an error
        strikes "on average at half the period", the classic Young/Daly
        heuristic); we use the numerically stable ``expm1`` form and fall
        back to the Taylor value ``tau/2 * (1 - lambda tau / 6)`` when
        ``lambda * tau`` underflows.
        """
        w = as_float_array(work)
        s = as_float_array(speed)
        if np.any(w < 0):
            raise InvalidParameterError("work must be >= 0")
        if np.any(s <= 0):
            raise InvalidParameterError("speed must be > 0")
        tau = w / s
        x = self.rate * tau
        # For huge lambda*tau, expm1 overflows to inf and tau/inf -> 0,
        # which is the correct limit (the loss tends to the MTBF).
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            exact = 1.0 / self.rate - tau / np.expm1(x)
        # Series fallback where lambda*tau is so small that expm1(x) ~ x
        # loses all precision in the subtraction (x below ~1e-8).
        series = tau / 2.0 * (1.0 - x / 6.0)
        out = np.where(x < 1e-8, series, exact)
        return float(out) if (is_scalar(work) and is_scalar(speed)) else out

    # ------------------------------------------------------------------
    # Sampling (Monte-Carlo substrate)
    # ------------------------------------------------------------------
    def sample_arrivals(self, rng: np.random.Generator, size: int | tuple[int, ...]) -> FloatArray:
        """Draw first-arrival times ``X ~ Exp(lambda)`` (seconds)."""
        return rng.exponential(scale=self.mtbf, size=size)

    def sample_strikes(
        self, rng: np.random.Generator, exposure: ScalarOrArray, size: int | tuple[int, ...]
    ) -> npt.NDArray[np.bool_]:
        """Draw Bernoulli indicators of >= 1 error within ``exposure`` s."""
        p = self.strike_probability(exposure)
        return rng.random(size) < p

    # ------------------------------------------------------------------
    # Derived processes
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "ExponentialErrors":
        """A new process with rate multiplied by ``factor`` (> 0).

        Useful for splitting a total rate into fail-stop and silent
        fractions (see :class:`repro.errors.combined.CombinedErrors`).
        """
        return ExponentialErrors(rate=self.rate * require_positive(factor, "factor"))
