"""Command-line interface: ``python -m repro <command>``.

The solving commands are wired through the unified :mod:`repro.api`
(``Scenario``/``Study`` + the backend registry); ``--backend`` flags
select a registered solver backend where more than one applies.

Commands
--------
``configs``
    List the eight catalog configurations.
``backends``
    List the registered solver backends.
``schedules``
    List the re-execution speed-schedule policies and their spec
    grammar.
``errors``
    List the pluggable error-model families (renewal arrival
    processes) and their spec grammar.
``solve``
    Solve one scenario, optionally under a per-attempt speed schedule
    (``repro solve --config hera-xscale --rho 3 --schedule geom:0.4,1.5,1``);
    repeating ``--schedule`` sweeps a whole schedule axis in one
    batched ``schedule-grid`` solve (``--csv`` exports every row).
    ``--errors weibull:shape=0.7,mtbf=5e3,failstop=0.2`` solves under
    a non-exponential renewal error model (speed pairs are enumerated
    through the batched ``schedule-grid`` backend when no schedule is
    given).
``table``
    Regenerate a Section-4.2 speed-pair table
    (``repro table --config hera-xscale --rho 3``).
``sweep``
    Run one parameter sweep and print/export the series
    (``repro sweep --config atlas-crusoe --axis C --csv out.csv``).
``figure``
    Run every panel of one paper figure
    (``repro figure fig2``).
``validate``
    Monte-Carlo vs model agreement check
    (``repro validate --config hera-xscale --work 2764 --sigma1 0.4``).
``theorem2``
    Demonstrate the Theta(lambda^{-2/3}) scaling of Theorem 2.
``pareto``
    Trace the energy-vs-time Pareto frontier and locate its knee.
``frontier``
    The pipeline-native frontier: any schedule x error-model scenario,
    compiled to one deduplicated Experiment plan over the batched
    backends, with CSV/JSON export
    (``repro frontier --errors weibull:shape=0.7,mtbf=3e5 --schedule
    geom:0.4,1.5,1``).
``savings``
    Energy savings over the baseline along a sweep axis — two-speed vs
    one-speed, or (with ``--errors``) pair enumeration vs the best
    constant-speed schedule under a renewal error model.
``fraction``
    Sweep the fail-stop fraction f of the Section-5 combined model.
``multiverif``
    Optimise the number of verifications per checkpoint (extension).
``trace``
    Simulate a short application run and render a Figure-1 timeline.
``report``
    Regenerate the headline reproduction report (Markdown).
``bench``
    The statistically rigorous perf harness (:mod:`repro.perf`):
    ``repro bench run`` measures the registered workload suites
    (warmup + repetitions, medians, bootstrap CIs) and writes
    ``BENCH_<suite>.json``; ``repro bench compare`` classifies two
    reports via CI overlap (the CI regression gate); ``repro bench
    list`` shows the suites.
``pool``
    The process-wide warm-worker execution pool behind
    ``transport="warm"`` (:mod:`repro.exec`): ``repro pool status``
    reports workers, health and lifetime counters (``--start`` spawns
    and heartbeats the fleet first); ``repro pool stop`` shuts it down.
``cache``
    The process-wide solve cache (:mod:`repro.api.cache`):
    ``repro cache stats`` prints size, totals and the per-backend
    hit/miss breakdown; ``repro cache clear`` resets it.
``serve``
    The solver-as-a-service HTTP job API (:mod:`repro.service`):
    ``repro serve --port 8337`` boots the async job layer — JSON
    experiment specs in, SSE progress and CSV/JSON artifacts out —
    over the warm worker pool and the shared solve cache
    (docs/service.md).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from . import __version__
from .api.backends import available_backends, get_backend
from .api.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api.result import ResultSet
from .analysis.savings import summarize_savings
from .analysis.scaling import fit_power_law
from .errors.combined import CombinedErrors
from .failstop.secondorder import theorem2_work
from .failstop.solver import time_optimal_work
from .platforms.catalog import configuration_names, get_configuration
from .platforms.configuration import Configuration
from .platforms.platform import Platform
from .platforms.catalog import XSCALE
from .reporting.csvio import write_series_csv, write_table_csv
from .reporting.tables import (
    format_savings_line,
    format_speed_pair_table,
    format_sweep_series,
)
from .schedules import parse_schedule, schedule_kinds
from .simulation.estimators import check_agreement
from .sweep.axes import AXIS_NAMES, axis_by_name
from .sweep.figures import FIGURES, run_figure
from .sweep.runner import run_sweep
from .sweep.tables import speed_pair_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A different re-execution speed can help' (ICPP 2016).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("configs", help="list catalog configurations")

    sub.add_parser("backends", help="list registered solver backends")

    sub.add_parser("schedules", help="list speed-schedule policies and spec grammar")

    sub.add_parser("errors", help="list error-model families and spec grammar")

    p_solve = sub.add_parser(
        "solve", help="solve one scenario (optionally with a speed schedule)"
    )
    p_solve.add_argument("--config", default="hera-xscale", help="configuration name")
    p_solve.add_argument("--rho", type=float, default=3.0, help="performance bound")
    p_solve.add_argument(
        "--mode", choices=("silent", "combined", "failstop"), default="silent"
    )
    p_solve.add_argument("--failstop-fraction", type=float, default=None)
    p_solve.add_argument("--rate", type=float, default=None, help="override error rate")
    p_solve.add_argument(
        "--schedule", action="append", default=None, metavar="SPEC",
        help="per-attempt speed schedule spec, e.g. two:0.4,0.6 or geom:0.4,1.5,1 "
             "(see 'repro schedules'); omit to enumerate speed pairs; repeat the "
             "flag to sweep a schedule axis in one batched solve "
             "(general schedules go through the vectorised schedule-grid backend)",
    )
    p_solve.add_argument(
        "--errors", default=None, metavar="SPEC",
        help="explicit error model spec, e.g. weibull:shape=0.7,mtbf=5e3,failstop=0.2 "
             "(see 'repro errors'); carries its own rate/split, so it conflicts "
             "with --mode/--failstop-fraction/--rate",
    )
    p_solve.add_argument("--backend", default=None, help="solver backend override")
    p_solve.add_argument(
        "--analyze", choices=("frontier", "savings"), default=None,
        help="run an analysis verb on the solved scenario(s): 'savings' compares "
             "against the schedule-less pair enumeration of the same scenario, "
             "'frontier' reads the energy-vs-time trade-off off a --schedule axis",
    )
    p_solve.add_argument("--csv", default=None, help="also write a one-row results CSV")
    p_solve.add_argument(
        "--simulate", type=int, default=0, metavar="N",
        help="Monte-Carlo cross-check the solution with N samples",
    )
    p_solve.add_argument("--seed", type=int, default=12345, help="simulation seed")

    p_table = sub.add_parser("table", help="Section-4.2 speed-pair table")
    p_table.add_argument("--config", default="hera-xscale", help="configuration name")
    p_table.add_argument("--rho", type=float, default=3.0, help="performance bound")
    p_table.add_argument("--csv", default=None, help="also write CSV to this path")

    p_sweep = sub.add_parser("sweep", help="parameter sweep (one figure panel)")
    p_sweep.add_argument("--config", default="atlas-crusoe")
    p_sweep.add_argument("--axis", choices=AXIS_NAMES, default="C")
    p_sweep.add_argument("--rho", type=float, default=3.0)
    p_sweep.add_argument("--points", type=int, default=None, help="axis resolution")
    p_sweep.add_argument("--csv", default=None, help="also write CSV to this path")
    p_sweep.add_argument(
        "--backend", choices=("firstorder", "grid"), default="firstorder",
        help="solver backend (grid = vectorised batch path)",
    )

    p_fig = sub.add_parser("figure", help="run all panels of one paper figure")
    p_fig.add_argument("figure_id", choices=sorted(FIGURES, key=lambda f: int(f[3:])))
    p_fig.add_argument("--rho", type=float, default=3.0)
    p_fig.add_argument("--points", type=int, default=None)
    p_fig.add_argument("--csv-dir", default=None, help="write one CSV per panel here")
    p_fig.add_argument(
        "--backend", choices=("firstorder", "grid"), default="firstorder",
        help="solver backend (grid = vectorised batch path)",
    )

    p_val = sub.add_parser("validate", help="Monte-Carlo vs model agreement")
    p_val.add_argument("--config", default="hera-xscale")
    p_val.add_argument("--work", type=float, default=2764.0)
    p_val.add_argument("--sigma1", type=float, default=0.4)
    p_val.add_argument("--sigma2", type=float, default=None)
    p_val.add_argument(
        "--schedule", default=None, metavar="SPEC",
        help="per-attempt speed schedule spec (overrides --sigma1/--sigma2)",
    )
    p_val.add_argument("--failstop-fraction", type=float, default=0.0)
    p_val.add_argument(
        "--errors", default=None, metavar="SPEC",
        help="explicit error model spec (e.g. gamma:shape=2,mtbf=5e3); "
             "overrides --failstop-fraction",
    )
    p_val.add_argument("--samples", type=int, default=20000)
    p_val.add_argument("--seed", type=int, default=12345)

    p_t2 = sub.add_parser("theorem2", help="Theta(lambda^-2/3) scaling demo")
    p_t2.add_argument("--checkpoint", type=float, default=300.0, help="C (s)")
    p_t2.add_argument("--sigma", type=float, default=0.5, help="first speed")
    p_t2.add_argument("--points", type=int, default=7)

    p_par = sub.add_parser("pareto", help="energy-vs-time Pareto frontier")
    p_par.add_argument("--config", default="hera-xscale")
    p_par.add_argument("--rho-max", type=float, default=10.0)
    p_par.add_argument("--points", type=int, default=60)

    p_fr = sub.add_parser(
        "frontier",
        help="energy-vs-time frontier through the Experiment pipeline "
             "(any schedule x error-model scenario, batched backends)",
    )
    p_fr.add_argument("--config", default="hera-xscale")
    p_fr.add_argument("--rho-min", type=float, default=None,
                      help="tightest bound (default: the feasibility edge)")
    p_fr.add_argument("--rho-max", type=float, default=10.0)
    p_fr.add_argument("--points", type=int, default=60)
    p_fr.add_argument(
        "--schedule", default=None, metavar="SPEC",
        help="trace the frontier under this per-attempt speed schedule",
    )
    p_fr.add_argument(
        "--errors", default=None, metavar="SPEC",
        help="trace the frontier under this renewal error model "
             "(e.g. weibull:shape=0.7,mtbf=3e5)",
    )
    p_fr.add_argument("--backend", default=None, help="force one solver backend")
    p_fr.add_argument("--explain", action="store_true",
                      help="print the deduplicated execution plan first")
    p_fr.add_argument("--csv", default=None, help="export the frontier as CSV")
    p_fr.add_argument("--json", default=None, help="export the frontier as JSON")

    p_sav = sub.add_parser(
        "savings",
        help="energy savings over the baseline along a sweep axis "
             "(two-speed vs one-speed; with --errors: pair enumeration "
             "vs the best constant-speed schedule)",
    )
    p_sav.add_argument("--config", default="atlas-crusoe")
    p_sav.add_argument("--axis", choices=AXIS_NAMES, default="C")
    p_sav.add_argument("--rho", type=float, default=3.0)
    p_sav.add_argument("--points", type=int, default=None, help="axis resolution")
    p_sav.add_argument(
        "--errors", default=None, metavar="SPEC",
        help="compute the savings under this error model (baseline becomes "
             "the best constant-speed schedule per point)",
    )
    p_sav.add_argument("--backend", default=None, help="force one solver backend")
    p_sav.add_argument("--csv", default=None, help="export the per-point savings CSV")
    p_sav.add_argument("--json", default=None, help="export the savings as JSON")

    p_frac = sub.add_parser("fraction", help="fail-stop fraction sweep (Section 5)")
    p_frac.add_argument("--config", default="hera-xscale")
    p_frac.add_argument("--rho", type=float, default=3.0)
    p_frac.add_argument("--rate", type=float, default=None, help="total error rate")
    p_frac.add_argument("--points", type=int, default=11)
    p_frac.add_argument(
        "--processes", type=int, default=None,
        help="fan the numeric solves out over this many worker processes",
    )

    p_mv = sub.add_parser("multiverif", help="optimise verifications per checkpoint")
    p_mv.add_argument("--config", default="hera-xscale")
    p_mv.add_argument("--rho", type=float, default=3.0)
    p_mv.add_argument("--max-q", type=int, default=6)
    p_mv.add_argument("--recall", type=float, default=1.0)
    p_mv.add_argument("--rate", type=float, default=None, help="override error rate")

    p_tr = sub.add_parser("trace", help="Figure-1 timeline of a simulated run")
    p_tr.add_argument("--config", default="hera-xscale")
    p_tr.add_argument("--rate", type=float, default=2e-4, help="error rate (amplified default for visibility)")
    p_tr.add_argument("--failstop-fraction", type=float, default=0.0)
    p_tr.add_argument("--patterns", type=int, default=4)
    p_tr.add_argument("--sigma1", type=float, default=0.4)
    p_tr.add_argument("--sigma2", type=float, default=0.8)
    p_tr.add_argument("--seed", type=int, default=20160601)
    p_tr.add_argument("--width", type=int, default=100)

    p_rep = sub.add_parser("report", help="regenerate the reproduction report")
    p_rep.add_argument("--out", default=None, help="write Markdown here (default stdout)")
    p_rep.add_argument("--montecarlo-samples", type=int, default=0,
                       help="add a simulation-agreement section with this many samples")

    p_bench = sub.add_parser(
        "bench", help="statistically rigorous perf benchmarks (BENCH_*.json)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    pb_run = bench_sub.add_parser(
        "run", help="measure suites and write BENCH_<suite>.json"
    )
    pb_run.add_argument("suites", nargs="*", help="suite names (default: all)")
    pb_run.add_argument(
        "--quick", action="store_true", help="reduced grids (CI smoke sizes)"
    )
    pb_run.add_argument(
        "--reps", type=int, default=5, help="timed repetitions per workload"
    )
    pb_run.add_argument(
        "--warmup", type=int, default=1, help="untimed warmup calls per workload"
    )
    pb_run.add_argument(
        "--out", default="results", help="directory for BENCH_<suite>.json"
    )
    pb_run.add_argument(
        "--baseline-dir", default=None,
        help="compare each suite against BENCH_<suite>.json in this "
             "directory; exit 1 on any CI-overlap regression",
    )
    pb_cmp = bench_sub.add_parser(
        "compare", help="classify two reports via CI overlap"
    )
    pb_cmp.add_argument("baseline", help="baseline BENCH_*.json")
    pb_cmp.add_argument("current", help="current BENCH_*.json")
    bench_sub.add_parser("list", help="list the registered bench suites")

    p_pool = sub.add_parser(
        "pool", help="inspect/control the warm-worker execution pool"
    )
    pool_sub = p_pool.add_subparsers(dest="pool_command", required=True)
    pp_status = pool_sub.add_parser(
        "status",
        help="show the process-wide warm pool (workers, health, counters)",
    )
    pp_status.add_argument(
        "--start", action="store_true",
        help="start the pool's workers (and heartbeat them) before reporting",
    )
    pp_status.add_argument(
        "--workers", type=int, default=None,
        help="fleet size when --start creates the pool (default: CPU-capped)",
    )
    pool_sub.add_parser(
        "stop", help="shut the default warm pool's workers down"
    )

    p_cache = sub.add_parser(
        "cache", help="inspect/reset the process-wide solve cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser(
        "stats",
        help="entry count, totals, and per-backend hit/miss breakdown",
    )
    cache_sub.add_parser("clear", help="drop all entries and counters")

    p_serve = sub.add_parser(
        "serve", help="run the solver-as-a-service HTTP job API (docs/service.md)"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8337, help="bind port")
    p_serve.add_argument(
        "--transport", default="warm", choices=("warm", "pooled", "inline"),
        help="where solve shards execute (default: the warm worker pool)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None,
        help="worker processes in the warm pool (default: auto)",
    )
    p_serve.add_argument(
        "--job-workers", type=int, default=2,
        help="concurrent job executor threads (default: 2)",
    )
    p_serve.add_argument(
        "--token", action="append", default=None, metavar="TOKEN",
        help="accepted bearer token (repeatable; default: REPRO_SERVICE_TOKENS "
        "env, or open access)",
    )
    p_serve.add_argument(
        "--artifact-dir", default=None,
        help="directory for job artifacts (default: REPRO_SERVICE_ARTIFACT_DIR "
        "env, or in-memory)",
    )
    p_serve.add_argument(
        "--max-points", type=int, default=None,
        help="per-job scenario cap (default: 200000)",
    )
    p_serve.add_argument(
        "--json-logs", action="store_true",
        help="emit structured JSON log lines on stderr",
    )

    p_lint = sub.add_parser(
        "lint", help="run the repo-specific static checks (docs/static-analysis.md)"
    )
    p_lint.add_argument("paths", nargs="*", help="files/directories (default: src/repro)")
    p_lint.add_argument("--select", default=None, help="comma-separated rule codes")
    p_lint.add_argument("--list-rules", action="store_true", help="print the rule catalog")
    p_lint.add_argument("--all", action="store_true",
                        help="also run ruff + mypy when installed")

    return parser


def _cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: delegate to the repro._lint CLI verbatim."""
    from ._lint.cli import main as lint_main

    argv: list[str] = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv.append("--list-rules")
    if args.all:
        argv.append("--all")
    return lint_main(argv)


def _cmd_configs(_: argparse.Namespace) -> int:
    for name in configuration_names():
        cfg = get_configuration(name)
        print(
            f"{name:22s} lambda={cfg.lam:.3g}  C={cfg.checkpoint_time:g}s  "
            f"V={cfg.verification_time:g}s  speeds={cfg.speeds}"
        )
    return 0


def _cmd_backends(_: argparse.Namespace) -> int:
    def yn(flag: bool) -> str:
        return "yes" if flag else "no"

    print(
        f"{'backend':26s} {'modes':29s} {'schedules':>9s} "
        f"{'errors':>7s} {'batched':>8s} {'jit':>4s} {'sweep':>6s}"
    )
    for name in available_backends():
        backend = get_backend(name)
        modes = ", ".join(sorted(backend.modes))
        print(
            f"{name:26s} {modes:29s} {yn(backend.handles_schedules):>9s} "
            f"{yn(backend.handles_error_models):>7s} {yn(backend.batched):>8s} "
            f"{yn(backend.uses_jit):>4s} {yn(backend.sweep_aware):>6s}"
        )
    print()
    print("batched backends solve whole Experiment/Study groups in one")
    print("broadcast pass; Experiment plans route each scenario to its")
    print("default backend unless --backend forces one.")
    from .schedules import jit_available

    state = "active" if jit_available() else "not installed - pure-NumPy fallback"
    print(f"jit backends use the optional numba kernel tier ({state})")
    print("sweep-aware backends get their plan shards ordered along")
    print("detected sweep axes (warm-started incremental solves)")
    return 0


def _cmd_schedules(_: argparse.Namespace) -> int:
    print("re-execution speed-schedule policies (spec grammar: kind:args)")
    print()
    examples = {
        "two": "two:0.4,0.6",
        "const": "const:0.5",
        "esc": "esc:0.4,0.6,0.8  or  esc:0.4,0.6@0.8",
        "geom": "geom:0.4,1.5,1  or  geom:0.8,0.5,1,0.2",
    }
    for kind, cls in schedule_kinds().items():
        summary = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{kind:8s} {cls.__name__:12s} {summary}")
        print(f"{'':8s} e.g. {examples.get(kind, '')}")
    print()
    print("use with: repro solve --schedule SPEC, repro validate --schedule SPEC,")
    print("or Scenario(schedule=...) from Python (see docs/schedules.md)")
    return 0


def _cmd_errors(_: argparse.Namespace) -> int:
    from .errors import error_model_kinds

    print("pluggable error-model families (spec grammar: kind:key=value,...)")
    print()
    examples = {
        "exp": "exp:mtbf=1e4  or  exp:rate=1e-4,failstop=0.2",
        "weibull": "weibull:shape=0.7,mtbf=5e3,failstop=0.2",
        "gamma": "gamma:shape=2,mtbf=5e3",
        "trace": "trace:file=failures.log  or  trace:times=900;4e3;1.2e4",
    }
    for kind, cls in error_model_kinds().items():
        summary = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"{kind:8s} {cls.__name__:20s} {summary}")
        print(f"{'':8s} e.g. {examples.get(kind, '')}")
    print()
    print("failstop=f splits the total process into fail-stop/silent sources;")
    print("each attempt draws a fresh inter-arrival (renewal semantics).")
    print("exp models keep the closed-form fast paths; other families route")
    print("through the schedule backends (see docs/errors.md).")
    print()
    print("use with: repro solve --errors SPEC, repro validate --errors SPEC,")
    print("or Scenario(errors=...) from Python")
    return 0


def _solve_schedule_axis(args: argparse.Namespace, specs: list[str]) -> int:
    """Several ``--schedule`` flags: one batched solve over the axis."""
    from .api.study import Study
    from .exceptions import (
        InvalidParameterError,
        UnknownBackendError,
        UnsupportedScenarioError,
    )

    try:
        scenarios = tuple(
            Scenario(
                config=args.config,
                rho=args.rho,
                mode=args.mode,
                failstop_fraction=args.failstop_fraction,
                error_rate=args.rate,
                schedule=parse_schedule(spec),
                errors=args.errors,
                backend=args.backend,
            )
            for spec in specs
        )
    except InvalidParameterError as exc:
        print(f"invalid scenario: {exc}")
        return 1
    try:
        results = Study(scenarios=scenarios, name="schedule-axis").solve()
    except (UnknownBackendError, UnsupportedScenarioError) as exc:
        print(f"bad backend routing: {exc}")
        return 1
    print(f"schedule axis   : {len(results)} policies  "
          f"(config {args.config}, rho {args.rho:g}, mode {args.mode})")
    print(f"{'schedule':24s} {'backend':14s} {'W':>9s} {'E/W':>9s} {'T/W':>8s}")
    for res in results:
        spec = res.scenario.schedule.spec()
        if res.feasible:
            print(f"{spec:24s} {res.provenance.backend:14s} "
                  f"{res.best.work:>9.0f} {res.best.energy_overhead:>9.2f} "
                  f"{res.best.time_overhead:>8.4f}")
        else:
            bound = f"rho_min={res.rho_min:.3f}" if res.rho_min else "infeasible"
            print(f"{spec:24s} {res.provenance.backend:14s} {bound:>28s}")
    feasible = [r for r in results if r.feasible]
    if feasible:
        best = min(feasible, key=lambda r: r.best.energy_overhead)
        print(f"best            : {best.scenario.schedule.spec()}  "
              f"E/W = {best.best.energy_overhead:.2f} mJ/work")
    if args.analyze == "frontier" and feasible:
        frontier = results.frontier()
        knee = frontier.knee()
        print(f"frontier        : {len(frontier)} non-dominated of "
              f"{len(feasible)} feasible policies; knee at "
              f"{knee.result.scenario.schedule.spec()} "
              f"(T/W = {knee.x:.4f}, E/W = {knee.y:.2f})")
    elif args.analyze == "savings":
        _print_schedule_savings(args, results)
    if args.simulate > 0:
        print("(--simulate applies to single-schedule solves; skipped)")
    if args.csv:
        path = results.to_csv(args.csv)
        print(f"wrote {path}")
    return 0 if feasible else 1


def _print_schedule_savings(args: argparse.Namespace, results: "ResultSet") -> None:
    """``solve --analyze savings``: each scheduled row vs the
    schedule-less pair enumeration of the same scenario."""
    from .exceptions import InfeasibleBoundError

    try:
        baseline = Scenario(
            config=args.config,
            rho=args.rho,
            mode=args.mode,
            failstop_fraction=args.failstop_fraction,
            error_rate=args.rate,
            errors=args.errors,
        ).solve()
    except InfeasibleBoundError:
        print("savings         : baseline pair enumeration infeasible")
        return
    from .api.result import ResultSet

    base_set = ResultSet(results=(baseline,) * len(results), name="pair-baseline")
    savings = results.savings(base_set, values=range(len(results)), axis="index")
    print(f"savings vs pair enumeration (E/W = "
          f"{baseline.best.energy_overhead:.2f} mJ/work):")
    for res, pct in zip(results, savings.percent):
        spec = res.scenario.schedule.spec() if res.scenario.schedule else "-"
        if np.isnan(pct):
            print(f"  {spec:24s} infeasible")
        else:
            print(f"  {spec:24s} {pct:+7.2f}%")


def _cmd_solve(args: argparse.Namespace) -> int:
    from .exceptions import (
        InfeasibleBoundError,
        InvalidParameterError,
        UnknownBackendError,
        UnsupportedScenarioError,
    )

    specs = args.schedule or []
    if len(specs) > 1:
        return _solve_schedule_axis(args, specs)
    try:
        schedule = parse_schedule(specs[0]) if specs else None
        scenario = Scenario(
            config=args.config,
            rho=args.rho,
            mode=args.mode,
            failstop_fraction=args.failstop_fraction,
            error_rate=args.rate,
            schedule=schedule,
            errors=args.errors,
            backend=args.backend,
        )
    except InvalidParameterError as exc:
        print(f"invalid scenario: {exc}")
        return 1
    try:
        result = scenario.solve()
    except InfeasibleBoundError as exc:
        print(f"infeasible: {exc}")
        return 1
    except (UnknownBackendError, UnsupportedScenarioError) as exc:
        print(f"bad backend routing: {exc}")
        return 1
    best = result.best
    print(f"scenario        : {scenario.describe()}")
    print(f"backend         : {result.provenance.backend}")
    if schedule is not None:
        print(f"schedule        : {schedule.spec()}  "
              f"(attempts 1..4: {schedule.speeds_for_attempts(4)})")
    print(f"speed pair      : ({best.sigma1:g}, {best.sigma2:g})")
    print(f"pattern size    : W = {best.work:.0f} work units")
    print(f"energy overhead : E/W = {best.energy_overhead:.2f} mJ/work")
    print(f"time overhead   : T/W = {best.time_overhead:.4f} s/work  (bound {args.rho:g})")
    if args.analyze == "frontier":
        print("(--analyze frontier needs a --schedule axis; repeat --schedule, "
              "or use 'repro frontier' for a rho sweep)")
    elif args.analyze == "savings":
        if schedule is None:
            print("(--analyze savings compares a schedule against the pair "
                  "enumeration; nothing to compare without --schedule)")
        else:
            from .api.result import ResultSet

            _print_schedule_savings(
                args, ResultSet(results=(result,), name="solve")
            )
    if args.csv:
        from .api.result import ResultSet

        path = ResultSet(results=(result,), name="solve").to_csv(args.csv)
        print(f"wrote {path}")
    if args.simulate > 0:
        report = result.simulate(n=args.simulate, rng=args.seed)
        s = report.summary
        print(f"simulated time  : {s.mean_time/best.work:.4f} s/work  "
              f"(z={report.time_zscore:+.2f})")
        print(f"simulated energy: {s.mean_energy/best.work:.2f} mJ/work  "
              f"(z={report.energy_zscore:+.2f})")
        ok = report.agrees()
        print(f"agreement (|z| <= 4): {'PASS' if ok else 'FAIL'}")
        return 0 if ok else 1
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from .exceptions import InfeasibleBoundError
    from .sweep.tables import infeasible_table

    cfg = get_configuration(args.config)
    try:
        solution = Scenario(config=cfg, rho=args.rho).solve().raw
    except InfeasibleBoundError:
        table = infeasible_table(cfg, args.rho)
    else:
        table = speed_pair_table(cfg, args.rho, solution=solution)
    print(format_speed_pair_table(table))
    if args.csv:
        path = write_table_csv(args.csv, table)
        print(f"\nwrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    cfg = get_configuration(args.config)
    kwargs = {"n": args.points} if args.points else {}
    axis = axis_by_name(args.axis, **kwargs)
    series = run_sweep(cfg, args.rho, axis, backend=args.backend)
    print(format_sweep_series(series, max_rows=40))
    try:
        s = summarize_savings(series)
        print()
        print(format_savings_line(s.config_name, s.axis_name, s.max_savings_percent, s.argmax_value))
    except ValueError:
        print("\n(no point feasible for both solvers)")
    if args.csv:
        path = write_series_csv(args.csv, series)
        print(f"wrote {path}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    panels = run_figure(args.figure_id, rho=args.rho, n=args.points, backend=args.backend)
    for panel, series in panels.items():
        print(format_sweep_series(series, max_rows=16))
        try:
            s = summarize_savings(series)
            print(format_savings_line(s.config_name, s.axis_name, s.max_savings_percent, s.argmax_value))
        except ValueError:
            print("(no point feasible for both solvers)")
        print()
        if args.csv_dir:
            path = write_series_csv(
                f"{args.csv_dir}/{args.figure_id}_{panel}.csv", series
            )
            print(f"wrote {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .exceptions import InvalidParameterError

    cfg = get_configuration(args.config)
    errors = None
    if args.failstop_fraction > 0:
        errors = CombinedErrors(cfg.lam, args.failstop_fraction)
    if args.errors:
        from .errors import parse_error_model

        try:
            errors = parse_error_model(args.errors)
        except InvalidParameterError as exc:
            print(f"invalid error model: {exc}")
            return 1
    if args.schedule:
        try:
            schedule = parse_schedule(args.schedule)
        except InvalidParameterError as exc:
            print(f"invalid schedule: {exc}")
            return 1
        report = check_agreement(
            cfg,
            work=args.work,
            schedule=schedule,
            errors=errors,
            n=args.samples,
            rng=args.seed,
        )
    else:
        report = check_agreement(
            cfg,
            work=args.work,
            sigma1=args.sigma1,
            sigma2=args.sigma2,
            errors=errors,
            n=args.samples,
            rng=args.seed,
        )
    s = report.summary
    print(f"config          : {cfg.name}")
    if args.errors:
        print(f"error model     : {errors.spec()}")
    if report.schedule is not None:
        print(f"pattern         : W={report.work:g}  schedule={report.schedule.spec()}")
    else:
        print(f"pattern         : W={report.work:g}  s1={report.sigma1}  s2={report.sigma2}")
    print(f"samples         : {s.n}")
    print(f"expected time   : {report.expected_time:.3f} s")
    print(f"simulated time  : {s.mean_time:.3f} +- {s.sem_time:.3f} s  (z={report.time_zscore:+.2f})")
    print(f"expected energy : {report.expected_energy:.3f} mJ")
    print(f"simulated energy: {s.mean_energy:.3f} +- {s.sem_energy:.3f} mJ  (z={report.energy_zscore:+.2f})")
    print(f"mean re-execs   : {s.mean_reexecutions:.4f}")
    ok = report.agrees()
    print(f"agreement (|z| <= 4): {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_theorem2(args: argparse.Namespace) -> int:
    lams = np.logspace(-6, -3, args.points)
    works = []
    print(f"{'lambda':>10}  {'W numeric':>12}  {'W theorem2':>12}  {'ratio':>7}")
    for lam in lams:
        plat = Platform(
            "theorem2", error_rate=float(lam),
            checkpoint_time=args.checkpoint, verification_time=0.0,
        )
        cfg = Configuration(platform=plat, processor=XSCALE)
        w_num = time_optimal_work(
            cfg, CombinedErrors(float(lam), 1.0), args.sigma, 2.0 * args.sigma
        )
        w_th = theorem2_work(float(lam), args.checkpoint, args.sigma)
        works.append(w_num)
        print(f"{lam:>10.2e}  {w_num:>12.1f}  {w_th:>12.1f}  {w_num / w_th:>7.4f}")
    fit = fit_power_law(lams, np.array(works))
    print(f"\nfitted exponent: {fit.exponent:.4f}  (Theorem 2 predicts -2/3 = {-2/3:.4f};")
    print("Young/Daly would give -1/2)")
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from .analysis.pareto import pareto_frontier

    cfg = get_configuration(args.config)
    frontier = pareto_frontier(cfg, rho_hi=args.rho_max, n=args.points)
    knee = frontier.knee()
    print(f"{cfg.name}: Pareto frontier ({len(frontier)} distinct trade-offs)")
    print(f"{'rho':>8}  {'T/W':>8}  {'E/W':>10}  {'pair':>12}")
    for p in frontier.points:
        marker = "  <- knee" if p is knee else ""
        print(
            f"{p.rho:>8.3f}  {p.time_overhead:>8.4f}  {p.energy_overhead:>10.2f}  "
            f"({p.solution.sigma1}, {p.solution.sigma2}){marker}"
        )
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    from .api.experiment import Experiment
    from .core.feasibility import min_performance_bound_config
    from .exceptions import (
        InvalidParameterError,
        UnknownBackendError,
        UnsupportedScenarioError,
    )

    cfg = get_configuration(args.config)
    rho_lo = args.rho_min
    if rho_lo is None:
        # With a schedule/model the two-speed feasibility edge is only a
        # hint; infeasible head points simply drop out of the frontier.
        rho_lo = min_performance_bound_config(cfg) * 1.0001
    if not rho_lo < args.rho_max:
        print(f"need rho-min < rho-max, got [{rho_lo:g}, {args.rho_max:g}]")
        return 1
    try:
        experiment = Experiment.over(
            configs=(cfg,),
            rhos=tuple(float(r) for r in np.linspace(rho_lo, args.rho_max, args.points)),
            schedules=(args.schedule,),
            error_models=(args.errors,),
            name=f"frontier:{cfg.name}",
        )
        plan = experiment.plan(args.backend)
    except (InvalidParameterError, UnknownBackendError, UnsupportedScenarioError) as exc:
        print(f"invalid frontier spec: {exc}")
        return 1
    if args.explain:
        print(plan.describe())
        print()
    frontier = plan.execute().frontier()
    if len(frontier) == 0:
        print(f"{cfg.name}: no feasible point in [{rho_lo:g}, {args.rho_max:g}]")
        return 1

    bits = [f"{cfg.name}"]
    if args.schedule:
        bits.append(f"schedule {args.schedule}")
    if args.errors:
        bits.append(f"errors {args.errors}")
    knee = frontier.knee()
    print(f"{' '.join(bits)}: frontier with {len(frontier)} distinct trade-offs "
          f"(backends: {', '.join(frontier.provenance.backends)})")
    print(f"{'rho':>8}  {'T/W':>8}  {'E/W':>10}")
    for p in frontier.points:
        marker = "  <- knee" if p is knee else ""
        print(f"{p.rho:>8.3f}  {p.x:>8.4f}  {p.y:>10.2f}{marker}")
    if args.csv:
        print(f"wrote {frontier.to_csv(args.csv)}")
    if args.json:
        print(f"wrote {frontier.to_json(args.json)}")
    return 0


def _best_per_block(results: "ResultSet", block: int) -> "ResultSet":
    """Reduce a ResultSet of per-point candidate blocks to the best
    (lowest-energy feasible) result per block."""
    from .api.result import ResultSet

    best = []
    for start in range(0, len(results), block):
        rows = [results[k] for k in range(start, start + block)]
        feasible = [r for r in rows if r.feasible]
        best.append(
            min(feasible, key=lambda r: r.best.energy_overhead)
            if feasible
            else rows[0]
        )
    return ResultSet(results=tuple(best), name=f"{results.name}:best-per-point")


def _cmd_savings(args: argparse.Namespace) -> int:
    from .api.experiment import Experiment
    from .exceptions import (
        InvalidParameterError,
        UnknownBackendError,
        UnsupportedScenarioError,
    )
    from .schedules import Constant

    cfg = get_configuration(args.config)
    kwargs = {"n": args.points} if args.points else {}
    axis = axis_by_name(args.axis, **kwargs)

    try:
        if args.errors is None:
            candidate = Experiment.over_axis(
                cfg, args.rho, axis, name=f"savings:{cfg.name}:{axis.name}"
            ).solve(args.backend)
            baseline = Experiment.over_axis(
                cfg, args.rho, axis, modes=("single-speed",),
                name="single-speed-baseline",
            ).solve(args.backend)
            baseline_desc = "one-speed optimum"
        else:
            # Under an explicit error model the one-speed baseline is
            # the best *constant* schedule per point, solved in the
            # same batched pass as the pair enumeration.
            points = [axis.apply(cfg, args.rho, v) for v in axis.values]
            candidate = Experiment.from_scenarios(
                (
                    Scenario(config=c, rho=r, errors=args.errors)
                    for c, r in points
                ),
                name=f"savings:{cfg.name}:{axis.name}",
            ).solve(args.backend)
            speeds = cfg.speeds
            baseline = _best_per_block(
                Experiment.from_scenarios(
                    (
                        Scenario(config=c, rho=r, errors=args.errors,
                                 schedule=Constant(s))
                        for c, r in points
                        for s in speeds
                    ),
                    name="const-baseline",
                ).solve(args.backend),
                block=len(speeds),
            )
            baseline_desc = "best constant-speed schedule"
    except (
        InvalidParameterError,
        UnknownBackendError,
        UnsupportedScenarioError,
    ) as exc:
        print(f"invalid savings spec: {exc}")
        return 1

    savings = candidate.savings(baseline, values=axis.values, axis=axis.name)
    model = f"  errors {args.errors}" if args.errors else ""
    print(f"{cfg.name}: savings vs {baseline_desc} along {axis.label} "
          f"(rho = {args.rho:g}){model}")
    print(f"{'value':>12}  {'E candidate':>11}  {'E baseline':>11}  {'saving %':>9}")
    for v, c, b, p in zip(
        savings.values, savings.candidate_y, savings.baseline_y, savings.percent
    ):
        if np.isnan(p):
            print(f"{v:>12.4g}  {'-':>11}  {'-':>11}  {'-':>9}")
        else:
            print(f"{v:>12.4g}  {c:>11.2f}  {b:>11.2f}  {p:>9.2f}")
    if savings.finite_mask.any():
        print(f"max saving      : {savings.max_savings_percent:.2f}% "
              f"at {axis.name} = {savings.argmax_value:g} "
              f"(mean {savings.mean_savings_percent:.2f}%, "
              f"{savings.num_points_with_savings()} point(s) > 0.01%)")
    else:
        print("(no point feasible for both candidate and baseline)")
    if args.csv:
        print(f"wrote {savings.to_csv(args.csv)}")
    if args.json:
        print(f"wrote {savings.to_json(args.json)}")
    return 0 if savings.finite_mask.any() else 1


def _cmd_fraction(args: argparse.Namespace) -> int:
    from .sweep.fraction import sweep_failstop_fraction

    cfg = get_configuration(args.config)
    sweep = sweep_failstop_fraction(
        cfg,
        args.rho,
        total_rate=args.rate,
        fractions=np.linspace(0.0, 1.0, args.points),
        processes=args.processes,
    )
    print(
        f"{cfg.name}: combined-error optimum vs fail-stop fraction "
        f"(rho = {args.rho:g}, lambda = {sweep.total_rate:g}/s)"
    )
    print(f"{'f':>5}  {'s1':>5} {'s2':>5}  {'Wopt':>9}  {'E/W':>9}  {'T/W':>7}")
    for f, s1, s2, w, e, t in zip(
        sweep.fractions, sweep.sigma1(), sweep.sigma2(),
        sweep.work(), sweep.energy_overhead(), sweep.time_overhead(),
    ):
        if np.isnan(e):
            print(f"{f:>5.2f}  {'-':>5} {'-':>5}  {'-':>9}  {'-':>9}  {'-':>7}")
        else:
            print(f"{f:>5.2f}  {s1:>5.2f} {s2:>5.2f}  {w:>9.0f}  {e:>9.1f}  {t:>7.3f}")
    return 0


def _cmd_multiverif(args: argparse.Namespace) -> int:
    from .core.numeric import solve_bicrit_exact
    from .extensions.multiverif import solve_bicrit_multiverif

    cfg = get_configuration(args.config)
    if args.rate is not None:
        cfg = cfg.with_error_rate(args.rate)
    best = solve_bicrit_multiverif(cfg, args.rho, max_q=args.max_q, recall=args.recall)
    single = solve_bicrit_exact(cfg, args.rho)
    print(f"{cfg.name}  rho = {args.rho:g}  lambda = {cfg.lam:g}/s  recall = {args.recall:g}")
    print(f"  best q           : {best.q} verifications per checkpoint")
    print(f"  speed pair       : ({best.sigma1}, {best.sigma2})")
    print(f"  pattern size     : {best.work:.0f} work units")
    print(f"  energy overhead  : {best.energy_overhead:.2f} mJ/work")
    print(f"  single-verif ref : {single.energy_overhead:.2f} mJ/work "
          f"(pair ({single.sigma1}, {single.sigma2}))")
    gain = (1 - best.energy_overhead / single.energy_overhead) * 100
    print(f"  gain over q = 1  : {gain:.2f}%")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .reporting.gantt import format_timeline, format_trace
    from .simulation.application import ApplicationSimulator

    cfg = get_configuration(args.config).with_error_rate(args.rate)
    errors = None
    if args.failstop_fraction > 0:
        errors = CombinedErrors(args.rate, args.failstop_fraction)
    sim = ApplicationSimulator(cfg, errors=errors, rng=args.seed)
    from .core.solver import solve_bicrit

    best = solve_bicrit(cfg, 3.0).best
    work = best.work
    result = sim.run(
        total_work=args.patterns * work, work=work,
        sigma1=args.sigma1, sigma2=args.sigma2,
    )
    print(format_timeline(result, width=args.width))
    print()
    print(format_trace(result, max_events=30))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .reporting.summary import build_report, write_report

    if args.out:
        result = write_report(args.out, montecarlo_samples=args.montecarlo_samples)
        print(f"wrote {args.out}")
    else:
        result = build_report(montecarlo_samples=args.montecarlo_samples)
        print(result.markdown)
    return 0 if result.ok else 1


def _print_report_summary(report: "object") -> None:
    from .perf import BenchReport

    assert isinstance(report, BenchReport)
    print(f"suite {report.name}: {report.repetitions} reps, "
          f"warmup {report.warmup}, {report.confidence:.0%} CIs")
    for ws in report.workloads:
        line = (
            f"  {ws.name:20s} median {ws.median:10.4f}s "
            f"[{ws.ci[0]:.4f}, {ws.ci[1]:.4f}]"
        )
        if ws.speedup is not None and ws.speedup_ci is not None:
            line += (
                f"  speedup {ws.speedup:6.2f}x "
                f"[{ws.speedup_ci[0]:.2f}, {ws.speedup_ci[1]:.2f}] "
                f"vs {ws.baseline}"
            )
        print(line)


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .exceptions import InvalidParameterError
    from .perf import (
        BenchReport,
        BenchRunner,
        build_suite,
        compare_reports,
        suite_names,
    )

    if args.bench_command == "list":
        print("bench suites (repro bench run [SUITE ...]):")
        for name in suite_names():
            workloads = build_suite(name, quick=True)
            print(f"  {name:18s} {', '.join(w.name for w in workloads)}")
        return 0

    if args.bench_command == "compare":
        base, cur = Path(args.baseline), Path(args.current)
        if base.is_dir() and cur.is_dir():
            # Directory mode: gate every BENCH_*.json present on both
            # sides (the committed-baselines-vs-fresh-run shape).
            shared = sorted(
                p.name for p in base.glob("BENCH_*.json") if (cur / p.name).exists()
            )
            if not shared:
                raise InvalidParameterError(
                    f"no BENCH_*.json reports shared by {base} and {cur}"
                )
            pairs = [(base / n, cur / n) for n in shared]
        elif base.is_file() and cur.is_file():
            pairs = [(base, cur)]
        else:
            raise InvalidParameterError(
                "bench compare needs two BENCH_*.json files or two "
                f"report directories, got {base} and {cur}"
            )
        bad: list[str] = []
        for base_path, cur_path in pairs:
            comparison = compare_reports(
                BenchReport.load(base_path), BenchReport.load(cur_path)
            )
            for wc in comparison.workloads:
                print(f"  {wc.describe()}")
            if not comparison.ok:
                print(f"REGRESSION in suite {comparison.name}")
                bad.append(comparison.name)
            else:
                print(f"suite {comparison.name}: no regressions")
        return 1 if bad else 0

    # run
    names = tuple(args.suites) or suite_names()
    unknown = [n for n in names if n not in suite_names()]
    if unknown:
        raise InvalidParameterError(
            f"unknown bench suite(s): {', '.join(unknown)}; "
            f"available: {', '.join(suite_names())}"
        )
    runner = BenchRunner(repetitions=args.reps, warmup=args.warmup)
    failed: list[str] = []
    for name in names:
        report = runner.run(name, build_suite(name, quick=args.quick))
        path = report.write(args.out)
        _print_report_summary(report)
        print(f"  wrote {path}")
        if args.baseline_dir is not None:
            base_path = Path(args.baseline_dir) / f"BENCH_{name}.json"
            if not base_path.exists():
                print(f"  no baseline {base_path}; skipping gate")
                continue
            comparison = compare_reports(BenchReport.load(base_path), report)
            for wc in comparison.workloads:
                print(f"  {wc.describe()}")
            if not comparison.ok:
                failed.append(name)
    if failed:
        print(f"REGRESSION in suite(s): {', '.join(failed)}")
        return 1
    return 0


def _cmd_pool(args: argparse.Namespace) -> int:
    """``repro pool``: status/stop of the process-wide warm pool.

    The pool is process-local state: a bare ``status`` in a fresh CLI
    process reports that no pool exists yet; ``--start`` spawns the
    fleet, heartbeats it, and reports — the shape embedding callers
    (and the CI smoke test) exercise.
    """
    from .exec import default_pool_or_none, get_default_pool, shutdown_default_pool

    if args.pool_command == "stop":
        if default_pool_or_none() is None:
            print("warm pool: not running in this process")
            return 0
        shutdown_default_pool()
        print("warm pool: stopped")
        return 0

    # status
    if default_pool_or_none() is None and not args.start:
        print(
            "warm pool: not created in this process "
            '(run a plan with transport="warm", or pass --start)'
        )
        return 0
    pool = get_default_pool(max_workers=args.workers)
    if args.start:
        pool.start()
        checked = pool.check_health()
        healthy = sum(1 for ok in checked.values() if ok)
        print(f"heartbeat: {healthy}/{len(checked)} worker(s) answered")
    print(pool.status().describe())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """``repro cache``: stats/clear of the process-wide solve cache.

    Like the warm pool, the cache is process-local state: a bare
    ``stats`` in a fresh CLI process reports empty counters.  The
    per-backend breakdown is the observable face of the incremental
    tier — a repeated sweep should show its replays under the backend
    that solved it, not folded into one global number.
    """
    from .api.cache import DEFAULT_CACHE, clear_default_cache

    if args.cache_command == "clear":
        entries = len(DEFAULT_CACHE)
        clear_default_cache()
        print(f"solve cache: cleared {entries} entry(ies)")
        return 0

    # stats
    hits, misses = DEFAULT_CACHE.stats()
    bound = DEFAULT_CACHE.maxsize if DEFAULT_CACHE.maxsize is not None else "unbounded"
    print(f"solve cache: {len(DEFAULT_CACHE)} entry(ies) (maxsize {bound})")
    print(f"  total: {hits} hit(s), {misses} miss(es)")
    breakdown = DEFAULT_CACHE.stats_by_backend()
    if breakdown:
        print(f"  {'backend':26s} {'hits':>8s} {'misses':>8s} {'hit rate':>9s}")
        for name, (h, m) in breakdown.items():
            rate = f"{h / (h + m):8.1%}" if h + m else "       -"
            print(f"  {name:26s} {h:>8d} {m:>8d} {rate:>9s}")
    else:
        print("  (no lookups yet in this process)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: boot the solver service in the foreground.

    Flags override the ``REPRO_SERVICE_*`` environment; the service
    runs on the dependency-free stdlib carrier (install the
    ``repro[service]`` extra for the FastAPI/uvicorn shell instead).
    """
    from .service import ServiceApp, ServiceConfig, make_server

    overrides: dict[str, object] = {
        "transport": args.transport,
        "job_workers": args.job_workers,
        "json_logs": bool(args.json_logs),
    }
    if args.token is not None:
        overrides["tokens"] = tuple(args.token)
    if args.artifact_dir is not None:
        overrides["artifact_dir"] = args.artifact_dir
    if args.workers is not None:
        overrides["max_workers"] = args.workers
    if args.max_points is not None:
        overrides["max_points"] = args.max_points
    config = ServiceConfig.from_env(**overrides)
    server = make_server(ServiceApp(config), host=args.host, port=args.port)
    auth = "bearer-token" if config.auth_enabled else "open (no tokens configured)"
    print(f"repro service listening on {server.url}")
    print(f"  transport: {config.transport}  job workers: {config.job_workers}")
    print(f"  auth: {auth}")
    print("  docs: docs/service.md  (Ctrl-C to stop)")
    server.serve_forever()
    return 0


_COMMANDS = {
    "configs": _cmd_configs,
    "backends": _cmd_backends,
    "schedules": _cmd_schedules,
    "errors": _cmd_errors,
    "solve": _cmd_solve,
    "table": _cmd_table,
    "sweep": _cmd_sweep,
    "figure": _cmd_figure,
    "validate": _cmd_validate,
    "theorem2": _cmd_theorem2,
    "pareto": _cmd_pareto,
    "frontier": _cmd_frontier,
    "savings": _cmd_savings,
    "fraction": _cmd_fraction,
    "multiverif": _cmd_multiverif,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "bench": _cmd_bench,
    "pool": _cmd_pool,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
