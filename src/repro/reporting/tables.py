"""Paper-style ASCII rendering of tables and sweep series.

The renderers are deliberately plain (no third-party table libraries):
fixed-width columns, the paper's "-" convention for infeasible rows,
and a ``*`` marker on the overall-best (the paper's bold) row.
"""

from __future__ import annotations

from ..sweep.runner import SweepSeries
from ..sweep.tables import SpeedPairTable

__all__ = ["format_speed_pair_table", "format_sweep_series", "format_savings_line"]


def format_speed_pair_table(table: SpeedPairTable) -> str:
    """Render a Section-4.2 table.

    Example output (Hera/XScale, rho = 3)::

        sigma1   best sigma2       Wopt    E/W
        ------   -----------   --------   ----
          0.15             -          -      -
          0.40          0.40       2764    417 *

    The trailing ``*`` marks the overall best pair (the paper's bold).
    """
    lines = [
        f"{table.config_name}   rho = {table.rho:g}",
        f"{'sigma1':>6}   {'best sigma2':>11}   {'Wopt':>8}   {'E/W':>6}",
        f"{'-' * 6}   {'-' * 11}   {'-' * 8}   {'-' * 6}",
    ]
    for row in table.rows:
        if not row.feasible:
            lines.append(f"{row.sigma1:>6.2f}   {'-':>11}   {'-':>8}   {'-':>6}")
        else:
            star = " *" if row.is_best else ""
            lines.append(
                f"{row.sigma1:>6.2f}   {row.best_sigma2:>11.2f}   "
                f"{row.work:>8.0f}   {row.energy_overhead:>6.0f}{star}"
            )
    return "\n".join(lines)


def format_sweep_series(series: SweepSeries, *, max_rows: int | None = None) -> str:
    """Render a sweep series as a fixed-width table.

    Columns match the three panels of the paper's figures: the axis
    value, the optimal speeds (two-speed pair and one-speed baseline),
    the optimal pattern sizes, and the energy overheads.  ``max_rows``
    thins long series for terminal display (first/last rows kept).
    """
    header = (
        f"{series.config_name}   axis = {series.axis_name}   rho = {series.rho:g}\n"
        f"{'value':>12}  {'s1':>5} {'s2':>5} {'s':>5}  "
        f"{'W(s1,s2)':>10} {'W(s,s)':>10}  {'E2/W':>10} {'E1/W':>10}"
    )
    rows = []
    pts = list(series.points)
    idx = range(len(pts))
    if max_rows is not None and len(pts) > max_rows:
        half = max_rows // 2
        idx = list(range(half)) + list(range(len(pts) - (max_rows - half), len(pts)))
    for i in idx:
        p = pts[i]
        if p.two_speed is None:
            two = f"{'-':>5} {'-':>5}  {'-':>10}"
            e2 = f"{'-':>10}"
        else:
            two = f"{p.two_speed.sigma1:>5.2f} {p.two_speed.sigma2:>5.2f}"
            e2 = f"{p.two_speed.energy_overhead:>10.1f}"
        if p.single_speed is None:
            one_s, one_w, e1 = f"{'-':>5}", f"{'-':>10}", f"{'-':>10}"
        else:
            one_s = f"{p.single_speed.sigma1:>5.2f}"
            one_w = f"{p.single_speed.work:>10.0f}"
            e1 = f"{p.single_speed.energy_overhead:>10.1f}"
        w2 = f"{p.two_speed.work:>10.0f}" if p.two_speed else f"{'-':>10}"
        rows.append(f"{p.value:>12.6g}  {two} {one_s}  {w2} {one_w}  {e2} {e1}")
    return "\n".join([header, *rows])


def format_savings_line(config_name: str, axis_name: str, max_savings: float, at_value: float) -> str:
    """One-line savings summary, e.g. for figure captions."""
    return (
        f"{config_name} [{axis_name}]: up to {max_savings:.1f}% energy saving "
        f"(at {axis_name} = {at_value:g})"
    )
