"""ASCII rendering of application traces — Figure 1 in text form.

Turns an :class:`~repro.simulation.application.ApplicationResult` into
the paper's Figure-1 timeline: execution segments labelled with their
speed, verifications, checkpoints, recoveries, and error markers.

Two renderers:

* :func:`format_trace` — one line per event, exact timestamps;
* :func:`format_timeline` — a compact single-line bar where each
  character is one time quantum (``#`` execute, ``v`` verify, ``C``
  checkpoint, ``R`` recover, ``!`` fail-stop, ``x`` silent detection),
  the visual analogue of Figure 1.
"""

from __future__ import annotations

from ..simulation.application import ApplicationResult, EventKind, TraceEvent

__all__ = ["format_trace", "format_timeline"]

_BAR_CHARS = {
    EventKind.EXECUTE: "#",
    EventKind.PARTIAL_EXECUTE: "#",
    EventKind.VERIFY: "v",
    EventKind.CHECKPOINT: "C",
    EventKind.RECOVER: "R",
}

_MARKERS = {
    EventKind.FAILSTOP: "!",
    EventKind.SILENT_DETECTED: "x",
}


def _label(event: TraceEvent) -> str:
    kind = event.kind.value.upper()
    if event.kind in (EventKind.EXECUTE, EventKind.PARTIAL_EXECUTE, EventKind.VERIFY):
        return f"{kind}@{event.speed:g}"
    return kind


def format_trace(result: ApplicationResult, *, max_events: int | None = None) -> str:
    """One line per event with timestamps, durations and attempt labels.

    ``max_events`` truncates long traces (an ellipsis line reports how
    many events were dropped).
    """
    events = result.events
    shown = events if max_events is None else events[:max_events]
    lines = [
        f"{len(events)} events, {result.num_patterns} patterns, "
        f"{result.num_failstop} fail-stop + {result.num_silent} silent errors, "
        f"total {result.total_time:.1f} s"
    ]
    for e in shown:
        lines.append(
            f"  t={e.start:>12.1f}s  {_label(e):<14} dur={e.duration:>10.1f}s  "
            f"pattern {e.pattern_index} attempt {e.attempt}"
        )
    if len(shown) < len(events):
        lines.append(f"  ... ({len(events) - len(shown)} more events)")
    return "\n".join(lines)


def format_timeline(result: ApplicationResult, *, width: int = 100) -> str:
    """A Figure-1-style bar: one character per time quantum.

    Zero-duration markers (error strikes/detections) overwrite the
    character at their position so they stay visible at any scale.
    Includes a legend line.
    """
    if not result.events:
        return "(empty trace)"
    total = result.total_time
    if total <= 0:
        return "(zero-length trace)"
    quantum = total / width
    bar = [" "] * width

    # Paint in priority order: long CPU segments first, then the short
    # I/O segments (recoveries/checkpoints are often sub-quantum and
    # must stay visible), then zero-duration error markers.
    def paint(kinds: set[EventKind]) -> None:
        for e in result.events:
            if e.kind in kinds and e.duration > 0:
                ch = _BAR_CHARS.get(e.kind, "?")
                lo = min(int(e.start / quantum), width - 1)
                hi = min(int(e.end / quantum), width - 1)
                for k in range(lo, hi + 1):
                    bar[k] = ch

    paint({EventKind.EXECUTE, EventKind.PARTIAL_EXECUTE, EventKind.VERIFY})
    paint({EventKind.RECOVER, EventKind.CHECKPOINT})
    for e in result.events:
        if e.kind in _MARKERS:
            pos = min(int(e.start / quantum), width - 1)
            bar[pos] = _MARKERS[e.kind]

    legend = "# execute   v verify   C checkpoint   R recover   ! fail-stop   x silent-detected"
    scale = f"0 {'-' * (width - len(f'{total:.0f} s') - 4)} {total:.0f} s"
    return "\n".join(["".join(bar), scale, legend])
