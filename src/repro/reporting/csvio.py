"""CSV writers for sweep series and speed-pair tables.

Plain ``csv`` module output, one row per axis value / table row, with
empty cells for infeasible entries — the files under ``results/`` that
the benches emit are regenerated through these writers.
"""

from __future__ import annotations

import csv
from pathlib import Path
from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

from ..sweep.runner import SweepSeries
from ..sweep.tables import SpeedPairTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.result import Result

__all__ = [
    "write_series_csv",
    "write_table_csv",
    "read_series_csv_rows",
    "write_rows_csv",
]

_SERIES_FIELDS = (
    "value",
    "sigma1",
    "sigma2",
    "work_two",
    "energy_two",
    "time_two",
    "sigma_single",
    "work_single",
    "energy_single",
)


def write_series_csv(path: str | Path, series: SweepSeries) -> Path:
    """Write one sweep series to ``path``; returns the resolved path.

    Header row first; infeasible entries are empty cells (not NaN
    strings), which round-trips cleanly through spreadsheet tools.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_SERIES_FIELDS)
        for p in series.points:
            two = p.two_speed
            one = p.single_speed
            writer.writerow(
                [
                    f"{p.value:.10g}",
                    f"{two.sigma1:.6g}" if two else "",
                    f"{two.sigma2:.6g}" if two else "",
                    f"{two.work:.10g}" if two else "",
                    f"{two.energy_overhead:.10g}" if two else "",
                    f"{two.time_overhead:.10g}" if two else "",
                    f"{one.sigma1:.6g}" if one else "",
                    f"{one.work:.10g}" if one else "",
                    f"{one.energy_overhead:.10g}" if one else "",
                ]
            )
    return path


def write_table_csv(path: str | Path, table: SpeedPairTable) -> Path:
    """Write a Section-4.2 speed-pair table to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["sigma1", "best_sigma2", "work", "energy_overhead", "is_best"])
        for row in table.rows:
            if row.feasible:
                writer.writerow(
                    [
                        f"{row.sigma1:.6g}",
                        f"{row.best_sigma2:.6g}",
                        f"{row.work:.10g}",
                        f"{row.energy_overhead:.10g}",
                        "1" if row.is_best else "0",
                    ]
                )
            else:
                writer.writerow([f"{row.sigma1:.6g}", "", "", "", "0"])
    return path


def write_rows_csv(
    path: str | Path,
    fieldnames: Sequence[str],
    rows: Iterable[Mapping[str, object]],
) -> Path:
    """Write dict rows under a fixed header — the generic writer behind
    the analysis-result exports (``FrontierResult.to_csv`` & co).

    ``None`` values and NaN floats become empty cells; floats render
    with ``%.10g`` — 10 significant digits, the precision convention of
    every writer in this module (compact cells; re-reads agree with the
    in-memory values to ~1e-10 relative, not bit-exactly — use
    ``to_json``/``to_dicts`` for full-precision round trips).
    """
    import math

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(fieldnames)
        for row in rows:
            cells = []
            for name in fieldnames:
                v = row.get(name)
                if v is None:
                    cells.append("")
                elif isinstance(v, float):
                    cells.append("" if math.isnan(v) else f"{v:.10g}")
                else:
                    cells.append(str(v))
            writer.writerow(cells)
    return path


def read_series_csv_rows(path: str | Path) -> list[dict[str, str]]:
    """Read back a series CSV as a list of dict rows (round-trip tests)."""
    with Path(path).open(newline="") as fh:
        return list(csv.DictReader(fh))


_RESULT_FIELDS = (
    "config",
    "rho",
    "mode",
    "failstop_fraction",
    "error_rate",
    "errors",
    "schedule",
    "label",
    "backend",
    "cache_hit",
    "wall_time",
    "sigma1",
    "sigma2",
    "work",
    "energy_overhead",
    "time_overhead",
)


def write_results_csv(path: str | Path, results: "Iterable[Result]") -> Path:
    """Write a :class:`repro.api.ResultSet` (or iterable of results),
    one row per result, scenario order.

    Infeasible entries keep their scenario/provenance columns and leave
    the solution columns empty, mirroring :func:`write_series_csv`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_RESULT_FIELDS)
        for r in results:
            sc = r.scenario
            cfg = sc.config if isinstance(sc.config, str) else sc.config.name
            row = [
                cfg,
                f"{sc.rho:.10g}",
                sc.mode,
                # Effective fraction: failstop mode solves with f=1 even
                # when the field is None, and the report must say so.
                f"{sc.effective_failstop_fraction:.6g}"
                if sc.mode in ("combined", "failstop")
                else "",
                "" if sc.error_rate is None else f"{sc.error_rate:.10g}",
                "" if sc.errors is None else sc.errors.spec(),
                "" if sc.schedule is None else sc.schedule.spec(),
                sc.label or "",
                r.provenance.backend,
                "1" if r.provenance.cache_hit else "0",
                f"{r.provenance.wall_time:.6g}",
            ]
            if r.feasible:
                row += [
                    f"{r.best.sigma1:.6g}",
                    f"{r.best.sigma2:.6g}",
                    f"{r.best.work:.10g}",
                    f"{r.best.energy_overhead:.10g}",
                    f"{r.best.time_overhead:.10g}",
                ]
            else:
                row += ["", "", "", "", ""]
            writer.writerow(row)
    return path
