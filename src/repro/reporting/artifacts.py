"""CSV writers for the extension artefacts (frontier, fraction, regions).

Companions to :mod:`repro.reporting.csvio` for the result types the
extension studies produce; same conventions (header row, empty cells
for infeasible entries, parents created on demand).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..analysis.pareto import ParetoFrontier
from ..analysis.regions import RegionMap
from ..sweep.fraction import FractionSweep

__all__ = ["write_frontier_csv", "write_fraction_csv", "write_regions_csv"]


def _open(path: str | Path) -> Path:
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    return p


def write_frontier_csv(path: str | Path, frontier: ParetoFrontier) -> Path:
    """One row per frontier point: bound, achieved overheads, pair, Wopt."""
    p = _open(path)
    with p.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["rho", "time_overhead", "energy_overhead", "sigma1", "sigma2", "work"])
        for point in frontier.points:
            s = point.solution
            w.writerow([
                f"{point.rho:.10g}",
                f"{point.time_overhead:.10g}",
                f"{point.energy_overhead:.10g}",
                f"{s.sigma1:.6g}",
                f"{s.sigma2:.6g}",
                f"{s.work:.10g}",
            ])
    return p


def write_fraction_csv(path: str | Path, sweep: FractionSweep) -> Path:
    """One row per fail-stop fraction; empty cells where infeasible."""
    p = _open(path)
    with p.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["fraction", "sigma1", "sigma2", "work", "energy_overhead", "time_overhead"])
        for f, sol in zip(sweep.fractions, sweep.solutions):
            if sol is None:
                w.writerow([f"{f:.6g}", "", "", "", "", ""])
            else:
                w.writerow([
                    f"{f:.6g}",
                    f"{sol.sigma1:.6g}",
                    f"{sol.sigma2:.6g}",
                    f"{sol.work:.10g}",
                    f"{sol.energy_overhead:.10g}",
                    f"{sol.time_overhead:.10g}",
                ])
    return p


def write_regions_csv(path: str | Path, regions: RegionMap) -> Path:
    """Long-form grid: one row per (x, y) cell."""
    p = _open(path)
    with p.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow([regions.x_name, regions.y_name, "sigma1", "sigma2", "savings_percent"])
        for i, xv in enumerate(regions.x_values):
            for j, yv in enumerate(regions.y_values):
                s1 = regions.sigma1[i, j]
                if np.isnan(s1):
                    w.writerow([f"{xv:.10g}", f"{yv:.10g}", "", "", ""])
                else:
                    sav = regions.savings[i, j]
                    w.writerow([
                        f"{xv:.10g}",
                        f"{yv:.10g}",
                        f"{s1:.6g}",
                        f"{regions.sigma2[i, j]:.6g}",
                        f"{sav:.6g}" if np.isfinite(sav) else "",
                    ])
    return p
