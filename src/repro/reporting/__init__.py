"""Output rendering: ASCII tables, traces, CSV/JSON, reproduction reports."""

from .artifacts import write_fraction_csv, write_frontier_csv, write_regions_csv
from .csvio import (
    read_series_csv_rows,
    write_results_csv,
    write_series_csv,
    write_table_csv,
)
from .gantt import format_timeline, format_trace
from .summary import ReportResult, build_report, write_report
from .serialize import (
    dump_json,
    load_json,
    result_to_dict,
    series_from_dict,
    series_to_dict,
    solution_from_dict,
    solution_to_dict,
)
from .tables import format_savings_line, format_speed_pair_table, format_sweep_series

__all__ = [
    "format_speed_pair_table",
    "format_sweep_series",
    "format_savings_line",
    "write_series_csv",
    "write_table_csv",
    "write_results_csv",
    "read_series_csv_rows",
    "result_to_dict",
    "solution_to_dict",
    "solution_from_dict",
    "series_to_dict",
    "series_from_dict",
    "dump_json",
    "load_json",
    "format_trace",
    "format_timeline",
    "ReportResult",
    "build_report",
    "write_report",
    "write_frontier_csv",
    "write_fraction_csv",
    "write_regions_csv",
]
