"""One-shot reproduction report: regenerate the paper's headline results.

:func:`build_report` re-runs the fast core of the reproduction — the
four Section-4.2 tables, the Figure-2 savings headline, the Theorem-2
scaling fit and (optionally) a Monte-Carlo agreement pass — and renders
a Markdown report of paper-claimed vs measured values.  The CLI exposes
it as ``repro report``; CI can diff the output against a golden copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..analysis.savings import summarize_savings
from ..analysis.scaling import fit_power_law
from ..errors.combined import CombinedErrors
from ..failstop.secondorder import theorem2_work
from ..failstop.solver import time_optimal_work
from ..platforms.catalog import get_configuration
from ..platforms.configuration import Configuration
from ..platforms.platform import Platform
from ..platforms.catalog import XSCALE
from ..sweep.axes import checkpoint_axis
from ..sweep.runner import run_sweep
from ..sweep.tables import speed_pair_table
from .tables import format_speed_pair_table

__all__ = ["ReportResult", "build_report", "write_report"]

#: Paper values for the Section-4.2 best rows, used in the comparison table.
_PAPER_BEST = {
    8.0: ((0.4, 0.4), 2764, 416),
    3.0: ((0.4, 0.4), 2764, 416),
    1.775: ((0.6, 0.8), 4251, 690),
    1.4: ((0.8, 0.4), 4627, 1082),
}


@dataclass(frozen=True)
class ReportResult:
    """The rendered report plus the headline measured values."""

    markdown: str
    tables_match: bool
    fig2_max_savings: float
    theorem2_exponent: float

    @property
    def ok(self) -> bool:
        """True when every reproduction gate passes."""
        return (
            self.tables_match
            and 25.0 <= self.fig2_max_savings <= 40.0
            and abs(self.theorem2_exponent + 2 / 3) < 0.02
        )


def _section_tables() -> tuple[str, bool]:
    cfg = get_configuration("hera-xscale")
    lines = ["## Section 4.2 speed-pair tables (Hera/XScale)", ""]
    all_match = True
    for rho, (pair, wopt, energy) in _PAPER_BEST.items():
        table = speed_pair_table(cfg, rho)
        best = table.best_row.solution
        match = (
            best.speed_pair == pair
            and abs(best.work - wopt) <= 1.5
            and abs(best.energy_overhead - energy) <= 1.5
        )
        all_match &= match
        lines.append(
            f"* rho = {rho:g}: paper best {pair}, W = {wopt}, E/W = {energy}; "
            f"measured ({best.sigma1}, {best.sigma2}), W = {best.work:.0f}, "
            f"E/W = {best.energy_overhead:.0f} — "
            + ("**match**" if match else "**MISMATCH**")
        )
    lines += ["", "```", format_speed_pair_table(speed_pair_table(cfg, 3.0)), "```", ""]
    return "\n".join(lines), all_match


def _section_fig2() -> tuple[str, float]:
    cfg = get_configuration("atlas-crusoe")
    series = run_sweep(cfg, 3.0, checkpoint_axis(lo=50.0, hi=5000.0, n=40))
    s = summarize_savings(series)
    pairs = series.speed_pairs()
    lines = [
        "## Figure 2 (Atlas/Crusoe, checkpoint-cost sweep)",
        "",
        f"* optimal pair trajectory: {pairs[0]} at C = {series.values[0]:g} "
        f"-> {pairs[-1]} at C = {series.values[-1]:g} "
        "(paper: (0.45, 0.45) -> (0.45, 0.8))",
        f"* maximum two-speed saving: **{s.max_savings_percent:.1f}%** at "
        f"C = {s.argmax_value:g} s (paper: 'up to 35%')",
        "",
    ]
    return "\n".join(lines), s.max_savings_percent


def _section_theorem2() -> tuple[str, float]:
    lams = np.logspace(-7, -4, 6)
    works = []
    for lam in lams:
        cfg = Configuration(
            platform=Platform("t2", float(lam), 300.0, 0.0), processor=XSCALE
        )
        works.append(time_optimal_work(cfg, CombinedErrors(float(lam), 1.0), 0.4, 0.8))
    fit = fit_power_law(lams, np.array(works))
    ratio = works[0] / theorem2_work(float(lams[0]), 300.0, 0.4)
    lines = [
        "## Theorem 2 (fail-stop, sigma2 = 2 sigma1)",
        "",
        f"* fitted Wopt scaling exponent: **{fit.exponent:+.4f}** "
        f"(paper: -2/3 = {-2/3:+.4f}; Young/Daly would be -1/2)",
        f"* asymptotic-constant check at lambda = {lams[0]:.0e}: "
        f"Wopt / (12C/lambda^2)^(1/3) sigma = {ratio:.5f}",
        "",
    ]
    return "\n".join(lines), fit.exponent


def _section_montecarlo(samples: int) -> str:
    from ..core.solver import solve_bicrit
    from ..simulation.estimators import check_agreement

    lines = ["## Monte-Carlo validation", ""]
    worst = 0.0
    for name in ("hera-xscale", "atlas-crusoe"):
        cfg = get_configuration(name)
        best = solve_bicrit(cfg, 3.0).best
        rep = check_agreement(
            cfg, work=best.work, sigma1=best.sigma1, sigma2=best.sigma2,
            n=samples, rng=20160601,
        )
        worst = max(worst, rep.max_abs_zscore)
        lines.append(
            f"* {name}: z(time) = {rep.time_zscore:+.2f}, "
            f"z(energy) = {rep.energy_zscore:+.2f} over {samples} samples — "
            + ("agrees" if rep.agrees() else "DISAGREES")
        )
    lines += ["", f"worst |z| = {worst:.2f} (gate: 4.0)", ""]
    return "\n".join(lines)


def build_report(*, montecarlo_samples: int = 0) -> ReportResult:
    """Regenerate the headline results and render the Markdown report.

    ``montecarlo_samples > 0`` adds a simulation-agreement section
    (slower; 20k samples is a good setting).
    """
    tables_md, tables_ok = _section_tables()
    fig2_md, fig2_savings = _section_fig2()
    t2_md, t2_exp = _section_theorem2()
    parts = [
        "# Reproduction report — 'A different re-execution speed can help'",
        "",
        "Regenerated by `repro report`.",
        "",
        tables_md,
        fig2_md,
        t2_md,
    ]
    if montecarlo_samples > 0:
        parts.append(_section_montecarlo(montecarlo_samples))
    result = ReportResult(
        markdown="\n".join(parts),
        tables_match=tables_ok,
        fig2_max_savings=fig2_savings,
        theorem2_exponent=t2_exp,
    )
    verdict = "ALL REPRODUCTION GATES PASS" if result.ok else "SOME GATES FAILED"
    return ReportResult(
        markdown=result.markdown + f"\n---\n\n**{verdict}**\n",
        tables_match=result.tables_match,
        fig2_max_savings=result.fig2_max_savings,
        theorem2_exponent=result.theorem2_exponent,
    )


def write_report(path: str | Path, *, montecarlo_samples: int = 0) -> ReportResult:
    """Build the report and write it to ``path``."""
    result = build_report(montecarlo_samples=montecarlo_samples)
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(result.markdown)
    return result
