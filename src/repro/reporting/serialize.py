"""JSON round-trips for solver outputs and sweep series.

Each ``*_to_dict`` produces plain JSON-serialisable dictionaries (floats,
strings, lists, ``None``); the matching ``*_from_dict`` restores the
dataclasses exactly.  A ``schema`` tag guards against loading a payload
into the wrong decoder.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..core.solution import PatternSolution
from ..sweep.runner import SweepPoint, SweepSeries
from ..exceptions import InvalidParameterError

__all__ = [
    "solution_to_dict",
    "solution_from_dict",
    "series_to_dict",
    "series_from_dict",
    "result_to_dict",
    "dump_json",
    "load_json",
]

_SOLUTION_SCHEMA = "repro/pattern-solution/v1"
_SERIES_SCHEMA = "repro/sweep-series/v1"
_RESULT_SCHEMA = "repro/api-result/v1"


def solution_to_dict(sol: PatternSolution) -> dict[str, Any]:
    """Serialise one :class:`PatternSolution`."""
    return {
        "schema": _SOLUTION_SCHEMA,
        "sigma1": sol.sigma1,
        "sigma2": sol.sigma2,
        "work": sol.work,
        "energy_overhead": sol.energy_overhead,
        "time_overhead": sol.time_overhead,
        "energy_overhead_exact": sol.energy_overhead_exact,
        "time_overhead_exact": sol.time_overhead_exact,
        "rho_min": sol.rho_min,
    }


def solution_from_dict(data: dict[str, Any]) -> PatternSolution:
    """Restore a :class:`PatternSolution` (validates the schema tag)."""
    if data.get("schema") != _SOLUTION_SCHEMA:
        raise InvalidParameterError(f"not a pattern-solution payload: {data.get('schema')!r}")
    return PatternSolution(
        sigma1=data["sigma1"],
        sigma2=data["sigma2"],
        work=data["work"],
        energy_overhead=data["energy_overhead"],
        time_overhead=data["time_overhead"],
        energy_overhead_exact=data["energy_overhead_exact"],
        time_overhead_exact=data["time_overhead_exact"],
        rho_min=data["rho_min"],
    )


def series_to_dict(series: SweepSeries) -> dict[str, Any]:
    """Serialise one :class:`SweepSeries` (points carry ``None`` for
    infeasible solver outcomes)."""
    return {
        "schema": _SERIES_SCHEMA,
        "config_name": series.config_name,
        "axis_name": series.axis_name,
        "axis_label": series.axis_label,
        "rho": series.rho,
        "points": [
            {
                "value": p.value,
                "two_speed": solution_to_dict(p.two_speed) if p.two_speed else None,
                "single_speed": solution_to_dict(p.single_speed)
                if p.single_speed
                else None,
            }
            for p in series.points
        ],
    }


def series_from_dict(data: dict[str, Any]) -> SweepSeries:
    """Restore a :class:`SweepSeries` (validates the schema tag)."""
    if data.get("schema") != _SERIES_SCHEMA:
        raise InvalidParameterError(f"not a sweep-series payload: {data.get('schema')!r}")
    points = tuple(
        SweepPoint(
            value=p["value"],
            two_speed=solution_from_dict(p["two_speed"]) if p["two_speed"] else None,
            single_speed=solution_from_dict(p["single_speed"])
            if p["single_speed"]
            else None,
        )
        for p in data["points"]
    )
    return SweepSeries(
        config_name=data["config_name"],
        axis_name=data["axis_name"],
        axis_label=data["axis_label"],
        rho=data["rho"],
        points=points,
    )


def result_to_dict(result: Any) -> dict[str, Any]:
    """Serialise one :class:`repro.api.Result` (one-way export).

    The scenario is flattened to primitives (the configuration becomes
    its display name), the provenance is embedded, and the winning
    candidate keeps the fields every backend shares.  ``PatternSolution``
    bests additionally round-trip through :func:`solution_to_dict`.
    """
    scenario = result.scenario
    cfg = scenario.config
    best = result.best
    schedule = scenario.schedule
    errors = scenario.errors
    payload: dict[str, Any] = {
        "schema": _RESULT_SCHEMA,
        "scenario": {
            "config": cfg if isinstance(cfg, str) else cfg.name,
            "rho": scenario.rho,
            "mode": scenario.mode,
            "failstop_fraction": scenario.failstop_fraction,
            "error_rate": scenario.error_rate,
            "errors": None if errors is None else errors.to_dict(),
            "schedule": None if schedule is None else schedule.to_dict(),
            "label": scenario.label,
        },
        "provenance": {
            "backend": result.provenance.backend,
            "wall_time": result.provenance.wall_time,
            "cache_hit": result.provenance.cache_hit,
            "batch_size": result.provenance.batch_size,
        },
        "feasible": result.feasible,
        "rho_min": result.rho_min,
        "best": None,
    }
    if best is not None:
        if isinstance(best, PatternSolution):
            payload["best"] = solution_to_dict(best)
        else:
            payload["best"] = {
                "sigma1": best.sigma1,
                "sigma2": best.sigma2,
                "work": best.work,
                "energy_overhead": best.energy_overhead,
                "time_overhead": best.time_overhead,
            }
    return payload


def dump_json(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a payload dict as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Load a JSON payload written by :func:`dump_json`."""
    return json.loads(Path(path).read_text())
