"""The persistent warm-worker pool transport.

``PooledTransport`` pays a full process-pool spawn (and scenario-pack
rebuild) on every plan — fine for one big grid, ruinous for the many
small plans of an interactive session or a service loop.
:class:`WarmWorkerPool` keeps a fleet of worker processes alive across
plans and streams shards to whichever worker is free:

* **acquire/release** — workers are leased per shard
  (:meth:`WarmWorkerPool.acquire` / :meth:`WarmWorkerPool.release`)
  and returned to the idle set the moment their result lands, so a
  slow shard never idles the rest of the fleet;
* **health checks** — a heartbeat ping/pong over the worker queues
  (:meth:`check_health`, run at every ``prepare``) recycles silent or
  dead workers before the plan starts, and the harvest loop notices a
  worker that dies *mid-shard* within one poll tick;
* **recycling** — a worker that has solved ``max_tasks_per_worker``
  shards is retired and replaced, bounding any slow leak a backend
  might carry;
* **bounded retry** — a shard whose worker crashed is re-queued onto a
  healthy worker up to ``max_retries`` times before it is reported
  lost (:class:`~repro.exceptions.WorkerCrashError`);
* **graceful degradation** — when workers cannot be (re)started at
  all, the remaining shards solve inline in the parent process; the
  plan still completes, just without parallelism.

The pool is a :class:`~repro.exec.base.Transport`, so
``Experiment.solve(transport=pool)`` (or ``transport="warm"`` for the
process-wide :func:`get_default_pool`) routes a plan through it;
``close()`` only releases per-plan resources — workers stay warm until
:meth:`shutdown` (the default pool is shut down atexit).

Registry caveat: workers inherit the backend registry at fork, so
custom backends registered at runtime are visible to them under the
``fork`` start method (the Linux default).  Under ``spawn`` /
``forkserver`` — or after a worker is recycled under ``spawn`` —
custom backends must be registered at import time of your module (see
docs/execution.md).
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue as _queue
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING, Any

from ..exceptions import WorkerCrashError
from ..api.shm import PackLayout, ScenarioPack, solve_pack_shard
from .base import Shard, ShardOutcome, Transport, solve_shard_inline

if TYPE_CHECKING:  # pragma: no cover - typing only
    import multiprocessing
    from multiprocessing.context import BaseContext
    from multiprocessing.process import BaseProcess

    from ..api.result import Result
    from ..api.scenario import Scenario

__all__ = [
    "WarmWorkerPool",
    "PoolStatus",
    "WorkerStatus",
    "get_default_pool",
    "default_pool_or_none",
    "shutdown_default_pool",
    "warm_default_pool",
    "default_pool_lifespan",
]

#: Tasks a worker solves before it is retired and replaced.
DEFAULT_MAX_TASKS = 256

#: Seconds the harvest loop blocks per poll before re-checking worker
#: liveness — the crash-detection latency bound.
_POLL_TICK = 0.05


def _default_worker_count() -> int:
    """Default fleet size: the CPU count, capped (a solver pool past 8
    workers is usually memory-bound, not CPU-bound)."""
    return max(1, min(8, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _solve_payload(payload: tuple[Any, ...]) -> "list[Result]":
    """Solve one task payload inside a worker."""
    from ..api.backends import get_backend

    if payload[0] == "pack":
        _, name, layout, indices, backend = payload
        assert isinstance(layout, PackLayout)
        return solve_pack_shard(name, layout, list(indices), backend)
    _, scenarios, backend = payload
    return get_backend(backend).solve_batch(list(scenarios))


def _picklable_error(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a summary.

    An unpicklable exception would die silently in the queue's feeder
    thread and the parent would wait forever for the lost message —
    degrade the error, never the delivery.
    """
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")
    return exc


def _worker_main(
    worker_id: int,
    task_queue: "multiprocessing.Queue[tuple[Any, ...]]",
    result_queue: "multiprocessing.Queue[tuple[Any, ...]]",
) -> None:
    """Worker loop: solve tasks, answer pings, stop on request.

    Every task failure — including a stale scenario pack unlinked by an
    abandoned plan — is caught and reported, so a worker only dies by
    ``stop``, recycle, or an actual crash (the parent detects the
    latter via ``Process.is_alive``).
    """
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            result_queue.put(("bye", worker_id, None, None))
            return
        if kind == "ping":
            result_queue.put(("pong", worker_id, message[1], None))
            continue
        _, epoch, shard_id, payload = message
        try:
            results = _solve_payload(payload)
        except Exception as exc:  # noqa: BLE001 - report, never die
            result_queue.put(
                ("error", worker_id, (epoch, shard_id), _picklable_error(exc))
            )
        else:
            result_queue.put(("done", worker_id, (epoch, shard_id), results))


# ----------------------------------------------------------------------
# Parent-side bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    """Parent-side handle of one worker process."""

    worker_id: int
    process: "BaseProcess"
    task_queue: "multiprocessing.Queue[tuple[Any, ...]]"
    tasks_done: int = 0
    busy: "tuple[int, int] | None" = None  # (epoch, shard_id) in flight

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


@dataclass(frozen=True)
class WorkerStatus:
    """One worker's row of a :class:`PoolStatus`."""

    worker_id: int
    pid: int | None
    alive: bool
    busy: bool
    tasks_done: int


@dataclass(frozen=True)
class PoolStatus:
    """Snapshot of a :class:`WarmWorkerPool` for telemetry and the
    ``repro pool status`` CLI."""

    started: bool
    healthy: bool
    max_workers: int
    workers: tuple[WorkerStatus, ...] = ()
    tasks_completed: int = 0
    worker_crashes: int = 0
    workers_recycled: int = 0
    shard_retries: int = 0
    inline_fallbacks: int = 0

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        if not self.started:
            return (
                f"warm pool: not started (max_workers={self.max_workers}); "
                f"workers spawn lazily on the first plan"
            )
        health = "healthy" if self.healthy else "UNHEALTHY (inline fallback)"
        lines = [
            f"warm pool: {len(self.workers)} worker(s), "
            f"max_workers={self.max_workers}, {health}",
            f"  tasks completed {self.tasks_completed}, "
            f"crashes {self.worker_crashes}, "
            f"recycled {self.workers_recycled}, "
            f"retries {self.shard_retries}, "
            f"inline fallbacks {self.inline_fallbacks}",
        ]
        for ws in self.workers:
            state = "busy" if ws.busy else "idle"
            live = "alive" if ws.alive else "dead"
            lines.append(
                f"  worker {ws.worker_id}: pid={ws.pid} {live} {state} "
                f"tasks_done={ws.tasks_done}"
            )
        return "\n".join(lines)


class WarmWorkerPool(Transport):
    """A persistent pool of solver workers with acquire/release leases.

    Parameters
    ----------
    max_workers:
        Fleet size (default: CPU count capped at 8).
    max_tasks_per_worker:
        Shards a worker solves before being retired and replaced.
    max_retries:
        Crash-retries per shard before it is reported lost.
    heartbeat_timeout:
        Seconds to wait for ping/pong health checks at ``prepare``
        (``None`` disables the pre-plan heartbeat; mid-plan crash
        detection via process liveness is always on).
    start_method:
        ``multiprocessing`` start method (``None`` = platform default,
        ``fork`` on Linux — see the registry caveat in the module
        docstring).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        max_tasks_per_worker: int = DEFAULT_MAX_TASKS,
        max_retries: int = 2,
        heartbeat_timeout: float | None = 5.0,
        start_method: str | None = None,
    ) -> None:
        self.max_workers = max_workers or _default_worker_count()
        self.max_tasks_per_worker = max_tasks_per_worker
        self.max_retries = max_retries
        self.heartbeat_timeout = heartbeat_timeout
        self._start_method = start_method
        self._ctx: "BaseContext | None" = None
        self._result_queue: "multiprocessing.Queue[tuple[Any, ...]] | None" = None
        self._workers: dict[int, _Worker] = {}
        self._retiring: dict[int, _Worker] = {}
        self._idle: deque[int] = deque()
        self._next_worker_id = 0
        self._started = False
        self._unhealthy = False
        # Per-plan state
        self._epoch = 0
        self._scenarios: list["Scenario"] = []
        self._pack: ScenarioPack | None = None
        self._pending: deque[Shard] = deque()
        self._inflight: dict[int, Shard] = {}
        self._retries: dict[int, int] = {}
        self._ready: deque[ShardOutcome] = deque()
        self._pongs: set[object] = set()
        # Lifetime counters (PoolStatus)
        self._tasks_completed = 0
        self._worker_crashes = 0
        self._workers_recycled = 0
        self._shard_retries = 0
        self._inline_fallbacks = 0

    @property
    def parallelism(self) -> int:
        return self.max_workers

    # ------------------------------------------------------------------
    # Fleet lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn workers up to ``max_workers`` (idempotent).

        A failed spawn marks the pool unhealthy — plans then degrade to
        inline execution instead of failing.
        """
        if self._ctx is None:
            import multiprocessing

            self._ctx = multiprocessing.get_context(self._start_method)
            self._result_queue = self._ctx.Queue()
        self._started = True
        while len(self._workers) < self.max_workers:
            if self._spawn_worker() is None:
                break

    def _spawn_worker(self) -> _Worker | None:
        assert self._ctx is not None and self._result_queue is not None
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue: "multiprocessing.Queue[tuple[Any, ...]]" = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, task_queue, self._result_queue),
            name=f"repro-warm-worker-{worker_id}",
            daemon=True,
        )
        try:
            process.start()
        except OSError:
            self._unhealthy = True
            return None
        worker = _Worker(worker_id=worker_id, process=process, task_queue=task_queue)
        self._workers[worker_id] = worker
        self._idle.append(worker_id)
        self._unhealthy = False
        return worker

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker (graceful, then terminate) and reset."""
        everyone = list(self._workers.values()) + list(self._retiring.values())
        for worker in everyone:
            if worker.alive:
                try:
                    worker.task_queue.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover - queue gone
                    pass
        deadline = time.monotonic() + timeout
        for worker in everyone:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.alive:
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        self._workers.clear()
        self._retiring.clear()
        self._idle.clear()
        self._started = False
        self._ctx = None
        self._result_queue = None

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------
    def acquire(self, timeout: float | None = 0.0) -> _Worker | None:
        """Lease an idle, live worker; ``None`` when none frees up
        within ``timeout`` seconds (``None`` = wait indefinitely).

        Dead idle workers found on the way are replaced, and a worker
        past its task budget is recycled instead of handed out.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            while self._idle:
                worker = self._workers.get(self._idle.popleft())
                if worker is None:
                    continue
                if not worker.alive:
                    self._replace_worker(worker, crashed=True)
                    continue
                if worker.tasks_done >= self.max_tasks_per_worker:
                    self._recycle_worker(worker)
                    continue
                return worker
            if deadline is not None and time.monotonic() >= deadline:
                return None
            if not self._workers:
                return None
            self._pump(timeout=_POLL_TICK)
            self._reap_crashed()

    def release(self, worker: _Worker) -> None:
        """Return a leased worker to the idle set (or retire it when it
        has hit its task budget)."""
        worker.busy = None
        if worker.tasks_done >= self.max_tasks_per_worker:
            self._recycle_worker(worker)
        elif worker.worker_id in self._workers:
            self._idle.append(worker.worker_id)

    def _recycle_worker(self, worker: _Worker) -> None:
        """Retire a worker at its task budget and spawn a successor."""
        if self._workers.pop(worker.worker_id, None) is None:
            return
        self._workers_recycled += 1
        self._retiring[worker.worker_id] = worker
        try:
            worker.task_queue.put(("stop",))
        except (OSError, ValueError):  # pragma: no cover - queue gone
            pass
        if self._started:
            self._spawn_worker()

    def _replace_worker(self, worker: _Worker, *, crashed: bool) -> None:
        """Drop a dead worker and spawn a successor."""
        self._workers.pop(worker.worker_id, None)
        if crashed:
            self._worker_crashes += 1
        if self._started:
            self._spawn_worker()

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def check_health(self, timeout: float | None = None) -> dict[int, bool]:
        """Heartbeat every idle worker; recycle the silent and the dead.

        Sends a ping down each idle worker's queue and waits up to
        ``timeout`` (default ``heartbeat_timeout``) for the pongs.
        Returns ``{worker_id: healthy}`` for the checked workers.
        Busy workers are only liveness-checked — their heartbeat is the
        result they are about to deliver.
        """
        wait = self.heartbeat_timeout if timeout is None else timeout
        checked: dict[int, bool] = {}
        tokens: dict[object, int] = {}
        for worker_id in list(self._idle):
            worker = self._workers.get(worker_id)
            if worker is None:
                continue
            if not worker.alive:
                checked[worker_id] = False
                continue
            token = ("hb", self._epoch, worker_id)
            tokens[token] = worker_id
            try:
                worker.task_queue.put(("ping", token))
            except (OSError, ValueError):  # pragma: no cover - queue gone
                checked[worker_id] = False
        deadline = time.monotonic() + (wait or 0.0)
        while tokens and time.monotonic() < deadline:
            self._pump(timeout=_POLL_TICK)
            for token in [t for t in tokens if t in self._pongs]:
                checked[tokens.pop(token)] = True
                self._pongs.discard(token)
        for worker_id in tokens.values():
            checked[worker_id] = False
        for worker_id, healthy in checked.items():
            worker = self._workers.get(worker_id)
            if worker is not None and not healthy:
                try:
                    self._idle.remove(worker_id)
                except ValueError:
                    pass
                if worker.alive:
                    worker.process.terminate()
                self._replace_worker(worker, crashed=True)
        return checked

    def status(self) -> PoolStatus:
        """A :class:`PoolStatus` snapshot (no side effects)."""
        return PoolStatus(
            started=self._started,
            healthy=not self._unhealthy,
            max_workers=self.max_workers,
            workers=tuple(
                WorkerStatus(
                    worker_id=w.worker_id,
                    pid=w.process.pid,
                    alive=w.alive,
                    busy=w.busy is not None,
                    tasks_done=w.tasks_done,
                )
                for w in self._workers.values()
            ),
            tasks_completed=self._tasks_completed,
            worker_crashes=self._worker_crashes,
            workers_recycled=self._workers_recycled,
            shard_retries=self._shard_retries,
            inline_fallbacks=self._inline_fallbacks,
        )

    # ------------------------------------------------------------------
    # Transport protocol
    # ------------------------------------------------------------------
    def prepare(self, scenarios: Sequence["Scenario"]) -> None:
        # A new epoch: results of any shard abandoned by a previous
        # plan's interrupted harvest are discarded on arrival.
        self._epoch += 1
        self._scenarios = list(scenarios)
        self._pack = ScenarioPack.create(self._scenarios)
        self._pending.clear()
        self._inflight.clear()
        self._retries.clear()
        self._ready.clear()
        self.start()
        if self.heartbeat_timeout is not None and self._idle:
            self.check_health()

    def submit_shard(self, shard: Shard) -> None:
        self._pending.append(shard)
        self._dispatch()

    def as_completed(self) -> Iterator[ShardOutcome]:
        while self._ready or self._pending or self._inflight:
            if self._ready:
                yield self._ready.popleft()
                continue
            self._dispatch()
            if self._pending and not self._inflight and not self._live_workers():
                # Degraded: no worker could be started (or every one is
                # gone and irreplaceable) — finish the plan inline.
                shard = self._pending.popleft()
                self._inline_fallbacks += 1
                yield solve_shard_inline(
                    self._scenarios, shard, retries=self._retries.get(shard.shard_id, 0)
                )
                continue
            if self._inflight or self._pending:
                self._pump(timeout=_POLL_TICK)
                self._reap_crashed()

    def close(self) -> None:
        """End-of-plan cleanup: dispose the scenario pack, keep the
        workers warm.  (Use :meth:`shutdown` to stop the fleet.)"""
        if self._pack is not None:
            self._pack.dispose()
            self._pack = None
        self._scenarios = []
        self._pending.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _live_workers(self) -> int:
        return sum(1 for w in self._workers.values() if w.alive)

    def _payload(self, shard: Shard) -> tuple[Any, ...]:
        if self._pack is not None:
            name, layout, indices = self._pack.task(shard.indices)
            return ("pack", name, layout, indices, shard.backend)
        return (
            "list",
            [self._scenarios[u] for u in shard.indices],
            shard.backend,
        )

    def _dispatch(self) -> None:
        """Hand pending shards to idle workers (acquire -> send)."""
        while self._pending:
            worker = self.acquire(timeout=0.0)
            if worker is None:
                return
            shard = self._pending.popleft()
            try:
                worker.task_queue.put(
                    ("task", self._epoch, shard.shard_id, self._payload(shard))
                )
            except (OSError, ValueError):  # pragma: no cover - queue gone
                self._pending.appendleft(shard)
                self._replace_worker(worker, crashed=True)
                continue
            worker.busy = (self._epoch, shard.shard_id)
            self._inflight[shard.shard_id] = shard

    def _pump(self, timeout: float | None = None) -> None:
        """Drain the result queue, releasing workers and collecting
        fresh outcomes into the ready deque.

        Blocks up to ``timeout`` seconds for the *first* message, then
        takes whatever else is immediately available.
        """
        if self._result_queue is None:
            return
        block = timeout is not None and timeout > 0
        while True:
            try:
                message = self._result_queue.get(
                    block=block, timeout=timeout if block else None
                )
            except _queue.Empty:
                return
            block = False
            kind, worker_id, tag, body = message
            if kind == "pong":
                self._pongs.add(tag)
                continue
            if kind == "bye":
                retired = self._retiring.pop(worker_id, None)
                if retired is not None:
                    retired.process.join(timeout=1.0)
                continue
            # "done" / "error" for (epoch, shard_id) == tag
            epoch, shard_id = tag
            worker = self._workers.get(worker_id) or self._retiring.get(worker_id)
            if worker is not None and worker.busy == (epoch, shard_id):
                worker.tasks_done += 1
                self.release(worker)
            if epoch != self._epoch:
                continue  # stale: an abandoned plan's shard
            shard = self._inflight.pop(shard_id, None)
            if shard is None:
                continue  # already retried elsewhere / unknown
            retries = self._retries.get(shard_id, 0)
            if kind == "done":
                self._tasks_completed += 1
                self._ready.append(
                    ShardOutcome(
                        shard=shard,
                        results=tuple(body),
                        worker=f"warm-{worker_id}",
                        retries=retries,
                    )
                )
            else:
                # A shard *exception* is deterministic — retrying it on
                # another worker would fail identically, so report it.
                self._ready.append(
                    ShardOutcome(
                        shard=shard,
                        error=body,
                        worker=f"warm-{worker_id}",
                        retries=retries,
                    )
                )

    def _reap_crashed(self) -> None:
        """Detect workers that died mid-shard; retry or fail their work."""
        for worker in list(self._workers.values()):
            if worker.alive:
                continue
            busy = worker.busy
            self._replace_worker(worker, crashed=True)
            if busy is None:
                continue
            epoch, shard_id = busy
            if epoch != self._epoch:
                continue  # stale shard died with its worker; nothing to do
            shard = self._inflight.pop(shard_id, None)
            if shard is None:
                continue
            retries = self._retries.get(shard_id, 0) + 1
            self._retries[shard_id] = retries
            if retries <= self.max_retries:
                self._shard_retries += 1
                self._pending.appendleft(shard)
                self._dispatch()
            else:
                self._ready.append(
                    ShardOutcome(
                        shard=shard,
                        error=WorkerCrashError(1, len(shard)),
                        worker=f"warm-{worker.worker_id}",
                        retries=retries,
                    )
                )


# ----------------------------------------------------------------------
# The process-wide default pool
# ----------------------------------------------------------------------
_default_pool: WarmWorkerPool | None = None


def get_default_pool(max_workers: int | None = None) -> WarmWorkerPool:
    """The process-wide reusable pool behind ``transport="warm"``.

    Created lazily on first use (sized by ``max_workers`` then, default
    CPU-capped); later calls return the same pool regardless of
    ``max_workers`` — one warm fleet per process, shared by every plan.
    Shut down automatically atexit, or explicitly via
    :func:`shutdown_default_pool`.
    """
    global _default_pool
    if _default_pool is None:
        _default_pool = WarmWorkerPool(max_workers=max_workers)
    return _default_pool


def default_pool_or_none() -> WarmWorkerPool | None:
    """The process-wide pool if one has been created, else ``None`` —
    a peek that never creates the pool (``repro pool status`` uses it)."""
    return _default_pool


def shutdown_default_pool() -> None:
    """Stop the default pool's workers (a later ``get_default_pool``
    starts a fresh one)."""
    global _default_pool
    if _default_pool is not None:
        _default_pool.shutdown()
        _default_pool = None


def warm_default_pool(max_workers: int | None = None) -> WarmWorkerPool:
    """Eagerly start (and heartbeat) the process-wide pool.

    ``get_default_pool`` alone spawns nothing — workers appear lazily
    at the first plan's ``prepare``, which is the right behaviour for
    scripts but wrong for a long-lived server: the first request should
    not pay the fleet spawn.  This helper is the *startup* half of the
    server lifespan story: spawn the fleet now, heartbeat it, and
    return the pool ready to serve.
    """
    pool = get_default_pool(max_workers)
    pool.start()
    if pool.heartbeat_timeout is not None and pool._idle:
        pool.check_health()
    return pool


@contextmanager
def default_pool_lifespan(
    max_workers: int | None = None, *, drain_timeout: float = 5.0
) -> "Iterator[WarmWorkerPool]":
    """Tie the process-wide pool to an application lifespan.

    A long-lived server cannot rely on the atexit hook alone: atexit
    only runs at interpreter exit, while a server wants its fleet
    spawned *before* the first request (startup warm) and drained
    deterministically when the app stops — not when the process dies.
    ``with default_pool_lifespan(n):`` is that contract:

    * entry — :func:`warm_default_pool` spawns and heartbeats the
      fleet;
    * exit — :func:`shutdown_default_pool` stops every worker
      (graceful ``stop`` message first, ``terminate`` after
      ``drain_timeout`` seconds), even on error paths.

    The atexit hook stays registered as the backstop for processes
    that never exit the lifespan cleanly (``kill -9`` excepted — the
    workers are daemons and die with the parent).
    """
    pool = warm_default_pool(max_workers)
    try:
        yield pool
    finally:
        global _default_pool
        if _default_pool is pool:
            pool.shutdown(timeout=drain_timeout)
            _default_pool = None
        else:  # pragma: no cover - pool swapped mid-lifespan
            pool.shutdown(timeout=drain_timeout)


atexit.register(shutdown_default_pool)
