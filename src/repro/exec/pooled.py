"""Per-call process-pool transport: today's ``processes=`` semantics.

One fresh ``ProcessPoolExecutor`` per plan, fed through the zero-copy
:class:`~repro.api.shm.ScenarioPack` handoff (pickled fallback when
shared memory is unavailable).  Futures are harvested **as completed**:
a long first shard no longer delays the caching of later shards, and a
crashed worker — which breaks the whole per-call pool — surfaces as
error outcomes for the in-flight shards while every already-completed
future still delivers its results.

The per-plan fork/spawn cost this transport pays on every ``execute``
is exactly what the persistent :class:`~repro.exec.warm.WarmWorkerPool`
amortises; the ``dispatch_overhead`` bench suite measures the gap.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from ..api.shm import ScenarioPack, solve_pack_shard
from ..api.study import _solve_shard
from .base import Shard, ShardOutcome, Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.result import Result
    from ..api.scenario import Scenario

__all__ = ["PooledTransport"]


class PooledTransport(Transport):
    """A fresh ``ProcessPoolExecutor`` per plan (cold-pool dispatch).

    Parameters
    ----------
    max_workers:
        Worker processes of the per-plan pool; ``None`` uses the
        executor's own default (CPU count).
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None
        self._pack: ScenarioPack | None = None
        self._scenarios: list["Scenario"] = []
        self._futures: dict[Future["list[Result]"], Shard] = {}

    @property
    def parallelism(self) -> int:
        import os

        return self.max_workers or os.cpu_count() or 1

    # ------------------------------------------------------------------
    def prepare(self, scenarios: Sequence["Scenario"]) -> None:
        self._scenarios = list(scenarios)
        # Pack the unique scenarios once: each task then pickles only
        # (block name, layout, row indices).  None -> pickled fallback.
        self._pack = ScenarioPack.create(self._scenarios)
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        self._futures = {}

    def submit_shard(self, shard: Shard) -> None:
        assert self._pool is not None, "prepare() must run before submit_shard()"
        if self._pack is not None:
            future = self._pool.submit(
                solve_pack_shard, *self._pack.task(shard.indices), shard.backend
            )
        else:
            future = self._pool.submit(
                _solve_shard,
                [self._scenarios[u] for u in shard.indices],
                shard.backend,
            )
        self._futures[future] = shard

    def as_completed(self) -> Iterator[ShardOutcome]:
        pending = dict(self._futures)
        self._futures = {}
        for future in as_completed(pending):
            shard = pending[future]
            try:
                results = future.result()
            except Exception as exc:
                # A worker crash breaks the whole per-call pool: the
                # crashed and every still-pending future raise
                # BrokenProcessPool here.  Shard exceptions (a raising
                # backend) arrive the same way.  Either way the
                # completed futures above already delivered.
                yield ShardOutcome(shard=shard, error=exc, worker="pooled")
            else:
                yield ShardOutcome(
                    shard=shard, results=tuple(results), worker="pooled"
                )

    def close(self) -> None:
        if self._pool is not None:
            # cancel_futures: an abandoned harvest (KeyboardInterrupt)
            # must not block shutdown behind shards nobody will read.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._pack is not None:
            self._pack.dispose()
            self._pack = None
        self._futures = {}
        self._scenarios = []
