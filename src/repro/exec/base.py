"""The transport protocol: how plan shards reach their solvers.

An :class:`~repro.api.experiment.ExecutionPlan` describes *what* to
solve — deduplicated scenarios grouped into backend shards.  A
:class:`Transport` decides *where*: in-process, on a per-call process
pool, or on the persistent :class:`~repro.exec.warm.WarmWorkerPool`.
The contract is deliberately tiny so remote fabrics (the ROADMAP's
distributed story) plug into the same seam:

* :meth:`Transport.prepare` — one call per plan, handing the transport
  the plan's unique scenarios (a pooled transport packs them into
  shared memory here);
* :meth:`Transport.submit_shard` — enqueue one :class:`Shard`;
* :meth:`Transport.as_completed` — yield a :class:`ShardOutcome` per
  submitted shard **in completion order**, never raising for a shard
  failure (outcomes carry the error instead, so one poisoned shard
  cannot discard another shard's finished work);
* :meth:`Transport.close` — release the plan-scoped resources.  A
  transport is reusable: ``prepare`` may be called again after
  ``close`` (the warm pool keeps its workers across plans and only
  releases them on :meth:`~repro.exec.warm.WarmWorkerPool.shutdown`).

``KeyboardInterrupt`` is *not* converted into an outcome — it
propagates out of ``as_completed`` so an interactive abort stays an
abort; the executor's ``finally: close()`` and its per-shard cache
writes are what make the interrupted run resumable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from ..api.backends import get_backend
from ..exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.result import Result
    from ..api.scenario import Scenario

__all__ = [
    "Shard",
    "ShardOutcome",
    "Transport",
    "InlineTransport",
    "resolve_transport",
]


@dataclass(frozen=True)
class Shard:
    """One unit of transportable work: a backend and the unique-scenario
    indices it solves as a single batch."""

    shard_id: int
    backend: str
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class ShardOutcome:
    """What came back for one submitted shard.

    Exactly one of ``results``/``error`` is set.  ``worker`` names the
    execution site (``"inline"``, a pool, or a worker id) and
    ``retries`` counts crash-retries the shard survived before this
    outcome — diagnostics for the crash-recovery tests and the CLI.
    """

    shard: Shard
    results: tuple["Result", ...] | None = None
    error: BaseException | None = field(default=None, repr=False)
    worker: str | None = None
    retries: int = 0

    @property
    def ok(self) -> bool:
        """True when the shard solved (``results`` is set)."""
        return self.error is None


class Transport(abc.ABC):
    """Where plan shards execute; see the module docstring for the
    ``prepare``/``submit_shard``/``as_completed``/``close`` contract."""

    @property
    def parallelism(self) -> int:
        """How many shards this transport can run concurrently — the
        plan compiler uses it to size batched-backend sharding."""
        return 1

    @abc.abstractmethod
    def prepare(self, scenarios: Sequence["Scenario"]) -> None:
        """Begin a plan: receive the unique scenarios shards index into."""

    @abc.abstractmethod
    def submit_shard(self, shard: Shard) -> None:
        """Enqueue one shard for execution."""

    @abc.abstractmethod
    def as_completed(self) -> Iterator[ShardOutcome]:
        """Yield one outcome per submitted shard, completion order."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the plan-scoped resources (idempotent)."""


class InlineTransport(Transport):
    """The single-process loop: shards solve sequentially, in
    submission order, on the calling thread.

    This is the degenerate — and default — transport, and also the
    degradation target of an unhealthy :class:`WarmWorkerPool`.  Shard
    exceptions become :class:`ShardOutcome` errors like everywhere
    else, so even the sequential path finishes (and caches) every
    healthy shard before the executor re-raises.
    """

    def __init__(self) -> None:
        self._scenarios: list["Scenario"] = []
        self._pending: list[Shard] = []

    def prepare(self, scenarios: Sequence["Scenario"]) -> None:
        self._scenarios = list(scenarios)
        self._pending = []

    def submit_shard(self, shard: Shard) -> None:
        self._pending.append(shard)

    def as_completed(self) -> Iterator[ShardOutcome]:
        while self._pending:
            shard = self._pending.pop(0)
            yield solve_shard_inline(self._scenarios, shard)

    def close(self) -> None:
        self._pending = []


def solve_shard_inline(
    scenarios: Sequence["Scenario"], shard: Shard, *, retries: int = 0
) -> ShardOutcome:
    """Solve one shard on the calling thread, mapping shard exceptions
    to error outcomes (``KeyboardInterrupt``/``SystemExit`` propagate).
    Shared by :class:`InlineTransport` and the warm pool's degradation
    path."""
    try:
        results = get_backend(shard.backend).solve_batch(
            [scenarios[u] for u in shard.indices]
        )
    except Exception as exc:
        return ShardOutcome(shard=shard, error=exc, worker="inline", retries=retries)
    return ShardOutcome(
        shard=shard, results=tuple(results), worker="inline", retries=retries
    )


def resolve_transport(
    transport: "Transport | str | None", processes: int | None
) -> Transport:
    """Map the ``transport=`` argument convention to a transport.

    ``None`` keeps the historical ``processes=`` semantics: a per-call
    process pool when ``processes > 1``, else inline.  Strings select a
    kind — ``"inline"``, ``"pooled"`` (per-call
    ``ProcessPoolExecutor``), or ``"warm"`` (the process-wide reusable
    :func:`~repro.exec.warm.get_default_pool`) — sized by ``processes``
    where that applies.  A :class:`Transport` instance is used as-is
    (the executor still calls ``prepare``/``close`` around the plan).
    """
    if isinstance(transport, Transport):
        return transport
    if transport is None:
        if processes is not None and processes > 1:
            from .pooled import PooledTransport

            return PooledTransport(max_workers=processes)
        return InlineTransport()
    if transport == "inline":
        return InlineTransport()
    if transport == "pooled":
        from .pooled import PooledTransport

        return PooledTransport(max_workers=processes)
    if transport == "warm":
        from .warm import get_default_pool

        return get_default_pool(max_workers=processes)
    raise InvalidParameterError(
        f"unknown transport {transport!r}; expected a Transport instance, "
        f"'inline', 'pooled', 'warm', or None"
    )
