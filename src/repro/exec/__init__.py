"""Execution transports: where plan shards run.

The :class:`Transport` seam decouples *what* an
:class:`~repro.api.experiment.ExecutionPlan` solves from *where* the
shards execute — in-process (:class:`InlineTransport`), on a per-call
process pool (:class:`PooledTransport`), or on the persistent
:class:`WarmWorkerPool`.  See docs/execution.md.
"""

from __future__ import annotations

from .base import (
    InlineTransport,
    Shard,
    ShardOutcome,
    Transport,
    resolve_transport,
    solve_shard_inline,
)
from .pooled import PooledTransport
from .warm import (
    PoolStatus,
    WarmWorkerPool,
    WorkerStatus,
    default_pool_lifespan,
    default_pool_or_none,
    get_default_pool,
    shutdown_default_pool,
    warm_default_pool,
)

__all__ = [
    "Shard",
    "ShardOutcome",
    "Transport",
    "InlineTransport",
    "PooledTransport",
    "WarmWorkerPool",
    "PoolStatus",
    "WorkerStatus",
    "get_default_pool",
    "default_pool_or_none",
    "shutdown_default_pool",
    "warm_default_pool",
    "default_pool_lifespan",
    "resolve_transport",
    "solve_shard_inline",
]
