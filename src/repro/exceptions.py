"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch every model/solver failure with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends) propagate untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Sequence

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "InvalidTruncationError",
    "InfeasibleBoundError",
    "SpeedNotAvailableError",
    "ApproximationDomainError",
    "ConvergenceError",
    "UnknownBackendError",
    "UnsupportedScenarioError",
    "UnsupportedErrorModelError",
    "WorkerCrashError",
    "InvalidSpecError",
    "MissingDependencyError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A model parameter is outside its physical domain.

    Raised eagerly at construction time (e.g. a negative error rate, an
    empty DVFS speed set, a speed outside ``(0, +inf)``) so that invalid
    configurations never reach the solvers.
    """


class InvalidTruncationError(InvalidParameterError):
    """A truncated schedule evaluation cannot cover the schedule head.

    ``evaluate_schedule(..., max_attempts=N)`` requires ``N >= 1`` and
    ``N >= len(head)``: the exact geometric remainder reported by the
    ``tail_bound_*`` fields only holds once the attempt series has
    reached the schedule's constant tail, so the attempt budget must at
    least reach it.  Inherits :class:`InvalidParameterError` (and hence
    ``ValueError``) so legacy ``except ValueError`` call sites keep
    working.
    """

    def __init__(self, max_attempts: int, head_len: int):
        self.max_attempts = max_attempts
        self.head_len = head_len
        super().__init__(
            f"max_attempts={max_attempts!r} is not a valid truncation bound: "
            f"it must be >= 1 and cover the schedule head "
            f"({head_len} attempt(s)); the geometric tail bound only holds "
            f"on the constant tail"
        )


class InfeasibleBoundError(ReproError):
    """The BiCrit problem admits no solution for the requested bound.

    Corresponds to the ``b > -2*sqrt(a*c)`` branch of Theorem 1: for every
    available speed pair the minimum achievable time overhead
    :math:`\\rho_{i,j}` (Eq. 6) exceeds the requested ``rho``.

    The offending bound and, when available, the minimum feasible bound
    over all pairs are attached for diagnostics.
    """

    def __init__(self, rho: float, rho_min: float | None = None):
        self.rho = rho
        self.rho_min = rho_min
        if rho_min is None:
            msg = f"BiCrit is infeasible for performance bound rho={rho!r}"
        else:
            msg = (
                f"BiCrit is infeasible for performance bound rho={rho!r}; "
                f"the smallest feasible bound for this configuration is "
                f"rho_min={rho_min!r}"
            )
        super().__init__(msg)


class SpeedNotAvailableError(ReproError, ValueError):
    """A requested speed is not a member of the processor's DVFS set."""

    def __init__(self, speed: float, available: tuple[float, ...]):
        self.speed = speed
        self.available = available
        super().__init__(
            f"speed {speed!r} is not in the available DVFS set {available!r}"
        )


class ApproximationDomainError(ReproError):
    """A Taylor-expansion result is requested outside its validity domain.

    Section 5.2 of the paper shows the first-order approximation with two
    error sources is valid only when
    ``(2(1+s/f))**-0.5 < sigma2/sigma1 < 2(1+s/f)``; requesting the
    first-order optimum outside that window raises this error rather than
    silently returning a meaningless (e.g. negative-coefficient) optimum.
    """


class ConvergenceError(ReproError):
    """A numeric routine (root bracketing, minimisation) failed to converge."""


class UnknownBackendError(ReproError, KeyError):
    """A solver backend name does not resolve in the registry.

    Inherits :class:`KeyError` so registry lookups keep mapping
    semantics; the message lists the registered names.
    """

    def __init__(self, name: str, available: tuple[str, ...]):
        self.name = name
        self.available = available
        super().__init__(
            f"unknown solver backend {name!r}; registered backends: "
            f"{', '.join(available) or '(none)'}"
        )

    # KeyError.__str__ reprs the message (wrapping it in quotes); keep
    # the plain Exception rendering for user-facing errors.
    __str__ = Exception.__str__

    def __reduce__(self) -> tuple[type, tuple[object, ...]]:
        # Multi-arg __init__ needs explicit pickle support so the error
        # survives the Study.solve(processes=...) process boundary.
        return (type(self), (self.name, self.available))


class UnsupportedErrorModelError(ReproError, TypeError):
    """A closed form that requires memoryless arrivals got a renewal model.

    The paper's two-speed closed forms (Theorem 1, the Section-5
    combined expectations, the first-order windows) all rest on the
    exponential — memoryless — arrival assumption: the remaining life of
    the error process does not depend on how long the attempt has
    already run.  A general renewal model (Weibull, Gamma, trace-driven)
    breaks that step, so the entry points of :mod:`repro.failstop` and
    the two-speed fast paths raise this error instead of silently
    computing with the wrong closed form.  Callers should route such
    models through the per-attempt schedule evaluator
    (:mod:`repro.schedules`), which only needs the per-attempt renewal
    primitives — the ``schedule``/``schedule-grid`` backends do this
    automatically.

    Inherits :class:`TypeError`: passing a non-memoryless model where an
    exponential one is required is an interface misuse, not a numeric
    domain problem.
    """

    def __init__(self, where: str, model: object):
        self.where = where
        self.model = model
        spec = getattr(model, "spec", None)
        shown = spec() if callable(spec) else repr(model)
        super().__init__(
            f"{where} requires a memoryless (exponential) error model, got "
            f"{shown}; route non-exponential renewal models through the "
            f"schedule evaluator (the 'schedule'/'schedule-grid' backends)"
        )

    def __reduce__(self) -> tuple[type, tuple[object, ...]]:
        # Multi-arg __init__ needs explicit pickle support so the error
        # survives the Study.solve(processes=...) process boundary.
        return (type(self), (self.where, self.model))


class WorkerCrashError(ReproError):
    """One or more plan shards were lost to crashed worker processes.

    Raised by :meth:`repro.api.experiment.ExecutionPlan.execute` after
    the harvest loop has drained: every shard that *did* complete was
    already written to the solve cache, so re-executing the same plan
    replays the completed shards and solves only the lost remainder.
    The warm-worker transport retries a crashed shard on a healthy
    worker up to its retry bound before giving up on it; the per-call
    process pool cannot (a dead worker breaks the whole pool), so a
    single crash there surfaces every in-flight shard here.
    """

    def __init__(self, lost_shards: int, lost_scenarios: int):
        self.lost_shards = lost_shards
        self.lost_scenarios = lost_scenarios
        super().__init__(
            f"{lost_shards} shard(s) covering {lost_scenarios} scenario(s) "
            f"were lost to worker crashes; every completed shard was cached "
            f"— re-execute the plan to resume from them"
        )

    def __reduce__(self) -> tuple[type, tuple[object, ...]]:
        # Multi-arg __init__ needs explicit pickle support so the error
        # survives a process boundary.
        return (type(self), (self.lost_shards, self.lost_scenarios))


class InvalidSpecError(ReproError, ValueError):
    """A JSON experiment spec failed validation.

    Raised by the service spec codec (:mod:`repro.service.specs`) with
    every problem found in one pass: ``issues`` is a tuple of
    ``(path, message)`` pairs where ``path`` is the JSON field path of
    the offending value (``"grid.schedules[2]"``,
    ``"scenarios[3].rho"``).  The HTTP layer maps this error to a
    ``422 Unprocessable Entity`` response carrying the field paths, so
    a malformed payload never surfaces as a 500 from deep inside
    :class:`~repro.api.scenario.Scenario` parsing.

    Inherits :class:`ValueError`: the payload, not the system, is
    wrong.
    """

    def __init__(self, issues: "Sequence[tuple[str, str]]"):
        self.issues: tuple[tuple[str, str], ...] = tuple(
            (str(path), str(message)) for path, message in issues
        )
        shown = "; ".join(f"{path}: {message}" for path, message in self.issues)
        super().__init__(
            f"invalid experiment spec ({len(self.issues)} issue(s)): {shown}"
        )

    def __reduce__(self) -> tuple[type, tuple[object, ...]]:
        # Multi-arg __init__ needs explicit pickle support so the error
        # survives a process boundary.
        return (type(self), (self.issues,))


class MissingDependencyError(ReproError, ImportError):
    """An optional integration was requested without its extra installed.

    E.g. :func:`repro.service.asgi.create_fastapi_app` requires the
    ``repro[service]`` extra (FastAPI); the core service app and the
    stdlib server run without it.  The message names the extra to
    install.
    """

    def __init__(self, feature: str, extra: str, missing: str):
        self.feature = feature
        self.extra = extra
        self.missing = missing
        super().__init__(
            f"{feature} requires the optional dependency {missing!r}; "
            f"install it with: pip install 'repro-reexec-speed[{extra}]'"
        )

    def __reduce__(self) -> tuple[type, tuple[object, ...]]:
        return (type(self), (self.feature, self.extra, self.missing))


class UnsupportedScenarioError(ReproError):
    """A scenario was routed to a backend that cannot solve it.

    E.g. the vectorised ``grid`` backend only handles the first-order
    silent-error model, so a ``combined``-mode scenario must go to the
    ``combined`` backend instead.
    """

    def __init__(self, backend: str, reason: str):
        self.backend = backend
        self.reason = reason
        super().__init__(f"backend {backend!r} cannot solve this scenario: {reason}")

    def __reduce__(self) -> tuple[type, tuple[object, ...]]:
        return (type(self), (self.backend, self.reason))
