"""Per-segment energy accounting on top of :class:`~repro.power.model.PowerModel`.

These helpers express the energy of each phase of a pattern execution
exactly as the paper does (Section 2.1):

* executing ``w`` work at speed ``sigma`` costs
  ``(w / sigma) * (Pidle + kappa * sigma**3)`` — note the well-known
  consequence that pure dynamic energy grows like ``sigma**2`` while the
  static share grows like ``1/sigma``;
* a verification is work-like, ``(V / sigma) * (Pidle + kappa sigma^3)``;
* checkpoint/recovery cost ``C * (Pidle + Pio)`` / ``R * (Pidle + Pio)``.

They are used by both the analytical energy expressions
(:mod:`repro.core.exact`, :mod:`repro.failstop.exact`) and the
Monte-Carlo simulator (:mod:`repro.simulation.engine`), guaranteeing the
two never diverge on the power model.
"""

from __future__ import annotations

import numpy as np

from ..quantities import ScalarOrArray, as_float_array, is_scalar
from .model import PowerModel
from ..exceptions import InvalidParameterError

__all__ = [
    "compute_energy",
    "compute_time",
    "io_energy",
    "elapsed_compute_energy",
]


def compute_time(work: ScalarOrArray, speed: ScalarOrArray) -> ScalarOrArray:
    """Seconds needed to execute ``work`` units at ``speed``: ``w / sigma``."""
    w = as_float_array(work)
    s = as_float_array(speed)
    if np.any(s <= 0):
        raise InvalidParameterError("speed must be > 0")
    t = w / s
    return float(t) if (is_scalar(work) and is_scalar(speed)) else t


def compute_energy(
    power: PowerModel, work: ScalarOrArray, speed: ScalarOrArray
) -> ScalarOrArray:
    """Energy (mJ) to execute ``work`` units of CPU work at ``speed``.

    ``E = (w / sigma) * (Pidle + kappa * sigma**3)``.
    Applies equally to computation and verification segments.
    """
    t = compute_time(work, speed)
    e = as_float_array(t) * power.compute_power(as_float_array(speed))
    return float(e) if (is_scalar(work) and is_scalar(speed)) else e


def elapsed_compute_energy(
    power: PowerModel, elapsed: ScalarOrArray, speed: ScalarOrArray
) -> ScalarOrArray:
    """Energy (mJ) for ``elapsed`` wall-clock seconds of computing at ``speed``.

    Used for partially executed segments: a fail-stop error interrupting
    after ``t`` seconds still burned ``t * (Pidle + kappa sigma^3)``.
    """
    t = as_float_array(elapsed)
    if np.any(t < 0):
        raise InvalidParameterError("elapsed must be >= 0")
    e = t * power.compute_power(as_float_array(speed))
    return float(e) if (is_scalar(elapsed) and is_scalar(speed)) else e


def io_energy(power: PowerModel, seconds: ScalarOrArray) -> ScalarOrArray:
    """Energy (mJ) for ``seconds`` of checkpoint/recovery I/O.

    ``E = seconds * (Pidle + Pio)``.
    """
    t = as_float_array(seconds)
    if np.any(t < 0):
        raise InvalidParameterError("seconds must be >= 0")
    e = t * power.io_total_power()
    return float(e) if is_scalar(seconds) else e
