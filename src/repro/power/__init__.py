"""DVFS power/energy substrate."""

from .energy import compute_energy, compute_time, elapsed_compute_energy, io_energy
from .model import PowerModel

__all__ = [
    "PowerModel",
    "compute_energy",
    "compute_time",
    "elapsed_compute_energy",
    "io_energy",
]
