"""DVFS power model: dynamic ``kappa * sigma**3``, static ``Pidle``, I/O ``Pio``.

Section 2.1 of the paper:

* computing at speed ``sigma`` draws ``Pidle + Pcpu(sigma)`` with
  ``Pcpu(sigma) = kappa * sigma**3`` (the classic cubic DVFS law of
  Yao/Demers/Shenker and Bansal/Kimbrel/Pruhs);
* checkpointing and recovery draw ``Pidle + Pio``;
* verification is CPU work, so it draws ``Pidle + Pcpu(sigma)`` too.

Units are milliwatts (Table 2 of the paper) and energies millijoules.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..quantities import (
    ScalarOrArray,
    as_float_array,
    is_scalar,
    require_nonnegative,
    require_positive,
)
from ..exceptions import InvalidParameterError

__all__ = ["PowerModel"]


@dataclass(frozen=True)
class PowerModel:
    """The three-component power model of the paper.

    Parameters
    ----------
    kappa:
        Cubic dynamic-power coefficient in mW (e.g. 1550 for the Intel
        XScale, 5756 for the Transmeta Crusoe).
    idle:
        Static power ``Pidle`` in mW, paid whenever the platform is on.
    io:
        Dynamic I/O power ``Pio`` in mW, paid during checkpoint/recovery
        transfers (on top of ``Pidle``).

    Examples
    --------
    >>> pm = PowerModel(kappa=1550.0, idle=60.0, io=5.0)
    >>> pm.cpu_power(1.0)
    1550.0
    >>> pm.compute_power(1.0)  # Pidle + kappa * 1^3
    1610.0
    >>> pm.io_total_power()
    65.0
    """

    kappa: float
    idle: float
    io: float

    def __post_init__(self) -> None:
        require_positive(self.kappa, "kappa")
        require_nonnegative(self.idle, "idle")
        require_nonnegative(self.io, "io")

    # ------------------------------------------------------------------
    def cpu_power(self, speed: ScalarOrArray) -> ScalarOrArray:
        """Dynamic CPU power ``Pcpu(sigma) = kappa * sigma**3`` in mW."""
        s = as_float_array(speed)
        if np.any(s < 0):
            raise InvalidParameterError("speed must be >= 0")
        p = self.kappa * s**3
        return float(p) if is_scalar(speed) else p

    def compute_power(self, speed: ScalarOrArray) -> ScalarOrArray:
        """Total power while computing at ``speed``: ``Pidle + kappa sigma^3``."""
        s = as_float_array(speed)
        p = self.idle + self.cpu_power(s)
        return float(p) if is_scalar(speed) else p

    def io_total_power(self) -> float:
        """Total power during checkpoint/recovery: ``Pidle + Pio``."""
        return self.idle + self.io

    # ------------------------------------------------------------------
    def with_idle(self, idle: float) -> "PowerModel":
        """Copy with a different static power (used by the Pidle sweeps)."""
        return replace(self, idle=idle)

    def with_io(self, io: float) -> "PowerModel":
        """Copy with a different I/O power (used by the Pio sweeps)."""
        return replace(self, io=io)
