"""Vectorised batched schedule evaluation: whole grids in broadcast NumPy.

PR 1 gave the two-speed model a vectorised ``grid`` backend (~17x over
the per-scenario loop); general schedules were still evaluated one
scenario at a time in scalar Python.  This module closes that gap: a
:class:`ScheduleGrid` stacks the model parameters of many
``(configuration, schedule, error-model)`` points into arrays so that

* the per-attempt failure/exposure primitives broadcast over a
  ``(point, work)`` grid — one pass evaluates *every* point at *every*
  pattern size at once;
* the closed-form geometric tails are computed column-wise (one
  ``expm1``/``where`` chain for the whole grid, exactly as in
  :mod:`repro.schedules.evaluator`);
* the constrained solver's pattern-size search becomes a *masked
  argmin* over the shared coarse work grid followed by lockstep
  bisection (feasibility crossings) and lockstep golden-section
  (energy minimisation) — every iteration is one broadcast evaluation
  of all points, never a Python-level per-point loop.

Schedules have different head lengths, so heads are padded to the
batch's maximum and masked per row: a padded slot contributes exactly
``t + 0.0`` / ``reach * 1.0``, which keeps every row's arithmetic
identical to its stand-alone scalar evaluation — results do not depend
on which other schedules share the batch, and the batched evaluator
agrees with :func:`repro.schedules.evaluator.evaluate_schedule` to the
last few ulps (the equivalence tests pin ``rtol = 1e-12``).

The solver mirrors :func:`repro.schedules.solver.solve_schedule` stage
by stage (same coarse grid, same feasibility rule, same candidate
order) but replaces the scalar SciPy Brent calls with fixed-iteration
lockstep searches; the constrained optimum it returns matches the
scalar path to the optimiser placement tolerance (``<= 1e-12`` relative
on the energy objective, ``~1e-8`` on the optimal pattern size).  The
``schedule-grid`` backend of :mod:`repro.api.backends` wraps all of
this behind ``Study`` batches; ``benchmarks/bench_schedule_grid.py``
measures the speedup over the per-scenario loop
(``results/schedule_grid_bench.csv``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

import numpy as np

from ..errors.combined import CombinedErrors
from ..errors.models import ErrorModel, as_error_model, collapse_memoryless
from ..exceptions import InvalidParameterError, InvalidTruncationError
from ..platforms.configuration import Configuration
from ..quantities import FloatArray, ScalarOrArray
from .base import SpeedSchedule, as_schedule
from .evaluator import ScheduleExpectation

__all__ = [
    "ScheduleGrid",
    "ScheduleGridSolution",
    "SolverOptions",
    "DEFAULT_SOLVER_OPTIONS",
    "evaluate_schedule_batch",
    "solve_schedule_batch",
    "solve_schedule_grid",
]

#: Pattern-size search window and coarse-scan resolution — identical to
#: :func:`repro.core.numeric.minimize_unimodal` so the batched solver
#: localises the same basin as the scalar path.  These module constants
#: are the *defaults* of :class:`SolverOptions`; callers tune the
#: solver through an options object, never by mutating these.
_W_LO = 1e-3
_W_HI = 1e12
_COARSE = 200

#: Lockstep iteration budgets.  Bisection halves the bracket each step
#: (96 steps shrink any bracket inside the search window to well below
#: one ulp); golden section contracts by ~0.618 (72 steps ~ 8e-16 of
#: the bracket, tighter than the scalar solver's SciPy tolerances).
_BISECT_ITERS = 96
_GOLDEN_ITERS = 72
_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True)
class SolverOptions:
    """Typed knobs of :func:`solve_schedule_grid`'s lockstep stages.

    The defaults reproduce the historical module-level constants
    exactly (the regression tests pin that a default-constructed
    options object changes nothing), so existing callers are
    unaffected; the incremental tier (:mod:`repro.schedules.incremental`)
    passes reduced budgets for its warm-started cold fallbacks, and
    tests can shrink the coarse scan to exercise fallback ladders.

    Parameters
    ----------
    w_lo, w_hi:
        The pattern-size search window (must satisfy
        ``0 < w_lo < w_hi``, both finite).
    coarse:
        Number of log-spaced coarse-scan points (>= 3, so the argmin
        always has a left and right neighbour to polish between).
    bisect_iters:
        Lockstep bisection iterations for the feasibility crossings.
    golden_iters:
        Lockstep golden-section iterations (>= 2: the recurrence needs
        its two seed probes).
    """

    w_lo: float = _W_LO
    w_hi: float = _W_HI
    coarse: int = _COARSE
    bisect_iters: int = _BISECT_ITERS
    golden_iters: int = _GOLDEN_ITERS

    def __post_init__(self) -> None:
        if not (math.isfinite(self.w_lo) and self.w_lo > 0):
            raise InvalidParameterError(
                f"w_lo must be finite and > 0, got {self.w_lo!r}"
            )
        if not (math.isfinite(self.w_hi) and self.w_hi > self.w_lo):
            raise InvalidParameterError(
                f"w_hi must be finite and > w_lo ({self.w_lo!r}), "
                f"got {self.w_hi!r}"
            )
        if self.coarse < 3:
            raise InvalidParameterError(
                f"coarse must be >= 3 (argmin needs neighbours to polish "
                f"between), got {self.coarse!r}"
            )
        if self.bisect_iters < 1:
            raise InvalidParameterError(
                f"bisect_iters must be >= 1, got {self.bisect_iters!r}"
            )
        if self.golden_iters < 2:
            raise InvalidParameterError(
                f"golden_iters must be >= 2 (the recurrence needs its seed "
                f"probes), got {self.golden_iters!r}"
            )


#: The historical solver behaviour: every ``options=None`` call sees
#: exactly these values.
DEFAULT_SOLVER_OPTIONS = SolverOptions()


def _capped_exposure_cols(lam_f: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Column-wise :func:`repro.errors.exponential.capped_exposure`.

    Same direct/series split at ``x < 1e-8`` as the scalar helper so the
    batched primitives track it bit-for-bit; ``lam_f == 0`` rows land in
    the series branch, whose value is exactly ``tau``.
    """
    x = lam_f * tau
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        direct = -np.expm1(-x) / lam_f
    series = tau * (1.0 - x / 2.0 + x * x / 6.0)
    return np.where(x < 1e-8, series, direct)


@dataclass(frozen=True)
class ScheduleGrid:
    """Many ``(configuration, schedule, error-model)`` points as arrays.

    All parameter arrays have shape ``(n, 1)`` so they broadcast against
    a trailing work axis; ``head`` is ``(n, H)`` with each row's head
    speeds padded to the batch maximum ``H`` (padded slots are masked
    out by ``head_len`` during evaluation, so padding never changes a
    row's value).  Build instances with :meth:`from_points`.

    Rows may mix error models: exponential rows (``None``,
    :class:`CombinedErrors`, or a memoryless :class:`ErrorModel`) live
    entirely in the ``lam_f``/``lam_s`` columns and keep the scalar
    fast path's arithmetic bit for bit; rows carrying a general renewal
    :class:`ErrorModel` are listed in ``models`` and have their
    per-attempt primitives computed through the model's renewal CDFs —
    row-wise over the batch, but fully vectorised along the work axis,
    so a mixed grid still evaluates in broadcast passes.
    """

    head: np.ndarray
    head_len: np.ndarray
    tail: np.ndarray
    lam_f: np.ndarray
    lam_s: np.ndarray
    C: np.ndarray
    V: np.ndarray
    R: np.ndarray
    kappa: np.ndarray
    idle: np.ndarray
    p_io: np.ndarray
    #: Non-exponential rows as ``(row_index, model)`` pairs; their
    #: ``lam_f``/``lam_s`` column entries are placeholders (0).
    models: tuple[tuple[int, ErrorModel], ...] = ()
    #: Rows grouped by *distinct* model, precomputed so the hot
    #: ``_primitives`` path makes one vectorised sub-matrix call per
    #: model rather than one per row (a study grid typically shares a
    #: handful of models across many (schedule, rho) rows).
    _model_groups: tuple[tuple[ErrorModel, np.ndarray], ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        groups: dict[ErrorModel, list[int]] = {}
        for i, model in self.models:
            groups.setdefault(model, []).append(i)
        object.__setattr__(
            self,
            "_model_groups",
            tuple(
                (model, np.asarray(idx, dtype=np.intp))
                for model, idx in groups.items()
            ),
        )

    @property
    def n(self) -> int:
        """Number of grid points (rows)."""
        return self.tail.shape[0]

    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        points: Sequence[
            tuple[Configuration, SpeedSchedule, CombinedErrors | ErrorModel | None]
        ],
    ) -> "ScheduleGrid":
        """Stack ``(cfg, schedule, errors)`` triples into one grid.

        ``errors=None`` means silent-only at the configuration's own
        rate, matching the scalar evaluator's default; entries may also
        be :class:`CombinedErrors` or renewal :class:`ErrorModel`
        instances (memoryless models collapse onto the exponential
        column fast path, general models become ``models`` rows).
        """
        if not points:
            raise InvalidParameterError("a schedule grid needs at least one point")
        n = len(points)
        normalized = [sched.normalized() for _, sched, _ in points]
        H = max((len(h) for h, _ in normalized), default=0)

        def col(values: Sequence[float]) -> FloatArray:
            return np.asarray(values, dtype=np.float64).reshape(n, 1)

        tail = col([t for _, t in normalized])
        head = np.broadcast_to(tail, (n, max(H, 1))).copy()[:, :H]
        for i, (h, _) in enumerate(normalized):
            head[i, : len(h)] = h
        lam_f, lam_s = [], []
        models: list[tuple[int, ErrorModel]] = []
        for i, (cfg, _, errors) in enumerate(points):
            errors = collapse_memoryless(errors)
            if errors is None:
                lam_f.append(0.0)
                lam_s.append(cfg.lam)
            elif isinstance(errors, CombinedErrors):
                lam_f.append(errors.failstop_rate)
                lam_s.append(errors.silent_rate)
            elif isinstance(errors, ErrorModel):
                # General renewal row: the rate columns are placeholders
                # (the exponential pass writes zeros there, which the
                # model overwrite in _primitives replaces).
                lam_f.append(0.0)
                lam_s.append(0.0)
                models.append((i, errors))
            else:
                raise InvalidParameterError(
                    f"grid errors must be CombinedErrors, ErrorModel or None, "
                    f"got {type(errors).__name__}"
                )
        return cls(
            head=head,
            head_len=col([len(h) for h, _ in normalized]),
            tail=tail,
            lam_f=col(lam_f),
            lam_s=col(lam_s),
            models=tuple(models),
            C=col([cfg.checkpoint_time for cfg, _, _ in points]),
            V=col([cfg.verification_time for cfg, _, _ in points]),
            R=col([cfg.recovery_time for cfg, _, _ in points]),
            kappa=col([cfg.processor.kappa for cfg, _, _ in points]),
            idle=col([cfg.processor.idle_power for cfg, _, _ in points]),
            p_io=col([cfg.io_power + cfg.processor.idle_power for cfg, _, _ in points]),
        )

    # ------------------------------------------------------------------
    def take(self, indices: "Sequence[int] | np.ndarray") -> "ScheduleGrid":
        """A row-subset grid (``indices`` order, which must be unique).

        Rows are evaluated independently (padded heads are masked per
        row), so a taken row's expectations are byte-identical to the
        same row inside the parent grid — the property the incremental
        tier's anchor/fallback sub-solves rely on.  ``models`` row
        indices are remapped to the subset's positions.
        """
        idx = np.asarray(indices, dtype=np.intp).reshape(-1)
        if idx.size != np.unique(idx).size:
            raise InvalidParameterError("take() indices must be unique")
        model_map = dict(self.models)
        models = tuple(
            (pos, model_map[int(i)])
            for pos, i in enumerate(idx)
            if int(i) in model_map
        )
        return type(self)(
            head=self.head[idx],
            head_len=self.head_len[idx],
            tail=self.tail[idx],
            lam_f=self.lam_f[idx],
            lam_s=self.lam_s[idx],
            models=models,
            C=self.C[idx],
            V=self.V[idx],
            R=self.R[idx],
            kappa=self.kappa[idx],
            idle=self.idle[idx],
            p_io=self.p_io[idx],
        )

    # ------------------------------------------------------------------
    def _primitives(
        self, w: FloatArray, s: FloatArray
    ) -> tuple[FloatArray, FloatArray]:
        """Per-attempt ``(failure probability, capped exposure)`` at
        speed ``s``, broadcast over the work grid ``w``.

        The exponential column pass runs over every row first — its
        expressions (and hence the exponential rows' bits) are exactly
        the scalar fast path's — then the general-model rows are
        overwritten through their renewal primitives, each call
        vectorised along the work axis.  Exponential rows are therefore
        independent of which models share the batch.
        """
        tau = (w + self.V) / s
        omega = w / s
        p = -np.expm1(-(self.lam_f * tau + self.lam_s * omega))
        m = _capped_exposure_cols(self.lam_f, tau)
        if self._model_groups:
            # tau/omega may have broadcast shape (n, 1) against an
            # (n, m) work grid; materialise rows for fancy indexing.
            tau_b = np.broadcast_to(tau, p.shape)
            omega_b = np.broadcast_to(omega, p.shape)
            for model, idx in self._model_groups:
                p_g, m_g = model.per_window_primitives(tau_b[idx], omega_b[idx])
                p[idx] = p_g
                m[idx] = m_g
        return p, m

    def _compute_power(self, s: np.ndarray) -> np.ndarray:
        return self.kappa * s**3 + self.idle

    def evaluate(
        self,
        work: ScalarOrArray,
        *,
        components: tuple[str, ...] = ("time", "energy"),
        max_attempts: int | None = None,
    ) -> ScheduleExpectation:
        """Batched :func:`repro.schedules.evaluator.evaluate_schedule`.

        ``work`` broadcasts against the ``(n, 1)`` parameter columns: a
        scalar evaluates every point at one pattern size (result shape
        ``(n,)``), a 1-D array of ``m`` sizes is a shared work axis
        (result shape ``(n, m)``), and an ``(n, 1)`` array evaluates one
        size per point.  ``max_attempts`` truncates the attempt series
        per row exactly as in the scalar evaluator (the bound must
        cover every row's head).
        """
        w = np.asarray(work, dtype=np.float64)
        if np.any(w <= 0):
            raise InvalidParameterError("work must be > 0")
        squeeze = w.ndim == 0
        if w.ndim < 2:
            w = np.atleast_2d(w)
        want_time = "time" in components
        want_energy = "energy" in components
        max_head = int(self.head_len.max(initial=0))
        if max_attempts is not None and (max_attempts < 1 or max_attempts < max_head):
            raise InvalidTruncationError(max_attempts, max_head)

        shape = np.broadcast_shapes(w.shape, (self.n, 1))
        zeros = np.zeros(shape)
        t = self.C + zeros if want_time else None
        e = self.C * self.p_io + zeros if want_energy else None
        attempts = np.zeros(shape)
        reach = np.ones(shape)

        for j in range(self.head.shape[1]):
            active = j < self.head_len  # (n, 1) mask: row j still in its head
            s = self.head[:, j : j + 1]
            p, m = self._primitives(w, s)
            if want_time:
                t = t + np.where(active, reach * (m + p * self.R), 0.0)
            if want_energy:
                e = e + np.where(
                    active,
                    reach * (m * self._compute_power(s) + p * self.R * self.p_io),
                    0.0,
                )
            attempts = attempts + np.where(active, reach, 0.0)
            reach = reach * np.where(active, p, 1.0)

        # Column-wise closed-form geometric tail (cf. the scalar
        # evaluator: identical formulas, whole grid per op).
        p_t, m_t = self._primitives(w, self.tail)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_gap = np.where(p_t < 1.0, 1.0 / (1.0 - p_t), np.inf)
        tail_time_unit = m_t + p_t * self.R if want_time else None
        tail_energy_unit = (
            m_t * self._compute_power(self.tail) + p_t * self.R * self.p_io
            if want_energy
            else None
        )

        if max_attempts is None:
            geom = reach * inv_gap
            attempts = attempts + geom
            bound_t = np.zeros(shape) if want_time else None
            bound_e = np.zeros(shape) if want_energy else None
            truncated = False
        else:
            n_tail = max_attempts - self.head_len
            with np.errstate(over="ignore", invalid="ignore"):
                decay = p_t**n_tail
                geom = np.where(p_t < 1.0, reach * (1.0 - decay) * inv_gap, np.inf)
                remainder = np.where(p_t < 1.0, reach * decay * inv_gap, np.inf)
            attempts = attempts + geom
            bound_t = remainder * tail_time_unit if want_time else None
            bound_e = remainder * tail_energy_unit if want_energy else None
            truncated = True
        if want_time:
            t = t + geom * tail_time_unit
        if want_energy:
            e = e + geom * tail_energy_unit

        def out(a: FloatArray | None) -> FloatArray | None:
            return None if a is None else (a[:, 0] if squeeze else a)

        return ScheduleExpectation(
            time=out(t),
            energy=out(e),
            attempts=out(attempts),
            truncated=truncated,
            tail_bound_time=out(bound_t),
            tail_bound_energy=out(bound_e),
        )

    # ------------------------------------------------------------------
    # Row-wise overheads (the solver's lockstep probes)
    # ------------------------------------------------------------------
    def _overhead(self, w: np.ndarray, component: str) -> np.ndarray:
        """Per-row overhead at per-row work points (``w`` and the result
        share shape ``(n,)``); non-finite values map to ``+inf`` as in
        the scalar minimiser."""
        with np.errstate(over="ignore", invalid="ignore"):
            ex = self.evaluate(w.reshape(-1, 1), components=(component,))
            vals = (ex.time if component == "time" else ex.energy)[:, 0] / w
        return np.where(np.isfinite(vals), vals, np.inf)

    def time_overhead(self, w: np.ndarray) -> np.ndarray:
        """Expected time per work unit, one point per row."""
        return self._overhead(np.asarray(w, dtype=np.float64), "time")

    def energy_overhead(self, w: np.ndarray) -> np.ndarray:
        """Expected energy per work unit (mJ), one point per row."""
        return self._overhead(np.asarray(w, dtype=np.float64), "energy")


@dataclass(frozen=True)
class ScheduleGridSolution:
    """Constrained optima for every grid point (NaN = infeasible).

    All arrays have the grid's length.  ``rho_min`` is each point's
    smallest feasible bound (finite even for infeasible points — it is
    the diagnostic the scalar path attaches to
    :class:`~repro.exceptions.InfeasibleBoundError`).
    """

    work: np.ndarray
    energy_overhead: np.ndarray
    time_overhead: np.ndarray
    w_lo: np.ndarray
    w_hi: np.ndarray
    rho_min: np.ndarray
    feasible: np.ndarray

    def __len__(self) -> int:
        return self.work.shape[0]


def _lockstep_bisect(
    fn: Callable[[FloatArray], FloatArray],
    a: FloatArray,
    b: FloatArray,
    fa: FloatArray,
    *,
    iters: int = _BISECT_ITERS,
) -> FloatArray:
    """Elementwise bisection of ``fn``'s sign change on ``[a, b]``.

    All rows iterate together; each iteration is one batched ``fn``
    call.  Rows whose bracket is degenerate (``a == b``) simply stay
    put, so callers can pre-collapse rows that need no root find.
    """
    for _ in range(iters):
        mid = 0.5 * (a + b)
        fm = fn(mid)
        same = np.sign(fm) == np.sign(fa)
        a = np.where(same, mid, a)
        fa = np.where(same, fm, fa)
        b = np.where(same, b, mid)
    return 0.5 * (a + b)


def _lockstep_golden(
    fn: Callable[[FloatArray], FloatArray],
    a: FloatArray,
    b: FloatArray,
    *,
    iters: int = _GOLDEN_ITERS,
) -> tuple[FloatArray, FloatArray]:
    """Elementwise golden-section minimisation on ``[a, b]``.

    Returns ``(argmin, min)``.  The classic recurrence: the surviving
    interior probe of each row is carried into the next iteration, so
    after the two seed evaluations every iteration costs exactly one
    batched ``fn`` call (the per-row *new* probes gathered into one
    array).  The contraction budget leaves the bracket far tighter than
    the scalar solver's ``xatol``, so both paths land on the same
    interior optimum to optimiser precision.
    """
    d = _INVPHI * (b - a)
    c1, c2 = b - d, a + d  # lower/upper interior probes
    f1, f2 = fn(c1), fn(c2)
    for _ in range(iters - 1):
        keep_left = f1 < f2
        a = np.where(keep_left, a, c1)
        b = np.where(keep_left, c2, b)
        d = _INVPHI * (b - a)
        new_lo = b - d  # fresh lower probe (left rows)
        new_hi = a + d  # fresh upper probe (right rows)
        f_new = fn(np.where(keep_left, new_lo, new_hi))
        c1, c2 = (
            np.where(keep_left, new_lo, c2),
            np.where(keep_left, c1, new_hi),
        )
        f1, f2 = np.where(keep_left, f_new, f2), np.where(keep_left, f1, f_new)
    a = np.where(f1 < f2, a, c1)
    b = np.where(f1 < f2, c2, b)
    x = 0.5 * (a + b)
    return x, fn(x)


def solve_schedule_grid(
    grid: ScheduleGrid,
    rho: ScalarOrArray,
    *,
    options: SolverOptions | None = None,
) -> ScheduleGridSolution:
    """Constrained optimum of every grid point under its bound ``rho``.

    The batched analogue of :func:`repro.schedules.solver.solve_schedule`
    (same three stages, all in lockstep):

    1. **masked coarse scan** — the time overhead of every point on the
       shared log-spaced work grid in one broadcast pass; per-row
       argmin + golden polish gives ``rho_min``; rows with
       ``rho_min > rho`` are masked infeasible;
    2. **crossing brackets** — lockstep bisection for the two
       ``T(W)/W = rho`` crossings (the right bracket grows by lockstep
       doubling, as in the scalar path);
    3. **masked energy argmin** — lockstep golden section of
       ``E(W)/W`` on each row's feasible interval, then the same
       interior/endpoint candidate rule as the scalar solver.

    ``rho`` may be a scalar or an array of per-point bounds.
    ``options=None`` runs with :data:`DEFAULT_SOLVER_OPTIONS` (the
    historical behaviour, bit for bit).
    """
    opt = DEFAULT_SOLVER_OPTIONS if options is None else options
    n = grid.n
    rho = np.broadcast_to(np.asarray(rho, dtype=np.float64), (n,)).astype(np.float64)
    if np.any(rho <= 0):
        raise InvalidParameterError("rho must be > 0")

    # Stage 1: coarse scan (shared grid, one broadcast evaluation).
    w_grid = np.logspace(math.log10(opt.w_lo), math.log10(opt.w_hi), opt.coarse)
    with np.errstate(over="ignore", invalid="ignore"):
        t_grid = grid.evaluate(w_grid, components=("time",)).time / w_grid
    t_grid = np.where(np.isfinite(t_grid), t_grid, np.inf)
    k = np.argmin(t_grid, axis=1)
    rows = np.arange(n)
    left = w_grid[np.maximum(k - 1, 0)]
    right = w_grid[np.minimum(k + 1, opt.coarse - 1)]
    w_star, t_polish = _lockstep_golden(
        grid.time_overhead, left, right, iters=opt.golden_iters
    )
    # Keep the better of grid/polish, as minimize_unimodal does.
    t_coarse = t_grid[rows, k]
    use_polish = t_polish <= t_coarse
    w_star = np.where(use_polish, w_star, w_grid[k])
    rho_min = np.where(use_polish, t_polish, t_coarse)
    feasible = rho_min <= rho

    def shifted(w: np.ndarray) -> np.ndarray:
        return grid.time_overhead(w) - rho  # inf-safe: inf - rho = inf

    # Stage 2a: left crossing on [W_LO, w_star] (T/W decreasing there).
    lo = np.full(n, opt.w_lo)
    s_lo = shifted(lo)
    need_left = feasible & (s_lo > 0)
    a = np.where(need_left, lo, w_star)
    w1 = _lockstep_bisect(
        shifted, a, w_star, np.where(need_left, s_lo, -1.0), iters=opt.bisect_iters
    )
    w1 = np.where(need_left, w1, opt.w_lo)
    w1 = np.where(feasible, w1, np.nan)

    # Stage 2b: right crossing — lockstep doubling then bisection.
    hi = np.where(feasible, w_star, opt.w_lo)
    s_hi = shifted(hi)
    for _ in range(64):
        growing = feasible & (s_hi <= 0)
        if not growing.any():
            break
        hi = np.where(growing, hi * 2.0, hi)
        s_hi = np.where(growing, shifted(hi), s_hi)
    a2 = np.where(feasible, w_star, hi)
    w2 = _lockstep_bisect(
        shifted, a2, hi, np.where(feasible, -1.0, 1.0), iters=opt.bisect_iters
    )
    w2 = np.where(feasible, w2, np.nan)

    # Stage 3: energy minimisation on the feasible interval.  Collapse
    # infeasible rows to a harmless degenerate bracket, then mask.
    b_lo = np.where(feasible, w1, 1.0)
    b_hi = np.where(feasible, w2, 1.0)
    x_e, f_e = _lockstep_golden(
        grid.energy_overhead, b_lo, b_hi, iters=opt.golden_iters
    )
    e1 = grid.energy_overhead(b_lo)
    e2 = grid.energy_overhead(b_hi)
    # Same candidate order as the scalar solver: interior, W1, W2 (the
    # argmin tie-breaks toward the interior optimum).
    cand_w = np.stack([x_e, b_lo, b_hi])
    cand_e = np.stack([f_e, e1, e2])
    j = np.argmin(cand_e, axis=0)
    work = cand_w[j, rows]
    energy = cand_e[j, rows]
    t_at = grid.time_overhead(np.where(feasible, work, 1.0))

    nan = np.where(feasible, 0.0, np.nan)
    return ScheduleGridSolution(
        work=work + nan,
        energy_overhead=energy + nan,
        time_overhead=t_at + nan,
        w_lo=w1,
        w_hi=w2,
        rho_min=rho_min,
        feasible=feasible,
    )


# ----------------------------------------------------------------------
# Convenience front doors (one configuration, many schedules)
# ----------------------------------------------------------------------
def _as_points(
    cfg: "Configuration | str | Sequence[Configuration | str]",
    schedules: Sequence[SpeedSchedule | str],
    errors: "CombinedErrors | ErrorModel | str | Sequence | None",
) -> list[tuple[Configuration, SpeedSchedule, "CombinedErrors | ErrorModel | None"]]:
    from ..platforms.catalog import get_configuration

    def resolve(c: "Configuration | str") -> Configuration:
        return get_configuration(c) if isinstance(c, str) else c

    scheds = [as_schedule(s) for s in schedules]
    if any(s is None for s in scheds):
        raise InvalidParameterError("every grid point needs a schedule")
    cfgs = (
        [resolve(c) for c in cfg]
        if isinstance(cfg, (list, tuple))
        else [resolve(cfg)] * len(scheds)
    )
    errs = (
        list(errors)
        if isinstance(errors, (list, tuple))
        else [errors] * len(scheds)
    )
    # Spec strings are sugar for renewal ErrorModels; CombinedErrors and
    # model objects pass through untouched.
    errs = [as_error_model(e) if isinstance(e, str) else e for e in errs]
    if not len(cfgs) == len(scheds) == len(errs):
        raise InvalidParameterError(
            f"mismatched grid axes: {len(cfgs)} config(s), {len(scheds)} "
            f"schedule(s), {len(errs)} error model(s)"
        )
    return list(zip(cfgs, scheds, errs))


def evaluate_schedule_batch(
    cfg: "Configuration | str | Sequence[Configuration | str]",
    schedules: Sequence[SpeedSchedule | str],
    work: ScalarOrArray,
    *,
    errors: "CombinedErrors | ErrorModel | str | Sequence | None" = None,
    components: tuple[str, ...] = ("time", "energy"),
    max_attempts: int | None = None,
) -> ScheduleExpectation:
    """Expectations of many schedules over a shared work axis at once.

    ``cfg`` and ``errors`` may be single values (applied to every
    schedule — the sigma-axis case: one platform, many policies) or
    per-schedule sequences; error entries may be legacy
    :class:`CombinedErrors`, renewal :class:`ErrorModel` instances, or
    spec strings (``"weibull:shape=0.7,mtbf=5e3"``).  ``work``
    broadcasts as in :meth:`ScheduleGrid.evaluate`: a 1-D array of
    ``m`` pattern sizes yields ``(len(schedules), m)`` result arrays.
    """
    grid = ScheduleGrid.from_points(_as_points(cfg, schedules, errors))
    return grid.evaluate(work, components=components, max_attempts=max_attempts)


def solve_schedule_batch(
    cfg: "Configuration | str | Sequence[Configuration | str]",
    schedules: Sequence[SpeedSchedule | str],
    rho: ScalarOrArray,
    *,
    errors: "CombinedErrors | ErrorModel | str | Sequence | None" = None,
) -> ScheduleGridSolution:
    """Constrained optima of many schedules in one vectorised pass.

    The front door for schedule-axis sweeps: equivalent to calling
    :func:`repro.schedules.solver.solve_schedule` per schedule, batched.
    ``rho`` may be shared or per-schedule.
    """
    grid = ScheduleGrid.from_points(_as_points(cfg, schedules, errors))
    return solve_schedule_grid(grid, rho)
