"""Per-attempt re-execution speed schedules (the `SpeedSchedule` subsystem).

The paper's model fixes one speed ``sigma1`` for the first execution of
a pattern and one speed ``sigma2`` for *all* re-executions.  That is the
minimal instance of a much richer policy space: a **speed schedule**
maps the attempt index ``k`` (1 = first execution, ``k >= 2`` =
re-executions) to the DVFS speed used for that attempt.  This module
defines the abstraction and the concrete policies:

``TwoSpeed(sigma1, sigma2)``
    Exactly the paper: attempt 1 at ``sigma1``, every later attempt at
    ``sigma2``.  The default everywhere; solvers keep the Theorem-1
    closed form as a fast path for it.
``Constant(sigma)``
    Every attempt at the same speed (the single-speed baseline).
``Escalating(speeds, terminal=None)``
    An explicit per-attempt list; attempts beyond the list run at the
    ``terminal`` speed (default: the last list entry).
``Geometric(sigma1, ratio, sigma_max, sigma_min=None)``
    A multiplicative ramp ``sigma1 * ratio**(k-1)`` clamped to
    ``sigma_max`` (and to ``sigma_min`` for back-off ramps with
    ``ratio < 1``).

Every schedule is **eventually constant**: after a finite *head* of
attempts it settles on a *tail speed* forever.  That structural fact is
what makes the general expectation evaluator exact (the attempt series
ends in a geometric sum with a closed form — see
:mod:`repro.schedules.evaluator`) and the Monte-Carlo replay trivially
vectorisable (all samples in re-execution round ``k`` share one speed).

Schedules compare equal (and hash equal) by their *canonical form* —
the normalised ``(head, tail)`` pair — so ``TwoSpeed(s, s)``,
``Constant(s)`` and ``Escalating((s,))`` are the same policy and share
one solve-cache entry.  (The :meth:`~SpeedSchedule.spec` string stays
policy-shaped — ``two:0.4,0.4`` vs ``const:0.4`` — so exports show the
policy the caller wrote; group by :meth:`~SpeedSchedule.canonical` when
identity matters.)
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Iterable
from typing import Any

from ..exceptions import InvalidParameterError, SpeedNotAvailableError
from ..quantities import fmt_round_trip as _fmt
from ..quantities import require_positive

__all__ = [
    "SpeedSchedule",
    "TwoSpeed",
    "Constant",
    "Escalating",
    "Geometric",
    "parse_schedule",
    "schedule_from_dict",
    "schedule_kinds",
    "as_schedule",
]

#: Schema tag for :meth:`SpeedSchedule.to_dict` payloads.
_SCHEDULE_SCHEMA = "repro/speed-schedule/v1"

#: Registered policy kinds, spec-prefix -> class (filled at import time).
_KINDS: dict[str, type["SpeedSchedule"]] = {}


class SpeedSchedule(abc.ABC):
    """A per-attempt re-execution speed policy.

    Subclasses are frozen dataclasses describing *eventually constant*
    attempt->speed maps: a finite :meth:`head_speeds` prefix followed by
    a constant :attr:`tail_speed`.  Attempt indices are 1-based
    (attempt 1 is the first execution; attempts >= 2 are re-executions).

    Equality, hashing and the solve-cache key all go through
    :meth:`canonical`, so two schedules that assign the same speed to
    every attempt are the same schedule regardless of policy class.
    """

    #: Spec-string prefix of the policy (``"two"``, ``"const"``, ...).
    kind: str = "abstract"

    # ------------------------------------------------------------------
    # Structure every policy must expose
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def head_speeds(self) -> tuple[float, ...]:
        """Speeds of attempts ``1 .. len(head)`` (may be empty)."""

    @property
    @abc.abstractmethod
    def tail_speed(self) -> float:
        """The speed of every attempt beyond the head."""

    @abc.abstractmethod
    def spec(self) -> str:
        """The canonical one-line spec string (``parse_schedule`` inverse)."""

    @abc.abstractmethod
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable payload (see :func:`schedule_from_dict`)."""

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def speed_for_attempt(self, attempt: int) -> float:
        """The speed used by 1-based attempt ``attempt``."""
        if attempt < 1:
            raise InvalidParameterError(
                f"attempt indices are 1-based, got {attempt!r}"
            )
        head = self.head_speeds()
        if attempt <= len(head):
            return head[attempt - 1]
        return self.tail_speed

    def speeds_for_attempts(self, n: int) -> tuple[float, ...]:
        """The first ``n`` attempt speeds as a tuple."""
        return tuple(self.speed_for_attempt(k) for k in range(1, n + 1))

    def normalized(self) -> tuple[tuple[float, ...], float]:
        """``(head, tail)`` with trailing head entries equal to the tail
        stripped — the minimal description of the attempt->speed map."""
        head = list(self.head_speeds())
        tail = self.tail_speed
        while head and head[-1] == tail:
            head.pop()
        return tuple(head), tail

    def canonical(self) -> tuple:
        """Canonical serialisation key: policy-independent identity.

        Two schedules with equal canonical forms assign the same speed
        to every attempt; this tuple is what equality, hashing and the
        solve cache use.
        """
        head, tail = self.normalized()
        return ("speed-schedule", head, tail)

    def as_two_speed(self) -> tuple[float, float] | None:
        """``(sigma1, sigma2)`` when this schedule is expressible in the
        paper's two-speed model (first attempt at ``sigma1``, every
        re-execution at ``sigma2``), else ``None``.

        This is the closed-form fast-path test: solvers route two-speed
        schedules through Theorem 1 / the pair solvers and only fall
        back to the numeric evaluator when this returns ``None``.
        """
        head, tail = self.normalized()
        if not head:
            return (tail, tail)
        if len(head) == 1:
            return (head[0], tail)
        return None

    @property
    def is_constant(self) -> bool:
        """True when every attempt runs at the same speed."""
        head, _ = self.normalized()
        return not head

    # ------------------------------------------------------------------
    # Validity against a platform's discrete speed set
    # ------------------------------------------------------------------
    def distinct_speeds(self) -> tuple[float, ...]:
        """All speeds the schedule can ever use, first-use order."""
        head, tail = self.normalized()
        seen: dict[float, None] = {}
        for s in (*head, tail):
            seen.setdefault(s, None)
        return tuple(seen)

    def is_valid_for(self, speeds: Iterable[float]) -> bool:
        """True when every schedule speed belongs to ``speeds``."""
        allowed = set(float(s) for s in speeds)
        return all(s in allowed for s in self.distinct_speeds())

    def validate_against(self, speeds: Iterable[float]) -> None:
        """Raise :class:`SpeedNotAvailableError` for the first schedule
        speed outside the platform's discrete DVFS set ``speeds``."""
        allowed = tuple(float(s) for s in speeds)
        allowed_set = set(allowed)
        for s in self.distinct_speeds():
            if s not in allowed_set:
                raise SpeedNotAvailableError(s, allowed)

    def quantized(self, speeds: Iterable[float]) -> "Escalating":
        """The nearest schedule realisable on the discrete set ``speeds``.

        Each attempt speed snaps to the closest available DVFS speed
        (ties break toward the lower speed); the result is returned as
        an explicit :class:`Escalating` policy.
        """
        allowed = sorted(float(s) for s in speeds)
        if not allowed:
            raise InvalidParameterError("speeds must be a non-empty set")

        def snap(s: float) -> float:
            return min(allowed, key=lambda a: (abs(a - s), a))

        head, tail = self.normalized()
        return Escalating(
            speeds=tuple(snap(s) for s in (*head, tail)),
            terminal=snap(tail),
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SpeedSchedule):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return hash(self.canonical())

    def describe(self) -> str:
        """Short human-readable tag (the spec string)."""
        return self.spec()

    # ------------------------------------------------------------------
    # Shared serialisation plumbing
    # ------------------------------------------------------------------
    def _dict_payload(self, **fields: Any) -> dict[str, Any]:
        return {"schema": _SCHEDULE_SCHEMA, "kind": self.kind, **fields}


def _register_kind(cls: type[SpeedSchedule]) -> type[SpeedSchedule]:
    """Class decorator: add a policy to the spec/serialisation registry."""
    if cls.kind in _KINDS:  # pragma: no cover - programming error
        raise InvalidParameterError(f"schedule kind {cls.kind!r} already registered")
    _KINDS[cls.kind] = cls
    return cls


# ----------------------------------------------------------------------
# Concrete policies
# ----------------------------------------------------------------------
@_register_kind
@dataclass(frozen=True, eq=False)
class TwoSpeed(SpeedSchedule):
    """The paper's model: ``sigma1`` once, then ``sigma2`` forever.

    Examples
    --------
    >>> TwoSpeed(0.4, 0.6).speeds_for_attempts(4)
    (0.4, 0.6, 0.6, 0.6)
    >>> TwoSpeed(0.4, 0.4) == Constant(0.4)
    True
    """

    sigma1: float
    sigma2: float

    kind = "two"

    def __post_init__(self) -> None:
        object.__setattr__(self, "sigma1", require_positive(self.sigma1, "sigma1"))
        object.__setattr__(self, "sigma2", require_positive(self.sigma2, "sigma2"))

    def head_speeds(self) -> tuple[float, ...]:
        return (self.sigma1,)

    @property
    def tail_speed(self) -> float:
        return self.sigma2

    def spec(self) -> str:
        return f"two:{_fmt(self.sigma1)},{_fmt(self.sigma2)}"

    def to_dict(self) -> dict[str, Any]:
        return self._dict_payload(sigma1=self.sigma1, sigma2=self.sigma2)

    @classmethod
    def _from_spec_args(cls, args: str) -> "TwoSpeed":
        s1, s2 = _parse_floats(args, expected=2, kind=cls.kind)
        return cls(sigma1=s1, sigma2=s2)

    @classmethod
    def _from_dict(cls, data: dict[str, Any]) -> "TwoSpeed":
        return cls(sigma1=data["sigma1"], sigma2=data["sigma2"])


@_register_kind
@dataclass(frozen=True, eq=False)
class Constant(SpeedSchedule):
    """Every attempt at the same speed (the single-speed baseline).

    Examples
    --------
    >>> Constant(0.5).speed_for_attempt(7)
    0.5
    """

    sigma: float

    kind = "const"

    def __post_init__(self) -> None:
        object.__setattr__(self, "sigma", require_positive(self.sigma, "sigma"))

    def head_speeds(self) -> tuple[float, ...]:
        return ()

    @property
    def tail_speed(self) -> float:
        return self.sigma

    def spec(self) -> str:
        return f"const:{_fmt(self.sigma)}"

    def to_dict(self) -> dict[str, Any]:
        return self._dict_payload(sigma=self.sigma)

    @classmethod
    def _from_spec_args(cls, args: str) -> "Constant":
        (s,) = _parse_floats(args, expected=1, kind=cls.kind)
        return cls(sigma=s)

    @classmethod
    def _from_dict(cls, data: dict[str, Any]) -> "Constant":
        return cls(sigma=data["sigma"])


@_register_kind
@dataclass(frozen=True, eq=False)
class Escalating(SpeedSchedule):
    """An explicit per-attempt speed list with a terminal speed.

    Attempt ``k <= len(speeds)`` runs at ``speeds[k-1]``; every later
    attempt runs at ``terminal`` (default: the last list entry).

    Examples
    --------
    >>> Escalating((0.4, 0.6, 0.8)).speeds_for_attempts(5)
    (0.4, 0.6, 0.8, 0.8, 0.8)
    >>> Escalating((0.4,), terminal=0.8) == TwoSpeed(0.4, 0.8)
    True
    """

    speeds: tuple[float, ...]
    terminal: float | None = None

    kind = "esc"

    def __post_init__(self) -> None:
        speeds = tuple(require_positive(s, "speed") for s in self.speeds)
        if not speeds:
            raise InvalidParameterError("Escalating needs at least one speed")
        object.__setattr__(self, "speeds", speeds)
        terminal = self.terminal
        if terminal is None:
            terminal = speeds[-1]
        object.__setattr__(self, "terminal", require_positive(terminal, "terminal"))

    def head_speeds(self) -> tuple[float, ...]:
        return self.speeds

    @property
    def tail_speed(self) -> float:
        return float(self.terminal)  # __post_init__ guarantees non-None

    def spec(self) -> str:
        head = ",".join(_fmt(s) for s in self.speeds)
        if self.terminal == self.speeds[-1]:
            return f"esc:{head}"
        return f"esc:{head}@{_fmt(self.tail_speed)}"

    def to_dict(self) -> dict[str, Any]:
        return self._dict_payload(speeds=list(self.speeds), terminal=self.terminal)

    @classmethod
    def _from_spec_args(cls, args: str) -> "Escalating":
        head_part, _, term_part = args.partition("@")
        speeds = _parse_floats(head_part, expected=None, kind=cls.kind)
        terminal = None
        if term_part:
            (terminal,) = _parse_floats(term_part, expected=1, kind=cls.kind)
        return cls(speeds=tuple(speeds), terminal=terminal)

    @classmethod
    def _from_dict(cls, data: dict[str, Any]) -> "Escalating":
        return cls(speeds=tuple(data["speeds"]), terminal=data["terminal"])


@_register_kind
@dataclass(frozen=True, eq=False)
class Geometric(SpeedSchedule):
    """A multiplicative speed ramp clamped to ``sigma_max``.

    Attempt ``k`` runs at ``sigma1 * ratio**(k-1)`` clamped into
    ``[sigma_min, sigma_max]``.  ``ratio > 1`` escalates toward
    ``sigma_max`` (re-execute ever faster, bounded by the platform's top
    speed); ``ratio < 1`` backs off toward ``sigma_min`` (which must
    then be given); ``ratio == 1`` degenerates to :class:`Constant`.

    Examples
    --------
    >>> Geometric(0.4, 1.5, sigma_max=1.0).speeds_for_attempts(4)
    (0.4, 0.6000000000000001, 0.9000000000000001, 1.0)
    >>> Geometric(0.8, 0.5, sigma_max=1.0, sigma_min=0.2).speeds_for_attempts(4)
    (0.8, 0.4, 0.2, 0.2)
    """

    sigma1: float
    ratio: float
    sigma_max: float
    sigma_min: float | None = None

    kind = "geom"

    #: Safety cap on the ramp length before the clamp must bite.
    _MAX_HEAD = 10_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "sigma1", require_positive(self.sigma1, "sigma1"))
        object.__setattr__(self, "ratio", require_positive(self.ratio, "ratio"))
        object.__setattr__(self, "sigma_max", require_positive(self.sigma_max, "sigma_max"))
        if self.sigma_min is not None:
            object.__setattr__(
                self, "sigma_min", require_positive(self.sigma_min, "sigma_min")
            )
            if self.sigma_min > self.sigma_max:
                raise InvalidParameterError(
                    f"sigma_min {self.sigma_min} exceeds sigma_max {self.sigma_max}"
                )
        if self.sigma1 > self.sigma_max or (
            self.sigma_min is not None and self.sigma1 < self.sigma_min
        ):
            raise InvalidParameterError(
                f"sigma1 {self.sigma1} outside the clamp window "
                f"[{self.sigma_min}, {self.sigma_max}]"
            )
        if self.ratio < 1.0 and self.sigma_min is None:
            raise InvalidParameterError(
                "a back-off ramp (ratio < 1) needs an explicit sigma_min floor"
            )
        # Materialise the ramp once; it is tiny (the clamp bites after
        # O(log(sigma_max/sigma1)/log(ratio)) attempts).
        object.__setattr__(self, "_head", self._ramp())

    def _clamp(self, s: float) -> float:
        lo = self.sigma_min if self.sigma_min is not None else 0.0
        return min(max(s, lo), self.sigma_max)

    def _ramp(self) -> tuple[float, ...]:
        if self.ratio == 1.0:
            return ()
        head: list[float] = []
        s = self.sigma1
        limit = self.sigma_max if self.ratio > 1.0 else float(self.sigma_min)
        for _ in range(self._MAX_HEAD):
            clamped = self._clamp(s)
            if clamped == limit:
                break
            head.append(clamped)
            s *= self.ratio
        else:  # pragma: no cover - ratio ~ 1 pathologies only
            raise InvalidParameterError(
                f"geometric ramp failed to reach its clamp within "
                f"{self._MAX_HEAD} attempts (ratio too close to 1?)"
            )
        return tuple(head)

    def head_speeds(self) -> tuple[float, ...]:
        return self._head  # type: ignore[attr-defined]

    @property
    def tail_speed(self) -> float:
        if self.ratio == 1.0:
            return self.sigma1
        if self.ratio > 1.0:
            return self.sigma_max
        return float(self.sigma_min)

    def spec(self) -> str:
        base = f"geom:{_fmt(self.sigma1)},{_fmt(self.ratio)},{_fmt(self.sigma_max)}"
        if self.sigma_min is not None:
            return f"{base},{_fmt(self.sigma_min)}"
        return base

    def to_dict(self) -> dict[str, Any]:
        return self._dict_payload(
            sigma1=self.sigma1,
            ratio=self.ratio,
            sigma_max=self.sigma_max,
            sigma_min=self.sigma_min,
        )

    @classmethod
    def _from_spec_args(cls, args: str) -> "Geometric":
        values = _parse_floats(args, expected=None, kind=cls.kind)
        if len(values) == 3:
            return cls(sigma1=values[0], ratio=values[1], sigma_max=values[2])
        if len(values) == 4:
            return cls(
                sigma1=values[0], ratio=values[1],
                sigma_max=values[2], sigma_min=values[3],
            )
        raise InvalidParameterError(
            f"geom takes 3 or 4 comma-separated values "
            f"(sigma1,ratio,sigma_max[,sigma_min]), got {len(values)}"
        )

    @classmethod
    def _from_dict(cls, data: dict[str, Any]) -> "Geometric":
        return cls(
            sigma1=data["sigma1"],
            ratio=data["ratio"],
            sigma_max=data["sigma_max"],
            sigma_min=data.get("sigma_min"),
        )


# ----------------------------------------------------------------------
# Parsing / serialisation front doors
# ----------------------------------------------------------------------
def _parse_floats(text: str, expected: int | None, kind: str) -> list[float]:
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if expected is not None and len(parts) != expected:
        raise InvalidParameterError(
            f"schedule kind {kind!r} takes {expected} comma-separated "
            f"value(s), got {len(parts)} in {text!r}"
        )
    if not parts:
        raise InvalidParameterError(f"schedule kind {kind!r} needs at least one value")
    try:
        return [float(p) for p in parts]
    except ValueError as exc:
        raise InvalidParameterError(f"bad schedule number in {text!r}: {exc}") from None


def parse_schedule(spec: str) -> SpeedSchedule:
    """Parse a spec string (``"two:0.4,0.6"``, ``"geom:0.4,1.5,1"`` ...).

    The inverse of :meth:`SpeedSchedule.spec`; the grammar is
    ``<kind>:<comma-separated numbers>`` with the per-kind argument
    lists documented on each policy class (``repro schedules`` lists
    them from the CLI).
    """
    kind, sep, args = spec.partition(":")
    kind = kind.strip().lower()
    if not sep or kind not in _KINDS:
        raise InvalidParameterError(
            f"unknown schedule spec {spec!r}; valid kinds: "
            f"{', '.join(sorted(_KINDS))} (e.g. 'two:0.4,0.6')"
        )
    return _KINDS[kind]._from_spec_args(args)


def schedule_from_dict(data: dict[str, Any]) -> SpeedSchedule:
    """Restore a schedule from :meth:`SpeedSchedule.to_dict` output."""
    if data.get("schema") != _SCHEDULE_SCHEMA:
        raise InvalidParameterError(f"not a speed-schedule payload: {data.get('schema')!r}")
    kind = data.get("kind")
    if kind not in _KINDS:
        raise InvalidParameterError(f"unknown schedule kind {kind!r}")
    return _KINDS[kind]._from_dict(data)


def schedule_kinds() -> dict[str, type[SpeedSchedule]]:
    """The registered policy kinds, spec-prefix -> class (sorted copy)."""
    return dict(sorted(_KINDS.items()))


def as_schedule(value: "SpeedSchedule | str | None") -> SpeedSchedule | None:
    """Coerce ``value`` to a schedule: specs parse, ``None`` passes through."""
    if value is None or isinstance(value, SpeedSchedule):
        return value
    if isinstance(value, str):
        return parse_schedule(value)
    raise InvalidParameterError(
        f"schedule must be a SpeedSchedule or a spec string, got {type(value).__name__}"
    )