"""Constrained pattern-size optimisation for a general speed schedule.

The BiCrit problem for a *fixed* schedule: minimise the exact expected
energy per work unit subject to the exact expected time per work unit
staying below ``rho``.  The schedule pins every attempt speed, so the
only free variable is the pattern size ``W`` — the same
minimise/bracket/minimise scheme as :mod:`repro.core.numeric` and
:mod:`repro.failstop.solver`, applied to the schedule evaluator:

1. minimise ``T(W)/W`` (coercive: ``C/W -> inf`` as ``W -> 0``, the
   re-execution tail diverges as ``W -> inf``); if the minimum exceeds
   ``rho`` the schedule is infeasible under that bound;
2. bracket the two ``T(W)/W = rho`` crossings with Brent root finding
   to get the feasible interval ``[W1, W2]``;
3. minimise ``E(W)/W`` on ``[W1, W2]`` (interior optimum + end points).

For schedules whose attempt map is expressible as a two-speed pair the
API layer never reaches this module — the ``schedule`` backend routes
those through the Theorem-1 closed form (silent) or the Section-5 pair
solver (combined), byte-identical to the legacy paths.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq, minimize_scalar

from ..core.numeric import minimize_unimodal
from ..exceptions import ConvergenceError, InfeasibleBoundError
from ..platforms.configuration import Configuration
from ..quantities import require_positive
from .base import SpeedSchedule
from .evaluator import ErrorsLike, energy_overhead_schedule, time_overhead_schedule

__all__ = ["ScheduleSolution", "solve_schedule", "schedule_min_bound"]

_W_LO = 1e-3


@dataclass(frozen=True)
class ScheduleSolution:
    """Constrained optimum of one schedule under a performance bound.

    Exposes the uniform candidate surface (``sigma1``, ``sigma2``,
    ``work``, ``energy_overhead``, ``time_overhead``) shared by every
    backend payload, with the first two derived from the schedule's
    attempt map (``sigma2`` is the second-attempt speed; later attempts
    may differ — read ``schedule`` for the full policy).
    """

    schedule: SpeedSchedule
    work: float
    energy_overhead: float
    time_overhead: float
    interval: tuple[float, float]
    failstop_fraction: float = 0.0

    @property
    def sigma1(self) -> float:
        """First-attempt speed (uniform accessor)."""
        return self.schedule.speed_for_attempt(1)

    @property
    def sigma2(self) -> float:
        """Second-attempt (first re-execution) speed (uniform accessor)."""
        return self.schedule.speed_for_attempt(2)

    @property
    def speed_pair(self) -> tuple[float, float]:
        """``(sigma1, sigma2)`` of the first two attempts."""
        return (self.sigma1, self.sigma2)


def _overhead_fns(
    cfg: Configuration, errors: ErrorsLike, schedule: SpeedSchedule
) -> tuple[Callable[[float], float], Callable[[float], float]]:
    def t_over(w: float) -> float:
        with np.errstate(over="ignore"):
            return float(time_overhead_schedule(cfg, schedule, w, errors=errors))

    def e_over(w: float) -> float:
        with np.errstate(over="ignore"):
            return float(energy_overhead_schedule(cfg, schedule, w, errors=errors))

    return t_over, e_over


def schedule_min_bound(
    cfg: Configuration,
    schedule: SpeedSchedule,
    errors: ErrorsLike = None,
) -> float:
    """The smallest feasible ``rho`` for this schedule (Eq.-6 analogue).

    Below this value :func:`solve_schedule` returns ``None``; the
    ``schedule`` backend reports it as the ``rho_min`` diagnostic of an
    :class:`~repro.exceptions.InfeasibleBoundError`.
    """
    t_over, _ = _overhead_fns(cfg, errors, schedule)
    _, t_min = minimize_unimodal(t_over)
    return t_min


def solve_schedule(
    cfg: Configuration,
    schedule: SpeedSchedule,
    rho: float,
    errors: ErrorsLike = None,
) -> ScheduleSolution:
    """Exact constrained optimum for one schedule.

    ``errors=None`` means silent-only at the configuration's rate.  The
    analogue of :func:`repro.core.numeric.solve_pair_exact` /
    :func:`repro.failstop.solver.solve_pair_combined` with the pair
    replaced by a full per-attempt schedule.

    Raises
    ------
    InfeasibleBoundError
        When the schedule cannot meet ``rho`` at any pattern size; the
        schedule's minimal feasible bound (already computed by the
        time minimisation) rides along as ``rho_min``.
    """
    require_positive(rho, "rho")
    t_over, e_over = _overhead_fns(cfg, errors, schedule)

    w_star, t_min = minimize_unimodal(t_over)
    if t_min > rho:
        raise InfeasibleBoundError(rho, t_min)

    def shifted(w: float) -> float:
        v = t_over(w) - rho
        return v if math.isfinite(v) else 1e300

    lo = _W_LO
    if shifted(lo) <= 0:
        w1 = lo
    else:
        w1 = float(brentq(shifted, lo, w_star, xtol=1e-9, rtol=1e-12))
    hi = w_star
    while shifted(hi) <= 0:
        hi *= 2.0
        if hi > 1e15:  # pragma: no cover - unreachable for valid configs
            raise ConvergenceError("failed to bracket the right feasibility crossing")
    w2 = float(brentq(shifted, w_star, hi, xtol=1e-9, rtol=1e-12))

    res = minimize_scalar(
        e_over, bounds=(w1, w2), method="bounded", options={"xatol": 1e-9 * max(w2, 1.0)}
    )
    cands = [(float(res.x), float(res.fun)), (w1, e_over(w1)), (w2, e_over(w2))]
    work, energy = min(cands, key=lambda p: p[1])
    fraction = errors.failstop_fraction if errors is not None else 0.0
    return ScheduleSolution(
        schedule=schedule,
        work=work,
        energy_overhead=energy,
        time_overhead=t_over(work),
        interval=(w1, w2),
        failstop_fraction=fraction,
    )
