"""Exact expectations of a pattern under an arbitrary speed schedule.

Generalises Propositions 1-5 from the two-speed model to any
:class:`~repro.schedules.base.SpeedSchedule`.  Let attempt ``k`` run at
speed ``s_k`` with failure probability ``p_k`` and expected busy time
``M_k`` (fail-stop-capped exposure; see
:meth:`repro.errors.combined.CombinedErrors.attempt_failure_probability`
/ :meth:`~repro.errors.combined.CombinedErrors.attempt_exposure`).
Attempt ``k`` is reached with probability ``r_k = prod_{j<k} p_j``, each
failed attempt pays a recovery ``R`` and the (single) final success pays
the checkpoint ``C``, so

.. math::

    E[T] = C + \\sum_{k\\ge 1} r_k (M_k + p_k R), \\qquad
    E[E] = C P_{io} + \\sum_{k\\ge 1} r_k (M_k P(s_k) + p_k R P_{io}),

with ``P(s) = kappa s^3 + Pidle`` and ``P_{io} = Pio + Pidle``.

**Exact geometric tail.**  Every schedule is eventually constant: from
attempt ``K+1`` on (``K = len(head)``) the speed is the tail speed
``s_t``, so the remaining series is geometric with ratio ``p_t`` and
sums in closed form:

.. math::

    \\sum_{k > K} r_k (M_t + p_t R)
      = \\frac{r_{K+1}}{1 - p_t} (M_t + p_t R).

The evaluator therefore computes the *exact* expectation with
``len(head)`` explicit terms plus one closed-form tail — no truncation
error.  For the two-speed schedule (head = one attempt) this reduces
algebraically to Propositions 2/3 and to the Section-5 combined closed
forms, which the test suite pins numerically.

**Truncated mode and its tail bound.**  ``max_attempts=N`` (with
``N >= len(head)``) instead sums the first ``N`` attempts only (head
explicitly, then a finite geometric sum of ``N - K`` tail terms).  The
neglected remainder is again a geometric series, so the truncation
error is *exactly*

.. math::

    \\Delta_T(N) = \\frac{r_{K+1}\\, p_t^{\\,N-K}}{1 - p_t} (M_t + p_t R)
    \\le \\frac{p_t^{\\,N-K}}{1-p_t} (M_t + p_t R),

reported per evaluation as ``tail_bound_time`` / ``tail_bound_energy``
(and analogously for the attempt count).  Since ``p_t < 1`` for every
positive-rate model, the bound decays geometrically in ``N`` — the
"proven tail bound" that justifies truncated evaluation when a fixed
attempt budget is wanted (see ``docs/schedules.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors.combined import CombinedErrors
from ..errors.models import ErrorModel, collapse_memoryless
from ..exceptions import InvalidParameterError, InvalidTruncationError
from ..platforms.configuration import Configuration
from ..quantities import ScalarOrArray, as_float_array, is_scalar
from .base import SpeedSchedule

#: What every ``errors=`` parameter of this module accepts: the legacy
#: exponential split, a renewal :class:`ErrorModel`, or ``None``
#: (silent-only at the configuration's own rate).
ErrorsLike = CombinedErrors | ErrorModel | None

__all__ = [
    "ScheduleExpectation",
    "evaluate_schedule",
    "expected_time_schedule",
    "expected_energy_schedule",
    "expected_reexecutions_schedule",
    "time_overhead_schedule",
    "energy_overhead_schedule",
]


@dataclass(frozen=True)
class ScheduleExpectation:
    """Expectations of one pattern under a speed schedule.

    ``time``/``energy``/``attempts`` broadcast over the ``work`` the
    evaluator was called with (scalars for scalar work).  When the
    evaluation was truncated (``truncated=True``), the ``tail_bound_*``
    fields carry the exact value of the neglected geometric remainder;
    they are ``0.0`` for exact (untruncated) evaluations.  A component
    excluded via ``components=`` is ``None`` (the solver's hot loops
    ask for one overhead at a time).
    """

    time: float | np.ndarray | None
    energy: float | np.ndarray | None
    attempts: float | np.ndarray
    truncated: bool = False
    tail_bound_time: float | np.ndarray | None = 0.0
    tail_bound_energy: float | np.ndarray | None = 0.0

    @property
    def reexecutions(self) -> float | np.ndarray:
        """Expected number of re-executions (attempts beyond the first)."""
        return self.attempts - 1.0


def _resolve_errors(
    cfg: Configuration, errors: ErrorsLike
) -> CombinedErrors | ErrorModel:
    """The per-attempt primitive provider for one evaluation.

    ``None`` means silent-only at the configuration's own rate.  A
    memoryless :class:`ErrorModel` collapses to its byte-identical
    :class:`CombinedErrors` so the exponential fast path stays bit-for-
    bit the legacy one; any other renewal model supplies the same
    ``attempt_failure_probability`` / ``attempt_exposure`` interface
    through its renewal CDF primitives.
    """
    if errors is None:
        return CombinedErrors(total_rate=cfg.lam, failstop_fraction=0.0)
    return collapse_memoryless(errors)


def _attempt_primitives(
    err: CombinedErrors | ErrorModel, w: ScalarOrArray, speed: float, V: float
) -> tuple[ScalarOrArray, ScalarOrArray]:
    """One attempt's ``(failure probability, capped busy time)``.

    For a renewal :class:`ErrorModel` this is a single
    ``per_window_primitives`` call — the solver's bracketing loops
    evaluate hundreds of points, and computing p and m separately would
    double the incomplete-gamma/ECDF work.  The legacy
    :class:`CombinedErrors` path keeps its two byte-identical closed
    forms.
    """
    if isinstance(err, ErrorModel):
        return err.per_window_primitives((w + V) / speed, w / speed)
    return (
        err.attempt_failure_probability(w, speed, V),
        err.attempt_exposure(w, speed, V),
    )


def evaluate_schedule(
    cfg: Configuration,
    schedule: SpeedSchedule,
    work: ScalarOrArray,
    *,
    errors: ErrorsLike = None,
    max_attempts: int | None = None,
    components: tuple[str, ...] = ("time", "energy"),
) -> ScheduleExpectation:
    """Expected pattern time/energy/attempts under ``schedule``.

    Parameters
    ----------
    cfg:
        Platform/processor configuration (``C``, ``V``, ``R``, power
        model).
    schedule:
        The per-attempt speed policy.
    work:
        Pattern size(s); broadcasts like the ``core.exact`` functions.
    errors:
        Fail-stop/silent split; ``None`` means silent-only at the
        configuration's own rate (the model of Sections 2-4).
    max_attempts:
        ``None`` (default) evaluates *exactly* via the closed-form
        geometric tail.  An integer ``N >= len(head) `` truncates the
        attempt series after ``N`` attempts and reports the neglected
        remainder in the ``tail_bound_*`` fields.
    components:
        Which expectations to accumulate (``"time"``, ``"energy"``).
        Excluded components come back as ``None``; the attempt count is
        always computed (it is a byproduct of the reach chain).  The
        constrained solver's minimise/bracket loops evaluate hundreds
        of points needing only one overhead each — skipping the other
        halves the per-point vector work.
    """
    w = as_float_array(work)
    if np.any(w <= 0):
        raise InvalidParameterError("work must be > 0")
    want_time = "time" in components
    want_energy = "energy" in components
    err = _resolve_errors(cfg, errors)
    head, tail = schedule.normalized()
    if max_attempts is not None and (max_attempts < 1 or max_attempts < len(head)):
        raise InvalidTruncationError(max_attempts, len(head))

    V = cfg.verification_time
    R = cfg.recovery_time
    pm = cfg.power
    p_io = pm.io_total_power()

    t = np.full_like(w, float(cfg.checkpoint_time)) if want_time else None
    e = np.full_like(w, float(cfg.checkpoint_time) * p_io) if want_energy else None
    attempts = np.zeros_like(w)
    reach = np.ones_like(w)

    for s in head:
        p, m = _attempt_primitives(err, w, s, V)
        if want_time:
            t = t + reach * (m + p * R)
        if want_energy:
            e = e + reach * (m * pm.compute_power(s) + p * R * p_io)
        attempts = attempts + reach
        reach = reach * p

    # Tail: attempts len(head)+1 .. inf all run at the tail speed, so the
    # remaining series is geometric with ratio p_t and sums exactly.
    p_t, m_t = _attempt_primitives(err, w, tail, V)
    p_t = np.asarray(p_t)
    m_t = np.asarray(m_t)
    with np.errstate(divide="ignore", invalid="ignore"):
        # p_t == 1.0 (numerically) means re-executions never succeed: the
        # expectation diverges, matching the exp-overflow convention of
        # the closed-form modules.
        inv_gap = np.where(p_t < 1.0, 1.0 / (1.0 - p_t), np.inf)

    tail_time_unit = m_t + p_t * R if want_time else None
    tail_energy_unit = (
        m_t * pm.compute_power(tail) + p_t * R * p_io if want_energy else None
    )

    if max_attempts is None:
        geom = reach * inv_gap
        remainder = None
        attempts = attempts + geom
        bound_t: np.ndarray | None = np.zeros_like(w) if want_time else None
        bound_e: np.ndarray | None = np.zeros_like(w) if want_energy else None
        truncated = False
    else:
        n_tail = max_attempts - len(head)
        with np.errstate(over="ignore", invalid="ignore"):
            decay = p_t**n_tail
            # p_t == 1.0 makes (1 - decay) * inv_gap the 0 * inf form;
            # the divergent-expectation convention (inf, as in the
            # exact branch) is the correct limit, not NaN.
            geom = np.where(p_t < 1.0, reach * (1.0 - decay) * inv_gap, np.inf)
            remainder = np.where(p_t < 1.0, reach * decay * inv_gap, np.inf)
        attempts = attempts + geom
        bound_t = remainder * tail_time_unit if want_time else None
        bound_e = remainder * tail_energy_unit if want_energy else None
        truncated = True
    if want_time:
        t = t + geom * tail_time_unit
    if want_energy:
        e = e + geom * tail_energy_unit

    if is_scalar(work):
        return ScheduleExpectation(
            time=float(t) if want_time else None,
            energy=float(e) if want_energy else None,
            attempts=float(attempts),
            truncated=truncated,
            tail_bound_time=float(bound_t) if want_time else None,
            tail_bound_energy=float(bound_e) if want_energy else None,
        )
    return ScheduleExpectation(
        time=t,
        energy=e,
        attempts=attempts,
        truncated=truncated,
        tail_bound_time=bound_t,
        tail_bound_energy=bound_e,
    )


def expected_time_schedule(
    cfg: Configuration,
    schedule: SpeedSchedule,
    work: ScalarOrArray,
    *,
    errors: ErrorsLike = None,
) -> ScalarOrArray:
    """Exact expected pattern time under ``schedule`` (Prop. 2 analogue)."""
    return evaluate_schedule(cfg, schedule, work, errors=errors, components=("time",)).time


def expected_energy_schedule(
    cfg: Configuration,
    schedule: SpeedSchedule,
    work: ScalarOrArray,
    *,
    errors: ErrorsLike = None,
) -> ScalarOrArray:
    """Exact expected pattern energy (mJ) under ``schedule`` (Prop. 3 analogue)."""
    return evaluate_schedule(
        cfg, schedule, work, errors=errors, components=("energy",)
    ).energy


def expected_reexecutions_schedule(
    cfg: Configuration,
    schedule: SpeedSchedule,
    work: ScalarOrArray,
    *,
    errors: ErrorsLike = None,
    max_attempts: int | None = None,
) -> ScalarOrArray:
    """Expected number of re-executions per pattern under ``schedule``.

    ``max_attempts`` truncates the attempt series exactly as in
    :func:`evaluate_schedule`; an attempt budget that cannot cover the
    schedule head (or is below 1, which would yield a meaningless
    negative re-execution count) raises
    :class:`~repro.exceptions.InvalidTruncationError`.
    """
    return evaluate_schedule(
        cfg, schedule, work, errors=errors, max_attempts=max_attempts, components=()
    ).reexecutions


def time_overhead_schedule(
    cfg: Configuration,
    schedule: SpeedSchedule,
    work: ScalarOrArray,
    *,
    errors: ErrorsLike = None,
) -> ScalarOrArray:
    """Exact expected time per work unit under ``schedule``."""
    w = as_float_array(work)
    r = (
        evaluate_schedule(cfg, schedule, work, errors=errors, components=("time",)).time
        / w
    )
    return float(r) if is_scalar(work) else r


def energy_overhead_schedule(
    cfg: Configuration,
    schedule: SpeedSchedule,
    work: ScalarOrArray,
    *,
    errors: ErrorsLike = None,
) -> ScalarOrArray:
    """Exact expected energy per work unit (mJ) under ``schedule``."""
    w = as_float_array(work)
    r = (
        evaluate_schedule(
            cfg, schedule, work, errors=errors, components=("energy",)
        ).energy
        / w
    )
    return float(r) if is_scalar(work) else r
