"""Native-speed schedule kernels: numba-jitted, NumPy-identical fallback.

The ``schedule-grid`` tier (:mod:`repro.schedules.vectorized`) already
evaluates whole ``(configuration, schedule, error-model)`` grids in
broadcast NumPy passes.  This module pushes the hot inner kernel — the
per-attempt primitive accumulation plus the closed-form geometric tail
— past NumPy:

* when **numba** is importable (``pip install repro[jit]``), the
  exponential-row evaluation compiles to a fused native loop nest: one
  pass over the ``(point, work)`` grid with no intermediate
  temporaries, parallelised over grid rows.  The kernel replays the
  exact expression sequence of
  :meth:`~repro.schedules.vectorized.ScheduleGrid.evaluate` (same
  ``expm1`` forms, same series/direct exposure split at ``x < 1e-8``),
  so its results agree with the NumPy tier to the last few ulps — the
  equivalence tests pin ``<= 1e-12`` relative on the energy objective;

* when numba is **absent** (or disabled via the
  ``REPRO_DISABLE_NUMBA`` environment variable, or the first compile
  fails), :class:`JitScheduleGrid` falls back to the inherited NumPy
  path and is **byte-identical** to :class:`ScheduleGrid` — the
  fallback *is* the inherited code, so nothing can drift;

* independent of numba, :class:`JitScheduleGrid` adds per-error-model
  **primitive-table reuse**: on shared-work-axis passes (the solver's
  coarse scan — the dominant broadcast evaluation), renewal-model rows
  sharing ``(model, verification time, speed)`` evaluate their renewal
  CDF primitives once and gather the row across the whole group,
  instead of recomputing identical tables row by row.  The reuse is a
  pure gather of elementwise results, so it too is byte-identical to
  the row-by-row evaluation.

The ``schedule-grid-jit`` backend of :mod:`repro.api.backends` stacks
batches into :class:`JitScheduleGrid` instead of
:class:`ScheduleGrid`; everything else (the lockstep constrained
solver, the backend batch-splitting rules) is shared with the NumPy
tier.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

import numpy as np

from ..exceptions import InvalidParameterError
from ..quantities import FloatArray, ScalarOrArray
from .evaluator import ScheduleExpectation
from .vectorized import ScheduleGrid, _capped_exposure_cols

__all__ = [
    "JitScheduleGrid",
    "jit_available",
    "NUMBA_DISABLE_ENV",
]

#: Setting this environment variable (to any non-empty value) makes the
#: jit tier behave as if numba were not installed — the import-guard
#: switch the fallback tests flip.
NUMBA_DISABLE_ENV = "REPRO_DISABLE_NUMBA"


def _load_numba() -> Any:
    """The ``numba`` module, or ``None`` when unavailable/disabled.

    numba is an *optional* accelerator dependency: this import guard is
    the single switch between the native tier and the byte-identical
    NumPy fallback, so simulating its absence (tests, the CI fallback
    job) only needs :data:`NUMBA_DISABLE_ENV`.
    """
    if os.environ.get(NUMBA_DISABLE_ENV):
        return None
    try:
        import numba
    except ImportError:
        return None
    return numba


_nb = _load_numba()

#: The compiled exponential-row kernel (``None`` without numba).  Typed
#: loosely: numba dispatchers are opaque callables.
_EXP_KERNEL: Callable[..., tuple[FloatArray, FloatArray, FloatArray]] | None = None

#: Set after a failed compile/first call so a broken numba install
#: degrades to the NumPy tier once, instead of raising per evaluation.
_KERNEL_BROKEN = False


if _nb is not None:  # pragma: no cover - exercised only with numba installed

    @_nb.njit(cache=True, parallel=True, fastmath=False)
    def _exp_kernel_impl(
        head: np.ndarray,
        head_len: np.ndarray,
        tail: np.ndarray,
        lam_f: np.ndarray,
        lam_s: np.ndarray,
        C: np.ndarray,
        V: np.ndarray,
        R: np.ndarray,
        kappa: np.ndarray,
        idle: np.ndarray,
        p_io: np.ndarray,
        w: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused attempt-series evaluation of exponential grid rows.

        Replays :meth:`ScheduleGrid.evaluate` element by element: the
        per-attempt head accumulation (masked by ``head_len``), then
        the closed-form geometric tail.  ``w`` has shape ``(1, m)``
        (shared work axis) or ``(n, m)``; outputs are ``(n, m)``.
        ``fastmath`` stays off — the ``<= 1e-12`` equivalence pin
        against the NumPy tier needs IEEE-faithful expressions.
        """
        n = tail.shape[0]
        m = w.shape[1]
        shared = w.shape[0] == 1
        t = np.empty((n, m))
        e = np.empty((n, m))
        att = np.empty((n, m))
        for i in _nb.prange(n):
            lf = lam_f[i, 0]
            ls = lam_s[i, 0]
            Ci = C[i, 0]
            Vi = V[i, 0]
            Ri = R[i, 0]
            ki = kappa[i, 0]
            ii = idle[i, 0]
            pi = p_io[i, 0]
            H = int(head_len[i, 0])
            for j in range(m):
                wj = w[0, j] if shared else w[i, j]
                t_acc = Ci
                e_acc = Ci * pi
                attempts = 0.0
                reach = 1.0
                for k in range(H):
                    s = head[i, k]
                    tau = (wj + Vi) / s
                    omega = wj / s
                    p = -np.expm1(-(lf * tau + ls * omega))
                    x = lf * tau
                    if x < 1e-8:
                        mexp = tau * (1.0 - x / 2.0 + x * x / 6.0)
                    else:
                        mexp = -np.expm1(-x) / lf
                    t_acc = t_acc + reach * (mexp + p * Ri)
                    e_acc = e_acc + reach * (mexp * (ki * s**3 + ii) + p * Ri * pi)
                    attempts = attempts + reach
                    reach = reach * p
                s = tail[i, 0]
                tau = (wj + Vi) / s
                omega = wj / s
                p_t = -np.expm1(-(lf * tau + ls * omega))
                x = lf * tau
                if x < 1e-8:
                    m_t = tau * (1.0 - x / 2.0 + x * x / 6.0)
                else:
                    m_t = -np.expm1(-x) / lf
                inv_gap = 1.0 / (1.0 - p_t) if p_t < 1.0 else np.inf
                geom = reach * inv_gap
                t[i, j] = t_acc + geom * (m_t + p_t * Ri)
                e[i, j] = e_acc + geom * (m_t * (ki * s**3 + ii) + p_t * Ri * pi)
                att[i, j] = attempts + geom
        return t, e, att

    _EXP_KERNEL = _exp_kernel_impl


def jit_available() -> bool:
    """True when the numba tier is importable, enabled, and healthy.

    ``False`` means :class:`JitScheduleGrid` runs the byte-identical
    NumPy fallback — the import guard (numba missing), the
    :data:`NUMBA_DISABLE_ENV` switch, and a failed kernel compile all
    land here.
    """
    return _EXP_KERNEL is not None and not _KERNEL_BROKEN


@dataclass(frozen=True)
class JitScheduleGrid(ScheduleGrid):
    """A :class:`ScheduleGrid` with the native-speed evaluation tier.

    Construction (:meth:`~ScheduleGrid.from_points`), the lockstep
    constrained solver and every shape/broadcast rule are inherited
    unchanged; only the evaluation hot path differs:

    * pure-exponential, untruncated evaluations run through the
      compiled kernel when :func:`jit_available` (``<= 1e-12``
      relative vs the NumPy tier, pinned by the equivalence tests);
    * everything else — renewal-model rows, truncated series, and any
      grid when numba is absent — takes the inherited NumPy path
      **byte for byte**, with one addition: renewal-model rows reuse
      per-``(model, V, speed)`` primitive tables across rows on
      shared-work-axis passes (a pure gather, still byte-identical).
    """

    # ------------------------------------------------------------------
    def _primitives(
        self, w: FloatArray, s: FloatArray
    ) -> tuple[FloatArray, FloatArray]:
        """Per-attempt primitives with per-model table reuse.

        On shared-work-axis passes (``w`` is one row broadcast against
        every grid row — the solver's coarse scan), rows of one model
        group that share ``(verification time, speed)`` see exactly
        the same ``(tau, omega)`` row, so their renewal primitives are
        computed once and gathered to every duplicate row.  Per-row
        passes (the lockstep probes) fall through to the inherited
        per-group evaluation.
        """
        if not self._model_groups or w.ndim != 2 or w.shape[0] != 1:
            return super()._primitives(w, s)

        # Exponential pass over every row — same expressions as the
        # base class, so exponential rows stay bit-for-bit identical.
        tau = (w + self.V) / s
        omega = w / s
        p = -np.expm1(-(self.lam_f * tau + self.lam_s * omega))
        m = _capped_exposure_cols(self.lam_f, tau)
        tau_b = np.broadcast_to(tau, p.shape)
        omega_b = np.broadcast_to(omega, p.shape)
        for model, idx in self._model_groups:
            # Table key: rows with equal (V, s) scalars share one
            # primitive row.  Exact float keys — no tolerance grouping,
            # so reuse can never change a row's value.
            tables: dict[tuple[float, float], tuple[FloatArray, FloatArray]] = {}
            for i in idx:
                key = (float(self.V[i, 0]), float(s[i, 0]))
                hit = tables.get(key)
                if hit is None:
                    hit = model.per_window_primitives(
                        tau_b[i : i + 1], omega_b[i : i + 1]
                    )
                    tables[key] = hit
                p[i] = hit[0][0]
                m[i] = hit[1][0]
        return p, m

    # ------------------------------------------------------------------
    def evaluate(
        self,
        work: ScalarOrArray,
        *,
        components: tuple[str, ...] = ("time", "energy"),
        max_attempts: int | None = None,
    ) -> ScheduleExpectation:
        """Batched evaluation through the native kernel when possible.

        The kernel covers the hot case — every row exponential, no
        truncation, 2-D (or scalar/1-D) work; anything else defers to
        the inherited NumPy tier (which is what the kernel is pinned
        against).
        """
        global _KERNEL_BROKEN
        if (
            _EXP_KERNEL is None
            or _KERNEL_BROKEN
            or self._model_groups
            or max_attempts is not None
        ):
            return super().evaluate(
                work, components=components, max_attempts=max_attempts
            )

        w = np.asarray(work, dtype=np.float64)
        if np.any(w <= 0):
            raise InvalidParameterError("work must be > 0")
        squeeze = w.ndim == 0
        if w.ndim < 2:
            w = np.atleast_2d(w)
        if w.ndim != 2 or w.shape[0] not in (1, self.n):
            return super().evaluate(work, components=components)
        want_time = "time" in components
        want_energy = "energy" in components
        try:
            t, e, att = _EXP_KERNEL(
                np.ascontiguousarray(self.head),
                self.head_len,
                self.tail,
                self.lam_f,
                self.lam_s,
                self.C,
                self.V,
                self.R,
                self.kappa,
                self.idle,
                self.p_io,
                np.ascontiguousarray(w),
            )
        except Exception:  # numba raises its own hierarchy on compile/launch
            # A broken numba install (unsupported Python, missing
            # llvmlite, ...) must degrade, not crash: disable the
            # kernel for the process and replay through NumPy.
            _KERNEL_BROKEN = True
            return super().evaluate(
                work, components=components, max_attempts=max_attempts
            )

        def out(a: FloatArray | None) -> FloatArray | None:
            return None if a is None else (a[:, 0] if squeeze else a)

        shape = t.shape
        return ScheduleExpectation(
            time=out(t) if want_time else None,
            energy=out(e) if want_energy else None,
            attempts=out(att),
            truncated=False,
            tail_bound_time=out(np.zeros(shape)) if want_time else None,
            tail_bound_energy=out(np.zeros(shape)) if want_energy else None,
        )
