"""Incremental (variational) solve tier: warm-started sweep solves.

Dense sweeps are overwhelmingly near-duplicates — neighbouring points
differ in exactly one parameter — yet :func:`solve_schedule_grid` pays
the full coarse scan + two 96-step bisections + 72-step golden section
for every point from scratch.  This module makes sweep cost sublinear
in grid size by sharing work across similar rows, the way variational
execution shares work across similar program configurations:

**Delta-evaluation** (:class:`DeltaScheduleGrid`): rows are grouped by
their full parameter signature (schedule head/tail, rates, platform
constants, error model).  On *shared-work-axis* evaluations — the
solver's coarse scan — only the unique rows are evaluated and the
results gathered back.  Because padded-head evaluation is
batch-composition independent (see :class:`ScheduleGrid`), the gather
is byte-identical to evaluating every row.  A rho-only sweep collapses
the coarse scan to a single row.

**Warm-started solves** (:func:`solve_schedule_grid_incremental`): rows
are sorted so that each detected *chain* (consecutive rows differing in
one numeric field, the sweep axis) is contiguous, every
``anchor_stride``-th chain position plus both endpoints is solved cold,
and the points in between are *seeded* by log-linear interpolation of
the anchors' solved crossings (``w_lo``/``w_hi``) and optimum.  Each
seed is then **validated in lockstep**, never trusted:

1. *crossing brackets* — the time-overhead curve ``T(W)/W - rho`` has
   exactly two roots on a feasible row, so sign checks at the seeded
   bracket edges (``> 0`` left of the bracket, ``< 0`` inside the
   feasible interval, ``> 0`` right of it) *prove* each bracket
   isolates its crossing; the roots are then polished by a lockstep
   Anderson-Björck (guarded regula falsi) iteration, both crossings
   sharing one batched evaluation per step, and each result is
   *certified* by a sign change across ``root * (1 ± probe_rtol)``;
2. *energy interval* — a three-point probe around the seeded optimum
   classifies the unimodal energy overhead: ``e(x) <= e(a), e(b)``
   proves the minimum lies in ``[a, b]``; a descent toward a crossing
   endpoint restricts the minimum to the narrow edge interval.  The
   surviving bracket is refined by a short golden section, then the
   cold path's interior/endpoint candidate rule is applied verbatim.

Any row that cannot be seeded (anchor infeasible — the feasibility
boundary case), fails a sign test, or misses a convergence certificate
**falls back to the cold path automatically**, solved exactly via
:func:`solve_schedule_grid` on the row subset.  Cold-solved rows
(anchors included) are byte-identical to a full cold solve because the
lockstep solver is itself batch-composition independent per row;
warm-validated rows agree with the cold path to ``<= 1e-9`` absolute on
the energy objective (the property suite pins this across every
schedule family x error model).

The ``schedule-grid-incremental`` backend of :mod:`repro.api.backends`
wraps this tier behind the registry; the sweep-aware planner
(:mod:`repro.api.sweep_planner`) orders ``ExecutionPlan`` shards so
chains stay contiguous across transport boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from ..exceptions import InvalidParameterError
from ..quantities import FloatArray, ScalarOrArray
from .evaluator import ScheduleExpectation
from .vectorized import (
    DEFAULT_SOLVER_OPTIONS,
    ScheduleGrid,
    ScheduleGridSolution,
    SolverOptions,
    _lockstep_golden,
    solve_schedule_grid,
)

__all__ = [
    "DeltaScheduleGrid",
    "IncrementalOptions",
    "IncrementalStats",
    "IncrementalSolution",
    "solve_schedule_grid_incremental",
]


# ----------------------------------------------------------------------
# Row signatures (the delta-evaluation and chain-detection key)
# ----------------------------------------------------------------------
def _signature_matrix(grid: ScheduleGrid) -> tuple[np.ndarray, int]:
    """Per-row numeric signature matrix and its invariant-column count.

    Layout: ``[head_len, head (padding zeroed), tail, model_rank]`` —
    the *invariant* columns, equal along any sweep chain — followed by
    the numeric axes ``[lam_f, lam_s, C, V, R, kappa, idle, p_io]``.
    Distinct renewal models get distinct small-integer ranks (0 =
    exponential row), so two rows with equal matrix rows evaluate
    identically at every pattern size.
    """
    n = grid.n
    H = grid.head.shape[1]
    mask = np.arange(H)[None, :] < grid.head_len
    head = np.where(mask, grid.head, 0.0)
    rank = np.zeros((n, 1))
    if grid.models:
        ranks: dict = {}
        for i, model in grid.models:
            rank[i, 0] = ranks.setdefault(model, len(ranks) + 1)
    M = np.concatenate(
        [
            grid.head_len,
            head,
            grid.tail,
            rank,
            grid.lam_f,
            grid.lam_s,
            grid.C,
            grid.V,
            grid.R,
            grid.kappa,
            grid.idle,
            grid.p_io,
        ],
        axis=1,
    )
    return M, H + 3


@dataclass(frozen=True)
class DeltaScheduleGrid(ScheduleGrid):
    """A :class:`ScheduleGrid` that deduplicates identical rows on
    shared-work-axis evaluations.

    Sweep grids repeat the same ``(schedule, platform, error model)``
    row under many rho values; on a shared work axis those rows produce
    identical expectation rows.  This tier evaluates only the unique
    rows and gathers — byte-identical to the full evaluation, because
    padded-head rows are batch-composition independent — which makes
    the solver's coarse scan cost scale with the number of *distinct*
    rows, not grid size.  Per-row evaluations (the lockstep probes)
    pass through unchanged.  The dedup map is built lazily on the
    first shared-axis evaluation, so per-row-only sub-grids (the warm
    path's) never pay for it.
    """

    _delta_sub: ScheduleGrid | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _delta_inverse: np.ndarray | None = field(
        init=False, repr=False, compare=False, default=None
    )
    _delta_ready: bool = field(
        init=False, repr=False, compare=False, default=False
    )

    def _delta_build(self) -> None:
        object.__setattr__(self, "_delta_ready", True)
        if self.n < 2:
            return
        M, _ = _signature_matrix(self)
        _, reps, inverse = np.unique(
            M, axis=0, return_index=True, return_inverse=True
        )
        if reps.size < self.n:
            # Sub-grid rows follow np.unique's sorted order; ``inverse``
            # gathers them back into input order.
            object.__setattr__(self, "_delta_sub", self.take(reps))
            object.__setattr__(
                self, "_delta_inverse", inverse.reshape(-1)
            )

    @property
    def n_unique(self) -> int:
        """Number of distinct parameter rows."""
        if not self._delta_ready:
            self._delta_build()
        return self.n if self._delta_sub is None else self._delta_sub.n

    def evaluate(
        self,
        work: ScalarOrArray,
        *,
        components: tuple[str, ...] = ("time", "energy"),
        max_attempts: int | None = None,
    ) -> ScheduleExpectation:
        w = np.asarray(work, dtype=np.float64)
        # A scalar, 1-D, or (1, m) work array is a *shared* axis: every
        # row sees the same sizes, so duplicate rows yield duplicate
        # outputs and a gather suffices.
        if w.ndim < 2 or w.shape[0] == 1:
            if not self._delta_ready:
                self._delta_build()
            sub = self._delta_sub
            if sub is not None:
                ex = sub.evaluate(
                    work, components=components, max_attempts=max_attempts
                )
                inv = self._delta_inverse
                assert inv is not None

                def g(a: FloatArray | None) -> FloatArray | None:
                    return None if a is None else a[inv]

                return ScheduleExpectation(
                    time=g(ex.time),
                    energy=g(ex.energy),
                    attempts=g(ex.attempts),
                    truncated=ex.truncated,
                    tail_bound_time=g(ex.tail_bound_time),
                    tail_bound_energy=g(ex.tail_bound_energy),
                )
        return super().evaluate(
            work, components=components, max_attempts=max_attempts
        )

    @classmethod
    def from_grid(cls, grid: ScheduleGrid) -> "DeltaScheduleGrid":
        """Wrap an existing grid's columns in the delta tier."""
        if isinstance(grid, cls):
            return grid
        return cls(
            head=grid.head,
            head_len=grid.head_len,
            tail=grid.tail,
            lam_f=grid.lam_f,
            lam_s=grid.lam_s,
            models=grid.models,
            C=grid.C,
            V=grid.V,
            R=grid.R,
            kappa=grid.kappa,
            idle=grid.idle,
            p_io=grid.p_io,
        )


# ----------------------------------------------------------------------
# Options / stats / solution containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IncrementalOptions:
    """Knobs of the warm-started sweep solver.

    ``anchor_stride`` trades anchor (cold) cost against seed quality:
    longer strides amortise better but interpolate over wider spans, so
    more rows fail validation and fall back cold.  ``anchor_span``
    additionally caps each anchor interval's *axis extent* (in the
    chain's dimensionless coordinate — log units on positive axes), so
    short dense chains (a 2-axis grid's rho runs) get mid-chain anchors
    instead of interpolating across their whole range.  The iteration
    budgets are far smaller than the cold path's because warm brackets
    start within ``bracket_factor`` of the answer and the
    Anderson-Björck iteration converges superlinearly; every crossing
    must still earn its sign-change certificate across
    ``root * (1 ± probe_rtol)`` or the row falls back cold, which is
    what keeps the 1e-9 energy pin honest.
    """

    anchor_stride: int = 256
    anchor_span: float = 0.12
    min_chain: int = 8
    bracket_factor: float = 1.3
    root_iters: int = 10
    golden_iters: int = 26
    probe_rtol: float = 1e-13
    solver: SolverOptions = DEFAULT_SOLVER_OPTIONS

    def __post_init__(self) -> None:
        if self.anchor_stride < 2:
            raise InvalidParameterError(
                f"anchor_stride must be >= 2, got {self.anchor_stride!r}"
            )
        if not (math.isfinite(self.anchor_span) and self.anchor_span > 0.0):
            raise InvalidParameterError(
                f"anchor_span must be finite and > 0, "
                f"got {self.anchor_span!r}"
            )
        if self.min_chain < 3:
            raise InvalidParameterError(
                f"min_chain must be >= 3 (shorter chains are all anchors), "
                f"got {self.min_chain!r}"
            )
        if not (math.isfinite(self.bracket_factor) and self.bracket_factor > 1.0):
            raise InvalidParameterError(
                f"bracket_factor must be finite and > 1, "
                f"got {self.bracket_factor!r}"
            )
        if self.root_iters < 4:
            raise InvalidParameterError(
                f"root_iters must be >= 4, got {self.root_iters!r}"
            )
        if self.golden_iters < 2:
            raise InvalidParameterError(
                f"golden_iters must be >= 2, got {self.golden_iters!r}"
            )
        if not (0.0 < self.probe_rtol < 1e-6):
            raise InvalidParameterError(
                f"probe_rtol must be in (0, 1e-6), got {self.probe_rtol!r}"
            )


@dataclass(frozen=True)
class IncrementalStats:
    """Where each row of an incremental solve was decided.

    ``anchors`` were solved cold by construction; ``boundary`` rows
    could not be seeded (an adjacent anchor was infeasible or had no
    usable interval — the feasibility-boundary case); ``fallback`` rows
    were seeded but failed a validation or convergence certificate.
    Both of the latter are solved by the exact cold path, so
    ``warm + anchors + boundary + fallback == n``.
    """

    n: int
    chains: int
    anchors: int
    warm: int
    boundary: int
    fallback: int

    @property
    def cold(self) -> int:
        """Rows solved by the cold path (anchors + fallbacks)."""
        return self.n - self.warm

    @property
    def warm_fraction(self) -> float:
        """Fraction of rows solved warm (0 for an empty grid)."""
        return self.warm / self.n if self.n else 0.0


@dataclass(frozen=True)
class IncrementalSolution(ScheduleGridSolution):
    """A :class:`ScheduleGridSolution` plus warm-solve provenance.

    ``warm`` flags the rows whose optimum came from a validated warm
    solve; on those rows ``rho_min`` is NaN (the warm path proves
    feasibility from the crossing signs without ever computing the
    minimal bound — cold-solved rows carry the usual finite value).
    """

    warm: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    stats: IncrementalStats = field(
        default_factory=lambda: IncrementalStats(0, 0, 0, 0, 0, 0)
    )


# ----------------------------------------------------------------------
# Chain detection
# ----------------------------------------------------------------------
def _detect_chains(
    M: np.ndarray, inv_k: int, rho: np.ndarray
) -> list[tuple[list[int], np.ndarray]]:
    """Sort rows and split them into sweep chains.

    Rows are ordered lexicographically by (invariants, numeric axes,
    rho) — rho last, so rho sweeps come out contiguous and monotone —
    then cut into maximal runs whose consecutive keys share all
    invariant columns and differ in at most one numeric field, the same
    field throughout the chain (its axis).  For chain purposes the two
    rate columns are reparameterised as (total rate, fail-stop
    fraction), so a total-rate sweep at fixed mix — which moves
    ``lam_f`` and ``lam_s`` together — still reads as a single axis.

    Returns ``(rows, coord)`` pairs: original row indices (their
    concatenation is a permutation of ``range(n)``) and a non-decreasing
    dimensionless *axis coordinate* per row — log of the varying field
    where it is positive, a range-scaled linear value otherwise, zeros
    for duplicate runs — used to cap anchor spans and to place seeds.
    """
    n = M.shape[0]
    lam_f = M[:, inv_k]
    lam_s = M[:, inv_k + 1]
    tot = lam_f + lam_s
    safe = np.where(tot > 0.0, tot, 1.0)
    # Rounded so the recovered mix compares equal across rates despite
    # last-ulp division noise (a miss only splits a chain, never breaks
    # correctness).
    frac = np.round(np.where(tot > 0.0, lam_f / safe, 0.0), 12)
    K = np.column_stack([M, rho])
    K[:, inv_k] = tot
    K[:, inv_k + 1] = frac
    order = np.lexsort(K.T[::-1])
    if n == 1:
        return [([int(order[0])], np.zeros(1))]
    Ks = K[order]
    eq = Ks[1:] == Ks[:-1]
    inv_eq = eq[:, :inv_k].all(axis=1)
    diff_num = ~eq[:, inv_k:]
    num_diff = diff_num.sum(axis=1)
    axis_id = np.argmax(diff_num, axis=1)
    linkable = (inv_eq & (num_diff <= 1)).tolist()
    num_diff_l = num_diff.tolist()
    axis_l = axis_id.tolist()
    order_l = order.tolist()

    chains: list[tuple[list[int], np.ndarray]] = []

    def close(start: int, end: int, axis: int) -> None:
        if axis < 0:
            coord = np.zeros(end + 1 - start)
        else:
            vals = Ks[start : end + 1, inv_k + axis]
            if np.all(vals > 0.0):
                coord = np.log(vals)
            else:
                scale = float(np.max(np.abs(vals)))
                coord = vals / scale if scale > 0.0 else np.zeros_like(vals)
        chains.append((order_l[start : end + 1], coord))

    start = 0
    axis = -1
    for i in range(n - 1):
        if linkable[i] and (
            num_diff_l[i] == 0 or axis < 0 or axis == axis_l[i]
        ):
            if num_diff_l[i] == 1 and axis < 0:
                axis = axis_l[i]
        else:
            close(start, i, axis)
            start = i + 1
            axis = -1
    close(start, n - 1, axis)
    return chains


# ----------------------------------------------------------------------
# Lockstep Anderson-Björck (guarded regula falsi)
# ----------------------------------------------------------------------
def _lockstep_anderson(
    fn: Callable[[np.ndarray], np.ndarray],
    a: np.ndarray,
    b: np.ndarray,
    fa: np.ndarray,
    fb: np.ndarray,
    iters: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Elementwise Anderson-Björck iteration on brackets ``[a, b]``
    with ``sign(fa) != sign(fb)``.

    Each step proposes the secant point (bisection midpoint where the
    secant is undefined or escapes the bracket) and scales the retained
    endpoint's function value by ``1 - f(x)/f(kept side)`` (floored at
    1/2) — the guard that keeps regula falsi superlinear on one-sided
    curves, where the plain and Illinois variants crawl.  Degenerate
    brackets (``a == b``) stay put.  Returns the final
    ``(a, b, fa, fb)``; callers certify the roots separately.
    """
    for _ in range(iters):
        denom = fb - fa
        with np.errstate(divide="ignore", invalid="ignore"):
            x = b - fb * (b - a) / denom
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        mid = 0.5 * (a + b)
        x = np.where(np.isfinite(x) & (x > lo) & (x < hi), x, mid)
        fx = fn(x)
        repl_b = np.sign(fx) == np.sign(fb)
        with np.errstate(divide="ignore", invalid="ignore"):
            m_b = 1.0 - fx / fb
            m_a = 1.0 - fx / fa
        m_b = np.where((m_b > 0) & np.isfinite(m_b), m_b, 0.5)
        m_a = np.where((m_a > 0) & np.isfinite(m_a), m_a, 0.5)
        fa = np.where(repl_b, fa * m_b, fx)
        a = np.where(repl_b, a, x)
        fb = np.where(repl_b, fx, fb * m_a)
        b = np.where(repl_b, x, b)
    return a, b, fa, fb


# ----------------------------------------------------------------------
# Warm solve (validated seeds only)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _WarmResult:
    ok: np.ndarray
    work: np.ndarray
    energy: np.ndarray
    time: np.ndarray
    w_lo: np.ndarray
    w_hi: np.ndarray


def _warm_solve(
    gw: ScheduleGrid,
    rho: np.ndarray,
    seed_w1: np.ndarray,
    seed_w2: np.ndarray,
    seed_wo: np.ndarray,
    opt: IncrementalOptions,
) -> _WarmResult:
    """Validate and refine seeded rows in lockstep (see module doc).

    ``ok`` marks rows whose every validation and convergence
    certificate passed; all other entries are meaningless and the
    caller must re-solve those rows cold.
    """
    m = rho.size
    f = opt.bracket_factor
    w_floor = opt.solver.w_lo
    ok = np.ones(m, dtype=bool)

    def shifted_multi(W: np.ndarray) -> np.ndarray:
        # Per-row multi-point probes: one batched evaluation for all
        # columns of W (shape (m, k)), inf-safe like time_overhead.
        with np.errstate(over="ignore", invalid="ignore"):
            t = gw.evaluate(W, components=("time",)).time / W
        return np.where(np.isfinite(t), t, np.inf) - rho[:, None]

    def energy_multi(W: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore", invalid="ignore"):
            e = gw.evaluate(W, components=("energy",)).energy / W
        return np.where(np.isfinite(e), e, np.inf)

    # --- Stage 1: bracket sign validation (one 4-column evaluation).
    l1 = np.maximum(seed_w1 / f, w_floor)
    r1 = seed_w1 * f
    l2 = seed_w2 / f
    r2 = seed_w2 * f
    S = shifted_multi(np.stack([l1, r1, l2, r2], axis=1))
    s_l1, s_r1, s_l2, s_r2 = S[:, 0], S[:, 1], S[:, 2], S[:, 3]
    # The cold rule "feasible at the window edge => w1 = w_lo" applies
    # when the clamped left probe *is* the window edge.
    left_edge = (l1 <= w_floor) & (s_l1 <= 0.0)
    # T/W - rho has exactly two roots w1 < w2 on a feasible row, so
    # these sign patterns prove l1 < w1 < r1 < w2 and w1 < l2 < w2 < r2.
    left_bracket = (s_l1 > 0.0) & (s_r1 < 0.0)
    right_bracket = (s_l2 < 0.0) & (s_r2 > 0.0)
    ok &= (left_bracket | left_edge) & right_bracket

    # --- Stage 2: Anderson-Björck refinement, both crossings per call,
    # then a sign-change certificate across root * (1 ± probe_rtol).
    bad = ~ok
    edge = left_edge & ok
    A = np.stack([np.where(edge, w_floor, l1), l2], axis=1)
    B = np.stack([np.where(edge, w_floor, r1), r2], axis=1)
    FA = np.stack([np.where(edge, 1.0, s_l1), s_l2], axis=1)
    FB = np.stack([np.where(edge, -1.0, s_r1), s_r2], axis=1)
    A[bad] = 1.0
    B[bad] = 1.0
    FA[bad] = 1.0
    FB[bad] = -1.0
    A, B, FA, FB = _lockstep_anderson(
        shifted_multi, A, B, FA, FB, opt.root_iters
    )
    root = np.where(np.abs(FA) <= np.abs(FB), A, B)
    W1 = np.where(edge, w_floor, root[:, 0])
    W2 = root[:, 1]
    d = opt.probe_rtol
    P = np.stack(
        [W1 * (1.0 - d), W1 * (1.0 + d), W2 * (1.0 - d), W2 * (1.0 + d)],
        axis=1,
    )
    SP = shifted_multi(np.where(ok[:, None], P, 1.0))
    # f decreases through w1 and increases through w2, so these signs
    # prove each crossing lies within probe_rtol of its root.
    conv_left = edge | ((SP[:, 0] >= 0.0) & (SP[:, 1] <= 0.0))
    conv_right = (SP[:, 2] <= 0.0) & (SP[:, 3] >= 0.0)
    ok &= conv_left & conv_right

    # --- Stage 3: energy-interval classification (one 5-column eval).
    x_seed = np.minimum(np.maximum(seed_wo, W1), W2)
    a3 = np.maximum(W1, x_seed / f)
    b3 = np.minimum(W2, x_seed * f)
    P = np.stack([a3, x_seed, b3, W1, W2], axis=1)
    E = energy_multi(np.where(ok[:, None], P, 1.0))
    e_a, e_x, e_b, e_w1, e_w2 = (E[:, j] for j in range(5))
    # Unimodality: an interior low point proves the minimum is inside
    # [a3, b3]; a descent toward an endpoint restricts it to the edge
    # interval — but only a *narrow* edge interval keeps the short
    # golden budget honest, so wide ones fall back cold.
    interior = (e_x <= e_a) & (e_x <= e_b)
    down_left = (e_a < e_x) & (e_b >= e_x)
    down_right = (e_b < e_x) & (e_a >= e_x)
    left_ok = down_left & (a3 <= W1 * (1.0 + 1e-12))
    right_ok = down_right & (b3 >= W2 * (1.0 - 1e-12))
    ok &= interior | left_ok | right_ok

    # --- Stage 4: short golden section + the cold candidate rule.
    A4 = np.where(interior, a3, np.where(left_ok, W1, x_seed))
    B4 = np.where(interior, b3, np.where(left_ok, x_seed, W2))
    A4 = np.where(ok, A4, 1.0)
    B4 = np.where(ok, B4, 1.0)
    x_e, f_e = _lockstep_golden(
        gw.energy_overhead, A4, B4, iters=opt.golden_iters
    )
    cand_w = np.stack([x_e, W1, W2])
    cand_e = np.stack([f_e, e_w1, e_w2])
    j = np.argmin(cand_e, axis=0)
    cols = np.arange(m)
    work = cand_w[j, cols]
    energy = cand_e[j, cols]
    t_at = gw.time_overhead(np.where(ok, work, 1.0))
    return _WarmResult(
        ok=ok, work=work, energy=energy, time=t_at, w_lo=W1, w_hi=W2
    )


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------
def solve_schedule_grid_incremental(
    grid: ScheduleGrid,
    rho: ScalarOrArray,
    *,
    options: IncrementalOptions | None = None,
) -> IncrementalSolution:
    """Constrained optima of every grid point, warm-started along sweeps.

    Drop-in for :func:`solve_schedule_grid` on sweep-shaped grids:
    rows are chained along their detected sweep axes, every
    ``anchor_stride``-th chain position is solved cold, and the rows in
    between run the validated warm path (falling back cold whenever a
    check fails).  Row order of the result matches the input; the
    attached :class:`IncrementalStats` says how each row was decided.
    """
    opt = IncrementalOptions() if options is None else options
    dgrid = DeltaScheduleGrid.from_grid(grid)
    n = dgrid.n
    rho_arr = np.broadcast_to(np.asarray(rho, dtype=np.float64), (n,)).astype(
        np.float64
    )
    if np.any(rho_arr <= 0):
        raise InvalidParameterError("rho must be > 0")

    M, inv_k = _signature_matrix(dgrid)
    chains = _detect_chains(M, inv_k, rho_arr)

    # Anchor layout: endpoints + every anchor_stride-th chain position;
    # seeded rows record their bracketing anchors (as anchor-array
    # positions) and interpolation parameter.
    anchors: list[int] = []
    seed_rows: list[int] = []
    seed_ka: list[int] = []
    seed_kb: list[int] = []
    seed_t: list[float] = []
    for chain, coord in chains:
        length = len(chain)
        if length < opt.min_chain:
            anchors.extend(chain)
            continue
        # Greedy marks: each next anchor is the furthest chain position
        # within both the index stride and the axis-span cap (coord is
        # non-decreasing, so searchsorted finds the span boundary).
        marks = [0]
        pos = 0
        while pos < length - 1:
            nxt = (
                int(
                    np.searchsorted(
                        coord, coord[pos] + opt.anchor_span, side="right"
                    )
                )
                - 1
            )
            nxt = min(nxt, pos + opt.anchor_stride, length - 1)
            nxt = max(nxt, pos + 1)
            marks.append(nxt)
            pos = nxt
        base = len(anchors)
        anchors.extend(chain[mk] for mk in marks)
        for mi in range(len(marks) - 1):
            pa, pb = marks[mi], marks[mi + 1]
            span = pb - pa
            if span > 1:
                cspan = coord[pb] - coord[pa]
                seed_rows.extend(chain[pa + 1 : pb])
                seed_ka.extend([base + mi] * (span - 1))
                seed_kb.extend([base + mi + 1] * (span - 1))
                # Seeds sit at their axis coordinate within the
                # interval (index fraction on duplicate runs), so the
                # log-linear lerp tracks the axis, not the row count.
                seed_t.extend(
                    (coord[p] - coord[pa]) / cspan
                    if cspan > 0.0
                    else (p - pa) / span
                    for p in range(pa + 1, pb)
                )

    anchor_idx = np.asarray(anchors, dtype=np.intp)
    asol = solve_schedule_grid(
        dgrid.take(anchor_idx), rho_arr[anchor_idx], options=opt.solver
    )

    work = np.full(n, np.nan)
    energy = np.full(n, np.nan)
    t_over = np.full(n, np.nan)
    w_lo = np.full(n, np.nan)
    w_hi = np.full(n, np.nan)
    rho_min = np.full(n, np.nan)
    feasible = np.zeros(n, dtype=bool)
    warm = np.zeros(n, dtype=bool)

    def scatter(idx: np.ndarray, sol: ScheduleGridSolution) -> None:
        work[idx] = sol.work
        energy[idx] = sol.energy_overhead
        t_over[idx] = sol.time_overhead
        w_lo[idx] = sol.w_lo
        w_hi[idx] = sol.w_hi
        rho_min[idx] = sol.rho_min
        feasible[idx] = sol.feasible

    scatter(anchor_idx, asol)

    # Seed the in-between rows from their bracketing anchors
    # (log-linear interpolation of crossings and optimum).
    boundary = 0
    fallback = 0
    cold_list: list[np.ndarray] = []
    if seed_rows:
        rows_s = np.asarray(seed_rows, dtype=np.intp)
        ka = np.asarray(seed_ka, dtype=np.intp)
        kb = np.asarray(seed_kb, dtype=np.intp)
        tt = np.asarray(seed_t)
        good = asol.feasible[ka] & asol.feasible[kb]

        def lerp(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            va, vb = arr[ka], arr[kb]
            usable = (
                np.isfinite(va) & np.isfinite(vb) & (va > 0.0) & (vb > 0.0)
            )
            va = np.where(usable, va, 1.0)
            vb = np.where(usable, vb, 1.0)
            return np.exp((1.0 - tt) * np.log(va) + tt * np.log(vb)), usable

        v1, u1 = lerp(asol.w_lo)
        v2, u2 = lerp(asol.w_hi)
        vo, u3 = lerp(asol.work)
        good &= u1 & u2 & u3
        boundary = int((~good).sum())
        cold_list.append(rows_s[~good])

        if good.any():
            rows_w = rows_s[good]
            res = _warm_solve(
                dgrid.take(rows_w),
                rho_arr[rows_w],
                v1[good],
                v2[good],
                vo[good],
                opt,
            )
            hit = rows_w[res.ok]
            work[hit] = res.work[res.ok]
            energy[hit] = res.energy[res.ok]
            t_over[hit] = res.time[res.ok]
            w_lo[hit] = res.w_lo[res.ok]
            w_hi[hit] = res.w_hi[res.ok]
            feasible[hit] = True
            warm[hit] = True
            missed = rows_w[~res.ok]
            fallback = int(missed.size)
            cold_list.append(missed)

    cold_rows = (
        np.concatenate(cold_list) if cold_list else np.zeros(0, dtype=np.intp)
    )
    if cold_rows.size:
        cidx = np.sort(cold_rows)
        csol = solve_schedule_grid(
            dgrid.take(cidx), rho_arr[cidx], options=opt.solver
        )
        scatter(cidx, csol)

    stats = IncrementalStats(
        n=n,
        chains=len(chains),
        anchors=len(anchors),
        warm=int(warm.sum()),
        boundary=boundary,
        fallback=fallback,
    )
    return IncrementalSolution(
        work=work,
        energy_overhead=energy,
        time_overhead=t_over,
        w_lo=w_lo,
        w_hi=w_hi,
        rho_min=rho_min,
        feasible=feasible,
        warm=warm,
        stats=stats,
    )
