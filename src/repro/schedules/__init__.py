"""Speed schedules: per-attempt re-execution speed policies.

The first-class generalisation of the paper's ``(sigma1, sigma2)``
model: a :class:`SpeedSchedule` maps the attempt index to the DVFS
speed of that attempt, with concrete policies (:class:`TwoSpeed`,
:class:`Constant`, :class:`Escalating`, :class:`Geometric`), an exact
expectation evaluator for arbitrary schedules
(:mod:`repro.schedules.evaluator`), a numeric constrained solver
(:mod:`repro.schedules.solver`), and a vectorised batch kernel that
evaluates/solves whole schedule grids in broadcast NumPy ops
(:mod:`repro.schedules.vectorized`), plus an optional native-speed
tier (:mod:`repro.schedules.jit`) that jit-compiles the hot kernel
when numba is installed and falls back byte-identically when it is
not, and an incremental (variational) tier
(:mod:`repro.schedules.incremental`) that warm-starts sweep-shaped
grids from neighbouring optima with validated seeds and cold fallback.
The ``schedule``, ``schedule-grid``, ``schedule-grid-jit`` and
``schedule-grid-incremental`` backends of :mod:`repro.api` plug all of
this into ``Scenario(schedule=...)`` and ``Study`` batches.
"""

from .base import (
    Constant,
    Escalating,
    Geometric,
    SpeedSchedule,
    TwoSpeed,
    as_schedule,
    parse_schedule,
    schedule_from_dict,
    schedule_kinds,
)
from .evaluator import (
    ScheduleExpectation,
    energy_overhead_schedule,
    evaluate_schedule,
    expected_energy_schedule,
    expected_reexecutions_schedule,
    expected_time_schedule,
    time_overhead_schedule,
)
from .incremental import (
    DeltaScheduleGrid,
    IncrementalOptions,
    IncrementalSolution,
    IncrementalStats,
    solve_schedule_grid_incremental,
)
from .jit import JitScheduleGrid, jit_available
from .solver import ScheduleSolution, schedule_min_bound, solve_schedule
from .vectorized import (
    DEFAULT_SOLVER_OPTIONS,
    ScheduleGrid,
    ScheduleGridSolution,
    SolverOptions,
    evaluate_schedule_batch,
    solve_schedule_batch,
    solve_schedule_grid,
)

__all__ = [
    "SpeedSchedule",
    "TwoSpeed",
    "Constant",
    "Escalating",
    "Geometric",
    "parse_schedule",
    "schedule_from_dict",
    "schedule_kinds",
    "as_schedule",
    "ScheduleExpectation",
    "evaluate_schedule",
    "expected_time_schedule",
    "expected_energy_schedule",
    "expected_reexecutions_schedule",
    "time_overhead_schedule",
    "energy_overhead_schedule",
    "ScheduleSolution",
    "solve_schedule",
    "schedule_min_bound",
    "ScheduleGrid",
    "ScheduleGridSolution",
    "SolverOptions",
    "DEFAULT_SOLVER_OPTIONS",
    "evaluate_schedule_batch",
    "solve_schedule_batch",
    "solve_schedule_grid",
    "JitScheduleGrid",
    "jit_available",
    "DeltaScheduleGrid",
    "IncrementalOptions",
    "IncrementalStats",
    "IncrementalSolution",
    "solve_schedule_grid_incremental",
]
