"""Speed schedules: per-attempt re-execution speed policies.

The first-class generalisation of the paper's ``(sigma1, sigma2)``
model: a :class:`SpeedSchedule` maps the attempt index to the DVFS
speed of that attempt, with concrete policies (:class:`TwoSpeed`,
:class:`Constant`, :class:`Escalating`, :class:`Geometric`), an exact
expectation evaluator for arbitrary schedules
(:mod:`repro.schedules.evaluator`), a numeric constrained solver
(:mod:`repro.schedules.solver`), and a vectorised batch kernel that
evaluates/solves whole schedule grids in broadcast NumPy ops
(:mod:`repro.schedules.vectorized`), plus an optional native-speed
tier (:mod:`repro.schedules.jit`) that jit-compiles the hot kernel
when numba is installed and falls back byte-identically when it is
not.  The ``schedule``, ``schedule-grid`` and ``schedule-grid-jit``
backends of :mod:`repro.api` plug all of this into
``Scenario(schedule=...)`` and ``Study`` batches.
"""

from .base import (
    Constant,
    Escalating,
    Geometric,
    SpeedSchedule,
    TwoSpeed,
    as_schedule,
    parse_schedule,
    schedule_from_dict,
    schedule_kinds,
)
from .evaluator import (
    ScheduleExpectation,
    energy_overhead_schedule,
    evaluate_schedule,
    expected_energy_schedule,
    expected_reexecutions_schedule,
    expected_time_schedule,
    time_overhead_schedule,
)
from .jit import JitScheduleGrid, jit_available
from .solver import ScheduleSolution, schedule_min_bound, solve_schedule
from .vectorized import (
    ScheduleGrid,
    ScheduleGridSolution,
    evaluate_schedule_batch,
    solve_schedule_batch,
    solve_schedule_grid,
)

__all__ = [
    "SpeedSchedule",
    "TwoSpeed",
    "Constant",
    "Escalating",
    "Geometric",
    "parse_schedule",
    "schedule_from_dict",
    "schedule_kinds",
    "as_schedule",
    "ScheduleExpectation",
    "evaluate_schedule",
    "expected_time_schedule",
    "expected_energy_schedule",
    "expected_reexecutions_schedule",
    "time_overhead_schedule",
    "energy_overhead_schedule",
    "ScheduleSolution",
    "solve_schedule",
    "schedule_min_bound",
    "ScheduleGrid",
    "ScheduleGridSolution",
    "evaluate_schedule_batch",
    "solve_schedule_batch",
    "solve_schedule_grid",
    "JitScheduleGrid",
    "jit_available",
]
