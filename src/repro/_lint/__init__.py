"""`repro-lint`: repo-specific static analysis for the solver stack.

The solver stack's correctness story rests on conventions that unit
tests cannot enforce exhaustively: canonical cache keys, memoryless
guards on the closed-form paths, backend capability flags, typed
exceptions, tolerance discipline in the vectorised kernels.  This
package checks those invariants *statically* — an AST pass over
``src/repro`` with one rule per convention, each with a stable code
(``RPR001``...), a fix-it message and a per-line/per-file suppression
syntax (see :mod:`repro._lint.suppressions`).

Run it locally with ``python -m repro._lint`` (custom rules only) or
``python -m repro._lint --all`` (ruff + mypy + custom rules, skipping
tools the environment does not have).  ``repro lint`` is the same
entry point through the main CLI.  The rule catalog lives in
``docs/static-analysis.md``.
"""

from __future__ import annotations

from .diagnostics import Diagnostic
from .engine import LintContext, Rule, all_rules, lint_file, lint_paths, lint_source
from .cli import main

__all__ = [
    "Diagnostic",
    "LintContext",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]
