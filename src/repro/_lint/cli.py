"""Command-line entry point: ``python -m repro._lint`` / ``repro lint``.

Default invocation runs the custom ``RPR*`` rules over ``src/repro``
(or the installed ``repro`` package when no source checkout is
visible) and exits non-zero on any diagnostic.  ``--all`` chains the
full local gate — ruff, mypy, then the custom rules — skipping tools
the environment does not have so the command stays usable in minimal
containers; CI installs both, so there the chain is complete.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path
from collections.abc import Sequence

from .engine import all_rules, lint_paths

__all__ = ["main"]


def _default_paths() -> list[Path]:
    """The tree to lint when none is given.

    Prefer a source checkout's ``src/repro`` (rule paths in docs and
    CI assume it); fall back to the installed package directory so the
    command still works from anywhere.
    """
    checkout = Path("src/repro")
    if checkout.is_dir():
        return [checkout]
    return [Path(__file__).resolve().parents[1]]


def _project_root(start: Path) -> Path | None:
    """The nearest ancestor holding ``pyproject.toml`` (tool config)."""
    for candidate in [start, *start.resolve().parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


def _run_external(tool: str, args: list[str], cwd: Path | None) -> int | None:
    """Run ``python -m <tool> <args>``; ``None`` = tool not installed.

    The tools run as subprocesses of the same interpreter so the gate
    exercises exactly the environment's versions, and a missing tool
    is a *skip*, not a failure — minimal environments can still run
    the custom rules while CI (which installs the `lint`/`typecheck`
    extras) gets the full chain.
    """
    if importlib.util.find_spec(tool) is None:
        print(f"repro-lint: {tool} not installed; skipping (pip install "
              f"'.[lint,typecheck]' for the full gate)")
        return None
    proc = subprocess.run(
        [sys.executable, "-m", tool, *args],
        cwd=str(cwd) if cwd is not None else None,
    )
    return proc.returncode


def _list_rules() -> None:
    for r in all_rules():
        print(f"{r.code}  {r.summary}")
        print(f"       fix: {r.fixit}")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Repo-specific static analysis for the repro solver stack "
            "(rule catalog: docs/static-analysis.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="run the full local gate: ruff + mypy + custom rules "
        "(missing tools are skipped with a notice)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0

    paths = args.paths or _default_paths()
    select = (
        [c.strip() for c in args.select.split(",") if c.strip()]
        if args.select
        else None
    )

    failures = 0

    if args.all:
        root = _project_root(Path.cwd())
        ruff_rc = _run_external("ruff", ["check", "."], cwd=root)
        if ruff_rc:
            failures += 1
        mypy_rc = _run_external("mypy", [], cwd=root)
        if mypy_rc:
            failures += 1

    diagnostics = lint_paths(paths, select=select)
    for diag in diagnostics:
        print(diag.render())
    if diagnostics:
        files = len({d.path for d in diagnostics})
        print(f"repro-lint: {len(diagnostics)} issue(s) in {files} file(s)")
        failures += 1
    else:
        shown = ", ".join(str(p) for p in paths)
        print(f"repro-lint: clean ({shown})")

    return 1 if failures else 0
