"""Suppression comments for `repro-lint` diagnostics.

Two scopes, mirroring the usual ``noqa`` conventions but namespaced so
they cannot collide with ruff/flake8 directives:

Per line
    ``# repro-lint: ignore[RPR004]`` at the end of the offending line
    suppresses the listed code(s) on that line; a comma-separated list
    (``ignore[RPR004,RPR005]``) suppresses several, and a bare
    ``# repro-lint: ignore`` suppresses every rule on the line.

Per file
    ``# repro-lint: skip-file`` anywhere in the file disables every
    rule for the whole file; ``# repro-lint: skip-file[RPR005]``
    disables only the listed code(s).

Suppressions are parsed from the token stream (not regexes over raw
source) so string literals that *look* like directives are never
misread.
"""

from __future__ import annotations

import contextlib
import io
import re
import tokenize
from dataclasses import dataclass, field

#: ``ignore``/``skip-file`` directive with an optional [CODE,...] list.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<verb>ignore|skip-file)"
    r"(?:\[(?P<codes>[A-Z0-9,\s]+)\])?",
)

#: Sentinel meaning "every code" for a bare directive.
ALL_CODES = "*"


@dataclass
class Suppressions:
    """The parsed suppression state of one file."""

    #: line number -> set of suppressed codes (or {ALL_CODES}).
    lines: dict[int, set[str]] = field(default_factory=dict)
    #: file-wide suppressed codes (or {ALL_CODES}).
    file_codes: set[str] = field(default_factory=set)

    def is_suppressed(self, line: int, code: str) -> bool:
        """True when ``code`` is silenced at ``line`` (or file-wide)."""
        if ALL_CODES in self.file_codes or code in self.file_codes:
            return True
        at_line = self.lines.get(line)
        if at_line is None:
            return False
        return ALL_CODES in at_line or code in at_line


def _parse_codes(raw: str | None) -> set[str]:
    if raw is None:
        return {ALL_CODES}
    codes = {c.strip() for c in raw.split(",") if c.strip()}
    return codes or {ALL_CODES}


def parse_suppressions(source: str) -> Suppressions:
    """Collect the suppression directives of ``source``.

    Unparseable sources (the engine reports those as syntax
    diagnostics anyway) yield an empty suppression set.
    """
    out = Suppressions()
    # A syntactically broken file still gets linted (RPR000 reports the
    # parse error); its suppression comments are simply not readable.
    with contextlib.suppress(tokenize.TokenError, IndentationError, SyntaxError):
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(tok.string)
            if match is None:
                continue
            codes = _parse_codes(match.group("codes"))
            if match.group("verb") == "skip-file":
                out.file_codes |= codes
            else:
                out.lines.setdefault(tok.start[0], set()).update(codes)
    return out
