"""The repo-specific rule catalog (``RPR001`` ... ``RPR007``).

Each rule statically enforces one convention the solver stack's
correctness rests on; the catalog with rationale and examples lives in
``docs/static-analysis.md``.  Rules are deliberately *syntactic* — an
AST pass cannot prove semantic properties, so each one checks the
structural footprint of the convention (a decorator, a guard call, an
annotation) and offers a suppression escape hatch for the rare
legitimate exception.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .diagnostics import Diagnostic
from .engine import LintContext, rule

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def _name_of(node: ast.expr) -> str:
    """The dotted name of a Name/Attribute chain (``"np.random.seed"``),
    or ``""`` for anything more exotic (subscripts, calls, ...)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _last_segment(node: ast.expr) -> str:
    """The final identifier of a Name/Attribute chain (``"seed"``)."""
    dotted = _name_of(node)
    return dotted.rsplit(".", 1)[-1] if dotted else ""


def _base_names(cls: ast.ClassDef) -> set[str]:
    """Final identifiers of every base class expression."""
    return {_last_segment(b) for b in cls.bases}


def _decorator_names(node: ast.ClassDef | ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        names.add(_last_segment(target))
    return names


def _class_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _class_attr_assigns(cls: ast.ClassDef) -> dict[str, ast.stmt]:
    """Class-level ``name = value`` / ``name: T = value`` statements."""
    out: dict[str, ast.stmt] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = stmt
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            out[stmt.target.id] = stmt
    return out


def _is_abstract_class(cls: ast.ClassDef) -> bool:
    """Heuristic: declares abstract methods or an ABC metaclass."""
    if cls.name.startswith("_"):
        return True
    for kw in cls.keywords:
        if kw.arg == "metaclass":
            return True
    return any(
        "abstractmethod" in _decorator_names(stmt)
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    )


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _attr_names_used(node: ast.AST) -> set[str]:
    """Every attribute name accessed anywhere under ``node``."""
    return {
        sub.attr for sub in ast.walk(node) if isinstance(sub, ast.Attribute)
    }


def _identifiers_used(node: ast.AST) -> set[str]:
    """Attribute names *and* bare identifiers under ``node`` — the
    jit-capability needle must see class references like
    ``JitScheduleGrid``, which are Names, not attributes."""
    return _attr_names_used(node) | {
        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
    }


# ----------------------------------------------------------------------
# RPR001 — registered-policy contract
# ----------------------------------------------------------------------

#: Required method surface per registered-policy base class.
_POLICY_CONTRACTS: dict[str, tuple[str, ...]] = {
    "SpeedSchedule": ("spec", "to_dict", "_from_spec_args", "_from_dict"),
    "ArrivalProcess": ("_params", "_from_spec_kv"),
}


@rule(
    "RPR001",
    "SpeedSchedule/ArrivalProcess subclasses must be registered and round-trip",
    "decorate with @_register_kind, set a unique `kind`, and implement the "
    "spec/dict round-trip constructors",
)
def check_policy_contract(ctx: LintContext) -> Iterator[Diagnostic]:
    """Every concrete schedule/arrival policy must join the spec grammar.

    The solve cache, the CLI spec strings and the JSON payloads all key
    off the registration decorator plus the ``kind`` tag and the
    round-trip constructors; a subclass that forgets any of them
    *works* interactively but silently falls out of
    serialisation/cache identity.  Abstract intermediates (underscore
    names, declared abstract methods) are exempt.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        contract_bases = _base_names(node) & set(_POLICY_CONTRACTS)
        if not contract_bases or _is_abstract_class(node):
            continue
        required: set[str] = set()
        for base in contract_bases:
            required |= set(_POLICY_CONTRACTS[base])
        methods = _class_methods(node)
        attrs = _class_attr_assigns(node)

        if "_register_kind" not in _decorator_names(node):
            yield ctx.diagnostic(
                node,
                "RPR001",
                f"policy class {node.name!r} is not registered in the spec "
                f"grammar (missing @_register_kind)",
                "add the @_register_kind decorator above the class",
            )
        if "kind" not in attrs:
            yield ctx.diagnostic(
                node,
                "RPR001",
                f"policy class {node.name!r} does not declare a `kind` "
                f"spec-prefix",
                'add a class attribute like `kind = "myname"`',
            )
        missing = sorted(required - set(methods))
        if missing:
            yield ctx.diagnostic(
                node,
                "RPR001",
                f"policy class {node.name!r} is missing the round-trip "
                f"method(s): {', '.join(missing)}",
                "implement them so spec strings and JSON payloads round-trip",
            )


# ----------------------------------------------------------------------
# RPR002 — memoryless guard on failstop closed forms
# ----------------------------------------------------------------------


@rule(
    "RPR002",
    "failstop closed forms must guard with require_memoryless",
    "call `errors = require_memoryless(errors, where)` before using the "
    "model, or delegate `errors` to an already-guarded entry point",
)
def check_memoryless_guard(ctx: LintContext) -> Iterator[Diagnostic]:
    """The closed forms in ``repro/failstop`` assume exponential arrivals.

    Any function there that consumes an ``errors`` model's attributes
    without first normalising it through ``require_memoryless`` (or
    handing it to another function that does) would compute the
    paper's memoryless formulas on a Weibull/Gamma/trace model and
    return silently wrong numbers.  The check is structural: reading
    ``errors.<attr>`` obliges the function to either call the guard or
    forward ``errors`` onward.
    """
    if not ctx.in_package_dir("failstop"):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        all_args = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if "errors" not in all_args:
            continue
        reads_attrs = any(
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "errors"
            for sub in ast.walk(node)
        )
        if not reads_attrs:
            continue
        guarded = False
        delegated = False
        for call in _calls_in(node):
            if _last_segment(call.func) == "require_memoryless":
                guarded = True
                break
            operands = list(call.args) + [kw.value for kw in call.keywords]
            if any(
                isinstance(op, ast.Name) and op.id == "errors" for op in operands
            ):
                delegated = True
        if not guarded and not delegated:
            yield ctx.diagnostic(
                node,
                "RPR002",
                f"{node.name!r} reads `errors.*` in a failstop closed form "
                f"without a require_memoryless guard",
                "call `errors = require_memoryless(errors, "
                f"'repro.failstop...{node.name}')` first",
            )


# ----------------------------------------------------------------------
# RPR003 — backend capability consistency
# ----------------------------------------------------------------------


@rule(
    "RPR003",
    "SolverBackend capability flags must match the overridden surface",
    "derive `batched` from solve_batch; declare capabilities as boolean "
    "literals and only when the backend actually inspects that field",
)
def check_backend_capabilities(ctx: LintContext) -> Iterator[Diagnostic]:
    """A backend's declared capabilities are routing facts.

    ``Study``/``ExecutionPlan`` shard work by ``batched`` and route
    scheduled / explicit-error-model scenarios by the two ``handles_*``
    flags, so a flag that disagrees with the class's actual method
    surface silently misroutes whole batches.  Enforced shape:

    * ``batched`` is *derived* (the base property checks whether
      ``solve_batch`` is overridden) — assigning it is always wrong;
    * ``handles_schedules``/``handles_error_models`` must be literal
      ``True``/``False`` (the registry reads them off the class), and a
      ``True`` declaration obliges the class body to actually touch
      ``schedule`` / ``errors`` (``resolved_errors``);
    * ``uses_jit = True`` (the native-kernel tier marker read by the
      capability matrix and the bench harness) obliges the class body
      to reference a jit engine (``JitScheduleGrid``, ``jit_available``
      — any jit-named identifier);
    * ``sweep_aware = True`` (the marker ExecutionPlan reads to order
      a group's shards along detected sweep axes) obliges the class
      body to reference an incremental/sweep solve path — claiming
      sweep ordering without the warm-started tier just scrambles the
      plan for nothing;
    * every concrete subclass must declare its registry ``name`` and
      accepted ``modes``.

    The rule matches indirect subclasses too — any class whose base
    list names ``SolverBackend`` *or* ends in ``Backend`` (e.g. the
    jit tier deriving from ``ScheduleGridBackend``) carries the same
    routing contract.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = _base_names(node)
        if "SolverBackend" not in bases and not any(
            b.endswith("Backend") for b in bases
        ):
            continue
        attrs = _class_attr_assigns(node)
        abstract = _is_abstract_class(node)

        if "batched" in attrs:
            yield ctx.diagnostic(
                attrs["batched"],
                "RPR003",
                f"backend {node.name!r} assigns `batched` directly; the flag "
                f"is derived from overriding solve_batch",
                "delete the assignment and override solve_batch instead",
            )

        if not abstract:
            for required in ("name", "modes"):
                if required not in attrs:
                    yield ctx.diagnostic(
                        node,
                        "RPR003",
                        f"backend {node.name!r} does not declare `{required}`",
                        f"set the `{required}` class attribute (registry "
                        f"contract)",
                    )

        used = _attr_names_used(node)
        for flag, needles in (
            ("handles_schedules", {"schedule"}),
            ("handles_error_models", {"errors", "resolved_errors"}),
        ):
            stmt = attrs.get(flag)
            if stmt is None:
                continue
            value = stmt.value if isinstance(stmt, (ast.Assign, ast.AnnAssign)) else None
            literal = isinstance(value, ast.Constant) and isinstance(value.value, bool)
            if not literal:
                yield ctx.diagnostic(
                    stmt,
                    "RPR003",
                    f"backend {node.name!r} sets `{flag}` to a non-literal "
                    f"value; the registry reads it off the class",
                    "assign a literal True/False",
                )
                continue
            if value.value is True and not abstract and not (used & needles):
                yield ctx.diagnostic(
                    stmt,
                    "RPR003",
                    f"backend {node.name!r} declares `{flag} = True` but its "
                    f"body never inspects {'/'.join(sorted(needles))}",
                    "handle the capability in _solve/solve_batch or drop the "
                    "declaration",
                )

        jit_stmt = attrs.get("uses_jit")
        if jit_stmt is not None:
            value = (
                jit_stmt.value
                if isinstance(jit_stmt, (ast.Assign, ast.AnnAssign))
                else None
            )
            literal = isinstance(value, ast.Constant) and isinstance(
                value.value, bool
            )
            if not literal:
                yield ctx.diagnostic(
                    jit_stmt,
                    "RPR003",
                    f"backend {node.name!r} sets `uses_jit` to a non-literal "
                    f"value; the registry reads it off the class",
                    "assign a literal True/False",
                )
            elif value.value is True and not abstract:
                # Scan method bodies only — the `uses_jit` assignment
                # target itself is a jit-named identifier and must not
                # satisfy its own needle.
                jit_used: set[str] = set()
                for method in _class_methods(node).values():
                    jit_used |= _identifiers_used(method)
                if any("jit" in s.lower() for s in jit_used):
                    continue
                yield ctx.diagnostic(
                    jit_stmt,
                    "RPR003",
                    f"backend {node.name!r} declares `uses_jit = True` but "
                    f"its body never references a jit engine",
                    "build the grid through the jit tier (JitScheduleGrid) or "
                    "drop the declaration",
                )

        sweep_stmt = attrs.get("sweep_aware")
        if sweep_stmt is not None:
            value = (
                sweep_stmt.value
                if isinstance(sweep_stmt, (ast.Assign, ast.AnnAssign))
                else None
            )
            literal = isinstance(value, ast.Constant) and isinstance(
                value.value, bool
            )
            if not literal:
                yield ctx.diagnostic(
                    sweep_stmt,
                    "RPR003",
                    f"backend {node.name!r} sets `sweep_aware` to a "
                    f"non-literal value; ExecutionPlan reads it off the class",
                    "assign a literal True/False",
                )
            elif value.value is True and not abstract:
                sweep_used: set[str] = set()
                for method in _class_methods(node).values():
                    sweep_used |= _identifiers_used(method)
                if not any(
                    "incremental" in s.lower() or "sweep" in s.lower()
                    for s in sweep_used
                ):
                    yield ctx.diagnostic(
                        sweep_stmt,
                        "RPR003",
                        f"backend {node.name!r} declares `sweep_aware = True` "
                        f"but its body never references an incremental/sweep "
                        f"solve path",
                        "solve through the incremental tier "
                        "(solve_schedule_grid_incremental) or drop the "
                        "declaration",
                    )


# ----------------------------------------------------------------------
# RPR004 — typed exceptions only
# ----------------------------------------------------------------------

_BARE_EXCEPTIONS = ("ValueError", "TypeError")


@rule(
    "RPR004",
    "no bare ValueError/TypeError raises in src/repro",
    "raise a repro.exceptions type (InvalidParameterError subclasses "
    "ValueError; UnsupportedErrorModelError subclasses TypeError)",
)
def check_typed_exceptions(ctx: LintContext) -> Iterator[Diagnostic]:
    """Library errors must be catchable as :class:`repro.exceptions.ReproError`.

    The exception hierarchy multiply-inherits the builtin types, so a
    typed raise keeps every legacy ``except ValueError`` working while
    giving callers one umbrella to catch.  A bare builtin raise opts
    out of that umbrella and out of the pickle support the
    multiprocessing shards rely on.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = _name_of(target)
        if name in _BARE_EXCEPTIONS:
            yield ctx.diagnostic(
                node,
                "RPR004",
                f"bare `raise {name}` in library code",
                f"use a repro.exceptions type (e.g. InvalidParameterError) "
                f"so the error stays under the ReproError umbrella",
            )


# ----------------------------------------------------------------------
# RPR005 — tolerance discipline in kernel modules
# ----------------------------------------------------------------------

#: Module basenames holding numeric kernels / evaluators / solvers.
_KERNEL_BASENAMES = {"evaluator.py", "vectorized.py", "numeric.py", "solver.py"}


def _is_nonintegral_float(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != int(node.value)
    )


@rule(
    "RPR005",
    "no float-literal == comparisons in kernel/evaluator modules",
    "compare against a tolerance (math.isclose / np.isclose / an explicit "
    "epsilon), or restructure so the sentinel is exact (0.0, 1.0, ...)",
)
def check_float_equality(ctx: LintContext) -> Iterator[Diagnostic]:
    """Numeric kernels must not gate logic on inexact float equality.

    ``x == 0.4`` inside an evaluator is a latent heisenbug: the value
    arrives through arithmetic that does not round-trip the literal.
    Integral sentinels (``0.0``, ``1.0``) are exempt — they are exact
    in binary floating point and idiomatic as mode flags.
    """
    if ctx.path.name not in _KERNEL_BASENAMES:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left, *node.comparators]
        for operand in operands:
            if _is_nonintegral_float(operand):
                yield ctx.diagnostic(
                    node,
                    "RPR005",
                    f"equality comparison against float literal "
                    f"{operand.value!r} in a kernel module",
                    "use a tolerance comparison instead",
                )
                break


# ----------------------------------------------------------------------
# RPR006 — deterministic identity paths
# ----------------------------------------------------------------------

#: Function names that compute canonical identity / cache keys.
_IDENTITY_FUNCTIONS = {"canonical", "cache_key", "normalized", "spec", "_key"}

#: Dotted-prefix denylist: anything here is nondeterministic state.
_NONDETERMINISTIC_PREFIXES = (
    "time.",
    "uuid.",
    "random.",
    "np.random.",
    "numpy.random.",
    "secrets.",
)
_NONDETERMINISTIC_EXACT = {
    "id",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}


@rule(
    "RPR006",
    "no nondeterministic calls in canonical-identity / cache-key code",
    "identity must be a pure function of the model parameters; move "
    "timing/randomness out of the identity path",
)
def check_identity_determinism(ctx: LintContext) -> Iterator[Diagnostic]:
    """Cache keys must be reproducible across processes and runs.

    The solve cache, the plan deduplicator and the multiprocessing
    shards all assume two equal scenarios produce one key forever; a
    ``time.time()`` / global-RNG / ``id()`` call inside ``canonical``/
    ``cache_key``/``spec`` (or anywhere in ``api/cache.py``) breaks
    replay, resume and cross-request sharing at once.
    """
    whole_file = ctx.path.name == "cache.py"
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not whole_file and node.name not in _IDENTITY_FUNCTIONS:
            continue
        for call in _calls_in(node):
            dotted = _name_of(call.func)
            if not dotted:
                continue
            bad = dotted in _NONDETERMINISTIC_EXACT or any(
                dotted.startswith(p) for p in _NONDETERMINISTIC_PREFIXES
            )
            if bad:
                yield ctx.diagnostic(
                    call,
                    "RPR006",
                    f"nondeterministic call `{dotted}(...)` inside identity "
                    f"code ({node.name})",
                    "derive identity from model parameters only",
                )


# ----------------------------------------------------------------------
# RPR007 — fully annotated defs (local disallow_untyped_defs proxy)
# ----------------------------------------------------------------------

#: Dunders whose return annotation mypy does not insist on.
_RETURN_EXEMPT = {"__init__", "__post_init__", "__init_subclass__", "__new__"}


@rule(
    "RPR007",
    "every function must have complete parameter and return annotations",
    "annotate all parameters and the return type (the mypy "
    "disallow_untyped_defs gate enforces the same contract in CI)",
)
def check_annotations(ctx: LintContext) -> Iterator[Diagnostic]:
    """The local, dependency-free proxy for the strict mypy gate.

    CI runs mypy with ``disallow_untyped_defs``; this rule keeps the
    same contract enforceable in environments without mypy installed
    (and inside this checker's own test fixtures).  ``self``/``cls``
    are exempt, as is the return annotation of ``__init__`` and
    friends.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        positional = args.posonlyargs + args.args
        missing: list[str] = []
        for i, arg in enumerate(positional):
            if i == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(a.arg for a in args.kwonlyargs if a.annotation is None)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        needs_return = node.returns is None and node.name not in _RETURN_EXEMPT
        if not missing and not needs_return:
            continue
        pieces: list[str] = []
        if missing:
            pieces.append(f"unannotated parameter(s): {', '.join(missing)}")
        if needs_return:
            pieces.append("missing return annotation")
        yield ctx.diagnostic(
            node,
            "RPR007",
            f"function {node.name!r} has {'; '.join(pieces)}",
            "add the missing annotations",
        )
