"""Diagnostic records emitted by the lint rules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location.

    Ordering is (path, line, col, code) so reports are stable and
    grouped by file regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    fixit: str = ""

    def render(self) -> str:
        """The one-line ``path:line:col: CODE message`` report format."""
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.fixit:
            text += f" [fix: {self.fixit}]"
        return text
