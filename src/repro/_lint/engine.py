"""The `repro-lint` engine: file walking, rule dispatch, suppression.

A *rule* is a callable taking a :class:`LintContext` and yielding
:class:`~repro._lint.diagnostics.Diagnostic` objects.  Rules register
themselves with the :func:`rule` decorator (code + summary + fix-it);
the engine parses each file once, hands every registered rule the same
context, filters diagnostics through the file's suppression directives
and returns the sorted remainder.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Iterable, Iterator, Sequence

from ..exceptions import InvalidParameterError
from .diagnostics import Diagnostic
from .suppressions import Suppressions, parse_suppressions

__all__ = [
    "LintContext",
    "Rule",
    "rule",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
]


@dataclass
class LintContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    source: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def posix_path(self) -> str:
        """The file path with forward slashes (for pattern matching)."""
        return self.path.as_posix()

    def in_package_dir(self, *parts: str) -> bool:
        """True when the file lives under ``.../parts[0]/parts[1]/...``."""
        pieces = self.path.parts
        n = len(parts)
        return any(
            pieces[i : i + n] == parts for i in range(len(pieces) - n + 1)
        )

    def diagnostic(
        self, node: ast.AST, code: str, message: str, fixit: str = ""
    ) -> Diagnostic:
        """A diagnostic anchored at ``node``'s location in this file."""
        return Diagnostic(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
            fixit=fixit,
        )


RuleFn = Callable[[LintContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """A registered rule: stable code, summary, and the check callable."""

    code: str
    summary: str
    fixit: str
    check: RuleFn = field(compare=False)


_RULES: dict[str, Rule] = {}


def rule(code: str, summary: str, fixit: str) -> Callable[[RuleFn], RuleFn]:
    """Register ``fn`` as the implementation of rule ``code``."""

    def decorate(fn: RuleFn) -> RuleFn:
        if code in _RULES:
            raise InvalidParameterError(f"lint rule {code!r} already registered")
        _RULES[code] = Rule(code=code, summary=summary, fixit=fixit, check=fn)
        return fn

    return decorate


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    _ensure_rules_loaded()
    return tuple(_RULES[c] for c in sorted(_RULES))


def _ensure_rules_loaded() -> None:
    # Rules live in their own module so importing the engine alone (for
    # the API types) never runs registration twice.
    from . import rules  # noqa: F401  (import-for-side-effect)


def lint_source(
    source: str,
    path: Path | str = "<string>",
    select: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Lint one in-memory source blob; the core of every entry point.

    ``select`` restricts the run to the listed rule codes (default:
    every registered rule).  Returns sorted, suppression-filtered
    diagnostics; a file that does not parse yields a single ``RPR000``
    syntax diagnostic (the rules need an AST).
    """
    _ensure_rules_loaded()
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code="RPR000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = LintContext(
        path=path,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    wanted = set(select) if select is not None else None
    found: list[Diagnostic] = []
    for r in all_rules():
        if wanted is not None and r.code not in wanted:
            continue
        for diag in r.check(ctx):
            if not ctx.suppressions.is_suppressed(diag.line, diag.code):
                found.append(diag)
    return sorted(found)


def lint_file(
    path: Path | str, select: Iterable[str] | None = None
) -> list[Diagnostic]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path, select=select)


def _iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    for p in paths:
        p = Path(p)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Sequence[Path | str], select: Iterable[str] | None = None
) -> list[Diagnostic]:
    """Lint files and directory trees; directories recurse over ``*.py``."""
    found: list[Diagnostic] = []
    for path in _iter_python_files(paths):
        found.extend(lint_file(path, select=select))
    return sorted(found)
