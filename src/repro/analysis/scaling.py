"""Power-law scaling fits — the Theorem-2 exponent check.

Theorem 2 predicts ``Wopt = Theta(lambda^{-2/3})`` for fail-stop errors
with ``sigma2 = 2 sigma1``, versus Young/Daly's ``Theta(lambda^{-1/2})``.
:func:`fit_power_law` recovers the exponent from ``(lambda, Wopt)``
samples by ordinary least squares in log-log space, with the coefficient
of determination to judge fit quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..exceptions import InvalidParameterError
from ..quantities import ScalarOrArray

__all__ = ["PowerLawFit", "fit_power_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """Fit of ``y = prefactor * x ** exponent``."""

    exponent: float
    prefactor: float
    r_squared: float

    def predict(self, x: ScalarOrArray) -> ScalarOrArray:
        """Evaluate the fitted law (broadcasts over ``x``)."""
        return self.prefactor * np.asarray(x, dtype=float) ** self.exponent


def fit_power_law(x: npt.ArrayLike, y: npt.ArrayLike) -> PowerLawFit:
    """Least-squares fit of ``log y = log a + b log x``.

    Parameters
    ----------
    x, y:
        Positive samples (at least three points so the fit quality is
        meaningful).

    Raises
    ------
    ValueError
        On fewer than 3 points, non-positive data, or mismatched shapes.

    Examples
    --------
    >>> lam = np.logspace(-6, -3, 10)
    >>> fit = fit_power_law(lam, 12.0 * lam ** -0.5)
    >>> round(fit.exponent, 6)
    -0.5
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape:
        raise InvalidParameterError("x and y must have the same shape")
    if xa.size < 3:
        raise InvalidParameterError("need at least 3 points to fit a power law")
    if np.any(xa <= 0) or np.any(ya <= 0):
        raise InvalidParameterError("power-law fits need strictly positive data")
    lx = np.log(xa)
    ly = np.log(ya)
    b, a = np.polyfit(lx, ly, 1)
    resid = ly - (a + b * lx)
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=float(b), prefactor=float(np.exp(a)), r_squared=r2)
