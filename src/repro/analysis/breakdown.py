"""Energy breakdown: where do the millijoules actually go?

Decomposes the exact Proposition-3 expected pattern energy into its
physical components — first execution, verification, re-executions,
checkpoint, recovery, and the static (idle) share — so the effect of a
design change ("lower the re-execution speed", "buy faster storage")
can be attributed.  Components sum exactly to
:func:`repro.core.exact.expected_energy` (asserted by the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import exact
from ..platforms.configuration import Configuration
from ..exceptions import InvalidParameterError

__all__ = ["EnergyBreakdown", "energy_breakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Component-wise expected energy of one pattern (mJ).

    Attributes
    ----------
    first_execution:
        Computation of the first attempt, ``(W/s1)(kappa s1^3 + Pidle)``.
    first_verification:
        Verification of the first attempt.
    reexecution:
        Expected computation energy of all sigma2 re-executions.
    reverification:
        Expected verification energy of all re-executions.
    checkpoint:
        The single committed checkpoint.
    recovery:
        Expected recovery energy (one R per failed attempt).
    idle_share:
        The part of the total drawn by ``Pidle`` (informational: it is
        *contained* in the other components, not additional).
    """

    sigma1: float
    sigma2: float
    work: float
    first_execution: float
    first_verification: float
    reexecution: float
    reverification: float
    checkpoint: float
    recovery: float
    idle_share: float

    @property
    def total(self) -> float:
        """Sum of the six disjoint components (== Prop 3)."""
        return (
            self.first_execution
            + self.first_verification
            + self.reexecution
            + self.reverification
            + self.checkpoint
            + self.recovery
        )

    @property
    def resilience_overhead(self) -> float:
        """Energy spent purely on fault tolerance: everything except the
        first execution (verification, re-execution, checkpoint,
        recovery)."""
        return self.total - self.first_execution

    @property
    def resilience_fraction(self) -> float:
        """``resilience_overhead / total``."""
        return self.resilience_overhead / self.total

    def as_dict(self) -> dict[str, float]:
        """Plain dict of the six components (for CSV/JSON export)."""
        return {
            "first_execution": self.first_execution,
            "first_verification": self.first_verification,
            "reexecution": self.reexecution,
            "reverification": self.reverification,
            "checkpoint": self.checkpoint,
            "recovery": self.recovery,
        }


def energy_breakdown(
    cfg: Configuration,
    work: float,
    sigma1: float,
    sigma2: float | None = None,
) -> EnergyBreakdown:
    """Decompose the exact expected pattern energy (Proposition 3).

    The re-execution factor ``retry = (1 - e^{-lam W/s1}) e^{lam W/s2}``
    is the expected number of sigma2 attempts; every component below is
    an exact term of Prop 3.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> cfg = get_configuration("hera-xscale")
    >>> bd = energy_breakdown(cfg, 2764.0, 0.4)
    >>> import math
    >>> from repro.core import exact
    >>> math.isclose(bd.total, exact.expected_energy(cfg, 2764.0, 0.4))
    True
    """
    if sigma2 is None:
        sigma2 = sigma1
    if work <= 0:
        raise InvalidParameterError("work must be > 0")
    if sigma1 <= 0 or sigma2 <= 0:
        raise InvalidParameterError("speeds must be > 0")

    lam = cfg.lam
    V = cfg.verification_time
    pm = cfg.power
    p_io = pm.io_total_power()
    p1 = pm.compute_power(sigma1)
    p2 = pm.compute_power(sigma2)
    retry = float(-np.expm1(-lam * work / sigma1) * np.exp(lam * work / sigma2))

    first_execution = work / sigma1 * p1
    first_verification = V / sigma1 * p1
    reexecution = retry * work / sigma2 * p2
    reverification = retry * V / sigma2 * p2
    checkpoint = cfg.checkpoint_time * p_io
    recovery = retry * cfg.recovery_time * p_io

    # Idle share: Pidle times every second of expected activity.
    expected_seconds = exact.expected_time(cfg, work, sigma1, sigma2)
    idle_share = pm.idle * expected_seconds

    return EnergyBreakdown(
        sigma1=sigma1,
        sigma2=sigma2,
        work=work,
        first_execution=first_execution,
        first_verification=first_verification,
        reexecution=reexecution,
        reverification=reverification,
        checkpoint=checkpoint,
        recovery=recovery,
        idle_share=idle_share,
    )
