"""Bi-criteria Pareto frontier: energy vs time trade-off curve.

BiCrit fixes a time budget ``rho`` and minimises energy.  Sweeping
``rho`` traces the full Pareto frontier of the (time overhead, energy
overhead) bi-criteria problem — the curve a practitioner actually
negotiates against.  This module builds that frontier, verifies its
monotonicity, and locates the *knee* (the point of diminishing
returns) via the maximum-distance-to-chord rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.solution import PatternSolution
from ..platforms.configuration import Configuration
from ..exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..errors.models import ArrivalProcess, ErrorModel
    from ..errors.combined import CombinedErrors
    from ..schedules.base import SpeedSchedule

__all__ = ["ParetoPoint", "ParetoFrontier", "pareto_frontier"]


@dataclass(frozen=True)
class ParetoPoint:
    """One frontier point: the optimum at a given bound."""

    rho: float
    solution: PatternSolution

    @property
    def time_overhead(self) -> float:
        """Achieved (not just allowed) expected time per work unit."""
        return self.solution.time_overhead

    @property
    def energy_overhead(self) -> float:
        """Minimal expected energy per work unit at this bound."""
        return self.solution.energy_overhead


@dataclass(frozen=True)
class ParetoFrontier:
    """The energy-vs-time frontier of one configuration."""

    config_name: str
    points: tuple[ParetoPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    @property
    def times(self) -> np.ndarray:
        """Achieved time overheads, one per frontier point."""
        return np.array([p.time_overhead for p in self.points])

    @property
    def energies(self) -> np.ndarray:
        """Energy overheads, one per frontier point."""
        return np.array([p.energy_overhead for p in self.points])

    def knee(self) -> ParetoPoint:
        """The maximum-distance-to-chord knee of the frontier.

        Normalises both axes to [0, 1], draws the chord between the
        frontier's endpoints, and returns the point farthest from it —
        the standard knee heuristic.  With fewer than 3 points the
        first point is returned.
        """
        if len(self.points) < 3:
            return self.points[0]
        t = self.times
        e = self.energies
        t_span = float(np.ptp(t)) or 1.0
        e_span = float(np.ptp(e)) or 1.0
        tn = (t - t.min()) / t_span
        en = (e - e.min()) / e_span
        p0 = np.array([tn[0], en[0]])
        p1 = np.array([tn[-1], en[-1]])
        chord = p1 - p0
        norm = np.hypot(*chord)
        if norm == 0.0:
            return self.points[0]
        # Perpendicular distance of each point to the chord.
        d = np.abs(chord[0] * (en - p0[1]) - chord[1] * (tn - p0[0])) / norm
        return self.points[int(np.argmax(d))]

    def dominates(self, time_overhead: float, energy_overhead: float) -> bool:
        """True if some frontier point weakly dominates the given point."""
        return bool(
            np.any((self.times <= time_overhead) & (self.energies <= energy_overhead))
        )


def pareto_frontier(
    cfg: Configuration,
    rho_lo: float | None = None,
    rho_hi: float = 10.0,
    n: int = 60,
    *,
    backend: str | None = None,
    schedule: "SpeedSchedule | str | None" = None,
    errors: "ErrorModel | ArrivalProcess | CombinedErrors | str | None" = None,
) -> ParetoFrontier:
    """Trace the Pareto frontier by sweeping the bound.

    ``rho_lo`` defaults to just above the configuration's minimum
    feasible bound.  Consecutive duplicate optima (same achieved time
    and energy — the unconstrained plateau at loose bounds) are
    collapsed, so the frontier contains only distinct trade-offs.

    .. note:: Legacy-shaped adapter.  The rho sweep compiles to one
       :class:`repro.api.Experiment` plan (deduplicated, solved in
       batched backend passes) and the curve is read off the
       ``.frontier(prune=False)`` verb — the legacy collapse rule, so
       the exponential two-speed output is byte-identical to the
       historical per-point loop.  ``backend`` forwards a registry name
       (``"grid"`` vectorises the whole frontier into a single
       broadcast pass); optional ``schedule``/``errors`` trace the
       frontier under a per-attempt speed schedule and/or a renewal
       error model (impossible pre-pipeline), riding the batched
       ``schedule-grid`` kernel.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> fr = pareto_frontier(get_configuration("hera-xscale"), n=40)
    >>> import numpy as np
    >>> bool(np.all(np.diff(fr.energies) <= 1e-9))  # energy falls as time relaxes
    True
    """
    from ..core.feasibility import min_performance_bound_config

    if rho_lo is None:
        rho_lo = min_performance_bound_config(cfg) * 1.0001
    if not rho_lo < rho_hi:
        raise InvalidParameterError(f"need rho_lo < rho_hi, got [{rho_lo}, {rho_hi}]")

    from ..api.experiment import Experiment

    rhos = np.linspace(rho_lo, rho_hi, n)
    experiment = Experiment.over(
        configs=(cfg,),
        rhos=tuple(float(r) for r in rhos),
        schedules=(schedule,),
        error_models=(errors,),
        name=f"pareto:{cfg.name}",
    )
    frontier = experiment.solve(backend=backend).frontier(prune=False)
    points = tuple(
        ParetoPoint(rho=p.rho, solution=p.result.best) for p in frontier.points
    )
    return ParetoFrontier(config_name=cfg.name, points=points)
