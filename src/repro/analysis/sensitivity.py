"""Parameter elasticities of the optimal energy overhead.

Answers the practitioner's question "which knob matters?": for each
model parameter ``p`` (checkpoint cost, verification cost, error rate,
idle power, I/O power, performance bound), compute the elasticity

.. math::  \\epsilon_p = \\frac{d \\ln E^*}{d \\ln p}

of the *optimal* energy overhead ``E^* = E(Wopt, sigma1^*, sigma2^*)/Wopt``
— i.e. with the solver re-run at the perturbed parameter, so crossovers
of the optimal speed pair and re-clamping of ``Wopt`` are included
(unlike a fixed-design partial derivative).  Central finite differences
on the log-log scale; the solver is closed-form so each evaluation is
~1 ms.

Typical catalog-scale readings: ``epsilon_C ~ 0.02`` (checkpoints are a
small share of the energy at the optimum), ``epsilon_lambda ~ 0.02``
(both enter ``E*`` through the same ``2 sqrt(y z)`` term), and
``epsilon_rho = 0`` wherever the bound is inactive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..platforms.configuration import Configuration
from ..exceptions import InvalidParameterError

__all__ = ["Elasticities", "parameter_elasticities"]

#: Parameter name -> (cfg, rho, value) applier, mirroring the sweep axes.
_APPLIERS = {
    "C": lambda cfg, rho, v: (cfg.with_checkpoint_time(v), rho),
    "V": lambda cfg, rho, v: (cfg.with_verification_time(v), rho),
    "lambda": lambda cfg, rho, v: (cfg.with_error_rate(v), rho),
    "Pidle": lambda cfg, rho, v: (cfg.with_idle_power(v), rho),
    "Pio": lambda cfg, rho, v: (cfg.with_io_power(v), rho),
    "rho": lambda cfg, rho, v: (cfg, v),
}

_BASE_VALUES = {
    "C": lambda cfg, rho: cfg.checkpoint_time,
    "V": lambda cfg, rho: cfg.verification_time,
    "lambda": lambda cfg, rho: cfg.lam,
    "Pidle": lambda cfg, rho: cfg.power.idle,
    "Pio": lambda cfg, rho: cfg.io_power,
    "rho": lambda cfg, rho: rho,
}


@dataclass(frozen=True)
class Elasticities:
    """Elasticities of the optimal energy overhead per parameter.

    ``values[p]`` is ``d ln E* / d ln p``; ``None`` marks parameters
    that could not be perturbed (zero base value has no log derivative,
    and perturbing across an infeasibility edge is undefined).
    """

    config_name: str
    rho: float
    base_energy: float
    values: dict[str, float | None]

    def ranked(self) -> list[tuple[str, float]]:
        """Parameters sorted by |elasticity|, most influential first."""
        items = [(k, v) for k, v in self.values.items() if v is not None]
        return sorted(items, key=lambda kv: abs(kv[1]), reverse=True)

    def most_influential(self) -> str:
        """Name of the parameter with the largest |elasticity|."""
        ranked = self.ranked()
        if not ranked:
            raise InvalidParameterError("no parameter could be perturbed")
        return ranked[0][0]


def parameter_elasticities(
    cfg: Configuration,
    rho: float,
    *,
    rel_step: float = 0.02,
    parameters: tuple[str, ...] | None = None,
) -> Elasticities:
    """Central-difference elasticities of the optimal energy overhead.

    .. note:: Legacy-shaped adapter.  The base point and every ±step
       perturbation compile into a single
       :class:`repro.api.Experiment` plan — one deduplicated batch
       through the backend registry (and the solve cache) instead of
       2k+1 sequential ``solve_bicrit`` calls — with the same
       ``firstorder`` solver underneath, so the elasticities are
       byte-identical to the historical loop.

    Parameters
    ----------
    rel_step:
        Relative perturbation size (each parameter is multiplied by
        ``1 +- rel_step``).  2% is large enough to dominate solver
        noise and small enough to stay within a crossover cell in the
        catalog settings.
    parameters:
        Restrict to a subset of ``("C", "V", "lambda", "Pidle", "Pio",
        "rho")``; defaults to all six.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> el = parameter_elasticities(get_configuration("hera-xscale"), 3.0)
    >>> el.values["rho"] == 0.0   # bound inactive at rho = 3
    True
    """
    from ..api.experiment import Experiment
    from ..api.scenario import Scenario

    if not 0 < rel_step < 0.5:
        raise InvalidParameterError("rel_step must be in (0, 0.5)")
    names = tuple(_APPLIERS) if parameters is None else tuple(parameters)
    unknown = set(names) - set(_APPLIERS)
    if unknown:
        raise KeyError(f"unknown parameters: {sorted(unknown)}")

    # One scenario for the base optimum + a (hi, lo) pair per
    # perturbable parameter, solved as one deduplicated plan.
    scenarios = [Scenario(config=cfg, rho=rho, label="base")]
    perturbable: list[str] = []
    for name in names:
        base = _BASE_VALUES[name](cfg, rho)
        if base <= 0:
            continue  # log-derivative undefined at zero
        cfg_hi, rho_hi = _APPLIERS[name](cfg, rho, base * (1 + rel_step))
        cfg_lo, rho_lo = _APPLIERS[name](cfg, rho, base * (1 - rel_step))
        scenarios.append(Scenario(config=cfg_hi, rho=rho_hi, label=f"{name}+"))
        scenarios.append(Scenario(config=cfg_lo, rho=rho_lo, label=f"{name}-"))
        perturbable.append(name)

    results = Experiment.from_scenarios(
        scenarios, name=f"sensitivity:{cfg.name}"
    ).solve()
    base_energy = results[0].require().best.energy_overhead

    out: dict[str, float | None] = {name: None for name in names}
    denominator = math.log1p(rel_step) - math.log1p(-rel_step)
    for k, name in enumerate(perturbable):
        hi, lo = results[1 + 2 * k], results[2 + 2 * k]
        if not (hi.feasible and lo.feasible):
            continue  # perturbation crossed the feasibility edge
        out[name] = (
            math.log(hi.best.energy_overhead) - math.log(lo.best.energy_overhead)
        ) / denominator
    return Elasticities(
        config_name=cfg.name, rho=rho, base_energy=base_energy, values=out
    )
