"""Crossover analysis: where does the optimal speed pair switch?

Two observations of the paper are quantified here:

* along every sweep the optimal pair changes at discrete crossover
  values ("the execution speeds are adapted — first sigma2 and then
  sigma1", Section 4.3.1): :func:`find_pair_changes` locates them;
* "it is possible, for a well-chosen rho, to have almost any speed pair
  as the optimal solution" (Section 4.2): :func:`optimal_pairs_by_rho`
  maps each speed pair to the ``rho`` ranges where it wins, making that
  statement checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..platforms.configuration import Configuration
from ..sweep.runner import SweepSeries

__all__ = ["Crossover", "find_pair_changes", "optimal_pairs_by_rho", "PairInterval"]


@dataclass(frozen=True)
class Crossover:
    """A change of optimal pair between two consecutive sweep values."""

    value_before: float
    value_after: float
    pair_before: tuple[float, float] | None
    pair_after: tuple[float, float] | None


def find_pair_changes(series: SweepSeries) -> tuple[Crossover, ...]:
    """All consecutive optimal-pair changes along a sweep series.

    Feasibility transitions (pair <-> ``None``) count as crossovers too,
    which captures the feasibility frontier of the ``rho`` sweeps.
    """
    pairs = series.speed_pairs()
    values = series.values
    out = []
    for i in range(1, len(pairs)):
        if pairs[i] != pairs[i - 1]:
            out.append(
                Crossover(
                    value_before=float(values[i - 1]),
                    value_after=float(values[i]),
                    pair_before=pairs[i - 1],
                    pair_after=pairs[i],
                )
            )
    return tuple(out)


@dataclass(frozen=True)
class PairInterval:
    """A maximal ``rho`` interval where one speed pair is optimal."""

    pair: tuple[float, float]
    rho_min: float
    rho_max: float


def optimal_pairs_by_rho(
    cfg: Configuration,
    rho_lo: float = 1.0,
    rho_hi: float = 10.0,
    n: int = 400,
) -> tuple[PairInterval, ...]:
    """Scan ``rho`` and return the maximal intervals per winning pair.

    Infeasible bounds produce no interval.  The scan is grid-based: the
    reported interval ends are grid values, accurate to the grid step
    (``(rho_hi - rho_lo) / (n - 1)``).

    .. note:: Legacy-shaped adapter.  The whole rho grid compiles into
       one :class:`repro.api.Experiment` plan (one batch through the
       ``firstorder`` backend and the solve cache, instead of ``n``
       sequential ``solve_bicrit`` calls) and the interval scan reads
       the ``.crossover()`` verb's per-point winners — byte-identical
       pairs to the historical loop.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> iv = optimal_pairs_by_rho(get_configuration("hera-xscale"), 1.2, 9.0, 80)
    >>> len({i.pair for i in iv}) >= 3   # several distinct winners
    True
    """
    from ..api.experiment import Experiment

    grid = np.linspace(rho_lo, rho_hi, n)
    results = Experiment.over(
        configs=(cfg,),
        rhos=tuple(float(r) for r in grid),
        name=f"pairs-by-rho:{cfg.name}",
    ).solve()
    pairs = results.crossover(values=grid).pairs
    intervals: list[PairInterval] = []
    current_pair: tuple[float, float] | None = None
    start = None
    prev = None
    for rho, pair in zip(grid, pairs):
        if pair != current_pair:
            if current_pair is not None:
                intervals.append(
                    PairInterval(pair=current_pair, rho_min=float(start), rho_max=float(prev))
                )
            current_pair = pair
            start = rho
        prev = rho
    if current_pair is not None:
        intervals.append(
            PairInterval(pair=current_pair, rho_min=float(start), rho_max=float(prev))
        )
    return tuple(intervals)
