"""Derived analyses: savings, crossovers, scaling, Pareto, regions, breakdown.

Since v1.5 the analyses are *verbs* on a solved
:class:`~repro.api.result.ResultSet` (:mod:`repro.analysis.verbs`);
the module-level helpers here are thin adapters kept for their legacy
signatures, all riding the :class:`~repro.api.experiment.Experiment`
pipeline and its batched backends underneath.
"""

from .breakdown import EnergyBreakdown, energy_breakdown
from .crossover import Crossover, PairInterval, find_pair_changes, optimal_pairs_by_rho
from .pareto import ParetoFrontier, ParetoPoint, pareto_frontier
from .regions import RegionMap, map_regions
from .savings import SavingsSummary, savings_percent, series_savings, summarize_savings
from .scaling import PowerLawFit, fit_power_law
from .sensitivity import Elasticities, parameter_elasticities
from .verbs import (
    AnalysisProvenance,
    CrossoverEvent,
    CrossoverResult,
    DiffResult,
    FieldDelta,
    FrontierPoint,
    FrontierResult,
    SavingsResult,
    SensitivityResult,
)

__all__ = [
    "AnalysisProvenance",
    "FrontierPoint",
    "FrontierResult",
    "SavingsResult",
    "SensitivityResult",
    "CrossoverEvent",
    "CrossoverResult",
    "FieldDelta",
    "DiffResult",
    "savings_percent",
    "series_savings",
    "SavingsSummary",
    "summarize_savings",
    "Crossover",
    "PairInterval",
    "find_pair_changes",
    "optimal_pairs_by_rho",
    "PowerLawFit",
    "fit_power_law",
    "ParetoPoint",
    "ParetoFrontier",
    "pareto_frontier",
    "RegionMap",
    "map_regions",
    "EnergyBreakdown",
    "energy_breakdown",
    "Elasticities",
    "parameter_elasticities",
]
