"""2-D optimal-pair region maps ("phase diagrams").

The paper's figures vary one parameter at a time.  Downstream users
typically ask the two-dimensional question — e.g. *for which (C, lambda)
combinations does a different re-execution speed pay off?*  This module
solves BiCrit over a grid of two sweep axes and exposes the winning
speed pair and the two-speed savings per cell, from which the
"two speeds help here" region falls out directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.singlespeed import solve_single_speed
from ..core.solver import solve_bicrit
from ..exceptions import InfeasibleBoundError, InvalidParameterError
from ..platforms.configuration import Configuration
from ..sweep.axes import SweepAxis

__all__ = ["RegionMap", "map_regions"]


@dataclass(frozen=True)
class RegionMap:
    """Grid of BiCrit outcomes over two parameter axes.

    Array layout: index ``[i, j]`` corresponds to ``x_values[i]`` x
    ``y_values[j]``.  Infeasible cells hold NaN (and ``(nan, nan)``
    pairs).
    """

    config_name: str
    rho: float
    x_name: str
    y_name: str
    x_values: np.ndarray
    y_values: np.ndarray
    sigma1: np.ndarray = field(repr=False)
    sigma2: np.ndarray = field(repr=False)
    savings: np.ndarray = field(repr=False)

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(len(x_values), len(y_values))``."""
        return (len(self.x_values), len(self.y_values))

    def feasible_mask(self) -> np.ndarray:
        """Cells where the two-speed problem is feasible."""
        return np.isfinite(self.sigma1)

    def two_speed_region(self, threshold: float = 0.01) -> np.ndarray:
        """Cells where using two different speeds saves > ``threshold`` %."""
        with np.errstate(invalid="ignore"):
            return self.savings > threshold

    def distinct_pairs(self) -> set[tuple[float, float]]:
        """The set of winning pairs over the feasible region."""
        out = set()
        mask = self.feasible_mask()
        for i, j in zip(*np.nonzero(mask)):
            out.add((float(self.sigma1[i, j]), float(self.sigma2[i, j])))
        return out

    def fraction_two_speed(self, threshold: float = 0.01) -> float:
        """Fraction of feasible cells where two speeds help (> threshold %)."""
        mask = self.feasible_mask()
        if not mask.any():
            return 0.0
        return float(self.two_speed_region(threshold)[mask].mean())


def map_regions(
    cfg: Configuration,
    rho: float,
    x_axis: SweepAxis,
    y_axis: SweepAxis,
) -> RegionMap:
    """Solve both problems over the full 2-D grid of two axes.

    Axes compose: the x-axis value is applied first, the y-axis second
    (ordering matters only if both touch the same parameter, which is
    rejected).

    Raises
    ------
    ValueError
        If the two axes address the same parameter.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> from repro.sweep.axes import checkpoint_axis, error_rate_axis
    >>> m = map_regions(get_configuration("hera-xscale"), 3.0,
    ...                 checkpoint_axis(n=4), error_rate_axis(n=4, hi=1e-4))
    >>> m.shape
    (4, 4)
    """
    if x_axis.name == y_axis.name:
        raise InvalidParameterError(f"both axes address {x_axis.name!r}")
    nx, ny = len(x_axis), len(y_axis)
    sigma1 = np.full((nx, ny), np.nan)
    sigma2 = np.full((nx, ny), np.nan)
    savings = np.full((nx, ny), np.nan)

    for i, xv in enumerate(x_axis.values):
        cfg_x, rho_x = x_axis.apply(cfg, rho, xv)
        for j, yv in enumerate(y_axis.values):
            cfg_xy, rho_xy = y_axis.apply(cfg_x, rho_x, yv)
            try:
                two = solve_bicrit(cfg_xy, rho_xy).best
            except InfeasibleBoundError:
                continue
            sigma1[i, j] = two.sigma1
            sigma2[i, j] = two.sigma2
            try:
                one = solve_single_speed(cfg_xy, rho_xy).best
                savings[i, j] = (1.0 - two.energy_overhead / one.energy_overhead) * 100.0
            except InfeasibleBoundError:
                savings[i, j] = np.nan

    return RegionMap(
        config_name=cfg.name,
        rho=rho,
        x_name=x_axis.name,
        y_name=y_axis.name,
        x_values=np.asarray(x_axis.values),
        y_values=np.asarray(y_axis.values),
        sigma1=sigma1,
        sigma2=sigma2,
        savings=savings,
    )
