"""Energy savings of the two-speed solution over the one-speed baseline.

The paper's headline claim: "up to 35% of the energy consumption can be
saved by using a different re-execution speed while meeting a prescribed
performance constraint" (Section 4.3.5, observed on the Atlas/Crusoe
checkpoint-cost sweep).  These helpers compute per-point and per-series
savings and locate the maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sweep.runner import SweepSeries
from .verbs import percent_savings
from ..exceptions import InvalidParameterError

__all__ = ["savings_percent", "series_savings", "SavingsSummary", "summarize_savings"]


def savings_percent(two_speed_energy: float, single_speed_energy: float) -> float:
    """Relative saving ``(1 - E_two / E_one) * 100`` in percent.

    Positive means the two-speed solution is cheaper; by construction it
    is never negative when both solvers saw the same candidate set (the
    diagonal is a subset of the pair grid), so a negative value flags a
    solver inconsistency.
    """
    if single_speed_energy <= 0:
        raise InvalidParameterError("single_speed_energy must be > 0")
    return (1.0 - two_speed_energy / single_speed_energy) * 100.0


def series_savings(series: SweepSeries) -> np.ndarray:
    """Per-point savings (%) along a sweep; NaN where either is infeasible.

    .. note:: Legacy adapter over
       :func:`repro.analysis.verbs.percent_savings` — the same
       NaN-propagating element-wise rule the ``ResultSet.savings``
       verb applies.
    """
    return percent_savings(series.energy_two(), series.energy_single())


@dataclass(frozen=True)
class SavingsSummary:
    """Summary of the savings along one sweep series."""

    config_name: str
    axis_name: str
    max_savings_percent: float
    argmax_value: float
    mean_savings_percent: float
    num_points_with_savings: int

    @property
    def any_savings(self) -> bool:
        """True when at least one sweep point saves energy (> 0.01%)."""
        return self.num_points_with_savings > 0


def summarize_savings(series: SweepSeries, *, threshold: float = 0.01) -> SavingsSummary:
    """Summarise two-speed savings along a sweep series.

    ``threshold`` (percent) filters numeric dust when counting points
    with genuine savings.

    Raises
    ------
    ValueError
        If no sweep point is feasible for both solvers (nothing to
        compare).
    """
    s = series_savings(series)
    finite = np.isfinite(s)
    if not finite.any():
        raise InvalidParameterError("no sweep point is feasible for both solvers")
    values = series.values
    sf = np.where(finite, s, -np.inf)
    k = int(np.argmax(sf))
    return SavingsSummary(
        config_name=series.config_name,
        axis_name=series.axis_name,
        max_savings_percent=float(s[k]),
        argmax_value=float(values[k]),
        mean_savings_percent=float(np.mean(s[finite])),
        num_points_with_savings=int(np.sum(s[finite] > threshold)),
    )
