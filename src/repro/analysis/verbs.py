"""First-class analysis verbs over solved result sets.

Every derived analysis the paper reports — the energy-vs-time Pareto
frontier, savings over a baseline, parameter sensitivity, crossovers of
the winning policy — is a *verb* on a
:class:`~repro.api.result.ResultSet`:

========================  ==========================================
``results.frontier()``    :class:`FrontierResult` (trade-off curve + knee)
``results.savings(b)``    :class:`SavingsResult` (percent saved vs ``b``)
``results.sensitivity()`` :class:`SensitivityResult` (log-log elasticities)
``results.crossover()``   :class:`CrossoverResult` (policy switch points)
``results.diff(a, b)``    :class:`DiffResult` (why two optima differ)
========================  ==========================================

The verbs are pure post-processing: they read the solved results (any
backend, any schedule, any error model) and return small typed objects
with NumPy accessors, provenance, and CSV/JSON export — so a frontier
over a Weibull error model under a geometric schedule is exactly as
expressible as the paper's exponential two-speed case, and rides the
same batched solve the :class:`~repro.api.experiment.Experiment`
pipeline produced.

The legacy helpers (:func:`repro.analysis.pareto.pareto_frontier`,
:func:`repro.analysis.savings.summarize_savings`, …) are thin adapters
over these verbs; equivalence tests pin their outputs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np
from ..exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.result import Result, ResultSet

__all__ = [
    "AnalysisProvenance",
    "FrontierPoint",
    "FrontierResult",
    "SavingsResult",
    "SensitivityResult",
    "CrossoverEvent",
    "CrossoverResult",
    "FieldDelta",
    "DiffResult",
    "build_frontier",
    "build_savings",
    "build_sensitivity",
    "build_crossover",
    "build_diff",
    "percent_savings",
]

#: Collapse tolerance for duplicate trade-off points (matches the
#: legacy ``pareto_frontier`` plateau collapse).
_DUP_ATOL = 1e-12


@dataclass(frozen=True)
class AnalysisProvenance:
    """How an analysis object was derived.

    Records the source result set's name and size plus the solve-side
    provenance aggregates (backends used, cache hits, summed wall
    time), so an exported CSV/JSON can say *which* solves produced it.
    """

    source: str
    n_results: int
    backends: tuple[str, ...]
    cache_hits: int
    total_wall_time: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "source": self.source,
            "n_results": self.n_results,
            "backends": list(self.backends),
            "cache_hits": self.cache_hits,
            "total_wall_time": self.total_wall_time,
        }


def _provenance(results: "ResultSet") -> AnalysisProvenance:
    return AnalysisProvenance(
        source=results.name,
        n_results=len(results),
        backends=results.backends_used(),
        cache_hits=results.cache_hits(),
        total_wall_time=results.total_wall_time(),
    )


def _write_rows(path: str | Path, fieldnames: Sequence[str], rows: Iterable[dict]) -> Path:
    from ..reporting.csvio import write_rows_csv

    return write_rows_csv(path, fieldnames, rows)


def _json_dump(payload: dict, path: str | Path | None) -> str | Path:
    text = json.dumps(payload, indent=2)
    if path is None:
        return text
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n")
    return path


# ----------------------------------------------------------------------
# Frontier
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrontierPoint:
    """One trade-off point of a frontier (one solved scenario)."""

    x: float
    y: float
    rho: float
    result: "Result" = field(repr=False)

    @property
    def time_overhead(self) -> float:
        """The winning candidate's achieved time overhead."""
        return self.result.time_overhead

    @property
    def energy_overhead(self) -> float:
        """The winning candidate's energy overhead."""
        return self.result.energy_overhead


@dataclass(frozen=True)
class FrontierResult:
    """An x-vs-y trade-off frontier read off a solved result set.

    By default ``x`` is the achieved time overhead and ``y`` the energy
    overhead — the paper's bi-criteria curve — but any pair of uniform
    result attributes (``work``, …) can be traded off.  Points are kept
    in ascending-``x`` order; with ``prune=True`` (the verb's default)
    dominated points are dropped so the curve is a true Pareto
    staircase, with ``prune=False`` the source order is kept and only
    exact duplicates collapse (the legacy ``pareto_frontier``
    behaviour).
    """

    name: str
    x_attr: str
    y_attr: str
    points: tuple[FrontierPoint, ...]
    provenance: AnalysisProvenance

    def __len__(self) -> int:
        return len(self.points)

    # Cached: the points tuple is frozen, and knee()/dominates()/the
    # CLI's rendering loop read these arrays repeatedly.  (cached_property
    # writes the instance __dict__ directly, which a frozen dataclass
    # permits; treat the returned arrays as read-only.)
    @cached_property
    def xs(self) -> np.ndarray:
        """The x coordinates, point order."""
        return np.array([p.x for p in self.points])

    @cached_property
    def ys(self) -> np.ndarray:
        """The y coordinates, point order."""
        return np.array([p.y for p in self.points])

    @property
    def times(self) -> np.ndarray:
        """Alias of :attr:`xs` for the default time/energy axes."""
        return self.xs

    @property
    def energies(self) -> np.ndarray:
        """Alias of :attr:`ys` for the default time/energy axes."""
        return self.ys

    @property
    def rhos(self) -> np.ndarray:
        """The scenario bounds behind the points."""
        return np.array([p.rho for p in self.points])

    # ------------------------------------------------------------------
    def is_monotone(self, tol: float = 1e-9) -> bool:
        """True when ``x`` is non-decreasing and ``y`` non-increasing
        along the frontier (every real trade-off curve is)."""
        if len(self.points) < 2:
            return True
        return bool(
            np.all(np.diff(self.xs) >= -tol) and np.all(np.diff(self.ys) <= tol)
        )

    def knee(self) -> FrontierPoint:
        """The maximum-distance-to-chord knee of the frontier.

        Normalises both axes to [0, 1], draws the chord between the
        endpoints, and returns the point farthest from it.  With fewer
        than 3 points the first point is returned; an empty frontier
        raises :class:`ValueError`.
        """
        if not self.points:
            raise InvalidParameterError("empty frontier has no knee")
        if len(self.points) < 3:
            return self.points[0]
        t = self.xs
        e = self.ys
        t_span = float(np.ptp(t)) or 1.0
        e_span = float(np.ptp(e)) or 1.0
        tn = (t - t.min()) / t_span
        en = (e - e.min()) / e_span
        p0 = np.array([tn[0], en[0]])
        p1 = np.array([tn[-1], en[-1]])
        chord = p1 - p0
        norm = np.hypot(*chord)
        if norm == 0.0:
            return self.points[0]
        d = np.abs(chord[0] * (en - p0[1]) - chord[1] * (tn - p0[0])) / norm
        return self.points[int(np.argmax(d))]

    def dominates(self, x: float, y: float) -> bool:
        """True if some frontier point weakly dominates ``(x, y)``."""
        return bool(np.any((self.xs <= x) & (self.ys <= y)))

    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """One JSON-serialisable dict per frontier point."""
        return [
            {
                "rho": p.rho,
                self.x_attr: p.x,
                self.y_attr: p.y,
                "scenario": p.result.scenario.describe(),
                "backend": p.result.provenance.backend,
            }
            for p in self.points
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write one CSV row per frontier point."""
        return _write_rows(
            path, ("rho", self.x_attr, self.y_attr, "scenario", "backend"),
            self.to_dicts(),
        )

    def to_json(self, path: str | Path | None = None) -> str | Path:
        """JSON export (returns the text, or writes to ``path``)."""
        return _json_dump(
            {
                "name": self.name,
                "x": self.x_attr,
                "y": self.y_attr,
                "points": self.to_dicts(),
                "provenance": self.provenance.to_dict(),
            },
            path,
        )


def build_frontier(
    results: "ResultSet",
    x: str = "time_overhead",
    y: str = "energy_overhead",
    *,
    prune: bool = True,
) -> FrontierResult:
    """Compile a :class:`FrontierResult` from a solved result set.

    Infeasible results are skipped.  ``prune=False`` keeps the result
    order and collapses only *consecutive* duplicate points (both axes
    within 1e-12) — exactly the legacy ``pareto_frontier`` rule, so the
    adapter stays byte-identical.  ``prune=True`` additionally sorts by
    ``x`` and drops dominated points, so arbitrary result sets (not
    just monotone rho sweeps) yield a valid monotone frontier.
    """
    feasible = [r for r in results if r.feasible]
    raw = [
        FrontierPoint(
            x=float(getattr(r, x)),
            y=float(getattr(r, y)),
            rho=float(r.scenario.rho),
            result=r,
        )
        for r in feasible
    ]
    if prune:
        raw.sort(key=lambda p: (p.x, p.y))
        staircase: list[FrontierPoint] = []
        for p in raw:
            if staircase and p.y >= staircase[-1].y - _DUP_ATOL:
                continue  # dominated (or a duplicate) by the running minimum
            staircase.append(p)
        points = staircase
    else:
        points = []
        for p in raw:
            if points:
                prev = points[-1]
                if (
                    abs(prev.x - p.x) < _DUP_ATOL
                    and abs(prev.y - p.y) < _DUP_ATOL
                ):
                    continue
            points.append(p)
    return FrontierResult(
        name=results.name,
        x_attr=x,
        y_attr=y,
        points=tuple(points),
        provenance=_provenance(results),
    )


# ----------------------------------------------------------------------
# Savings
# ----------------------------------------------------------------------
def percent_savings(candidate: np.ndarray, baseline: np.ndarray) -> np.ndarray:
    """Element-wise relative saving ``(1 - candidate/baseline) * 100``.

    NaN-propagating: any NaN (infeasible point) on either side yields
    NaN — the same encoding as the ``SweepSeries`` accessors.
    """
    candidate = np.asarray(candidate, dtype=float)
    baseline = np.asarray(baseline, dtype=float)
    with np.errstate(invalid="ignore", divide="ignore"):
        return (1.0 - candidate / baseline) * 100.0


@dataclass(frozen=True)
class SavingsResult:
    """Per-point percent savings of a candidate over a baseline.

    ``values`` carries the swept axis (rho, checkpoint cost, fraction,
    …) so the argmax is reportable in the axis' own units; ``percent``
    is NaN wherever either side is infeasible.
    """

    name: str
    baseline_name: str
    axis: str
    values: np.ndarray
    percent: np.ndarray
    candidate_y: np.ndarray
    baseline_y: np.ndarray
    provenance: AnalysisProvenance

    def __len__(self) -> int:
        return len(self.percent)

    # ------------------------------------------------------------------
    @property
    def finite_mask(self) -> np.ndarray:
        """Points where both sides were feasible."""
        return np.isfinite(self.percent)

    @property
    def max_savings_percent(self) -> float:
        """The largest saving (NaN when no point is comparable)."""
        m = self.finite_mask
        if not m.any():
            return math.nan
        return float(self.percent[m].max())

    @property
    def argmax_value(self) -> float:
        """Axis value where the saving peaks (NaN when incomparable)."""
        m = self.finite_mask
        if not m.any():
            return math.nan
        sf = np.where(m, self.percent, -np.inf)
        return float(self.values[int(np.argmax(sf))])

    @property
    def mean_savings_percent(self) -> float:
        """Mean saving over the comparable points."""
        m = self.finite_mask
        if not m.any():
            return math.nan
        return float(np.mean(self.percent[m]))

    def num_points_with_savings(self, threshold: float = 0.01) -> int:
        """Comparable points saving more than ``threshold`` percent."""
        m = self.finite_mask
        return int(np.sum(self.percent[m] > threshold))

    @property
    def any_savings(self) -> bool:
        """True when at least one point saves > 0.01%."""
        return self.num_points_with_savings() > 0

    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """One JSON-serialisable dict per point."""
        out = []
        for v, p, c, b in zip(
            self.values, self.percent, self.candidate_y, self.baseline_y
        ):
            out.append(
                {
                    self.axis: float(v),
                    "candidate_energy": None if math.isnan(c) else float(c),
                    "baseline_energy": None if math.isnan(b) else float(b),
                    "savings_percent": None if math.isnan(p) else float(p),
                }
            )
        return out

    def to_csv(self, path: str | Path) -> Path:
        """Write one CSV row per point."""
        return _write_rows(
            path,
            (self.axis, "candidate_energy", "baseline_energy", "savings_percent"),
            self.to_dicts(),
        )

    def to_json(self, path: str | Path | None = None) -> str | Path:
        """JSON export (returns the text, or writes to ``path``)."""
        return _json_dump(
            {
                "name": self.name,
                "baseline": self.baseline_name,
                "axis": self.axis,
                "points": self.to_dicts(),
                "max_savings_percent": _nan_none(self.max_savings_percent),
                "argmax_value": _nan_none(self.argmax_value),
                "provenance": self.provenance.to_dict(),
            },
            path,
        )


def _nan_none(v: float) -> float | None:
    return None if math.isnan(v) else float(v)


def build_savings(
    results: "ResultSet",
    baseline: "ResultSet",
    *,
    values: Sequence[float] | np.ndarray | None = None,
    axis: str = "value",
    y: str = "energy_overhead",
) -> SavingsResult:
    """Per-point percent savings of ``results`` over ``baseline``.

    The two result sets must be positionally aligned (same length, one
    baseline point per candidate point); ``values`` labels the points
    with the swept axis values (defaults to the candidate scenarios'
    ``rho`` when they differ point-to-point, else the point index).
    """
    if len(results) != len(baseline):
        raise InvalidParameterError(
            f"candidate and baseline are not aligned: "
            f"{len(results)} vs {len(baseline)} results"
        )
    cand = np.array([float(getattr(r, y)) for r in results])
    base = np.array([float(getattr(r, y)) for r in baseline])
    if values is None:
        rhos = [r.scenario.rho for r in results]
        if len(set(rhos)) == len(rhos) and axis == "value":
            axis = "rho"
            values = np.array(rhos, dtype=float)
        else:
            values = np.arange(len(results), dtype=float)
    values = np.asarray(values, dtype=float)
    if values.shape != cand.shape:
        raise InvalidParameterError(
            f"values axis has {values.shape[0]} entries for "
            f"{cand.shape[0]} results"
        )
    return SavingsResult(
        name=results.name,
        baseline_name=baseline.name,
        axis=axis,
        values=values,
        percent=percent_savings(cand, base),
        candidate_y=cand,
        baseline_y=base,
        provenance=_provenance(results),
    )


# ----------------------------------------------------------------------
# Sensitivity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SensitivityResult:
    """Log-log elasticities of ``y`` along a swept axis.

    ``elasticities[i]`` is the central-difference estimate of
    ``d ln y / d ln value`` at point ``i``; NaN at the endpoints, at
    infeasible points, and wherever a neighbour is infeasible or the
    axis value is non-positive (no log derivative there).
    """

    name: str
    axis: str
    y_attr: str
    values: np.ndarray
    y: np.ndarray
    elasticities: np.ndarray
    provenance: AnalysisProvenance

    def __len__(self) -> int:
        return len(self.values)

    @property
    def finite_mask(self) -> np.ndarray:
        """Points with a defined elasticity."""
        return np.isfinite(self.elasticities)

    def max_abs_elasticity(self) -> float:
        """The largest |elasticity| along the axis (NaN when none)."""
        m = self.finite_mask
        if not m.any():
            return math.nan
        return float(np.max(np.abs(self.elasticities[m])))

    def at(self, value: float) -> float:
        """Elasticity at the grid point closest to ``value``."""
        k = int(np.argmin(np.abs(self.values - value)))
        return float(self.elasticities[k])

    def to_dicts(self) -> list[dict[str, Any]]:
        """One JSON-serialisable dict per axis point."""
        return [
            {
                self.axis: float(v),
                self.y_attr: _nan_none(float(yy)),
                "elasticity": _nan_none(float(e)),
            }
            for v, yy, e in zip(self.values, self.y, self.elasticities)
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write one CSV row per axis point."""
        return _write_rows(
            path, (self.axis, self.y_attr, "elasticity"), self.to_dicts()
        )

    def to_json(self, path: str | Path | None = None) -> str | Path:
        """JSON export (returns the text, or writes to ``path``)."""
        return _json_dump(
            {
                "name": self.name,
                "axis": self.axis,
                "y": self.y_attr,
                "points": self.to_dicts(),
                "provenance": self.provenance.to_dict(),
            },
            path,
        )


def build_sensitivity(
    results: "ResultSet",
    *,
    values: Sequence[float] | np.ndarray | None = None,
    axis: str = "rho",
    y: str = "energy_overhead",
) -> SensitivityResult:
    """Central-difference elasticities of ``y`` along the result order.

    ``values`` defaults to the scenarios' ``rho`` (the natural axis of
    a bound sweep); pass the swept axis values for other sweeps.
    """
    if values is None:
        values = np.array([r.scenario.rho for r in results], dtype=float)
    values = np.asarray(values, dtype=float)
    ys = np.array([float(getattr(r, y)) for r in results])
    if values.shape != ys.shape:
        raise InvalidParameterError(
            f"values axis has {values.shape[0]} entries for "
            f"{ys.shape[0]} results"
        )
    n = len(ys)
    el = np.full(n, np.nan)
    with np.errstate(invalid="ignore", divide="ignore"):
        logv = np.where(values > 0, np.log(values), np.nan)
        logy = np.where(ys > 0, np.log(ys), np.nan)
    for i in range(1, n - 1):
        dv = logv[i + 1] - logv[i - 1]
        dy = logy[i + 1] - logy[i - 1]
        if np.isfinite(dv) and np.isfinite(dy) and dv != 0.0:
            el[i] = dy / dv
    return SensitivityResult(
        name=results.name,
        axis=axis,
        y_attr=y,
        values=values,
        y=ys,
        elasticities=el,
        provenance=_provenance(results),
    )


# ----------------------------------------------------------------------
# Crossover
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrossoverEvent:
    """A change of winning speed pair between consecutive points."""

    index_before: int
    index_after: int
    value_before: float
    value_after: float
    pair_before: tuple[float, float] | None
    pair_after: tuple[float, float] | None


@dataclass(frozen=True)
class CrossoverResult:
    """All winning-pair switches along a swept result set.

    Feasibility transitions (pair <-> ``None``) count as crossovers —
    they trace the feasibility frontier of a bound sweep.
    """

    name: str
    axis: str
    events: tuple[CrossoverEvent, ...]
    pairs: tuple[tuple[float, float] | None, ...]
    values: np.ndarray
    provenance: AnalysisProvenance

    def __len__(self) -> int:
        return len(self.events)

    def distinct_pairs(self) -> tuple[tuple[float, float], ...]:
        """The distinct feasible winners, first-win order."""
        seen: dict[tuple[float, float], None] = {}
        for p in self.pairs:
            if p is not None:
                seen.setdefault(p, None)
        return tuple(seen)

    def to_dicts(self) -> list[dict[str, Any]]:
        """One JSON-serialisable dict per crossover event."""
        return [
            {
                "value_before": e.value_before,
                "value_after": e.value_after,
                "pair_before": list(e.pair_before) if e.pair_before else None,
                "pair_after": list(e.pair_after) if e.pair_after else None,
            }
            for e in self.events
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write one CSV row per crossover event."""
        rows = [
            {
                "value_before": e.value_before,
                "value_after": e.value_after,
                "pair_before": "" if e.pair_before is None
                else f"{e.pair_before[0]:g}/{e.pair_before[1]:g}",
                "pair_after": "" if e.pair_after is None
                else f"{e.pair_after[0]:g}/{e.pair_after[1]:g}",
            }
            for e in self.events
        ]
        return _write_rows(
            path, ("value_before", "value_after", "pair_before", "pair_after"), rows
        )

    def to_json(self, path: str | Path | None = None) -> str | Path:
        """JSON export (returns the text, or writes to ``path``)."""
        return _json_dump(
            {
                "name": self.name,
                "axis": self.axis,
                "events": self.to_dicts(),
                "provenance": self.provenance.to_dict(),
            },
            path,
        )


def build_crossover(
    results: "ResultSet",
    *,
    values: Sequence[float] | np.ndarray | None = None,
    axis: str = "rho",
) -> CrossoverResult:
    """Locate the winning-pair switches along the result order.

    ``values`` defaults to the scenarios' ``rho``; infeasible points
    carry pair ``None`` and participate in crossovers (feasibility
    transitions are reported).
    """
    if values is None:
        values = np.array([r.scenario.rho for r in results], dtype=float)
    values = np.asarray(values, dtype=float)
    pairs = [r.speed_pair for r in results]
    if values.shape[0] != len(pairs):
        raise InvalidParameterError(
            f"values axis has {values.shape[0]} entries for "
            f"{len(pairs)} results"
        )
    events: list[CrossoverEvent] = []
    for i in range(1, len(pairs)):
        if pairs[i] != pairs[i - 1]:
            events.append(
                CrossoverEvent(
                    index_before=i - 1,
                    index_after=i,
                    value_before=float(values[i - 1]),
                    value_after=float(values[i]),
                    pair_before=pairs[i - 1],
                    pair_after=pairs[i],
                )
            )
    return CrossoverResult(
        name=results.name,
        axis=axis,
        events=tuple(events),
        pairs=tuple(pairs),
        values=values,
        provenance=_provenance(results),
    )


# ----------------------------------------------------------------------
# Variational trace diff
# ----------------------------------------------------------------------
#: Relative tolerance for "the optimum sits on a feasibility crossing":
#: the constrained solver's candidate rule returns the crossing value
#: itself when an endpoint wins, so the match is essentially exact and
#: the tolerance only absorbs export round-trips.
_REGIME_RTOL = 1e-9


@dataclass(frozen=True)
class FieldDelta:
    """One changed quantity between two results (or their scenarios).

    ``delta``/``percent`` are ``None`` for non-numeric fields and
    whenever either side is undefined (infeasible results carry NaN
    optima, which export as ``None``).
    """

    field: str
    before: float | str | None
    after: float | str | None
    delta: float | None = None
    percent: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "field": self.field,
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "percent": self.percent,
        }


def _numeric_delta(field: str, va: float, vb: float) -> FieldDelta:
    defined = math.isfinite(va) and math.isfinite(vb)
    delta = vb - va if defined else None
    percent = (
        (vb / va - 1.0) * 100.0 if defined and va != 0.0 else None
    )
    return FieldDelta(
        field=field,
        before=_nan_none(va),
        after=_nan_none(vb),
        delta=delta,
        percent=percent,
    )


@dataclass(frozen=True)
class DiffResult:
    """Why two (typically neighbouring) solved optima differ.

    The variational view of a sweep: each point's solve is a small
    perturbation of its neighbour's, so the *differences* — which
    scenario axis moved, whether the optimum stayed interior or jumped
    onto a feasibility crossing, how the feasible pattern-size interval
    shifted, whether the winning speed pair flipped — explain the
    sweep's shape far more directly than the two absolute solutions.
    This is the introspection twin of the incremental solve tier, which
    exploits exactly this similarity for warm starts.

    ``regime_before``/``regime_after`` classify where each optimum sits:
    ``interior`` (the unconstrained energy minimum), ``at-w-lo`` /
    ``at-w-hi`` (the time-overhead bound is binding — the optimum is a
    feasibility crossing), ``infeasible`` (no solution), or
    ``unbounded`` (no interval information on the result).
    """

    name: str
    index_a: int
    index_b: int
    scenario_changes: tuple[FieldDelta, ...]
    invariants_equal: bool
    regime_before: str
    regime_after: str
    changes: tuple[FieldDelta, ...]
    pair_before: tuple[float, float] | None
    pair_after: tuple[float, float] | None
    provenance: AnalysisProvenance

    def __len__(self) -> int:
        return len(self.changes)

    @property
    def feasibility_flip(self) -> bool:
        """True when exactly one side is infeasible."""
        return (self.regime_before == "infeasible") != (
            self.regime_after == "infeasible"
        )

    @property
    def regime_change(self) -> bool:
        """True when the optimum's binding regime differs."""
        return self.regime_before != self.regime_after

    @property
    def pair_flip(self) -> bool:
        """True when the winning speed pair changed."""
        return self.pair_before != self.pair_after

    def change(self, field: str) -> FieldDelta | None:
        """The delta for ``field`` (``None`` when it did not change)."""
        for d in self.changes:
            if d.field == field:
                return d
        return None

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable explanation of the difference."""
        bits: list[str] = []
        if not self.scenario_changes:
            drive = "identical scenarios"
        else:
            drive = ", ".join(
                f"{d.field} {d.before!r} -> {d.after!r}"
                if d.delta is None
                else f"{d.field} {d.before:g} -> {d.after:g}"
                for d in self.scenario_changes
            )
        bits.append(f"diff[{self.index_a} -> {self.index_b}]: {drive}")
        if not self.invariants_equal:
            bits.append("non-axis scenario fields differ (not sweep neighbours)")
        if self.feasibility_flip:
            bits.append(
                f"feasibility flipped: {self.regime_before} -> "
                f"{self.regime_after}"
            )
        elif self.regime_change:
            bits.append(
                f"optimum moved {self.regime_before} -> {self.regime_after}"
            )
        else:
            bits.append(f"optimum stayed {self.regime_before}")
        if self.pair_flip:
            bits.append(
                f"winning pair {self.pair_before} -> {self.pair_after}"
            )
        for d in self.changes:
            if d.percent is not None:
                bits.append(f"{d.field} {d.percent:+.3g}%")
        return "; ".join(bits)

    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """One JSON-serialisable dict per changed quantity."""
        return [d.to_dict() for d in self.scenario_changes] + [
            d.to_dict() for d in self.changes
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write one CSV row per changed quantity."""
        return _write_rows(
            path, ("field", "before", "after", "delta", "percent"), self.to_dicts()
        )

    def to_json(self, path: str | Path | None = None) -> str | Path:
        """JSON export (returns the text, or writes to ``path``)."""
        return _json_dump(
            {
                "name": self.name,
                "index_a": self.index_a,
                "index_b": self.index_b,
                "scenario_changes": [d.to_dict() for d in self.scenario_changes],
                "invariants_equal": self.invariants_equal,
                "regime_before": self.regime_before,
                "regime_after": self.regime_after,
                "feasibility_flip": self.feasibility_flip,
                "pair_before": list(self.pair_before) if self.pair_before else None,
                "pair_after": list(self.pair_after) if self.pair_after else None,
                "changes": [d.to_dict() for d in self.changes],
                "provenance": self.provenance.to_dict(),
            },
            path,
        )


def _regime(result: "Result") -> str:
    """Where this result's optimum sits (see :class:`DiffResult`)."""
    if not result.feasible:
        return "infeasible"
    interval = getattr(result.best, "interval", None)
    if interval is None:
        return "unbounded"
    lo, hi = float(interval[0]), float(interval[1])
    w = result.work
    if math.isclose(w, lo, rel_tol=_REGIME_RTOL):
        return "at-w-lo"
    if math.isclose(w, hi, rel_tol=_REGIME_RTOL):
        return "at-w-hi"
    return "interior"


def build_diff(results: "ResultSet", a: int, b: int) -> DiffResult:
    """Explain why results ``a`` and ``b`` of a set differ.

    Indices follow the result order (negative indices allowed).  The
    scenario-side deltas name the numeric sweep axes that moved (total
    error rate, fail-stop fraction, rho — the same features the sweep
    planner chains by); the solution-side deltas cover the optimum
    (pattern size, energy/time overheads) and the feasible interval's
    crossings, with the binding-regime classification saying whether a
    feasibility crossing started or stopped pinning the optimum.
    """
    n = len(results)
    ra: "Result" = results[a]
    rb: "Result" = results[b]
    ia, ib = a % n if n else a, b % n if n else b

    from ..api.sweep_planner import _AXES, scenario_features

    inv_a, ax_a = scenario_features(ra.scenario)
    inv_b, ax_b = scenario_features(rb.scenario)
    scenario_changes = tuple(
        _numeric_delta(_AXES[j], ax_a[j], ax_b[j])
        for j in range(len(_AXES))
        if ax_a[j] != ax_b[j]
    )

    fields: list[tuple[str, float, float]] = [
        ("work", ra.work, rb.work),
        ("energy_overhead", ra.energy_overhead, rb.energy_overhead),
        ("time_overhead", ra.time_overhead, rb.time_overhead),
    ]
    int_a = getattr(ra.best, "interval", None)
    int_b = getattr(rb.best, "interval", None)
    if int_a is not None or int_b is not None:
        ia_lo, ia_hi = (
            (float(int_a[0]), float(int_a[1]))
            if int_a is not None
            else (math.nan, math.nan)
        )
        ib_lo, ib_hi = (
            (float(int_b[0]), float(int_b[1]))
            if int_b is not None
            else (math.nan, math.nan)
        )
        fields.append(("w_lo", ia_lo, ib_lo))
        fields.append(("w_hi", ia_hi, ib_hi))
    changes = tuple(
        _numeric_delta(name, va, vb)
        for name, va, vb in fields
        if not (va == vb or (math.isnan(va) and math.isnan(vb)))
    )
    return DiffResult(
        name=results.name,
        index_a=ia,
        index_b=ib,
        scenario_changes=scenario_changes,
        invariants_equal=inv_a == inv_b,
        regime_before=_regime(ra),
        regime_after=_regime(rb),
        changes=changes,
        pair_before=ra.speed_pair,
        pair_after=rb.speed_pair,
        provenance=_provenance(results),
    )
