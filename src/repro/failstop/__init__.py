"""Section 5 extensions: fail-stop + silent errors, Theorem 2.

* :mod:`~repro.failstop.exact` — exact expectations with both sources
  (closed form derived from recursion (8); documents the Eq. (7) erratum);
* :mod:`~repro.failstop.firstorder` — Proposition 6 overheads;
* :mod:`~repro.failstop.validity` — first-order validity windows;
* :mod:`~repro.failstop.secondorder` — Proposition 7 and Theorem 2;
* :mod:`~repro.failstop.solver` — numeric BiCrit for arbitrary splits.
"""

from .exact import (
    energy_overhead,
    expected_energy,
    expected_time,
    expected_time_paper_eq7,
    time_overhead,
)
from .firstorder import (
    energy_coefficients,
    energy_overhead_fo,
    time_coefficients,
    time_overhead_fo,
)
from .secondorder import (
    linear_coefficient_vanishes,
    second_order_coefficients,
    second_order_time_overhead,
    theorem2_overhead,
    theorem2_work,
)
from .solver import (
    CombinedSolution,
    solve_bicrit_combined,
    solve_pair_combined,
    time_optimal_work,
)
from .theorem1 import (
    CombinedFirstOrderSolution,
    min_performance_bound_combined,
    optimal_work_combined_fo,
    solve_bicrit_combined_fo,
)
from .validity import ValidityReport, check_first_order, first_order_window

__all__ = [
    "expected_time",
    "expected_energy",
    "time_overhead",
    "energy_overhead",
    "expected_time_paper_eq7",
    "time_coefficients",
    "energy_coefficients",
    "time_overhead_fo",
    "energy_overhead_fo",
    "ValidityReport",
    "first_order_window",
    "check_first_order",
    "second_order_coefficients",
    "second_order_time_overhead",
    "linear_coefficient_vanishes",
    "theorem2_work",
    "theorem2_overhead",
    "CombinedSolution",
    "solve_pair_combined",
    "solve_bicrit_combined",
    "time_optimal_work",
    "CombinedFirstOrderSolution",
    "min_performance_bound_combined",
    "optimal_work_combined_fo",
    "solve_bicrit_combined_fo",
]
