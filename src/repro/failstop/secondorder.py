"""Second-order expansion and Theorem 2 (fail-stop errors only, Section 5.3).

With only fail-stop errors (``s = 0``) and no verification, Proposition 7
expands the time overhead to second order:

.. math::

    \\frac{T}{W} = \\frac{1}{\\sigma_1} + \\frac{C}{W}
      + \\Big(\\frac{1}{\\sigma_1\\sigma_2} -
              \\frac{1}{2\\sigma_1^2}\\Big)\\lambda W
      + \\frac{\\lambda R}{\\sigma_1}
      + \\Big(\\frac{1}{6\\sigma_1^3} - \\frac{1}{2\\sigma_1^2\\sigma_2}
              + \\frac{1}{2\\sigma_1\\sigma_2^2}\\Big)\\lambda^2 W^2
      + O(\\lambda^3 W^2).

At ``sigma2 = 2 sigma1`` the **linear term vanishes** and the quadratic
coefficient becomes ``1/(24 sigma1^3)``, giving

.. math::

    \\frac{T}{W} \\approx \\frac{1}{\\sigma} + \\frac{C}{W}
        + \\frac{\\lambda^2 W^2}{24\\sigma^3} + \\frac{\\lambda R}{\\sigma},

minimised at **Theorem 2's striking result**

.. math::  W_{opt} = \\sqrt[3]{\\frac{12 C}{\\lambda^2}}\\,\\sigma
           = \\Theta(\\lambda^{-2/3}),

the first known resilience setting where the optimal checkpointing
period is *not* of the order of the square root of the MTBF.
"""

from __future__ import annotations

import math

import numpy as np

from ..quantities import (
    ScalarOrArray,
    as_float_array,
    is_scalar,
    require_nonnegative,
    require_positive,
    require_speed,
)
from ..exceptions import InvalidParameterError

__all__ = [
    "second_order_time_overhead",
    "second_order_coefficients",
    "theorem2_work",
    "theorem2_overhead",
    "linear_coefficient_vanishes",
]


def second_order_coefficients(
    error_rate: float,
    checkpoint_time: float,
    recovery_time: float,
    sigma1: float,
    sigma2: float | None = None,
) -> tuple[float, float, float, float]:
    """Proposition 7 coefficients ``(x, z, y1, y2)`` of
    ``T/W = x + z/W + y1*W + y2*W**2``.

    ``x`` collects the W-free terms (``1/sigma1 + lam R / sigma1``),
    ``z = C``, ``y1`` the ``lambda W`` coefficient and ``y2`` the
    ``lambda^2 W^2`` coefficient.  Fail-stop-only and verification-free
    (the classical re-execution setting of Theorem 2).
    """
    lam = require_positive(error_rate, "error_rate")
    c = require_nonnegative(checkpoint_time, "checkpoint_time")
    r = require_nonnegative(recovery_time, "recovery_time")
    s1 = require_speed(sigma1, "sigma1")
    s2 = s1 if sigma2 is None else require_speed(sigma2, "sigma2")
    x = 1.0 / s1 + lam * r / s1
    z = c
    y1 = lam * (1.0 / (s1 * s2) - 1.0 / (2.0 * s1 * s1))
    y2 = lam * lam * (
        1.0 / (6.0 * s1**3) - 1.0 / (2.0 * s1 * s1 * s2) + 1.0 / (2.0 * s1 * s2 * s2)
    )
    return (x, z, y1, y2)


def second_order_time_overhead(
    error_rate: float,
    checkpoint_time: float,
    recovery_time: float,
    work: ScalarOrArray,
    sigma1: float,
    sigma2: float | None = None,
) -> ScalarOrArray:
    """Evaluate the Proposition 7 expansion at ``work`` (broadcasts)."""
    x, z, y1, y2 = second_order_coefficients(
        error_rate, checkpoint_time, recovery_time, sigma1, sigma2
    )
    w = as_float_array(work)
    if np.any(w <= 0):
        raise InvalidParameterError("work must be > 0")
    v = x + z / w + y1 * w + y2 * w * w
    return float(v) if is_scalar(work) else v


def linear_coefficient_vanishes(sigma1: float, sigma2: float) -> bool:
    """True iff ``sigma2 = 2 sigma1`` (the Theorem-2 re-execution regime).

    That is exactly when ``1/(s1 s2) = 1/(2 s1^2)`` and the Young/Daly
    ``lambda W`` term of the expansion cancels.
    """
    require_speed(sigma1, "sigma1")
    require_speed(sigma2, "sigma2")
    return math.isclose(sigma2, 2.0 * sigma1, rel_tol=1e-12)


def theorem2_work(error_rate: float, checkpoint_time: float, sigma: float) -> float:
    """Theorem 2: ``Wopt = (12 C / lambda^2)**(1/3) * sigma``.

    The time-overhead-optimal pattern size when fail-stop errors strike
    at rate ``lambda`` and re-execution runs at ``2 sigma`` — note the
    ``Theta(lambda^{-2/3})`` scaling, versus Young/Daly's
    ``Theta(lambda^{-1/2})``.
    """
    lam = require_positive(error_rate, "error_rate")
    c = require_positive(checkpoint_time, "checkpoint_time")
    s = require_speed(sigma, "sigma")
    return (12.0 * c / (lam * lam)) ** (1.0 / 3.0) * s


def theorem2_overhead(
    error_rate: float,
    checkpoint_time: float,
    recovery_time: float,
    sigma: float,
) -> float:
    """The minimal second-order time overhead at the Theorem-2 optimum.

    ``T/W = 1/sigma + lam R/sigma + C/Wopt + lam^2 Wopt^2/(24 sigma^3)``
    evaluated at ``Wopt = (12 C/lam^2)^{1/3} sigma``; by the first-order
    condition the two W-dependent terms are in ratio 2:1, giving
    ``1/sigma + lam R/sigma + (3/2) C / Wopt``.
    """
    w = theorem2_work(error_rate, checkpoint_time, sigma)
    return second_order_time_overhead(
        error_rate, checkpoint_time, recovery_time, w, sigma, 2.0 * sigma
    )
