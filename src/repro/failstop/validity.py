"""Validity windows of the first-order approximation (Section 5.2).

With both error sources the linear coefficient of the first-order
expansions can turn negative:

* **time** (Eq. 9): ``y_T > 0`` iff ``sigma2/sigma1 < 2 (1 + s/f)``;
* **energy** (Eq. 10): ``y_E > 0`` iff
  ``sigma2/sigma1 < 2 (1 + s/f) (kappa sigma2^3 + Pidle) /
  (kappa sigma1^3 + Pidle)``; with ``Pidle = 0`` this simplifies to
  ``sigma2/sigma1 > (2 (1 + s/f))**-1/2``.

The paper's combined statement (for ``Pidle = 0``): the first-order
approach yields a solution iff

.. math::

    \\Big(2\\big(1+\\tfrac{s}{f}\\big)\\Big)^{-1/2}
    \\;<\\; \\frac{\\sigma_2}{\\sigma_1} \\;<\\;
    2\\big(1+\\tfrac{s}{f}\\big).

This module evaluates both the simplified window and the exact
coefficient signs (valid for any ``Pidle``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors.combined import CombinedErrors
from ..platforms.configuration import Configuration
from .firstorder import energy_coefficients, time_coefficients

__all__ = ["ValidityReport", "first_order_window", "check_first_order"]


@dataclass(frozen=True)
class ValidityReport:
    """Outcome of the first-order validity check for one speed pair."""

    sigma1: float
    sigma2: float
    ratio: float
    window: tuple[float, float]
    time_coefficient_positive: bool
    energy_coefficient_positive: bool

    @property
    def valid(self) -> bool:
        """True when both expansions admit an interior minimiser."""
        return self.time_coefficient_positive and self.energy_coefficient_positive

    @property
    def in_simplified_window(self) -> bool:
        """True when the ratio lies in the paper's ``Pidle = 0`` window."""
        lo, hi = self.window
        return lo < self.ratio < hi


def first_order_window(errors: CombinedErrors) -> tuple[float, float]:
    """The ``Pidle = 0`` validity window for ``sigma2/sigma1``.

    ``(0, inf)`` when there are no fail-stop errors — the silent-only
    expansion is valid for every speed pair.  Exponential only: the
    window comes out of the first-order (memoryless) expansion, so a
    renewal model raises
    :class:`~repro.exceptions.UnsupportedErrorModelError`.
    """
    from ..errors.models import require_memoryless

    errors = require_memoryless(errors, "repro.failstop.validity.first_order_window")
    return errors.speed_ratio_validity_window()


def check_first_order(
    cfg: Configuration,
    errors: CombinedErrors,
    sigma1: float,
    sigma2: float | None = None,
) -> ValidityReport:
    """Exact validity check (any ``Pidle``) for one speed pair.

    Evaluates the sign of the linear coefficients of Eqs. (9)/(10)
    directly rather than the simplified window, so the report is correct
    even when ``Pidle`` is large (where the simplified lower bound can be
    off — see the Section 5.2 discussion).
    """
    if sigma2 is None:
        sigma2 = sigma1
    return ValidityReport(
        sigma1=sigma1,
        sigma2=sigma2,
        ratio=sigma2 / sigma1,
        window=first_order_window(errors),
        time_coefficient_positive=time_coefficients(cfg, errors, sigma1, sigma2).y > 0,
        energy_coefficient_positive=energy_coefficients(cfg, errors, sigma1, sigma2).y > 0,
    )
