"""Numeric BiCrit with both error sources (the paper's open problem).

Section 5 of the paper stops at: "we are no longer able to provide a
general closed-form solution" once fail-stop errors enter and
``sigma2/sigma1`` leaves the first-order validity window.  This module
closes the loop *numerically*: the exact expectations of
:mod:`repro.failstop.exact` are perfectly well-defined for every speed
pair, so we apply the same minimise/bracket/minimise scheme as
:mod:`repro.core.numeric` to them.

The result is a drop-in analogue of :func:`repro.core.solver.solve_bicrit`
for an arbitrary fail-stop/silent split — including the regimes the
first-order analysis cannot reach (e.g. ``sigma2 > 2 sigma1 (1 + s/f)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq, minimize_scalar

from ..errors.combined import CombinedErrors
from ..errors.models import require_memoryless
from ..exceptions import ConvergenceError
from ..platforms.configuration import Configuration
from ..quantities import require_positive
from ..core.numeric import minimize_unimodal
from . import exact

__all__ = ["CombinedSolution", "solve_pair_combined", "solve_bicrit_combined", "time_optimal_work"]

_W_LO = 1e-3


@dataclass(frozen=True)
class CombinedSolution:
    """Numeric BiCrit solution with both error sources."""

    sigma1: float
    sigma2: float
    work: float
    energy_overhead: float
    time_overhead: float
    interval: tuple[float, float]
    failstop_fraction: float


def _feasible_interval(
    cfg: Configuration,
    errors: CombinedErrors,
    sigma1: float,
    sigma2: float,
    rho: float,
) -> tuple[float, float] | None:
    def t_over(w: float) -> float:
        with np.errstate(over="ignore"):
            return float(exact.time_overhead(cfg, errors, w, sigma1, sigma2))

    w_star, t_min = minimize_unimodal(t_over)
    if t_min > rho:
        return None

    def shifted(w: float) -> float:
        v = t_over(w) - rho
        return v if math.isfinite(v) else 1e300

    lo = _W_LO
    w1 = lo if shifted(lo) <= 0 else float(brentq(shifted, lo, w_star, xtol=1e-9, rtol=1e-12))
    hi = w_star
    while shifted(hi) <= 0:
        hi *= 2.0
        if hi > 1e15:  # pragma: no cover
            raise ConvergenceError("failed to bracket the right feasibility crossing")
    w2 = float(brentq(shifted, w_star, hi, xtol=1e-9, rtol=1e-12))
    return (w1, w2)


def time_optimal_work(
    cfg: Configuration,
    errors: CombinedErrors,
    sigma1: float,
    sigma2: float | None = None,
) -> float:
    """The *time*-overhead-minimising pattern size on the exact model.

    The classical mono-criterion problem (minimise expected makespan).
    This is the quantity Theorem 2 characterises as
    ``(12C/lambda^2)^{1/3} sigma`` when ``f = 1, V = 0, sigma2 = 2 sigma1``;
    the Theorem-2 bench compares this exact optimum against the formula.
    """
    errors = require_memoryless(errors, "repro.failstop.solver.time_optimal_work")
    if sigma2 is None:
        sigma2 = sigma1

    def t_over(w: float) -> float:
        with np.errstate(over="ignore"):
            return float(exact.time_overhead(cfg, errors, w, sigma1, sigma2))

    w_star, _ = minimize_unimodal(t_over)
    return w_star


def solve_pair_combined(
    cfg: Configuration,
    errors: CombinedErrors,
    sigma1: float,
    sigma2: float,
    rho: float,
) -> CombinedSolution | None:
    """Exact constrained optimum for one speed pair (``None`` = infeasible).

    Memoryless only (the exact closed forms it optimises are
    exponential); renewal models raise
    :class:`~repro.exceptions.UnsupportedErrorModelError` — route them
    through :func:`repro.schedules.solver.solve_schedule` with a
    ``TwoSpeed`` schedule instead (the ``schedule``/``schedule-grid``
    backends do this automatically).
    """
    errors = require_memoryless(errors, "repro.failstop.solver.solve_pair_combined")
    require_positive(rho, "rho")
    interval = _feasible_interval(cfg, errors, sigma1, sigma2, rho)
    if interval is None:
        return None
    w1, w2 = interval

    def e_over(w: float) -> float:
        with np.errstate(over="ignore"):
            return float(exact.energy_overhead(cfg, errors, w, sigma1, sigma2))

    res = minimize_scalar(
        e_over, bounds=(w1, w2), method="bounded", options={"xatol": 1e-9 * max(w2, 1.0)}
    )
    cands = [(float(res.x), float(res.fun)), (w1, e_over(w1)), (w2, e_over(w2))]
    work, energy = min(cands, key=lambda p: p[1])
    return CombinedSolution(
        sigma1=sigma1,
        sigma2=sigma2,
        work=work,
        energy_overhead=energy,
        time_overhead=float(exact.time_overhead(cfg, errors, work, sigma1, sigma2)),
        interval=(w1, w2),
        failstop_fraction=errors.failstop_fraction,
    )


def solve_bicrit_combined(
    cfg: Configuration,
    errors: CombinedErrors,
    rho: float,
) -> CombinedSolution:
    """Numeric BiCrit over all speed pairs with both error sources.

    .. note:: Legacy wrapper.  Delegates to the ``combined`` backend
       of the :mod:`repro.api` registry via
       ``Scenario(..., mode="combined").solve()``; prefer the
       :class:`repro.Scenario` API in new code.

    Raises
    ------
    InfeasibleBoundError
        When no pair can meet ``rho`` on the exact model.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> from repro.errors import CombinedErrors
    >>> cfg = get_configuration("hera-xscale")
    >>> sol = solve_bicrit_combined(cfg, CombinedErrors(cfg.lam, 0.5), rho=3.0)
    >>> sol.sigma1 in cfg.speeds and sol.sigma2 in cfg.speeds
    True
    """
    from ..api.scenario import Scenario

    # A renewal ErrorModel also exposes failstop_fraction/total_rate, so
    # without this guard it would silently decompose into exponential
    # rates below; collapse memoryless models, reject the rest (RPR002).
    errors = require_memoryless(errors, "repro.failstop.solver.solve_bicrit_combined")
    return Scenario(
        config=cfg,
        rho=rho,
        mode="combined",
        failstop_fraction=errors.failstop_fraction,
        error_rate=errors.total_rate,
    ).solve(backend="combined").raw
