"""Exact expectations with both fail-stop and silent errors (Section 5.1).

Model (paper Section 5.1): fail-stop errors (rate ``lambda_f``) strike
during computation *and* verification — exposure ``(W+V)/sigma`` — and
interrupt immediately; silent errors (rate ``lambda_s``) strike during
computation only — exposure ``W/sigma`` — and are caught by the
verification at the end.  Neither strikes during checkpoint or recovery.

Closed form (derived from the paper's recursion, Eq. 8).  Write for an
attempt at speed ``sigma``: ``tau = (W+V)/sigma``, ``omega = W/sigma``,
survival ``q(sigma) = exp(-(lambda_f tau + lambda_s omega))``, and capped
fail-stop exposure ``M(sigma) = E[min(Tf, tau)]
= (1/lambda_f)(1 - e^{-lambda_f tau})`` (``= tau`` when ``lambda_f = 0``).
Then

.. math::

    T(W,\\sigma_1,\\sigma_2) = C + \\frac{(1-q_1) R}{q_2} + M_1
                              + \\frac{(1-q_1) M_2}{q_2},

and the energy replaces each duration by duration x power:
``E = C P_{io}' + (1-q_1) R P_{io}'/q_2 + M_1 P_1 + (1-q_1) M_2 P_2/q_2``
with ``P_{io}' = Pio + Pidle`` and ``P_i = kappa sigma_i^3 + Pidle``.

.. note:: **Paper erratum.**  Equation (7) of the paper contains an extra
   ``(1-q_1) e^{\\lambda_s W/\\sigma_2} V/\\sigma_2`` term that is
   inconsistent with the paper's own recursion (Eq. 8): solving Eq. (8)
   yields the expression above, which (a) reduces exactly to
   Proposition 2 as ``lambda_f -> 0`` and (b) reproduces the paper's own
   second-order expansion (Proposition 7) — the printed Eq. (7) does
   neither.  :func:`expected_time_paper_eq7` transcribes the printed
   formula so the discrepancy is pinned down by a regression test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors.combined import CombinedErrors
from ..errors.exponential import capped_exposure
from ..errors.models import require_memoryless
from ..platforms.configuration import Configuration
from ..quantities import FloatArray, ScalarOrArray, as_float_array, is_scalar
from ..exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..schedules.base import SpeedSchedule

__all__ = [
    "expected_time",
    "expected_energy",
    "time_overhead",
    "energy_overhead",
    "expected_time_paper_eq7",
    "expected_time_schedule",
    "expected_energy_schedule",
]


def _parts(
    cfg: Configuration,
    errors: CombinedErrors,
    work: ScalarOrArray,
    sigma1: float,
    sigma2: float,
) -> tuple[FloatArray, FloatArray, FloatArray, FloatArray, FloatArray]:
    """Common sub-expressions: (w, 1-q1, 1/q2, M1, M2).

    The funnel of every closed form in this module, so the
    memorylessness audit lives here: the expressions encode exponential
    survival products, and a general renewal model must go through the
    schedule evaluator instead (typed error, never a silently wrong
    number).  A *memoryless* :class:`~repro.errors.models.ErrorModel`
    converts to its byte-identical :class:`CombinedErrors`.
    """
    errors = require_memoryless(errors, "repro.failstop.exact")
    w = as_float_array(work)
    if np.any(w <= 0):
        raise InvalidParameterError("work must be > 0")
    if sigma1 <= 0 or sigma2 <= 0:
        raise InvalidParameterError("speeds must be > 0")
    V = cfg.verification_time
    lf = errors.failstop_rate
    ls = errors.silent_rate
    tau1 = (w + V) / sigma1
    tau2 = (w + V) / sigma2
    omega1 = w / sigma1
    omega2 = w / sigma2
    one_minus_q1 = -np.expm1(-(lf * tau1 + ls * omega1))
    inv_q2 = np.exp(lf * tau2 + ls * omega2)
    # Robust E[min(Tf, tau)]: series fallback once lf*tau goes denormal.
    m1 = capped_exposure(lf, tau1)
    m2 = capped_exposure(lf, tau2)
    return w, one_minus_q1, inv_q2, m1, m2


def expected_time(
    cfg: Configuration,
    errors: CombinedErrors,
    work: ScalarOrArray,
    sigma1: float,
    sigma2: float | None = None,
) -> ScalarOrArray:
    """Exact expected pattern time with both error sources (Prop. 4 intent).

    ``errors`` supplies the fail-stop/silent split; the configuration's
    own ``error_rate`` is ignored here (callers typically build
    ``CombinedErrors(cfg.lam, f)``).  With ``f = 0`` this equals
    :func:`repro.core.exact.expected_time` exactly.
    """
    if sigma2 is None:
        sigma2 = sigma1
    w, p1, inv_q2, m1, m2 = _parts(cfg, errors, work, sigma1, sigma2)
    t = cfg.checkpoint_time + p1 * inv_q2 * cfg.recovery_time + m1 + p1 * inv_q2 * m2
    return float(t) if is_scalar(work) else t


def expected_energy(
    cfg: Configuration,
    errors: CombinedErrors,
    work: ScalarOrArray,
    sigma1: float,
    sigma2: float | None = None,
) -> ScalarOrArray:
    """Exact expected pattern energy (mJ) with both sources (Prop. 5 intent).

    A fail-stop interruption after ``t`` seconds still burned
    ``t * (kappa sigma^3 + Pidle)``, which is why the capped exposure
    ``M`` multiplies the compute power.
    """
    if sigma2 is None:
        sigma2 = sigma1
    w, p1, inv_q2, m1, m2 = _parts(cfg, errors, work, sigma1, sigma2)
    pm = cfg.power
    p_io = pm.io_total_power()
    e = (
        (cfg.checkpoint_time + p1 * inv_q2 * cfg.recovery_time) * p_io
        + m1 * pm.compute_power(sigma1)
        + p1 * inv_q2 * m2 * pm.compute_power(sigma2)
    )
    return float(e) if is_scalar(work) else e


def time_overhead(
    cfg: Configuration,
    errors: CombinedErrors,
    work: ScalarOrArray,
    sigma1: float,
    sigma2: float | None = None,
) -> ScalarOrArray:
    """Exact expected time per work unit with both sources."""
    w = as_float_array(work)
    r = expected_time(cfg, errors, work, sigma1, sigma2) / w
    return float(r) if is_scalar(work) else r


def energy_overhead(
    cfg: Configuration,
    errors: CombinedErrors,
    work: ScalarOrArray,
    sigma1: float,
    sigma2: float | None = None,
) -> ScalarOrArray:
    """Exact expected energy per work unit (mJ) with both sources."""
    w = as_float_array(work)
    r = expected_energy(cfg, errors, work, sigma1, sigma2) / w
    return float(r) if is_scalar(work) else r


def expected_time_paper_eq7(
    cfg: Configuration,
    errors: CombinedErrors,
    work: ScalarOrArray,
    sigma1: float,
    sigma2: float | None = None,
) -> ScalarOrArray:
    """Equation (7) exactly as printed in the paper (erratum witness).

    Differs from :func:`expected_time` by the spurious term
    ``(1-q1) e^{lambda_s W / sigma2} V / sigma2``; kept only so the test
    suite can document the inconsistency with recursion (8).  Requires a
    strictly positive fail-stop rate (the printed formula divides by
    ``lambda_f``).
    """
    if sigma2 is None:
        sigma2 = sigma1
    errors = require_memoryless(errors, "repro.failstop.exact.expected_time_paper_eq7")
    w = as_float_array(work)
    V = cfg.verification_time
    lf = errors.failstop_rate
    ls = errors.silent_rate
    if lf <= 0:
        raise InvalidParameterError("Eq. (7) divides by lambda_f; need failstop_fraction > 0")
    tau1 = (w + V) / sigma1
    tau2 = (w + V) / sigma2
    p1 = -np.expm1(-(lf * tau1 + ls * w / sigma1))
    t = (
        cfg.checkpoint_time
        + p1 * np.exp(lf * tau2 + ls * w / sigma2) * cfg.recovery_time
        + p1 * np.exp(ls * w / sigma2) * V / sigma2
        + (-np.expm1(-lf * tau1)) / lf
        + p1 * np.exp(ls * w / sigma2) * np.expm1(lf * tau2) / lf
    )
    return float(t) if is_scalar(work) else t


# ----------------------------------------------------------------------
# Schedule-aware numeric path (per-attempt speeds)
# ----------------------------------------------------------------------
def expected_time_schedule(
    cfg: Configuration,
    errors: CombinedErrors,
    schedule: "SpeedSchedule",
    work: ScalarOrArray,
) -> ScalarOrArray:
    """Exact expected time under a per-attempt schedule with both sources.

    The closed form above is the ``TwoSpeed`` instance of the general
    attempt recursion; arbitrary schedules are evaluated through
    :mod:`repro.schedules.evaluator` with the same per-attempt
    primitives (:meth:`CombinedErrors.attempt_failure_probability` /
    :meth:`CombinedErrors.attempt_exposure`).
    """
    from ..schedules.evaluator import expected_time_schedule as _impl

    return _impl(cfg, schedule, work, errors=errors)


def expected_energy_schedule(
    cfg: Configuration,
    errors: CombinedErrors,
    schedule: "SpeedSchedule",
    work: ScalarOrArray,
) -> ScalarOrArray:
    """Exact expected energy (mJ) under a per-attempt schedule with both sources."""
    from ..schedules.evaluator import expected_energy_schedule as _impl

    return _impl(cfg, schedule, work, errors=errors)
