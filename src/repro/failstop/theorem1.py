"""Theorem-1-style closed forms for the combined-error model (Section 5).

Inside the first-order validity window (both Prop-6 linear coefficients
positive — see :mod:`repro.failstop.validity`), the combined-error
overheads have the same ``x + yW + z/W`` shape as the silent-only case,
so the whole Theorem-1 machinery transfers verbatim:

* minimum feasible bound ``rho_min = x_T + 2 sqrt(y_T z_T)``;
* feasible interval from ``y_T W^2 + (x_T - rho) W + z_T <= 0``;
* unconstrained energy optimum ``W_e = sqrt(z_E / y_E)``;
* ``Wopt = min(max(W1, W_e), W2)``.

Outside the window the expansion has no interior optimum (the paper's
Section-5.2 impossibility); requesting the closed form there raises
:class:`~repro.exceptions.ApproximationDomainError`, and callers fall
back to the exact numeric solver (:mod:`repro.failstop.solver`).  The
tests verify the two agree closely inside the window at catalog rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors.combined import CombinedErrors
from ..exceptions import ApproximationDomainError, InfeasibleBoundError
from ..platforms.configuration import Configuration
from ..quantities import require_positive
from .firstorder import energy_coefficients, time_coefficients
from .validity import check_first_order

__all__ = [
    "CombinedFirstOrderSolution",
    "min_performance_bound_combined",
    "optimal_work_combined_fo",
    "solve_bicrit_combined_fo",
]


@dataclass(frozen=True)
class CombinedFirstOrderSolution:
    """Closed-form combined-error solution for one speed pair."""

    sigma1: float
    sigma2: float
    work: float
    energy_overhead: float
    time_overhead: float
    rho_min: float
    failstop_fraction: float


def _require_valid(cfg: Configuration, errors: CombinedErrors, s1: float, s2: float) -> None:
    report = check_first_order(cfg, errors, s1, s2)
    if not report.valid:
        lo, hi = report.window
        raise ApproximationDomainError(
            f"first-order approximation invalid for sigma2/sigma1 = "
            f"{report.ratio:.4f} at f = {errors.failstop_fraction} "
            f"(time coefficient positive: {report.time_coefficient_positive}, "
            f"energy coefficient positive: {report.energy_coefficient_positive}; "
            f"Pidle=0 window ({lo:.4f}, {hi:.4f})); "
            "use repro.failstop.solver for the exact numeric solution"
        )


def min_performance_bound_combined(
    cfg: Configuration,
    errors: CombinedErrors,
    sigma1: float,
    sigma2: float | None = None,
) -> float:
    """Eq.-(6) analogue with both error sources: ``x_T + 2 sqrt(y_T z_T)``.

    Raises
    ------
    ApproximationDomainError
        Outside the first-order validity window.
    """
    if sigma2 is None:
        sigma2 = sigma1
    _require_valid(cfg, errors, sigma1, sigma2)
    return time_coefficients(cfg, errors, sigma1, sigma2).minimum_value()


def optimal_work_combined_fo(
    cfg: Configuration,
    errors: CombinedErrors,
    sigma1: float,
    sigma2: float | None,
    rho: float,
) -> float | None:
    """Theorem-1 clamp on the Prop-6 expansions (``None`` = infeasible).

    Raises
    ------
    ApproximationDomainError
        Outside the first-order validity window.
    """
    if sigma2 is None:
        sigma2 = sigma1
    require_positive(rho, "rho")
    _require_valid(cfg, errors, sigma1, sigma2)
    tc = time_coefficients(cfg, errors, sigma1, sigma2)
    ec = energy_coefficients(cfg, errors, sigma1, sigma2)

    a, b, c = tc.y, tc.x - rho, tc.z
    disc = b * b - 4.0 * a * c
    if b > 0.0 or disc < 0.0:
        return None
    sq = math.sqrt(max(disc, 0.0))
    w2 = (-b + sq) / (2.0 * a)
    w1 = c / (a * w2) if w2 > 0 else w2
    we = ec.unconstrained_minimiser()
    return min(max(w1, we), w2)


def solve_bicrit_combined_fo(
    cfg: Configuration,
    errors: CombinedErrors,
    rho: float,
) -> CombinedFirstOrderSolution:
    """Closed-form combined-error BiCrit over the *valid* speed pairs.

    Pairs outside the first-order window are skipped (the paper cannot
    treat them either); if every pair is outside,
    :class:`~repro.exceptions.ApproximationDomainError` is raised, and
    if valid pairs exist but none meets the bound,
    :class:`~repro.exceptions.InfeasibleBoundError`.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> from repro.errors import CombinedErrors
    >>> cfg = get_configuration("hera-xscale")
    >>> sol = solve_bicrit_combined_fo(cfg, CombinedErrors(cfg.lam, 0.5), 3.0)
    >>> sol.sigma1 in cfg.speeds
    True
    """
    require_positive(rho, "rho")
    best: CombinedFirstOrderSolution | None = None
    any_valid = False
    for s1 in cfg.speeds:
        for s2 in cfg.speeds:
            try:
                work = optimal_work_combined_fo(cfg, errors, s1, s2, rho)
            except ApproximationDomainError:
                continue
            any_valid = True
            if work is None:
                continue
            tc = time_coefficients(cfg, errors, s1, s2)
            ec = energy_coefficients(cfg, errors, s1, s2)
            sol = CombinedFirstOrderSolution(
                sigma1=s1,
                sigma2=s2,
                work=work,
                energy_overhead=ec.evaluate(work),
                time_overhead=tc.evaluate(work),
                rho_min=tc.minimum_value(),
                failstop_fraction=errors.failstop_fraction,
            )
            if best is None or sol.energy_overhead < best.energy_overhead:
                best = sol
    if not any_valid:
        raise ApproximationDomainError(
            "no speed pair lies inside the first-order validity window; "
            "use repro.failstop.solver.solve_bicrit_combined"
        )
    if best is None:
        raise InfeasibleBoundError(rho)
    return best
