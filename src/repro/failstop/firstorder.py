"""First-order overheads with both error sources — Proposition 6.

With total rate ``lambda`` split into a fail-stop fraction ``f`` and a
silent fraction ``s = 1 - f`` (Section 5.2), the paper derives

Time (Eq. 9)::

    T/W = (C + V/s1)/W
        + [ (f+s)/(s1 s2) - f/(2 s1^2) ] lam W
        + [ (f+s) lam (R + V/s2) + 1 - f lam V/s1 ] / s1
        + O(lam^2 W)

Energy (Eq. 10)::

    E/W = [ C (Pio+Pidle) + V (kappa s1^3 + Pidle)/s1 ] / W
        + [ (f+s)(kappa s2^3+Pidle)/(s1 s2) - f (kappa s1^3+Pidle)/(2 s1^2) ] lam W
        + (f+s) lam [ R (Pio+Pidle) + V (kappa s2^3+Pidle)/s2 ] / s1
        + (1 - f lam V/s1)(kappa s1^3 + Pidle)/s1

The crucial novelty versus the silent-only case: the linear-in-W
coefficient ``y`` can now be *negative* (when ``sigma2/sigma1`` exceeds
``2(1 + s/f)`` for the time overhead), in which case the expansion has
no interior minimiser and the first-order approach breaks down — that is
the limit analysed in Section 5.2 and the reason Theorem 2 needs the
second-order expansion.  :meth:`OverheadCoefficients.unconstrained_minimiser`
raises on ``y <= 0``; :mod:`repro.failstop.validity` exposes the windows.

These transcribe the paper verbatim.  Note the paper's own constant
terms drop some ``O(lambda V)`` contributions relative to the exact
expansion (see the erratum note in :mod:`repro.failstop.exact`); the
difference is ``O(lambda V) ~ 1e-4`` for every catalog platform and is
covered by the approximation-error tests.
"""

from __future__ import annotations

from ..errors.combined import CombinedErrors
from ..errors.models import require_memoryless
from ..core.firstorder import OverheadCoefficients
from ..platforms.configuration import Configuration
from ..exceptions import InvalidParameterError
from ..quantities import ScalarOrArray

__all__ = [
    "time_coefficients",
    "energy_coefficients",
    "time_overhead_fo",
    "energy_overhead_fo",
]


def time_coefficients(
    cfg: Configuration,
    errors: CombinedErrors,
    sigma1: float,
    sigma2: float | None = None,
) -> OverheadCoefficients:
    """Eq. (9) coefficients ``(x, y, z)`` of the time overhead.

    The first-order expansion rests on exponential arrivals; renewal
    models raise :class:`~repro.exceptions.UnsupportedErrorModelError`
    (this guard also covers every Theorem-1/validity-window consumer in
    :mod:`repro.failstop`, which all funnel through the coefficients).
    """
    errors = require_memoryless(errors, "repro.failstop.firstorder")
    if sigma2 is None:
        sigma2 = sigma1
    if sigma1 <= 0 or sigma2 <= 0:
        raise InvalidParameterError("speeds must be > 0")
    lam = errors.total_rate
    f = errors.failstop_fraction
    s = errors.silent_fraction
    V = cfg.verification_time
    R = cfg.recovery_time
    x = ((f + s) * lam * (R + V / sigma2) + 1.0 - f * lam * V / sigma1) / sigma1
    y = lam * ((f + s) / (sigma1 * sigma2) - f / (2.0 * sigma1 * sigma1))
    z = cfg.checkpoint_time + V / sigma1
    return OverheadCoefficients(x=x, y=y, z=z)


def energy_coefficients(
    cfg: Configuration,
    errors: CombinedErrors,
    sigma1: float,
    sigma2: float | None = None,
) -> OverheadCoefficients:
    """Eq. (10) coefficients ``(x, y, z)`` of the energy overhead (mJ)."""
    errors = require_memoryless(errors, "repro.failstop.firstorder")
    if sigma2 is None:
        sigma2 = sigma1
    if sigma1 <= 0 or sigma2 <= 0:
        raise InvalidParameterError("speeds must be > 0")
    lam = errors.total_rate
    f = errors.failstop_fraction
    s = errors.silent_fraction
    V = cfg.verification_time
    R = cfg.recovery_time
    pm = cfg.power
    p_io = pm.io_total_power()
    p1 = pm.compute_power(sigma1)
    p2 = pm.compute_power(sigma2)
    x = (f + s) * lam * (R * p_io + V * p2 / sigma2) / sigma1 + (
        1.0 - f * lam * V / sigma1
    ) * p1 / sigma1
    y = lam * (
        (f + s) * p2 / (sigma1 * sigma2) - f * p1 / (2.0 * sigma1 * sigma1)
    )
    z = cfg.checkpoint_time * p_io + V * p1 / sigma1
    return OverheadCoefficients(x=x, y=y, z=z)


def time_overhead_fo(
    cfg: Configuration,
    errors: CombinedErrors,
    work: ScalarOrArray,
    sigma1: float,
    sigma2: float | None = None,
) -> ScalarOrArray:
    """First-order time overhead per Eq. (9) (broadcasts over ``work``)."""
    return time_coefficients(cfg, errors, sigma1, sigma2).evaluate(work)


def energy_overhead_fo(
    cfg: Configuration,
    errors: CombinedErrors,
    work: ScalarOrArray,
    sigma1: float,
    sigma2: float | None = None,
) -> ScalarOrArray:
    """First-order energy overhead per Eq. (10) (broadcasts over ``work``)."""
    return energy_coefficients(cfg, errors, sigma1, sigma2).evaluate(work)
