"""Estimators behind the perf harness: medians, bootstrap CIs, overlap.

Following Touati et al. (*Towards a Statistical Methodology to
Evaluate Program Speedups*), the harness never reports a single run:

* the location estimate of a timing sample is its **median** — robust
  against the long right tail of wall-clock noise (GC pauses,
  scheduler preemption) that drags a mean upward;
* uncertainty is a **percentile bootstrap** confidence interval of the
  median (resample with replacement, take the empirical quantiles of
  the resampled medians) — no normality assumption, valid at the small
  repetition counts a bench can afford;
* a **speedup** is a ratio of two medians, with its own bootstrap CI
  from independently resampling both samples;
* two measurements are only called *different* (regression or win)
  when their confidence intervals do **not** overlap — the comparison
  rule of :mod:`repro.perf.compare`.

All bootstrap draws come from a seeded generator, so a report is a
deterministic function of its timing samples.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exceptions import InvalidParameterError

__all__ = [
    "median",
    "bootstrap_median_ci",
    "bootstrap_speedup_ci",
    "intervals_overlap",
]

#: Default bootstrap resample count — ample for 95% percentile CIs.
DEFAULT_BOOTSTRAP = 2000

#: Default bootstrap seed; any fixed value works, reports only need
#: determinism given the same timing samples.
DEFAULT_SEED = 20160816


def _as_samples(samples: Sequence[float], where: str) -> np.ndarray:
    xs = np.asarray(samples, dtype=np.float64)
    if xs.ndim != 1 or xs.size == 0:
        raise InvalidParameterError(
            f"{where} needs a non-empty 1-D sample, got shape {xs.shape}"
        )
    if not np.all(np.isfinite(xs)):
        raise InvalidParameterError(f"{where} contains non-finite samples")
    return xs


def _check_confidence(confidence: float) -> None:
    if not 0.0 < confidence < 1.0:
        raise InvalidParameterError(
            f"confidence must be in (0, 1), got {confidence}"
        )


def median(samples: Sequence[float]) -> float:
    """The sample median — the harness's location estimate."""
    return float(np.median(_as_samples(samples, "median")))


def _bootstrap_medians(
    xs: np.ndarray, n_boot: int, rng: np.random.Generator
) -> np.ndarray:
    idx = rng.integers(0, xs.size, size=(n_boot, xs.size))
    return np.median(xs[idx], axis=1)


def bootstrap_median_ci(
    samples: Sequence[float],
    *,
    confidence: float = 0.95,
    n_boot: int = DEFAULT_BOOTSTRAP,
    seed: int = DEFAULT_SEED,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for the median of ``samples``.

    Deterministic given ``samples`` and ``seed``.  With a single
    sample the interval degenerates to that point (reported, not
    hidden — one repetition carries no uncertainty estimate).
    """
    xs = _as_samples(samples, "bootstrap_median_ci")
    _check_confidence(confidence)
    rng = np.random.default_rng(seed)
    meds = _bootstrap_medians(xs, n_boot, rng)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(meds, alpha)),
        float(np.quantile(meds, 1.0 - alpha)),
    )


def bootstrap_speedup_ci(
    baseline: Sequence[float],
    candidate: Sequence[float],
    *,
    confidence: float = 0.95,
    n_boot: int = DEFAULT_BOOTSTRAP,
    seed: int = DEFAULT_SEED,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for ``median(baseline)/median(candidate)``.

    The two samples are resampled independently (the repetitions are
    unpaired runs), each resample yielding one speedup; the CI is the
    empirical quantile band of those speedups.  Values > 1 mean the
    candidate is faster than the baseline.
    """
    base = _as_samples(baseline, "bootstrap_speedup_ci(baseline)")
    cand = _as_samples(candidate, "bootstrap_speedup_ci(candidate)")
    if np.any(cand <= 0) or np.any(base <= 0):
        raise InvalidParameterError(
            "bootstrap_speedup_ci needs strictly positive timings"
        )
    _check_confidence(confidence)
    rng = np.random.default_rng(seed)
    ratios = _bootstrap_medians(base, n_boot, rng) / _bootstrap_medians(
        cand, n_boot, rng
    )
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(ratios, alpha)),
        float(np.quantile(ratios, 1.0 - alpha)),
    )


def intervals_overlap(
    a: tuple[float, float], b: tuple[float, float]
) -> bool:
    """Whether two confidence intervals share any point.

    Overlapping intervals mean the measurements are statistically
    indistinguishable at the chosen confidence — the harness only
    claims a regression or a win when this is ``False``.
    """
    (a_lo, a_hi), (b_lo, b_hi) = a, b
    if a_lo > a_hi or b_lo > b_hi:
        raise InvalidParameterError(
            f"malformed interval(s): {a!r}, {b!r} (lo must be <= hi)"
        )
    return a_lo <= b_hi and b_lo <= a_hi
