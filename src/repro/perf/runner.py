""":class:`BenchRunner` — timed repetitions in, ``BENCH_*.json`` out.

The runner is deliberately dumb about *what* it times (that lives in
:mod:`repro.perf.workloads`) and deliberately careful about *how*: a
fixed number of warmup calls that are never recorded (first-call
effects — imports, jit compilation, cold caches — are real but are not
the steady-state cost a speedup claim is about), then ``repetitions``
timed calls per workload, then medians, bootstrap CIs and per-workload
speedups vs the suite's named baseline (:mod:`repro.perf.stats`).

Reports serialise to a stable, diff-friendly JSON document
(``schema: repro-bench/1``).  Deliberately **no timestamps**: a
committed baseline report should only change when the measurements
change.  The recorded environment block (python/numpy versions, jit
availability, platform) is informational — comparisons gate on the
dimensionless speedup columns precisely so that baselines survive a
machine change (see :mod:`repro.perf.compare`).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

from ..exceptions import InvalidParameterError
from ..schedules.jit import jit_available
from .stats import (
    DEFAULT_BOOTSTRAP,
    DEFAULT_SEED,
    bootstrap_median_ci,
    bootstrap_speedup_ci,
    median,
)
from .workloads import Workload

__all__ = ["BenchRunner", "BenchReport", "WorkloadStats", "SCHEMA"]

#: Schema tag written into every report; bump on breaking layout change.
SCHEMA = "repro-bench/1"


@dataclass(frozen=True)
class WorkloadStats:
    """Measured statistics for one workload of a report.

    ``speedup``/``speedup_ci`` are ``None`` for baseline workloads
    (nothing to compare against); ``metrics`` carries whatever
    auxiliary numbers the workload callable returned (scenario counts,
    residuals).
    """

    name: str
    times: tuple[float, ...]
    median: float
    ci: tuple[float, float]
    baseline: str | None = None
    speedup: float | None = None
    speedup_ci: tuple[float, float] | None = None
    metrics: Mapping[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "times_s": list(self.times),
            "median_s": self.median,
            "ci_s": list(self.ci),
        }
        if self.baseline is not None:
            out["baseline"] = self.baseline
            out["speedup"] = self.speedup
            out["speedup_ci"] = (
                None if self.speedup_ci is None else list(self.speedup_ci)
            )
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadStats":
        speedup_ci = data.get("speedup_ci")
        return cls(
            name=str(data["name"]),
            times=tuple(float(t) for t in data["times_s"]),
            median=float(data["median_s"]),
            ci=(float(data["ci_s"][0]), float(data["ci_s"][1])),
            baseline=data.get("baseline"),
            speedup=(
                None if data.get("speedup") is None else float(data["speedup"])
            ),
            speedup_ci=(
                None
                if speedup_ci is None
                else (float(speedup_ci[0]), float(speedup_ci[1]))
            ),
            metrics={
                str(k): float(v) for k, v in data.get("metrics", {}).items()
            },
        )


@dataclass(frozen=True)
class BenchReport:
    """One suite's measurements — the in-memory form of ``BENCH_<name>.json``."""

    name: str
    workloads: tuple[WorkloadStats, ...]
    repetitions: int
    warmup: int
    confidence: float
    environment: Mapping[str, Any] = field(default_factory=dict)

    def workload(self, name: str) -> WorkloadStats:
        """Look up one workload's stats by name."""
        for ws in self.workloads:
            if ws.name == name:
                return ws
        raise InvalidParameterError(
            f"report {self.name!r} has no workload {name!r}; has: "
            f"{', '.join(ws.name for ws in self.workloads)}"
        )

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "name": self.name,
            "repetitions": self.repetitions,
            "warmup": self.warmup,
            "confidence": self.confidence,
            "environment": dict(self.environment),
            "workloads": [ws.to_dict() for ws in self.workloads],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchReport":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise InvalidParameterError(
                f"unsupported bench report schema {schema!r} (expected {SCHEMA!r})"
            )
        return cls(
            name=str(data["name"]),
            workloads=tuple(
                WorkloadStats.from_dict(w) for w in data["workloads"]
            ),
            repetitions=int(data["repetitions"]),
            warmup=int(data["warmup"]),
            confidence=float(data["confidence"]),
            environment=dict(data.get("environment", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str | Path) -> "BenchReport":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def write(self, directory: str | Path) -> Path:
        """Write ``BENCH_<name>.json`` under ``directory``; returns the path."""
        out = Path(directory) / f"BENCH_{self.name}.json"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json(), encoding="utf-8")
        return out


def _environment() -> dict[str, Any]:
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "jit_available": jit_available(),
    }


@dataclass(frozen=True)
class BenchRunner:
    """Runs workload suites with warmup, repetitions and bootstrap CIs.

    ``repetitions`` timed calls per workload (after ``warmup`` untimed
    ones), all statistics at ``confidence`` with ``n_boot`` seeded
    bootstrap resamples — a report is a deterministic function of the
    observed wall times.
    """

    repetitions: int = 5
    warmup: int = 1
    confidence: float = 0.95
    n_boot: int = DEFAULT_BOOTSTRAP
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise InvalidParameterError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        if self.warmup < 0:
            raise InvalidParameterError(
                f"warmup must be >= 0, got {self.warmup}"
            )

    # ------------------------------------------------------------------
    def _time_workload(
        self, workload: Workload
    ) -> tuple[tuple[float, ...], dict[str, float]]:
        metrics: dict[str, float] = {}
        for _ in range(self.warmup):
            workload.fn()
        times: list[float] = []
        for _ in range(self.repetitions):
            start = time.perf_counter()
            result = workload.fn()
            times.append(time.perf_counter() - start)
            if result:
                metrics.update({str(k): float(v) for k, v in result.items()})
        return tuple(times), metrics

    def run(
        self, name: str, workloads: Sequence[Workload]
    ) -> BenchReport:
        """Measure ``workloads`` and assemble a :class:`BenchReport`.

        Baselines must be measured before (appear earlier in the suite
        than) the workloads that reference them.
        """
        if not workloads:
            raise InvalidParameterError("run() needs at least one workload")
        samples: dict[str, tuple[float, ...]] = {}
        stats: list[WorkloadStats] = []
        for wl in workloads:
            times, metrics = self._time_workload(wl)
            samples[wl.name] = times
            speedup: float | None = None
            speedup_ci: tuple[float, float] | None = None
            if wl.baseline is not None:
                base = samples.get(wl.baseline)
                if base is None:
                    raise InvalidParameterError(
                        f"workload {wl.name!r} names baseline "
                        f"{wl.baseline!r}, which has not been measured yet"
                    )
                speedup = median(base) / median(times)
                speedup_ci = bootstrap_speedup_ci(
                    base,
                    times,
                    confidence=self.confidence,
                    n_boot=self.n_boot,
                    seed=self.seed,
                )
            stats.append(
                WorkloadStats(
                    name=wl.name,
                    times=times,
                    median=median(times),
                    ci=bootstrap_median_ci(
                        times,
                        confidence=self.confidence,
                        n_boot=self.n_boot,
                        seed=self.seed,
                    ),
                    baseline=wl.baseline,
                    speedup=speedup,
                    speedup_ci=speedup_ci,
                    metrics=metrics,
                )
            )
        return BenchReport(
            name=name,
            workloads=tuple(stats),
            repetitions=self.repetitions,
            warmup=self.warmup,
            confidence=self.confidence,
            environment=_environment(),
        )
