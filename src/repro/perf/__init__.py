"""Statistically rigorous performance measurement (``BENCH_*.json``).

The repo's speedup claims used to live in ad-hoc single-run CSVs — one
wall-clock sample, no confidence interval, no regression gate.  This
package adopts the reporting discipline of Touati et al., *Towards a
Statistical Methodology to Evaluate Program Speedups*: repeated runs,
**median** wall times, **bootstrap confidence intervals**, and an
explicit **CI-overlap test** before calling anything a win or a
regression.

* :mod:`repro.perf.stats` — the estimators: medians, percentile
  bootstrap CIs for medians and ratios-of-medians, interval overlap;
* :mod:`repro.perf.runner` — :class:`BenchRunner` runs named
  :class:`~repro.perf.workloads.Workload` callables (warmup + N
  repetitions) and emits a :class:`BenchReport`, serialised as
  ``BENCH_<name>.json``;
* :mod:`repro.perf.workloads` — the shared workload suites wrapping
  the ``benchmarks/bench_*.py`` grids (full and ``--quick`` sizes), so
  the bench scripts, the ``repro bench`` CLI and the CI smoke job all
  measure the same code;
* :mod:`repro.perf.compare` — loads two reports and classifies each
  workload as regression / improvement / indistinguishable using CI
  overlap rather than point estimates (the CI gate compares the
  dimensionless *speedup* columns, so a committed baseline from one
  machine remains meaningful on another).
"""

from .compare import BenchComparison, WorkloadComparison, compare_reports
from .runner import BenchReport, BenchRunner, WorkloadStats
from .stats import (
    bootstrap_median_ci,
    bootstrap_speedup_ci,
    intervals_overlap,
    median,
)
from .workloads import Workload, build_suite, suite_names

__all__ = [
    "BenchRunner",
    "BenchReport",
    "WorkloadStats",
    "Workload",
    "build_suite",
    "suite_names",
    "BenchComparison",
    "WorkloadComparison",
    "compare_reports",
    "median",
    "bootstrap_median_ci",
    "bootstrap_speedup_ci",
    "intervals_overlap",
]
