"""CI-overlap comparison of two bench reports (the regression gate).

Given a *baseline* report (committed under ``benchmarks/baselines/``)
and a *current* report (just measured), classify each workload the two
share:

* workloads with a **speedup** column are gated on it: the speedup is
  a ratio of two medians measured *in the same run on the same
  machine*, so it is dimensionless and survives a hardware change
  between the baseline commit and the CI runner.  ``regression`` means
  the current speedup's median is worse **and** the two speedup CIs do
  not overlap; ``improvement`` is the symmetric case; everything else
  is ``indistinguishable`` (per Touati et al., overlapping confidence
  intervals never justify a claim either way);
* baseline workloads (wall time only) are never gated — raw seconds
  from a different machine are not comparable — and are reported as
  ``informational``.

:func:`compare_reports` returns a :class:`BenchComparison`;
``comparison.regressions`` drives the CI exit code.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidParameterError
from .runner import BenchReport
from .stats import intervals_overlap

__all__ = ["WorkloadComparison", "BenchComparison", "compare_reports"]

#: Verdicts a workload comparison can produce.
_VERDICTS = ("regression", "improvement", "indistinguishable", "informational")


@dataclass(frozen=True)
class WorkloadComparison:
    """One workload's verdict: baseline vs current speedup with CIs."""

    name: str
    verdict: str
    baseline_speedup: float | None
    current_speedup: float | None
    baseline_ci: tuple[float, float] | None
    current_ci: tuple[float, float] | None

    def describe(self) -> str:
        """One human-readable summary line."""
        if self.verdict == "informational":
            return f"{self.name}: wall-time only (not gated)"
        assert self.baseline_speedup is not None
        assert self.current_speedup is not None
        return (
            f"{self.name}: {self.verdict} "
            f"(speedup {self.baseline_speedup:.3g} -> "
            f"{self.current_speedup:.3g})"
        )


@dataclass(frozen=True)
class BenchComparison:
    """All shared workloads' verdicts for one suite."""

    name: str
    workloads: tuple[WorkloadComparison, ...]

    @property
    def regressions(self) -> tuple[WorkloadComparison, ...]:
        return tuple(w for w in self.workloads if w.verdict == "regression")

    @property
    def improvements(self) -> tuple[WorkloadComparison, ...]:
        return tuple(w for w in self.workloads if w.verdict == "improvement")

    @property
    def ok(self) -> bool:
        """True when nothing regressed (the CI gate condition)."""
        return not self.regressions


def _compare_workload(
    name: str, base: BenchReport, cur: BenchReport
) -> WorkloadComparison:
    b = base.workload(name)
    c = cur.workload(name)
    if (
        b.speedup is None
        or c.speedup is None
        or b.speedup_ci is None
        or c.speedup_ci is None
    ):
        return WorkloadComparison(
            name=name,
            verdict="informational",
            baseline_speedup=b.speedup,
            current_speedup=c.speedup,
            baseline_ci=b.speedup_ci,
            current_ci=c.speedup_ci,
        )
    if intervals_overlap(b.speedup_ci, c.speedup_ci):
        verdict = "indistinguishable"
    elif c.speedup < b.speedup:
        verdict = "regression"
    else:
        verdict = "improvement"
    return WorkloadComparison(
        name=name,
        verdict=verdict,
        baseline_speedup=b.speedup,
        current_speedup=c.speedup,
        baseline_ci=b.speedup_ci,
        current_ci=c.speedup_ci,
    )


def compare_reports(
    baseline: BenchReport, current: BenchReport
) -> BenchComparison:
    """Classify every workload the two reports share.

    Workloads present in only one report are skipped (suites grow over
    time; a new candidate has no baseline to regress against).  The
    reports must describe the same suite.
    """
    if baseline.name != current.name:
        raise InvalidParameterError(
            f"cannot compare different suites: baseline is "
            f"{baseline.name!r}, current is {current.name!r}"
        )
    base_names = {ws.name for ws in baseline.workloads}
    shared = [ws.name for ws in current.workloads if ws.name in base_names]
    return BenchComparison(
        name=current.name,
        workloads=tuple(
            _compare_workload(n, baseline, current) for n in shared
        ),
    )
