"""The shared benchmark workload suites (full and ``--quick`` sizes).

One definition of *what* each benchmark measures, used by three
consumers: the ``benchmarks/bench_*.py`` scripts (tier-2, with their
equivalence assertions), the ``repro bench`` CLI, and the CI bench
smoke job.  A :class:`Workload` is a named zero-argument callable; a
*suite* is a tuple of workloads where candidate workloads name the
baseline workload their speedup is measured against (in-run, on the
same machine — which is what makes the speedup columns of a committed
``BENCH_*.json`` comparable across machines).

Four suites mirror the legacy bench scripts:

``schedule_grid``
    The per-scenario ``schedule`` loop vs the batched
    ``schedule-grid`` pass vs the ``schedule-grid-jit`` tier, on a
    pure general-schedule exponential grid (the jit kernel's hot
    case).
``error_models``
    The same comparison on a mixed renewal-model grid (Weibull/Gamma
    rows exercise the primitive-table reuse, not the jit kernel).
``experiment_plan``
    Per-point ``Scenario.solve`` loop vs one batched
    :class:`~repro.api.experiment.Experiment` plan over a frontier
    grid.
``study_batch``
    The scalar ``firstorder`` backend vs the vectorised ``grid``
    backend over a catalog x rho study.
``dispatch_overhead``
    Cold-pool vs warm-pool plan dispatch: the same sequence of small
    multi-process plans executed through a fresh per-call
    ``ProcessPoolExecutor`` each time (``processes=2``) vs the
    persistent :class:`~repro.exec.warm.WarmWorkerPool`
    (``transport="warm"``) — the per-plan spawn/teardown cost the warm
    fabric amortises.
``incremental``
    The cold lockstep solve vs the incremental (warm-started) tier on
    the two sweep shapes the tier is specified against: a dense 1-axis
    rho sweep (10k points full; the >= 5x acceptance shape) and a
    2-axis error-rate x rho grid (64 x 96 full; the >= 2x shape).
    Grids are stacked eagerly so the timed calls measure solving only,
    mirroring how the ``schedule-grid-incremental`` backend reuses one
    stacked batch per plan shard.
``service_dispatch``
    The solver service's job-layer overhead: the same rho grid solved
    directly (an inline :class:`~repro.api.experiment.Experiment`) vs
    submitted as a JSON job through the in-process service client —
    cold (fresh points every call) and fully cached (the identical
    re-submission served from the shared solve cache).

Quick sizes are chosen so the whole quick run (warmup + 3 reps x all
suites) stays in CI-smoke territory while still exercising every code
path being compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.scenario import Scenario
    from ..api.study import Study

__all__ = [
    "Workload",
    "build_suite",
    "suite_names",
    "schedule_grid_scenarios",
    "error_model_scenarios",
    "experiment_plan_scenarios",
    "study_batch_study",
    "dispatch_scenarios",
    "incremental_axis_points",
    "incremental_grid_points",
]


@dataclass(frozen=True)
class Workload:
    """One named, timeable unit of work.

    ``fn`` is called once per warmup/repetition and may return a
    mapping of auxiliary metrics (scenario counts, equivalence
    residuals) merged into the report.  ``baseline`` names the
    workload of the same suite this one's speedup is measured against;
    ``None`` marks a baseline (or stand-alone) workload.
    """

    name: str
    fn: Callable[[], Mapping[str, float] | None]
    baseline: str | None = None


# ----------------------------------------------------------------------
# Grid definitions (the bench scripts' constants, sizeable via quick)
# ----------------------------------------------------------------------

_CONFIG = "hera-xscale"

_SG_SCHEDULES = (
    "esc:0.4,0.6,0.8",
    "esc:0.6,0.4,0.8@1",
    "esc:0.4,0.8,0.6,1",
    "geom:0.4,1.5,1",
    "geom:0.45,1.4,0.9",
    "geom:0.4,1.8,1.2",
    "geom:0.5,1.3,1",
    "geom:0.8,0.5,1,0.2",
    "geom:1,0.6,1.2,0.3",
    "geom:0.6,1.6,1",
)

_EM_MODELS = (
    "exp:rate=3.38e-06",
    "exp:rate=3.38e-06,failstop=0.5",
    "weibull:shape=0.7,mtbf=3e5",
    "weibull:shape=0.7,mtbf=3e5,failstop=0.2",
    "weibull:shape=1.5,mtbf=1e5",
    "gamma:shape=2,mtbf=3e5",
    "gamma:shape=0.5,mtbf=3e5,failstop=0.5",
    "gamma:shape=3,mtbf=2e5",
)
_EM_SCHEDULES = (
    "esc:0.4,0.6,0.8",
    "geom:0.4,1.5,1",
    "geom:0.8,0.5,1,0.2",
    "esc:0.6,0.4,0.8@1",
    "geom:0.45,1.4,0.9",
)

_EP_SCHEDULE = "geom:0.4,1.5,1"
_EP_ERRORS = "weibull:shape=0.7,mtbf=3e5"


def schedule_grid_scenarios(*, quick: bool = False) -> "list[Scenario]":
    """The ``schedule_grid`` grid: general schedules x rhos x rates.

    Full size is the legacy bench's 1000 scenarios (10 x 10 x 10);
    quick is 2 x 3 x 2 = 12.
    """
    from ..api.scenario import Scenario

    schedules = _SG_SCHEDULES[:2] if quick else _SG_SCHEDULES
    rhos = np.linspace(2.8, 5.5, 3 if quick else 10)
    rates = np.logspace(-6, -4, 2 if quick else 10)
    return [
        Scenario(
            config=_CONFIG,
            rho=float(rho),
            error_rate=float(rate),
            schedule=sched,
        )
        for sched in schedules
        for rho in rhos
        for rate in rates
    ]


def error_model_scenarios(*, quick: bool = False) -> "list[Scenario]":
    """The ``error_models`` grid: renewal models x schedules x rhos.

    Full size is the legacy bench's 400 scenarios (8 x 5 x 10); quick
    is 3 x 2 x 3 = 18.
    """
    from ..api.scenario import Scenario

    models = _EM_MODELS[2:5] if quick else _EM_MODELS
    schedules = _EM_SCHEDULES[:2] if quick else _EM_SCHEDULES
    rhos = np.linspace(2.8, 5.0, 3 if quick else 10)
    return [
        Scenario(config=_CONFIG, rho=float(rho), errors=model, schedule=sched)
        for model in models
        for sched in schedules
        for rho in rhos
    ]


def experiment_plan_scenarios(*, quick: bool = False) -> "list[Scenario]":
    """The ``experiment_plan`` frontier grid (96 bounds; quick: 6)."""
    from ..api.scenario import Scenario

    rhos = np.linspace(2.76, 4.0, 6 if quick else 96)
    return [
        Scenario(
            config=_CONFIG, rho=float(rho), schedule=_EP_SCHEDULE, errors=_EP_ERRORS
        )
        for rho in rhos
    ]


def dispatch_scenarios(*, quick: bool = False) -> "list[Scenario]":
    """The ``dispatch_overhead`` grid: a small per-scenario-backend
    plan (12 bounds; quick: 4), so shard *dispatch* — not solving —
    dominates each plan."""
    from ..api.scenario import Scenario

    rhos = np.linspace(2.9, 3.6, 4 if quick else 12)
    return [Scenario(config=_CONFIG, rho=float(rho)) for rho in rhos]


def incremental_axis_points(
    *, quick: bool = False
) -> tuple[list[tuple], np.ndarray]:
    """The ``incremental`` 1-axis shape: a dense rho sweep.

    One (config, schedule) row repeated along 10k bounds (quick: 1200)
    — the shape where the incremental tier's delta dedup collapses the
    evaluation work to a single scan and every non-anchor point is a
    warm-started solve.  Returns ``(points, rhos)`` ready for
    ``ScheduleGrid.from_points``.
    """
    from ..platforms.catalog import get_configuration
    from ..schedules import parse_schedule

    cfg = get_configuration(_CONFIG)
    schedule = parse_schedule("geom:0.4,1.5,1")
    n = 1200 if quick else 10_000
    rhos = np.linspace(2.8, 5.5, n)
    return [(cfg, schedule, None)] * n, rhos


def incremental_grid_points(
    *, quick: bool = False
) -> tuple[list[tuple], np.ndarray]:
    """The ``incremental`` 2-axis shape: error rate x rho.

    64 rates x 96 bounds full (quick: 24 x 64), rho fastest — each
    rate contributes one warm chain, so the tier pays one anchor
    ladder per rate plus warm refinements.  The quick grid stays above
    the tier's fixed-overhead crossover (a too-small grid is dominated
    by the anchor sub-solve and shows no speedup).  Returns
    ``(points, rhos)``.
    """
    from ..platforms.catalog import get_configuration
    from ..schedules import parse_schedule

    cfg = get_configuration(_CONFIG)
    schedule = parse_schedule("geom:0.4,1.5,1")
    n_rates, n_rhos = (24, 64) if quick else (64, 96)
    rates = np.logspace(-6, -4, n_rates)
    rhos = np.linspace(2.8, 5.5, n_rhos)
    points = [
        (cfg.with_error_rate(float(rate)), schedule, None)
        for rate in rates
        for _ in rhos
    ]
    return points, np.tile(rhos, n_rates)


def study_batch_study(*, quick: bool = False) -> "Study":
    """The ``study_batch`` study: catalog x rho grid (184; quick: 10)."""
    from ..api.study import Study
    from ..platforms.catalog import configuration_names

    configs = configuration_names()[:2] if quick else configuration_names()
    rhos = tuple(float(r) for r in np.linspace(1.3, 3.5, 5 if quick else 23))
    return Study.from_grid(configs=configs, rhos=rhos)


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------


def _solve_with(backend_name: str, scenarios: "Sequence[Scenario]") -> dict[str, float]:
    from ..api.backends import get_backend

    get_backend(backend_name).solve_batch(list(scenarios))
    return {"scenarios": float(len(scenarios))}


def _schedule_grid_suite(quick: bool) -> tuple[Workload, ...]:
    scenarios = schedule_grid_scenarios(quick=quick)
    return (
        Workload("scalar_loop", lambda: _solve_with("schedule", scenarios)),
        Workload(
            "schedule_grid",
            lambda: _solve_with("schedule-grid", scenarios),
            baseline="scalar_loop",
        ),
        Workload(
            "schedule_grid_jit",
            lambda: _solve_with("schedule-grid-jit", scenarios),
            baseline="scalar_loop",
        ),
    )


def _error_models_suite(quick: bool) -> tuple[Workload, ...]:
    scenarios = error_model_scenarios(quick=quick)
    return (
        Workload("scalar_loop", lambda: _solve_with("schedule", scenarios)),
        Workload(
            "schedule_grid",
            lambda: _solve_with("schedule-grid", scenarios),
            baseline="scalar_loop",
        ),
        Workload(
            "schedule_grid_jit",
            lambda: _solve_with("schedule-grid-jit", scenarios),
            baseline="scalar_loop",
        ),
    )


def _experiment_plan_suite(quick: bool) -> tuple[Workload, ...]:
    scenarios = experiment_plan_scenarios(quick=quick)

    def per_point() -> dict[str, float]:
        from ..exceptions import InfeasibleBoundError

        solved = 0
        for sc in scenarios:
            try:
                sc.solve(cache=False)
                solved += 1
            except InfeasibleBoundError:
                # Infeasible head points mirror frontier skips.
                pass
        return {"scenarios": float(len(scenarios)), "feasible": float(solved)}

    def batched() -> dict[str, float]:
        from ..api.experiment import Experiment

        Experiment.from_scenarios(scenarios, name="bench-frontier").solve(
            cache=False
        )
        return {"scenarios": float(len(scenarios))}

    return (
        Workload("per_point_loop", per_point),
        Workload("batched_plan", batched, baseline="per_point_loop"),
    )


def _study_batch_suite(quick: bool) -> tuple[Workload, ...]:
    study = study_batch_study(quick=quick)

    def loop() -> dict[str, float]:
        study.solve(backend="firstorder", cache=False)
        return {"scenarios": float(len(study))}

    def grid() -> dict[str, float]:
        study.solve(backend="grid", cache=False)
        return {"scenarios": float(len(study))}

    return (
        Workload("firstorder_loop", loop),
        Workload("grid_backend", grid, baseline="firstorder_loop"),
    )


def _dispatch_overhead_suite(quick: bool) -> tuple[Workload, ...]:
    scenarios = dispatch_scenarios(quick=quick)
    plans = 2 if quick else 4

    def _run_plans(transport: "str | None") -> dict[str, float]:
        from ..api.experiment import Experiment

        exp = Experiment.from_scenarios(scenarios, name="bench-dispatch")
        for _ in range(plans):
            exp.solve(cache=False, processes=2, transport=transport)
        return {"plans": float(plans), "scenarios": float(len(scenarios))}

    def cold() -> dict[str, float]:
        # transport=None + processes=2: a fresh ProcessPoolExecutor
        # (and scenario pack) per plan — the per-call dispatch cost.
        return _run_plans(None)

    def warm() -> dict[str, float]:
        # The process-wide warm pool: workers spawn once (first call,
        # i.e. during warmup) and every later plan only pays queue
        # traffic.  The atexit hook shuts the default pool down.
        return _run_plans("warm")

    return (
        Workload("cold_pool", cold),
        Workload("warm_pool", warm, baseline="cold_pool"),
    )


def _incremental_suite(quick: bool) -> tuple[Workload, ...]:
    from ..schedules.incremental import (
        DeltaScheduleGrid,
        solve_schedule_grid_incremental,
    )
    from ..schedules.vectorized import ScheduleGrid, solve_schedule_grid

    axis_pts, axis_rhos = incremental_axis_points(quick=quick)
    grid_pts, grid_rhos = incremental_grid_points(quick=quick)
    axis_cold = ScheduleGrid.from_points(axis_pts)
    axis_delta = DeltaScheduleGrid.from_points(axis_pts)
    grid_cold = ScheduleGrid.from_points(grid_pts)
    grid_delta = DeltaScheduleGrid.from_points(grid_pts)

    def _cold(grid: ScheduleGrid, rhos: np.ndarray) -> dict[str, float]:
        solve_schedule_grid(grid, rhos)
        return {"rows": float(len(rhos))}

    def _warm(grid: "DeltaScheduleGrid", rhos: np.ndarray) -> dict[str, float]:
        stats = solve_schedule_grid_incremental(grid, rhos).stats
        return {
            "rows": float(stats.n),
            "warm": float(stats.warm),
            "anchors": float(stats.anchors),
            "fallback": float(stats.fallback),
        }

    return (
        Workload("sweep_1axis_cold", lambda: _cold(axis_cold, axis_rhos)),
        Workload(
            "sweep_1axis_incremental",
            lambda: _warm(axis_delta, axis_rhos),
            baseline="sweep_1axis_cold",
        ),
        Workload("grid_2axis_cold", lambda: _cold(grid_cold, grid_rhos)),
        Workload(
            "grid_2axis_incremental",
            lambda: _warm(grid_delta, grid_rhos),
            baseline="grid_2axis_cold",
        ),
    )


def _service_dispatch_suite(quick: bool) -> tuple[Workload, ...]:
    from ..api.cache import SolveCache
    from ..api.experiment import Experiment
    from ..service import InMemoryArtifactStore, ServiceApp, ServiceConfig
    from ..service.testing import InProcessClient

    n = 16 if quick else 96
    rho_lo, rho_hi = 2.6, 5.0
    # One long-lived service app (inline transport: the suite measures
    # the job layer's overhead, not process dispatch), exercised by the
    # in-process client.  Each cold call shifts the rho axis by a tiny
    # unique offset so repetitions never hit the shared cache.
    app = ServiceApp(
        ServiceConfig(transport="inline", job_workers=1),
        cache=SolveCache(),
        artifacts=InMemoryArtifactStore(),
    )
    app.startup()
    client = InProcessClient(app)
    fresh = iter(range(1, 1_000_000))

    def _spec(shift: int) -> dict[str, object]:
        eps = shift * 1e-7
        return {
            "name": f"bench-dispatch-{shift}",
            "grid": {
                "configs": ["hera-xscale"],
                "rhos": {"start": rho_lo + eps, "stop": rho_hi + eps, "count": n},
            },
            "artifacts": ["json"],
        }

    def _submit_and_wait(spec: dict[str, object]) -> dict[str, float]:
        doc = client.submit(spec)
        app.queue.wait_idle(timeout=300.0)
        final = client.get(f"/v1/jobs/{doc['id']}").json()
        result = final.get("result") or {}
        return {
            "scenarios": float(n),
            "cache_hits": float(result.get("cache_hits", 0)),
        }

    def direct() -> dict[str, float]:
        eps = next(fresh) * 1e-7
        rhos = np.linspace(rho_lo + eps, rho_hi + eps, n)
        exp = Experiment.over(configs=("hera-xscale",), rhos=tuple(rhos))
        exp.solve(cache=False)
        return {"scenarios": float(n)}

    def cold() -> dict[str, float]:
        return _submit_and_wait(_spec(next(fresh)))

    warm_spec = _spec(0)
    _submit_and_wait(warm_spec)  # prime the shared cache once, eagerly

    def cached() -> dict[str, float]:
        # The identical re-submission: every scenario replays from the
        # shared solve cache — the >= 90% hit-rate acceptance path.
        return _submit_and_wait(warm_spec)

    return (
        Workload("direct_solve", direct),
        Workload("service_job_cold", cold, baseline="direct_solve"),
        Workload("service_job_cached", cached, baseline="direct_solve"),
    )


_SUITES: dict[str, Callable[[bool], tuple[Workload, ...]]] = {
    "schedule_grid": _schedule_grid_suite,
    "error_models": _error_models_suite,
    "experiment_plan": _experiment_plan_suite,
    "study_batch": _study_batch_suite,
    "dispatch_overhead": _dispatch_overhead_suite,
    "incremental": _incremental_suite,
    "service_dispatch": _service_dispatch_suite,
}


def suite_names() -> tuple[str, ...]:
    """The registered suite names, definition order."""
    return tuple(_SUITES)


def build_suite(name: str, *, quick: bool = False) -> tuple[Workload, ...]:
    """Materialise one suite's workloads (grids built eagerly, so the
    timed calls measure solving only)."""
    try:
        factory = _SUITES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown bench suite {name!r}; available: "
            f"{', '.join(suite_names())}"
        ) from None
    return factory(quick)
