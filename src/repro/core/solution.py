"""Result containers for the BiCrit solvers.

A :class:`PatternSolution` is one feasible candidate (a speed pair, its
optimal pattern size and the resulting overheads); a
:class:`BiCritSolution` is the full solver output: the winning candidate
plus the per-pair candidate list needed to regenerate the paper's
tables (best ``sigma2`` per ``sigma1``, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PatternSolution", "CandidateOutcome", "BiCritSolution"]


@dataclass(frozen=True)
class PatternSolution:
    """One feasible (speed pair, pattern size) solution and its overheads.

    Attributes
    ----------
    sigma1, sigma2:
        The speed pair.
    work:
        Optimal pattern size ``Wopt`` (work units).
    energy_overhead:
        First-order expected energy per work unit (Eq. 3) at ``work`` —
        the value the paper's tables report.
    time_overhead:
        First-order expected time per work unit (Eq. 2) at ``work``.
    energy_overhead_exact, time_overhead_exact:
        The same quantities from the exact Propositions 2/3, for
        approximation-quality diagnostics.
    rho_min:
        The pair's minimum feasible bound (Eq. 6).
    """

    sigma1: float
    sigma2: float
    work: float
    energy_overhead: float
    time_overhead: float
    energy_overhead_exact: float
    time_overhead_exact: float
    rho_min: float

    @property
    def uses_two_speeds(self) -> bool:
        """True when re-execution uses a different speed."""
        return self.sigma1 != self.sigma2

    @property
    def speed_pair(self) -> tuple[float, float]:
        """``(sigma1, sigma2)`` as a tuple."""
        return (self.sigma1, self.sigma2)


@dataclass(frozen=True)
class CandidateOutcome:
    """Outcome of evaluating one speed pair against a bound.

    ``solution`` is ``None`` when the pair cannot satisfy the bound
    (``rho < rho_min``, the "-" entries of the paper's tables).
    """

    sigma1: float
    sigma2: float
    rho_min: float
    solution: PatternSolution | None

    @property
    def feasible(self) -> bool:
        """True when this pair admits a pattern meeting the bound."""
        return self.solution is not None


@dataclass(frozen=True)
class BiCritSolution:
    """Full output of the O(K^2) BiCrit enumeration.

    Attributes
    ----------
    rho:
        The performance bound that was solved for.
    best:
        The energy-minimal feasible candidate (never ``None``: an
        infeasible problem raises instead of returning a solution).
    candidates:
        Every (sigma_i, sigma_j) outcome, in enumeration order
        (``sigma1`` ascending, then ``sigma2`` ascending).
    """

    rho: float
    best: PatternSolution
    candidates: tuple[CandidateOutcome, ...] = field(repr=False)

    # ------------------------------------------------------------------
    def feasible_candidates(self) -> tuple[PatternSolution, ...]:
        """All feasible pattern solutions, enumeration order."""
        return tuple(c.solution for c in self.candidates if c.solution is not None)

    def best_for_sigma1(self, sigma1: float) -> PatternSolution | None:
        """The best re-execution speed for a given first speed.

        This is exactly one row of the Section-4.2 tables: for the given
        ``sigma1``, the feasible ``sigma2`` minimising the energy
        overhead, or ``None`` when no ``sigma2`` is feasible ("-" row).
        """
        rows = [
            c.solution
            for c in self.candidates
            if c.sigma1 == sigma1 and c.solution is not None
        ]
        if not rows:
            return None
        return min(rows, key=lambda s: s.energy_overhead)

    def sigma1_values(self) -> tuple[float, ...]:
        """Distinct first speeds in enumeration order."""
        seen: dict[float, None] = {}
        for c in self.candidates:
            seen.setdefault(c.sigma1, None)
        return tuple(seen)
