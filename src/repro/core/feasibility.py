"""Feasibility of the performance bound — the quadratic of Theorem 1.

Enforcing the first-order time bound ``T(W,s1,s2)/W <= rho`` is
equivalent (multiply Eq. (2) by ``W``) to

.. math::  a W^2 + b W + c \\le 0,

with ``a = lam/(s1 s2)``, ``b = x_T - rho`` (the W-independent part of
Eq. (2) minus the bound) and ``c = C + V/s1``.  Since ``a, c > 0`` the
parabola opens upwards with a positive product of roots, so either there
is no positive solution (``b > -2 sqrt(a c)``) or ``W`` must lie in the
root interval ``[W1, W2]`` with ``0 < W1 <= W2``.

Setting the discriminant to zero yields the *minimum feasible bound* for
a speed pair (Eq. 6):

.. math::

    \\rho_{i,j} = \\frac{1}{\\sigma_i}
        + 2 \\sqrt{\\Big(C + \\frac{V}{\\sigma_i}\\Big)
                   \\frac{\\lambda}{\\sigma_i\\sigma_j}}
        + \\lambda\\Big(\\frac{R}{\\sigma_i} +
                        \\frac{V}{\\sigma_i\\sigma_j}\\Big).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..platforms.configuration import Configuration
from .firstorder import time_coefficients
from ..exceptions import InvalidParameterError

__all__ = [
    "QuadraticCoefficients",
    "feasibility_quadratic",
    "feasible_interval",
    "min_performance_bound",
    "min_performance_bound_config",
]


@dataclass(frozen=True)
class QuadraticCoefficients:
    """The ``a W^2 + b W + c <= 0`` constraint of Theorem 1."""

    a: float
    b: float
    c: float

    @property
    def discriminant(self) -> float:
        """``b^2 - 4 a c``; >= 0 iff the bound is achievable."""
        return self.b * self.b - 4.0 * self.a * self.c

    @property
    def is_feasible(self) -> bool:
        """True iff a positive ``W`` satisfies the constraint.

        Theorem 1 phrases this as ``b <= -2 sqrt(a c)``; since ``a`` and
        ``c`` are positive this is equivalent to ``b <= 0`` *and* a
        non-negative discriminant, the form used here to avoid taking a
        square root of a negative rounding residue.
        """
        return self.b <= 0.0 and self.discriminant >= 0.0

    def roots(self) -> tuple[float, float]:
        """The root interval ``(W1, W2)`` with ``W1 <= W2``.

        Uses the numerically stable quadratic formula: the larger-in-
        magnitude root via ``(-b + sqrt(disc)) / 2a`` and the companion
        through the product ``c / a`` to avoid catastrophic cancellation
        when ``b^2 >> 4ac`` (typical: ``a = O(lambda)`` is tiny).

        Raises
        ------
        ValueError
            If the constraint is infeasible.
        """
        if not self.is_feasible:
            raise InvalidParameterError("infeasible constraint has no real positive roots")
        disc = max(self.discriminant, 0.0)
        sq = math.sqrt(disc)
        # b <= 0 here, so -b + sq is the well-conditioned sum.
        w2 = (-self.b + sq) / (2.0 * self.a)
        w1 = self.c / (self.a * w2) if w2 > 0 else w2
        return (min(w1, w2), max(w1, w2))

    def violation(self, work: float) -> float:
        """Signed constraint value ``a W^2 + b W + c`` (<= 0 is feasible)."""
        return self.a * work * work + self.b * work + self.c


def feasibility_quadratic(
    cfg: Configuration, sigma1: float, sigma2: float | None, rho: float
) -> QuadraticCoefficients:
    """Build the Theorem-1 quadratic for a speed pair and bound ``rho``."""
    coeffs = time_coefficients(cfg, sigma1, sigma2)
    return QuadraticCoefficients(a=coeffs.y, b=coeffs.x - rho, c=coeffs.z)


def feasible_interval(
    cfg: Configuration, sigma1: float, sigma2: float | None, rho: float
) -> tuple[float, float] | None:
    """The feasible pattern-size interval ``[W1, W2]``, or ``None``.

    ``None`` means the pair ``(sigma1, sigma2)`` cannot meet ``rho`` at
    any pattern size (first-order model).
    """
    quad = feasibility_quadratic(cfg, sigma1, sigma2, rho)
    if not quad.is_feasible:
        return None
    return quad.roots()


def min_performance_bound(
    cfg: Configuration, sigma1: float, sigma2: float | None = None
) -> float:
    """Eq. (6): the smallest ``rho`` for which the pair is feasible.

    Obtained by setting ``b = -2 sqrt(a c)`` in the quadratic, i.e. the
    bound at which the feasible interval degenerates to the single point
    ``W = sqrt(c / a)``.
    """
    coeffs = time_coefficients(cfg, sigma1, sigma2)
    return coeffs.minimum_value()


def min_performance_bound_config(cfg: Configuration) -> float:
    """The smallest feasible ``rho`` over *all* speed pairs of ``cfg``.

    Below this value :func:`repro.core.solver.solve_bicrit` raises
    :class:`~repro.exceptions.InfeasibleBoundError`.
    """
    return min(
        min_performance_bound(cfg, s1, s2) for s1 in cfg.speeds for s2 in cfg.speeds
    )
