"""The optimal pattern size — Equations (4) and (5) of Theorem 1.

The first-order energy overhead (Eq. 3) is of the form
``x_E + y_E W + z_E / W`` and is convex in ``W``; its unconstrained
minimiser is

.. math::

    W_e = \\sqrt{\\frac{C (P_{io} + P_{idle})
                        + \\frac{V}{\\sigma_1}(\\kappa\\sigma_1^3 + P_{idle})}
                      {\\frac{\\lambda}{\\sigma_1\\sigma_2}
                        (\\kappa\\sigma_2^3 + P_{idle})}}
    \\qquad\\text{(Eq. 5)}

If ``W_e`` violates the performance bound, convexity pushes the optimum
to the nearest end of the feasible interval ``[W1, W2]``:

.. math::  W_{opt} = \\min(\\max(W_1, W_e), W_2) \\qquad\\text{(Eq. 4)}
"""

from __future__ import annotations

from ..platforms.configuration import Configuration
from .feasibility import feasible_interval
from .firstorder import energy_coefficients
from ..exceptions import InvalidParameterError

__all__ = ["energy_optimal_work", "optimal_work", "clamp_to_interval"]


def energy_optimal_work(
    cfg: Configuration, sigma1: float, sigma2: float | None = None
) -> float:
    """Eq. (5): the unconstrained energy-optimal pattern size ``W_e``.

    Equal to ``sqrt(z_E / y_E)`` of the Eq. (3) coefficients; this is the
    Young/Daly analogue for the energy objective with a DVFS power model.
    """
    return energy_coefficients(cfg, sigma1, sigma2).unconstrained_minimiser()


def clamp_to_interval(value: float, interval: tuple[float, float]) -> float:
    """Eq. (4) clamp: project ``value`` onto ``[W1, W2]``.

    By convexity of the energy overhead, the constrained optimum is the
    projection of the unconstrained one onto the feasible interval.
    """
    w1, w2 = interval
    if w1 > w2:
        raise InvalidParameterError(f"empty interval [{w1}, {w2}]")
    return min(max(w1, value), w2)


def optimal_work(
    cfg: Configuration, sigma1: float, sigma2: float | None, rho: float
) -> float | None:
    """Theorem 1: the optimal pattern size for a speed pair under ``rho``.

    Returns ``None`` when the pair is infeasible for this bound (the
    caller decides whether that is an error or simply an excluded
    candidate, matching the "-" rows of the paper's tables).
    """
    interval = feasible_interval(cfg, sigma1, sigma2, rho)
    if interval is None:
        return None
    return clamp_to_interval(energy_optimal_work(cfg, sigma1, sigma2), interval)
