"""Numeric BiCrit on the *exact* expressions — Theorem-1 cross-check.

The paper optimises the first-order overheads because they admit the
closed form of Theorem 1.  This module solves the same constrained
problem directly on the exact Propositions 2/3:

1. minimise the exact time overhead ``T(W)/W`` over ``W > 0`` (it is
   coercive: ``C/W -> inf`` as ``W -> 0`` and the re-execution
   exponential dominates as ``W -> inf``, and unimodal in the paper's
   parameter ranges);
2. if the minimum exceeds ``rho`` the pair is infeasible; otherwise
   bracket the two boundary crossings ``T(W)/W = rho`` with Brent root
   finding to obtain the exact feasible interval ``[W1, W2]``;
3. minimise the exact energy overhead ``E(W)/W`` on ``[W1, W2]``.

The ablation bench (``benchmarks/bench_ablation.py``) quantifies the gap
between this exact optimum and the Theorem-1 closed form — it is far
below 1% in the paper's regimes because ``lambda * W = Theta(sqrt(lambda))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable

import numpy as np
from scipy.optimize import brentq, minimize_scalar

from ..exceptions import ConvergenceError
from ..platforms.configuration import Configuration
from . import exact

__all__ = ["ExactSolution", "minimize_unimodal", "exact_feasible_interval", "solve_pair_exact", "solve_bicrit_exact"]

#: Search window for pattern sizes (work units).  1e-3 to 1e12 covers
#: every physically meaningful pattern for the paper's parameter ranges
#: (MTBFs from ~1e2 s to ~1e6 s).
_W_LO = 1e-3
_W_HI = 1e12


@dataclass(frozen=True)
class ExactSolution:
    """Result of the exact numeric optimisation for one speed pair."""

    sigma1: float
    sigma2: float
    work: float
    energy_overhead: float
    time_overhead: float
    interval: tuple[float, float]


def minimize_unimodal(
    fn: Callable[[float], float], lo: float = _W_LO, hi: float = _W_HI, *, coarse: int = 200
) -> tuple[float, float]:
    """Minimise a coercive quasi-unimodal ``fn`` on ``[lo, hi]``.

    A coarse log-spaced scan locates the basin, then bounded Brent
    (``minimize_scalar``) polishes inside the bracketing neighbours.
    Returns ``(argmin, min)``.

    This two-phase scheme is robust to the plateau-then-blowup shape of
    the exact overheads (flat near the optimum, exponential far right)
    where a single Brent call from an arbitrary bracket can stall.
    """
    grid = np.logspace(math.log10(lo), math.log10(hi), coarse)
    vals = np.array([fn(w) for w in grid])
    if not np.all(np.isfinite(vals)):
        # Exponentials overflow for huge W; treat overflow as +inf.
        vals = np.where(np.isfinite(vals), vals, np.inf)
    k = int(np.argmin(vals))
    left = grid[max(k - 1, 0)]
    right = grid[min(k + 1, coarse - 1)]
    res = minimize_scalar(fn, bounds=(left, right), method="bounded", options={"xatol": 1e-10 * right})
    if not res.success:  # pragma: no cover - scipy bounded rarely fails
        raise ConvergenceError(f"bounded minimisation failed: {res.message}")
    # The polish can only see [left, right]; keep the better of grid/polish.
    if res.fun <= vals[k]:
        return float(res.x), float(res.fun)
    return float(grid[k]), float(vals[k])


def exact_feasible_interval(
    cfg: Configuration, sigma1: float, sigma2: float, rho: float
) -> tuple[float, float] | None:
    """The exact feasible interval ``{W : T(W)/W <= rho}``, or ``None``.

    Uses the unimodality of the exact time overhead: find its minimum,
    then bracket the ``rho`` crossings on each side with Brent.
    """

    def t_over(w: float) -> float:
        with np.errstate(over="ignore"):
            return float(exact.time_overhead(cfg, w, sigma1, sigma2))

    w_star, t_min = minimize_unimodal(t_over)
    if t_min > rho:
        return None

    def shifted(w: float) -> float:
        v = t_over(w) - rho
        return v if math.isfinite(v) else 1e300

    # Left crossing: T/W -> inf as W -> 0 via the C/W term.
    lo = _W_LO
    if shifted(lo) <= 0:
        w1 = lo
    else:
        w1 = float(brentq(shifted, lo, w_star, xtol=1e-9, rtol=1e-12))
    # Right crossing: the re-execution exponential always overtakes rho.
    hi = w_star
    while shifted(hi) <= 0:
        hi *= 2.0
        if hi > 1e15:  # pragma: no cover - unreachable for valid configs
            raise ConvergenceError("failed to bracket the right feasibility crossing")
    w2 = float(brentq(shifted, w_star, hi, xtol=1e-9, rtol=1e-12))
    return (w1, w2)


def solve_pair_exact(
    cfg: Configuration, sigma1: float, sigma2: float, rho: float
) -> ExactSolution | None:
    """Exact constrained optimum for one speed pair (``None`` = infeasible)."""
    interval = exact_feasible_interval(cfg, sigma1, sigma2, rho)
    if interval is None:
        return None
    w1, w2 = interval

    def e_over(w: float) -> float:
        with np.errstate(over="ignore"):
            return float(exact.energy_overhead(cfg, w, sigma1, sigma2))

    res = minimize_scalar(e_over, bounds=(w1, w2), method="bounded", options={"xatol": 1e-9 * max(w2, 1.0)})
    if not res.success:  # pragma: no cover
        raise ConvergenceError(f"bounded minimisation failed: {res.message}")
    # Candidates: interior optimum and both interval ends (the energy
    # overhead is convex here, but end-point checks make this airtight).
    cands = [(float(res.x), float(res.fun)), (w1, e_over(w1)), (w2, e_over(w2))]
    work, energy = min(cands, key=lambda p: p[1])
    return ExactSolution(
        sigma1=sigma1,
        sigma2=sigma2,
        work=work,
        energy_overhead=energy,
        time_overhead=float(exact.time_overhead(cfg, work, sigma1, sigma2)),
        interval=(w1, w2),
    )


def solve_bicrit_exact(cfg: Configuration, rho: float) -> ExactSolution:
    """Exact-numeric BiCrit over all speed pairs of ``cfg``.

    .. note:: Legacy wrapper.  Delegates to the ``exact`` backend of
       the :mod:`repro.api` registry via
       ``Scenario(..., backend="exact").solve()`` (which enumerates
       :func:`solve_pair_exact` over the speed grid); prefer the
       :class:`repro.Scenario` API in new code.

    Raises
    ------
    ConvergenceError
        Never in practice; propagated from the numeric layers.
    repro.exceptions.InfeasibleBoundError
        When no pair is feasible under the exact time overhead.
    """
    from ..api.scenario import Scenario

    return Scenario(config=cfg, rho=rho).solve(backend="exact").raw
