"""The O(K^2) BiCrit solver (end of Section 3 of the paper).

The procedure is exactly the paper's:

1. for each speed pair ``(sigma_i, sigma_j)`` compute ``rho_{i,j}``
   (Eq. 6) and discard pairs with ``rho < rho_{i,j}``;
2. for each remaining pair compute ``Wopt`` (Eq. 4) and the energy
   overhead (Eq. 3);
3. return the pair minimising the energy overhead.

Ties are broken deterministically by enumeration order (``sigma1``
ascending, then ``sigma2`` ascending), which prefers lower speeds and,
for equal first speeds, lower re-execution speeds.
"""

from __future__ import annotations

from ..exceptions import InfeasibleBoundError
from ..platforms.configuration import Configuration
from ..quantities import require_positive
from . import exact
from .feasibility import min_performance_bound
from .firstorder import energy_overhead_fo, time_overhead_fo
from .optimum import optimal_work
from .solution import BiCritSolution, CandidateOutcome, PatternSolution

__all__ = ["evaluate_pair", "solve_bicrit"]


def _solve_bicrit_direct(
    cfg: Configuration,
    rho: float,
    *,
    speeds: tuple[float, ...] | None = None,
    sigma2_choices: tuple[float, ...] | None = None,
) -> BiCritSolution:
    """The O(K^2) enumeration itself (no registry indirection).

    This is the implementation behind the ``firstorder`` backend of
    :mod:`repro.api.backends`; call :func:`solve_bicrit` (or
    ``repro.Scenario(...).solve()``) instead unless you are writing a
    backend.
    """
    require_positive(rho, "rho")
    s1_set = cfg.speeds if speeds is None else tuple(speeds)
    s2_set = cfg.speeds if sigma2_choices is None else tuple(sigma2_choices)

    candidates: list[CandidateOutcome] = []
    best: PatternSolution | None = None
    for s1 in s1_set:
        for s2 in s2_set:
            outcome = evaluate_pair(cfg, s1, s2, rho)
            candidates.append(outcome)
            sol = outcome.solution
            if sol is not None and (best is None or sol.energy_overhead < best.energy_overhead):
                best = sol

    if best is None:
        rho_min = min(c.rho_min for c in candidates)
        raise InfeasibleBoundError(rho, rho_min)
    return BiCritSolution(rho=rho, best=best, candidates=tuple(candidates))


def evaluate_pair(
    cfg: Configuration, sigma1: float, sigma2: float, rho: float
) -> CandidateOutcome:
    """Evaluate one speed pair against the bound ``rho``.

    Returns a :class:`CandidateOutcome` whose ``solution`` is ``None``
    when the pair is infeasible.  Speeds need not belong to the DVFS set
    (useful for what-if studies); :func:`solve_bicrit` only enumerates
    catalog speeds.
    """
    require_positive(rho, "rho")
    rho_min = min_performance_bound(cfg, sigma1, sigma2)
    work = optimal_work(cfg, sigma1, sigma2, rho)
    if work is None:
        return CandidateOutcome(sigma1=sigma1, sigma2=sigma2, rho_min=rho_min, solution=None)
    sol = PatternSolution(
        sigma1=sigma1,
        sigma2=sigma2,
        work=work,
        energy_overhead=energy_overhead_fo(cfg, work, sigma1, sigma2),
        time_overhead=time_overhead_fo(cfg, work, sigma1, sigma2),
        energy_overhead_exact=exact.energy_overhead(cfg, work, sigma1, sigma2),
        time_overhead_exact=exact.time_overhead(cfg, work, sigma1, sigma2),
        rho_min=rho_min,
    )
    return CandidateOutcome(sigma1=sigma1, sigma2=sigma2, rho_min=rho_min, solution=sol)


def solve_bicrit(
    cfg: Configuration,
    rho: float,
    *,
    speeds: tuple[float, ...] | None = None,
    sigma2_choices: tuple[float, ...] | None = None,
) -> BiCritSolution:
    """Solve BiCrit for ``cfg`` under the performance bound ``rho``.

    .. note:: Legacy wrapper.  Delegates to the ``firstorder`` backend
       of the :mod:`repro.api` registry via
       ``Scenario(config=cfg, rho=rho).solve()``, which adds caching
       and provenance; prefer the :class:`repro.Scenario` API in new
       code.

    Parameters
    ----------
    cfg:
        The platform/processor configuration.
    rho:
        Admissible time overhead per unit of work (e.g. 3 means the
        expected makespan may be at most three times the error-free
        full-speed makespan).
    speeds:
        Optional restriction of the first-speed choices (defaults to the
        processor's full DVFS set).
    sigma2_choices:
        Optional restriction of the re-execution-speed choices.  Passing
        ``sigma2_choices=(s,)`` per first speed is how the single-speed
        baseline is built (see :mod:`repro.core.singlespeed`).

    Returns
    -------
    BiCritSolution
        Winning pair + all candidate outcomes.

    Raises
    ------
    InfeasibleBoundError
        When no speed pair satisfies ``rho`` (with the minimum feasible
        bound attached for diagnostics).

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> sol = solve_bicrit(get_configuration("hera-xscale"), rho=3.0)
    >>> sol.best.speed_pair
    (0.4, 0.4)
    >>> round(sol.best.work)
    2764
    """
    from ..api.scenario import Scenario

    return Scenario(
        config=cfg,
        rho=rho,
        speeds=speeds,
        sigma2_choices=sigma2_choices,
    ).solve(backend="firstorder").raw
