"""The paper's primary contribution: BiCrit under silent errors.

Layout mirrors Section 3 of the paper:

* :mod:`~repro.core.exact` — Propositions 1-3 (exact expectations);
* :mod:`~repro.core.firstorder` — Equations (2)/(3) (Taylor overheads);
* :mod:`~repro.core.feasibility` — the Theorem-1 quadratic and Eq. (6);
* :mod:`~repro.core.optimum` — Equations (4)/(5);
* :mod:`~repro.core.solver` — the O(K^2) enumeration;
* :mod:`~repro.core.singlespeed` — the one-speed baseline;
* :mod:`~repro.core.youngdaly` — classical reference formulas;
* :mod:`~repro.core.numeric` — exact-expression numeric cross-check.
"""

from .exact import (
    energy_overhead,
    expected_energy,
    expected_reexecutions,
    expected_time,
    expected_time_single_speed,
    time_overhead,
)
from .feasibility import (
    QuadraticCoefficients,
    feasibility_quadratic,
    feasible_interval,
    min_performance_bound,
    min_performance_bound_config,
)
from .firstorder import (
    OverheadCoefficients,
    energy_coefficients,
    energy_overhead_fo,
    time_coefficients,
    time_overhead_fo,
)
from .numeric import ExactSolution, solve_bicrit_exact, solve_pair_exact
from .optimum import clamp_to_interval, energy_optimal_work, optimal_work
from .pattern import Pattern
from .singlespeed import evaluate_single_speed, solve_single_speed
from .solution import BiCritSolution, CandidateOutcome, PatternSolution
from .solver import evaluate_pair, solve_bicrit
from .youngdaly import period_failstop, period_silent, work_failstop, work_silent

__all__ = [
    "Pattern",
    "expected_time",
    "expected_time_single_speed",
    "expected_energy",
    "expected_reexecutions",
    "time_overhead",
    "energy_overhead",
    "OverheadCoefficients",
    "time_coefficients",
    "energy_coefficients",
    "time_overhead_fo",
    "energy_overhead_fo",
    "QuadraticCoefficients",
    "feasibility_quadratic",
    "feasible_interval",
    "min_performance_bound",
    "min_performance_bound_config",
    "energy_optimal_work",
    "optimal_work",
    "clamp_to_interval",
    "PatternSolution",
    "CandidateOutcome",
    "BiCritSolution",
    "evaluate_pair",
    "solve_bicrit",
    "evaluate_single_speed",
    "solve_single_speed",
    "period_failstop",
    "period_silent",
    "work_failstop",
    "work_silent",
    "ExactSolution",
    "solve_pair_exact",
    "solve_bicrit_exact",
]
