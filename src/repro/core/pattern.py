"""The periodic checkpointing pattern value type.

A *pattern* (Figure 1 of the paper) is ``W`` units of work executed at a
first speed ``sigma1``, followed by a verification and a checkpoint; on a
detected error the application recovers and re-executes the pattern at a
second speed ``sigma2``, repeating at ``sigma2`` until success.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..quantities import require_positive, require_speed

__all__ = ["Pattern"]


@dataclass(frozen=True)
class Pattern:
    """An immutable (W, sigma1, sigma2) triple.

    Parameters
    ----------
    work:
        Pattern size ``W`` in work units (seconds at full speed), > 0.
    sigma1:
        Speed of the first execution.
    sigma2:
        Speed of every re-execution.  Defaults to ``sigma1`` (the
        classical single-speed model).

    Examples
    --------
    >>> p = Pattern(work=1000.0, sigma1=0.6)
    >>> p.sigma2
    0.6
    >>> p.uses_two_speeds
    False
    >>> p.with_work(2000.0).work
    2000.0
    """

    work: float
    sigma1: float
    sigma2: float | None = None

    def __post_init__(self) -> None:
        require_positive(self.work, "work")
        require_speed(self.sigma1, "sigma1")
        if self.sigma2 is None:
            object.__setattr__(self, "sigma2", self.sigma1)
        else:
            require_speed(self.sigma2, "sigma2")

    # ------------------------------------------------------------------
    @property
    def uses_two_speeds(self) -> bool:
        """True when the re-execution speed differs from the first speed."""
        return self.sigma2 != self.sigma1

    @property
    def speed_ratio(self) -> float:
        """``sigma2 / sigma1`` — the quantity bounding first-order validity
        in the combined-error analysis (Section 5.2)."""
        return self.sigma2 / self.sigma1  # type: ignore[operator]

    # ------------------------------------------------------------------
    def with_work(self, work: float) -> "Pattern":
        """Copy with a different pattern size."""
        return replace(self, work=work)

    def with_speeds(self, sigma1: float, sigma2: float | None = None) -> "Pattern":
        """Copy with a different speed pair."""
        return Pattern(work=self.work, sigma1=sigma1, sigma2=sigma2)
