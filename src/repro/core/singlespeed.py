"""Single-speed baseline: the paper's one-speed comparator.

Every figure of the paper overlays the two-speed optimum with the best
solution constrained to ``sigma1 = sigma2`` (the ``Wopt(sigma, sigma)``
and ``E(Wopt, sigma, sigma)/Wopt`` dotted curves).  This module solves
that restricted problem with the same Theorem-1 machinery — the model is
identical, the candidate set is just the diagonal of the speed-pair
grid — so any improvement of the full solver over this baseline is
attributable purely to decoupling the re-execution speed.
"""

from __future__ import annotations

from ..exceptions import InfeasibleBoundError
from ..platforms.configuration import Configuration
from ..quantities import require_positive
from .solution import BiCritSolution, CandidateOutcome, PatternSolution
from .solver import evaluate_pair

__all__ = ["solve_single_speed", "evaluate_single_speed"]


def evaluate_single_speed(
    cfg: Configuration, sigma: float, rho: float
) -> CandidateOutcome:
    """Evaluate one diagonal candidate ``(sigma, sigma)``."""
    return evaluate_pair(cfg, sigma, sigma, rho)


def _solve_single_speed_direct(
    cfg: Configuration,
    rho: float,
    *,
    speeds: tuple[float, ...] | None = None,
) -> BiCritSolution:
    """The diagonal enumeration itself (no registry indirection).

    Implementation behind the ``single-speed`` mode of the
    :mod:`repro.api` backends; call :func:`solve_single_speed` (or
    ``repro.Scenario(..., mode="single-speed").solve()``) instead
    unless you are writing a backend.
    """
    require_positive(rho, "rho")
    s_set = cfg.speeds if speeds is None else tuple(speeds)

    candidates: list[CandidateOutcome] = []
    best: PatternSolution | None = None
    for s in s_set:
        outcome = evaluate_single_speed(cfg, s, rho)
        candidates.append(outcome)
        sol = outcome.solution
        if sol is not None and (best is None or sol.energy_overhead < best.energy_overhead):
            best = sol

    if best is None:
        rho_min = min(c.rho_min for c in candidates)
        raise InfeasibleBoundError(rho, rho_min)
    return BiCritSolution(rho=rho, best=best, candidates=tuple(candidates))


def solve_single_speed(
    cfg: Configuration,
    rho: float,
    *,
    speeds: tuple[float, ...] | None = None,
) -> BiCritSolution:
    """Solve BiCrit restricted to a single execution speed.

    Same contract as :func:`repro.core.solver.solve_bicrit`, but the
    candidate set is the diagonal ``{(sigma, sigma) : sigma in S}``.

    .. note:: Legacy wrapper.  Delegates to the ``firstorder`` backend
       of the :mod:`repro.api` registry via
       ``Scenario(..., mode="single-speed").solve()``; prefer the
       :class:`repro.Scenario` API in new code.

    Raises
    ------
    InfeasibleBoundError
        When no single speed satisfies ``rho``.  Note a bound can be
        feasible for the two-speed solver yet infeasible here only in
        contrived cases (Eq. 6 depends on ``sigma_j`` through the
        ``sqrt(lambda)`` and ``lambda`` terms), so in the paper's
        parameter ranges the two solvers share feasibility thresholds
        for each ``sigma1``.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> sol = solve_single_speed(get_configuration("hera-xscale"), rho=3.0)
    >>> sol.best.sigma1 == sol.best.sigma2
    True
    """
    from ..api.scenario import Scenario

    return Scenario(
        config=cfg, rho=rho, mode="single-speed", speeds=speeds
    ).solve(backend="firstorder").raw
