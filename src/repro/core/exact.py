"""Exact expected time and energy of a pattern under silent errors.

Implements Propositions 1-3 of the paper.  With silent errors of rate
``lambda``, pattern work ``W``, verification ``V`` (work-like),
checkpoint ``C`` and recovery ``R`` (plain seconds):

Proposition 1 (single speed ``sigma``)::

    T(W, s, s) = C + e^{lam W / s} (W + V)/s + (e^{lam W / s} - 1) R

Proposition 2 (two speeds)::

    T(W, s1, s2) = C + (W + V)/s1
                 + (1 - e^{-lam W / s1}) e^{lam W / s2} (R + (W + V)/s2)

Proposition 3 (energy)::

    E(W, s1, s2) = (C + (1 - e^{-lam W/s1}) e^{lam W/s2} R) (Pio + Pidle)
                 + (W + V)/s1 (kappa s1^3 + Pidle)
                 + (W + V)/s2 (1 - e^{-lam W/s1}) e^{lam W/s2}
                   (kappa s2^3 + Pidle)

All functions broadcast over ``work`` (NumPy arrays accepted) and return
a scalar for scalar input.  Silent errors strike only during the
*computation* window ``W / sigma`` (they are data corruptions; the
verification at the end of the pattern detects them), which is why the
exponent uses ``W`` and not ``W + V``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..platforms.configuration import Configuration
from ..quantities import FloatArray, ScalarOrArray, as_float_array, is_scalar
from ..exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..schedules.base import SpeedSchedule

__all__ = [
    "expected_time",
    "expected_energy",
    "expected_time_single_speed",
    "expected_reexecutions",
    "time_overhead",
    "energy_overhead",
    "expected_time_schedule",
    "expected_energy_schedule",
]


def _validate(work: ScalarOrArray, sigma1: float, sigma2: float) -> FloatArray:
    w = as_float_array(work)
    if np.any(w <= 0):
        raise InvalidParameterError("work must be > 0")
    if sigma1 <= 0 or sigma2 <= 0:
        raise InvalidParameterError("speeds must be > 0")
    return w


def expected_time_single_speed(
    cfg: Configuration, work: ScalarOrArray, sigma: float
) -> ScalarOrArray:
    """Proposition 1: exact expected pattern time with a single speed.

    Equivalent to ``expected_time(cfg, work, sigma, sigma)`` — the
    separate entry point exists because the paper states it separately
    and the identity is worth a regression test.
    """
    w = _validate(work, sigma, sigma)
    lam = cfg.lam
    with np.errstate(over="ignore"):
        growth = np.exp(lam * w / sigma)
    t = (
        cfg.checkpoint_time
        + growth * (w + cfg.verification_time) / sigma
        + (growth - 1.0) * cfg.recovery_time
    )
    return float(t) if is_scalar(work) else t


def expected_time(
    cfg: Configuration, work: ScalarOrArray, sigma1: float, sigma2: float | None = None
) -> ScalarOrArray:
    """Proposition 2: exact expected pattern time with two speeds.

    ``sigma2 = None`` defaults to ``sigma1``.  The re-execution factor
    ``(1 - e^{-lam W/s1}) e^{lam W/s2}`` is the probability of a first
    failure times the expected geometric number of sigma2 attempts.
    """
    if sigma2 is None:
        sigma2 = sigma1
    w = _validate(work, sigma1, sigma2)
    lam = cfg.lam
    V = cfg.verification_time
    p1 = -np.expm1(-lam * w / sigma1)  # 1 - e^{-lam W / s1}
    # exp overflows to +inf for extreme lam*W, which is the correct
    # limit (re-executions never succeed, the expectation diverges).
    with np.errstate(over="ignore"):
        retry = p1 * np.exp(lam * w / sigma2)
    t = (
        cfg.checkpoint_time
        + (w + V) / sigma1
        + retry * (cfg.recovery_time + (w + V) / sigma2)
    )
    return float(t) if is_scalar(work) else t


def expected_energy(
    cfg: Configuration, work: ScalarOrArray, sigma1: float, sigma2: float | None = None
) -> ScalarOrArray:
    """Proposition 3: exact expected pattern energy (mJ) with two speeds.

    Checkpoint/recovery segments draw ``Pio + Pidle``; computation and
    verification at speed ``s`` draw ``kappa s^3 + Pidle``.
    """
    if sigma2 is None:
        sigma2 = sigma1
    w = _validate(work, sigma1, sigma2)
    lam = cfg.lam
    V = cfg.verification_time
    pm = cfg.power
    p_io = pm.io_total_power()
    p1cpu = pm.compute_power(sigma1)
    p2cpu = pm.compute_power(sigma2)
    with np.errstate(over="ignore"):
        retry = -np.expm1(-lam * w / sigma1) * np.exp(lam * w / sigma2)
    e = (
        (cfg.checkpoint_time + retry * cfg.recovery_time) * p_io
        + (w + V) / sigma1 * p1cpu
        + (w + V) / sigma2 * retry * p2cpu
    )
    return float(e) if is_scalar(work) else e


def expected_reexecutions(
    cfg: Configuration, work: ScalarOrArray, sigma1: float, sigma2: float | None = None
) -> ScalarOrArray:
    """Expected number of re-executions (sigma2 attempts) per pattern.

    The first execution fails with probability ``p1 = 1 - e^{-lam W/s1}``;
    each subsequent attempt at ``sigma2`` succeeds with probability
    ``q2 = e^{-lam W/s2}``, so the expected count of sigma2 attempts is
    ``p1 / q2 = p1 * e^{lam W / s2}`` (a geometric series).  Useful as a
    simulator cross-check.
    """
    if sigma2 is None:
        sigma2 = sigma1
    w = _validate(work, sigma1, sigma2)
    lam = cfg.lam
    with np.errstate(over="ignore"):
        n = -np.expm1(-lam * w / sigma1) * np.exp(lam * w / sigma2)
    return float(n) if is_scalar(work) else n


def time_overhead(
    cfg: Configuration, work: ScalarOrArray, sigma1: float, sigma2: float | None = None
) -> ScalarOrArray:
    """Exact expected time per unit of work, ``T(W, s1, s2) / W``.

    This is the quantity bounded by ``rho`` in the BiCrit problem; for
    long-lasting applications the expected makespan is
    ``time_overhead * W_base`` (Section 2.3).
    """
    w = as_float_array(work)
    r = expected_time(cfg, work, sigma1, sigma2) / w
    return float(r) if is_scalar(work) else r


def energy_overhead(
    cfg: Configuration, work: ScalarOrArray, sigma1: float, sigma2: float | None = None
) -> ScalarOrArray:
    """Exact expected energy per unit of work, ``E(W, s1, s2) / W`` (mJ).

    The BiCrit objective; the expected application energy is
    ``energy_overhead * W_base`` (Section 2.3).
    """
    w = as_float_array(work)
    r = expected_energy(cfg, work, sigma1, sigma2) / w
    return float(r) if is_scalar(work) else r


# ----------------------------------------------------------------------
# Schedule-aware numeric path (per-attempt speeds)
# ----------------------------------------------------------------------
def expected_time_schedule(
    cfg: Configuration, schedule: "SpeedSchedule", work: ScalarOrArray
) -> ScalarOrArray:
    """Exact expected pattern time under a per-attempt speed schedule.

    Generalises Propositions 1/2: with ``TwoSpeed(s1, s2)`` this equals
    :func:`expected_time` and with ``Constant(s)`` it equals
    :func:`expected_time_single_speed`; arbitrary schedules are summed
    attempt-by-attempt with an exact geometric tail (see
    :mod:`repro.schedules.evaluator`).
    """
    from ..schedules.evaluator import expected_time_schedule as _impl

    return _impl(cfg, schedule, work)


def expected_energy_schedule(
    cfg: Configuration, schedule: "SpeedSchedule", work: ScalarOrArray
) -> ScalarOrArray:
    """Exact expected pattern energy (mJ) under a per-attempt schedule.

    The Proposition-3 analogue for arbitrary schedules (silent errors
    at the configuration's rate; for a fail-stop/silent mix see
    :func:`repro.failstop.exact.expected_time_schedule`).
    """
    from ..schedules.evaluator import expected_energy_schedule as _impl

    return _impl(cfg, schedule, work)
