"""First-order (Taylor) overhead approximations — Equations (2) and (3).

Using ``e^{lam W} = 1 + lam W + O(lam^2 W^2)`` the paper derives the
per-unit-work overheads in the canonical form

.. math::  x + y W + z / W + O(\\lambda^2 W),

which is minimised at ``W = sqrt(z / y) = Theta(lambda^{-1/2})`` — the
Young/Daly shape.  The coefficients are:

Time (Eq. 2)::

    x_T = 1/s1 + lam * (R/s1 + V/(s1 s2))
    y_T = lam / (s1 s2)
    z_T = C + V/s1

Energy (Eq. 3)::

    x_E = (kappa s1^3 + Pidle)/s1
          + lam R (Pio + Pidle)/s1 + lam V (kappa s1^3 + Pidle)/(s1 s2)
    y_E = lam (kappa s2^3 + Pidle) / (s1 s2)
    z_E = C (Pio + Pidle) + V (kappa s1^3 + Pidle)/s1

The :class:`OverheadCoefficients` view exposes ``(x, y, z)`` directly;
Theorem 1 (see :mod:`repro.core.feasibility` / :mod:`repro.core.optimum`)
is phrased entirely in terms of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..platforms.configuration import Configuration
from ..quantities import ScalarOrArray, as_float_array, is_scalar
from ..exceptions import InvalidParameterError

__all__ = [
    "OverheadCoefficients",
    "time_coefficients",
    "energy_coefficients",
    "time_overhead_fo",
    "energy_overhead_fo",
]


@dataclass(frozen=True)
class OverheadCoefficients:
    """Coefficients of an ``x + y W + z / W`` overhead expansion.

    ``x`` is the W-independent floor, ``y`` the linear (failure
    re-execution) coefficient and ``z`` the per-pattern fixed cost.
    """

    x: float
    y: float
    z: float

    def evaluate(self, work: ScalarOrArray) -> ScalarOrArray:
        """Evaluate ``x + y W + z / W`` (broadcasts over ``work``)."""
        w = as_float_array(work)
        if np.any(w <= 0):
            raise InvalidParameterError("work must be > 0")
        v = self.x + self.y * w + self.z / w
        return float(v) if is_scalar(work) else v

    def unconstrained_minimiser(self) -> float:
        """``W* = sqrt(z / y)``, the Young/Daly-style interior optimum.

        Only meaningful when ``y > 0`` and ``z > 0`` (always true for the
        silent-error model; the combined-error model can make the linear
        term vanish — see Section 5.2 and :mod:`repro.failstop`).
        """
        if self.y <= 0:
            raise InvalidParameterError(
                f"no interior minimiser: linear coefficient y={self.y} <= 0"
            )
        if self.z <= 0:
            raise InvalidParameterError(
                f"no interior minimiser: fixed-cost coefficient z={self.z} <= 0"
            )
        return float(np.sqrt(self.z / self.y))

    def minimum_value(self) -> float:
        """Overhead at the interior optimum: ``x + 2 sqrt(y z)``."""
        return self.x + 2.0 * float(np.sqrt(self.y * self.z))


def time_coefficients(
    cfg: Configuration, sigma1: float, sigma2: float | None = None
) -> OverheadCoefficients:
    """Eq. (2) coefficients of the first-order time overhead."""
    if sigma2 is None:
        sigma2 = sigma1
    if sigma1 <= 0 or sigma2 <= 0:
        raise InvalidParameterError("speeds must be > 0")
    lam = cfg.lam
    V = cfg.verification_time
    x = 1.0 / sigma1 + lam * (cfg.recovery_time / sigma1 + V / (sigma1 * sigma2))
    y = lam / (sigma1 * sigma2)
    z = cfg.checkpoint_time + V / sigma1
    return OverheadCoefficients(x=x, y=y, z=z)


def energy_coefficients(
    cfg: Configuration, sigma1: float, sigma2: float | None = None
) -> OverheadCoefficients:
    """Eq. (3) coefficients of the first-order energy overhead (mJ/work)."""
    if sigma2 is None:
        sigma2 = sigma1
    if sigma1 <= 0 or sigma2 <= 0:
        raise InvalidParameterError("speeds must be > 0")
    lam = cfg.lam
    V = cfg.verification_time
    pm = cfg.power
    p_io = pm.io_total_power()
    p1 = pm.compute_power(sigma1)
    p2 = pm.compute_power(sigma2)
    x = (
        p1 / sigma1
        + lam * cfg.recovery_time * p_io / sigma1
        + lam * V * p1 / (sigma1 * sigma2)
    )
    y = lam * p2 / (sigma1 * sigma2)
    z = cfg.checkpoint_time * p_io + V * p1 / sigma1
    return OverheadCoefficients(x=x, y=y, z=z)


def time_overhead_fo(
    cfg: Configuration, work: ScalarOrArray, sigma1: float, sigma2: float | None = None
) -> ScalarOrArray:
    """First-order time overhead ``T(W,s1,s2)/W`` per Eq. (2)."""
    return time_coefficients(cfg, sigma1, sigma2).evaluate(work)


def energy_overhead_fo(
    cfg: Configuration, work: ScalarOrArray, sigma1: float, sigma2: float | None = None
) -> ScalarOrArray:
    """First-order energy overhead ``E(W,s1,s2)/W`` per Eq. (3).

    This is the objective the paper's solver minimises and the value its
    tables report (e.g. 416 mJ/work-unit for Hera/XScale at
    ``(0.4, 0.4)``); the exact Prop-3 value is available via
    :func:`repro.core.exact.energy_overhead`.
    """
    return energy_coefficients(cfg, sigma1, sigma2).evaluate(work)
