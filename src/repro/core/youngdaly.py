"""Classical checkpointing-period formulas (Young/Daly and the silent variant).

These are the reference points the paper extends (Section 1):

* **Young [1974] / Daly [2006]**, fail-stop errors: the time-optimal
  checkpointing *period* is ``T = sqrt(2 C / lambda)`` seconds — errors
  are detected immediately and, on average, strike at half the period.
* **Silent errors with verified checkpoints**: the period becomes
  ``T = sqrt((V + C) / lambda)`` — a silent error is only caught by the
  verification at the *end* of the period, so the whole period is lost
  and the missing factor 2 disappears (and ``C`` is replaced by the full
  fixed cost ``V + C``).

Both are periods in *seconds*; at speed ``sigma`` a period of ``T``
seconds carries ``W = sigma * T`` units of work, which is how these
compare against the paper's pattern sizes (``work_*`` helpers below).
"""

from __future__ import annotations

import math

from ..quantities import require_nonnegative, require_positive

__all__ = [
    "period_failstop",
    "period_silent",
    "work_failstop",
    "work_silent",
]


def period_failstop(checkpoint_time: float, error_rate: float) -> float:
    """Young/Daly period ``sqrt(2 C / lambda)`` (seconds) for fail-stop errors."""
    c = require_nonnegative(checkpoint_time, "checkpoint_time")
    lam = require_positive(error_rate, "error_rate")
    return math.sqrt(2.0 * c / lam)


def period_silent(
    checkpoint_time: float, verification_time: float, error_rate: float
) -> float:
    """Silent-error period ``sqrt((V + C) / lambda)`` (seconds).

    ``V`` here is the verification cost in seconds at the execution
    speed; at full speed it coincides with the platform's
    ``verification_time``.
    """
    c = require_nonnegative(checkpoint_time, "checkpoint_time")
    v = require_nonnegative(verification_time, "verification_time")
    lam = require_positive(error_rate, "error_rate")
    return math.sqrt((v + c) / lam)


def work_failstop(
    checkpoint_time: float, error_rate: float, speed: float = 1.0
) -> float:
    """Pattern *work* ``W = sigma * sqrt(2 C / lambda)`` at ``speed``.

    The exposure window of ``W`` work at speed ``sigma`` is ``W / sigma``
    seconds, so a period of ``T`` seconds corresponds to ``sigma * T``
    work units.
    """
    require_positive(speed, "speed")
    return speed * period_failstop(checkpoint_time, error_rate)


def work_silent(
    checkpoint_time: float,
    verification_time: float,
    error_rate: float,
    speed: float = 1.0,
) -> float:
    """Pattern work ``W = sigma * sqrt((C + V/sigma) / lambda)`` at ``speed``.

    This is the paper's single-speed, pure-time optimum: minimising the
    Eq. (2) time overhead with ``sigma1 = sigma2 = sigma`` gives
    ``W = sqrt(z_T / y_T) = sigma * sqrt((C + V/sigma) / lambda)``.  The
    verification cost seen at speed ``sigma`` is ``V / sigma`` seconds,
    so the period in seconds is ``W / sigma = sqrt((C + V/sigma)/lambda)``
    — :func:`period_silent` with the speed-scaled verification cost.  At
    ``sigma = 1`` this reduces to the classic ``sqrt((V + C)/lambda)``.
    """
    require_positive(speed, "speed")
    return speed * period_silent(checkpoint_time, verification_time / speed, error_rate)
