"""Declarative problem specs: *what* to solve, decoupled from *how*.

A :class:`Scenario` is a frozen description of one BiCrit instance —
configuration, performance bound, error-model mode, optional speed
restrictions — with no solver logic of its own.  ``Scenario.solve``
routes it through the pluggable backend registry
(:mod:`repro.api.backends`) and memoises the result
(:mod:`repro.api.cache`), so a new kind of study composes out of
scenario fields instead of adding another top-level solve function.

Modes
-----
``silent``
    The paper's primary model (Sections 2-4): silent errors only,
    two-speed patterns.
``single-speed``
    The one-speed baseline (``sigma1 = sigma2`` diagonal).
``combined``
    Section 5: a fail-stop/silent mix parameterised by
    ``failstop_fraction`` in [0, 1].
``failstop``
    Sugar for the pure fail-stop limit (``failstop_fraction = 1``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..errors.combined import CombinedErrors
from ..errors.models import (
    ArrivalProcess,
    ErrorModel,
    as_error_model,
    collapse_memoryless,
)
from ..exceptions import InfeasibleBoundError, InvalidParameterError
from ..platforms.catalog import get_configuration
from ..platforms.configuration import Configuration
from ..quantities import require_positive
from ..schedules.base import SpeedSchedule, as_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import SolveCache
    from .result import Result

__all__ = ["MODES", "Scenario"]

#: The supported scenario modes.
MODES: tuple[str, ...] = ("silent", "single-speed", "combined", "failstop")

#: Modes that need a combined-error model.
_COMBINED_MODES = frozenset({"combined", "failstop"})


def _resolve_cache(
    cache: "SolveCache | bool | None", default: "SolveCache | None"
) -> "SolveCache | None":
    """Map the ``cache`` argument convention to a cache object or None.

    ``True`` -> the process-wide default, ``False``/``None`` -> no
    caching, a :class:`SolveCache` -> itself.  (An *empty* SolveCache is
    falsy via ``__len__``, so truthiness tests must not be used here.)
    """
    if cache is True:
        return default
    if cache is False or cache is None:
        return None
    return cache


@dataclass(frozen=True)
class Scenario:
    """One declarative BiCrit problem instance.

    Parameters
    ----------
    config:
        A :class:`~repro.platforms.configuration.Configuration` or a
        catalog name such as ``"hera-xscale"``.
    rho:
        The performance bound (admissible expected time per work unit).
    mode:
        One of :data:`MODES`; selects the error model / baseline.
    failstop_fraction:
        ``f`` in [0, 1] for ``combined`` mode (required there;
        forced to 1 in ``failstop`` mode, 0 otherwise).
    error_rate:
        Optional override of the configuration's error rate ``lambda``.
    speeds:
        Optional restriction of the first-speed choices.
    sigma2_choices:
        Optional restriction of the re-execution-speed choices.
    schedule:
        Optional per-attempt re-execution speed policy — a
        :class:`~repro.schedules.base.SpeedSchedule` or a spec string
        such as ``"two:0.4,0.6"`` / ``"geom:0.4,1.5,1"``.  A scheduled
        scenario pins every attempt speed, so it is exclusive with the
        ``speeds``/``sigma2_choices`` enumeration restrictions.  By
        default two-speed schedules route to the ``schedule`` backend
        (closed-form fast paths, byte-identical to the legacy solvers)
        and general schedules to the vectorised ``schedule-grid``
        backend, which batches whole studies in broadcast passes.
    errors:
        Optional explicit error model — a renewal
        :class:`~repro.errors.models.ErrorModel`, a bare
        :class:`~repro.errors.models.ArrivalProcess` (silent-only), a
        legacy :class:`~repro.errors.combined.CombinedErrors`, or a
        spec string such as ``"weibull:shape=0.7,mtbf=5e3,failstop=0.2"``
        (see ``repro errors``).  The model carries its own rate and
        fail-stop split, so it is exclusive with ``failstop_fraction``
        / ``error_rate`` and requires the default mode.  Memoryless
        (``exp:``) models keep the closed-form fast paths
        byte-identically; other renewal families route through the
        schedule backends — with a ``schedule`` the per-attempt policy
        is solved directly, without one the DVFS speed pairs are
        enumerated as two-speed schedules in one batched
        ``schedule-grid`` pass.
    backend:
        Preferred backend registry name; ``None`` picks the mode's
        default (``combined`` for combined/failstop modes, else
        ``firstorder``).
    label:
        Free-form tag carried into results (handy in study grids).

    Examples
    --------
    >>> Scenario(config="hera-xscale", rho=3.0).solve().best.speed_pair
    (0.4, 0.4)
    """

    config: Configuration | str
    rho: float
    mode: str = "silent"
    failstop_fraction: float | None = None
    error_rate: float | None = None
    speeds: tuple[float, ...] | None = None
    sigma2_choices: tuple[float, ...] | None = None
    schedule: SpeedSchedule | str | None = None
    errors: "ErrorModel | ArrivalProcess | CombinedErrors | str | None" = None
    backend: str | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        require_positive(self.rho, "rho")
        if self.mode not in MODES:
            raise InvalidParameterError(
                f"unknown scenario mode {self.mode!r}; valid modes: {', '.join(MODES)}"
            )
        if self.schedule is not None:
            object.__setattr__(self, "schedule", as_schedule(self.schedule))
            if self.mode == "single-speed":
                raise InvalidParameterError(
                    "single-speed mode enumerates the diagonal; use a "
                    "Constant schedule with mode='silent' instead"
                )
            if self.speeds is not None or self.sigma2_choices is not None:
                raise InvalidParameterError(
                    "a schedule pins every attempt speed; speeds/"
                    "sigma2_choices restrictions do not apply"
                )
        if self.errors is not None:
            object.__setattr__(self, "errors", as_error_model(self.errors))
            if self.mode != "silent":
                raise InvalidParameterError(
                    f"an explicit error model carries its own rate and "
                    f"fail-stop split; leave mode at its default instead of "
                    f"{self.mode!r}"
                )
            if self.failstop_fraction is not None:
                raise InvalidParameterError(
                    "failstop_fraction conflicts with an explicit error "
                    "model; put failstop=f in the model spec instead"
                )
            if self.error_rate is not None:
                raise InvalidParameterError(
                    "error_rate conflicts with an explicit error model; "
                    "the model carries its own rate (mtbf=/rate=/scale=)"
                )
        if self.speeds is not None:
            object.__setattr__(self, "speeds", tuple(float(s) for s in self.speeds))
        if self.sigma2_choices is not None:
            object.__setattr__(
                self, "sigma2_choices", tuple(float(s) for s in self.sigma2_choices)
            )
        if self.error_rate is not None:
            require_positive(self.error_rate, "error_rate")
        f = self.failstop_fraction
        if f is not None and not 0.0 <= f <= 1.0:
            raise InvalidParameterError(
                f"failstop_fraction must be in [0, 1], got {f!r}"
            )
        if self.mode == "combined" and f is None:
            raise InvalidParameterError(
                "combined mode requires an explicit failstop_fraction"
            )
        if self.mode == "failstop" and f not in (None, 1.0):
            raise InvalidParameterError(
                f"failstop mode implies failstop_fraction=1, got {f!r}; "
                f"use mode='combined' for partial fractions"
            )
        if self.mode not in _COMBINED_MODES and f not in (None, 0.0):
            raise InvalidParameterError(
                f"failstop_fraction is only meaningful in combined/failstop "
                f"modes, not {self.mode!r}"
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def resolved_config(self) -> Configuration:
        """The concrete configuration: catalog names resolved, the
        ``error_rate`` override applied."""
        cfg = self.config
        if isinstance(cfg, str):
            cfg = get_configuration(cfg)
        if self.error_rate is not None:
            cfg = cfg.with_error_rate(self.error_rate)
        return cfg

    @property
    def effective_failstop_fraction(self) -> float:
        """The fail-stop fraction the mode (or explicit model) implies."""
        if self.errors is not None:
            return self.errors.failstop_fraction
        if self.mode == "failstop":
            return 1.0
        if self.mode == "combined":
            return float(self.failstop_fraction)  # validated non-None
        return 0.0

    def resolved_errors(self) -> CombinedErrors | ErrorModel | None:
        """The error model the solve runs under.

        An explicit ``errors`` model wins: memoryless models collapse to
        their byte-identical :class:`CombinedErrors` (so the legacy
        closed-form paths apply bit for bit), other renewal families
        come back as the :class:`ErrorModel` itself.  Without one, the
        mode decides: ``None`` for the silent-only modes (solvers then
        use the configuration's own rate), a :class:`CombinedErrors`
        for the combined/failstop modes.
        """
        if self.errors is not None:
            return collapse_memoryless(self.errors)
        if self.mode not in _COMBINED_MODES:
            return None
        rate = self.error_rate
        if rate is None:
            rate = self.resolved_config().lam
        return CombinedErrors(
            total_rate=rate, failstop_fraction=self.effective_failstop_fraction
        )

    @property
    def default_backend(self) -> str:
        """Registry name used when neither the scenario nor the caller
        names a backend."""
        if self.errors is not None:
            # Explicit error models live in the schedule subsystem: the
            # scalar backend keeps the closed-form fast path for
            # memoryless two-speed scenarios; everything else — general
            # schedules, renewal families, and schedule-less scenarios
            # (solved by enumerating speed pairs as two-speed
            # schedules) — batches through the vectorised kernel.
            if (
                self.schedule is not None
                and self.schedule.as_two_speed() is not None
                and self.errors.is_memoryless
            ):
                return "schedule"
            return "schedule-grid"
        if self.schedule is not None:
            # Two-speed schedules keep the scalar backend's closed-form
            # fast paths; general schedules go to the vectorised batch
            # kernel so Study grids solve in broadcast passes.
            if self.schedule.as_two_speed() is not None:
                return "schedule"
            return "schedule-grid"
        return "combined" if self.mode in _COMBINED_MODES else "firstorder"

    def resolve_backend_name(self, override: str | None = None) -> str:
        """The backend this scenario will be solved with."""
        return override or self.backend or self.default_backend

    def cache_key(self) -> tuple:
        """The solve-relevant identity of this scenario.

        The memo cache keys on this tuple (plus the backend name), not
        on the scenario itself: the free-form ``label`` and the
        ``backend`` *preference* cannot change a solution, so scenarios
        differing only in those share one cache entry — a study that
        labels its grid points still replays an earlier unlabelled
        solve.  Catalog names are resolved first, so
        ``Scenario(config="hera-xscale", ...)`` and the same scenario
        built from ``get_configuration("hera-xscale")`` also share an
        entry, and the ``error_rate`` override is folded into the
        resolved configuration.  Schedules hash canonically, keeping
        the ``TwoSpeed(s, s) == Constant(s)`` sharing of PR 2, and
        error models hash by their canonical (family, parameters,
        split) identity, so the same model written as different spec
        strings (``mtbf=`` vs ``scale=``) shares one entry.
        """
        return (
            "scenario",
            self.resolved_config(),
            self.rho,
            self.mode,
            self.effective_failstop_fraction,
            self.speeds,
            self.sigma2_choices,
            self.schedule,
            self.errors,
        )

    def describe(self) -> str:
        """Short human-readable tag for logs and CSV rows."""
        cfg = self.config if isinstance(self.config, str) else self.config.name
        bits = [f"{cfg}", f"rho={self.rho:g}", self.mode]
        if self.mode in _COMBINED_MODES:
            bits.append(f"f={self.effective_failstop_fraction:g}")
        if self.error_rate is not None:
            bits.append(f"lambda={self.error_rate:g}")
        if self.errors is not None:
            bits.append(self.errors.spec())
        if self.schedule is not None:
            bits.append(self.schedule.spec())
        if self.label:
            bits.append(self.label)
        return " ".join(bits)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        backend: str | None = None,
        *,
        cache: "bool | SolveCache" = True,
    ) -> "Result":
        """Solve this scenario through the backend registry.

        Parameters
        ----------
        backend:
            Registry name override; defaults to ``self.backend`` or the
            mode's default backend.
        cache:
            ``True`` (default) memoises in the process-wide cache,
            ``False`` disables memoisation, and a
            :class:`~repro.api.cache.SolveCache` instance uses that
            private cache.

        Raises
        ------
        InfeasibleBoundError
            When no candidate satisfies ``rho`` (matching the legacy
            ``solve_*`` contracts).  Infeasible outcomes are cached
            like feasible ones — a repeated solve of a known-infeasible
            scenario replays the verdict (and re-raises) without
            re-solving.
        UnknownBackendError, UnsupportedScenarioError
            On bad routing.
        """
        from .backends import get_backend
        from .cache import DEFAULT_CACHE

        name = self.resolve_backend_name(backend)
        cache_obj = _resolve_cache(cache, DEFAULT_CACHE)
        if cache_obj is not None:
            hit = cache_obj.get(self, name)
            if hit is not None:
                # Replay under *this* scenario: cache keys are canonical
                # (e.g. TwoSpeed(s, s) == Constant(s)), so the stored
                # result may carry an equivalent-but-differently-spelled
                # spec, and exports must show what the caller wrote.
                result = replace(
                    hit,
                    scenario=self,
                    provenance=replace(hit.provenance, cache_hit=True, wall_time=0.0),
                )
                return result.require()

        solver = get_backend(name)
        t0 = time.perf_counter()
        try:
            result = solver.solve(self)
        except InfeasibleBoundError as exc:
            # Infeasibility is a solve outcome, not a transient: cache
            # the best-less verdict so a repeated or resumed run never
            # re-solves a known-infeasible point, then keep the raising
            # contract.
            if cache_obj is not None:
                wall = time.perf_counter() - t0
                verdict = solver.infeasible_result(self, exc)
                verdict = replace(
                    verdict, provenance=replace(verdict.provenance, wall_time=wall)
                )
                cache_obj.put(self, name, verdict)
            raise
        wall = time.perf_counter() - t0
        result = replace(result, provenance=replace(result.provenance, wall_time=wall))
        if cache_obj is not None:
            cache_obj.put(self, name, result)
        return result.require()

    # -- grid helpers ----------------------------------------------------
    def with_rho(self, rho: float) -> "Scenario":
        """A copy of this scenario at a different bound."""
        return replace(self, rho=rho)

    def with_mode(self, mode: str) -> "Scenario":
        """A copy of this scenario in a different mode.

        The fail-stop fraction is dropped when the target mode fixes or
        has no use for it (``failstop`` implies 1, silent modes take
        none); switching *to* ``combined`` keeps the current effective
        fraction — from a silent mode there is none to keep, so a
        fraction-less scenario cannot switch to ``combined`` (the
        validation error says to supply one explicitly).
        """
        if mode == "combined":
            f = (
                self.effective_failstop_fraction
                if self.mode in _COMBINED_MODES
                else self.failstop_fraction
            )
        else:
            f = None
        return replace(self, mode=mode, failstop_fraction=f)

    def with_schedule(self, schedule: "SpeedSchedule | str | None") -> "Scenario":
        """A copy of this scenario under a different speed schedule
        (``None`` reverts to speed-pair enumeration)."""
        return replace(self, schedule=schedule)

    def with_errors(
        self, errors: "ErrorModel | ArrivalProcess | CombinedErrors | str | None"
    ) -> "Scenario":
        """A copy of this scenario under a different explicit error
        model (``None`` reverts to the mode's error semantics)."""
        return replace(self, errors=errors)
