"""Zero-copy scenario handoff for process-pool shards.

``ExecutionPlan.execute(processes=...)`` used to pickle a full list of
:class:`~repro.api.scenario.Scenario` objects into every worker task —
for wide grids that serialises the same configurations, schedules and
error models over and over, once per shard.  This module replaces that
with a **columnar shared-memory pack**:

* the numeric per-scenario columns (``rho``, ``failstop_fraction``,
  ``error_rate``) are written once into a POSIX shared-memory block as
  raw ``float64`` arrays — workers map them zero-copy;
* the object-valued fields (configuration, mode, speed restrictions,
  schedule, error model, backend preference, label) are deduplicated
  into small *pools* of distinct values, pickled once into the same
  block; per-scenario ``int64`` pool-index columns say which entry
  each scenario uses — a ten-thousand-scenario grid over eight
  configurations serialises eight configurations, not ten thousand;
* a worker task then costs only ``(shm name, layout, row indices,
  backend name)`` — the scenarios themselves never cross the pipe.

Workers attach the block read-only, rebuild their shard's scenarios
(through the ordinary :class:`Scenario` constructor, so validation and
normalisation are identical to the parent's), solve through the
registry, and return results.  Segment lifetime stays with the parent:
it creates the block before submitting tasks and unlinks it after the
pool drains (see :func:`_attach` for why workers must not touch the
resource tracker).

When shared memory is unavailable (no ``/dev/shm``, permissions, or
the ``REPRO_DISABLE_SHM`` environment variable for tests),
:meth:`ScenarioPack.create` returns ``None`` and the caller falls back
to the legacy pickled handoff — behaviour, results and ordering are
identical either way.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from .backends import get_backend
from .result import Result
from .scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.shared_memory import SharedMemory

__all__ = ["ScenarioPack", "PackLayout", "solve_pack_shard", "SHM_DISABLE_ENV"]

#: Setting this environment variable (to any non-empty value) disables
#: the shared-memory handoff, forcing the legacy pickled path — the
#: switch the fallback tests flip.
SHM_DISABLE_ENV = "REPRO_DISABLE_SHM"

#: Column order of the float block (``NaN`` encodes ``None`` for the
#: optional columns; both are validated positive elsewhere, so NaN can
#: never collide with a real value).
_FLOAT_COLS = ("rho", "failstop_fraction", "error_rate")

#: Column order of the pool-index block (``-1`` encodes ``None``).
_POOL_COLS = (
    "config",
    "mode",
    "speeds",
    "sigma2_choices",
    "schedule",
    "errors",
    "backend",
    "label",
)


@dataclass(frozen=True)
class PackLayout:
    """Byte layout of one pack's shared-memory block.

    Small and picklable — this (plus the block name and the row
    indices) is the whole per-task payload.
    """

    n: int
    float_off: int
    int_off: int
    blob_off: int
    blob_len: int


def _attach(name: str) -> "SharedMemory":
    """Attach an existing block without adopting its lifetime.

    On Python < 3.13 attaching also registers the segment with the
    resource tracker (bpo-38119; ``track=False`` exists only in
    3.13+).  That is safe here *because* pool workers inherit the
    parent's tracker (both ``fork`` and ``spawn`` forward its fd), so
    the tracker's name cache is one shared set: the attach-side
    registration collapses with the creator's, and the parent's
    ``unlink()`` clears it exactly once.  Workers must therefore *not*
    unregister — that would drop the parent's entry and turn the final
    unlink into a tracker error.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


@dataclass
class ScenarioPack:
    """A plan's unique scenarios, packed columnar into shared memory.

    Created by the parent (:meth:`create`), mapped by workers
    (:func:`solve_pack_shard`), disposed by the parent
    (:meth:`dispose`) once the pool has drained.
    """

    shm: "SharedMemory"
    layout: PackLayout

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, scenarios: Sequence[Scenario]) -> "ScenarioPack | None":
        """Pack ``scenarios`` into a fresh shared-memory block.

        Returns ``None`` — caller falls back to pickled handoff — when
        there is nothing to pack, shared memory is unavailable on this
        platform, or :data:`SHM_DISABLE_ENV` is set.
        """
        if not scenarios or os.environ.get(SHM_DISABLE_ENV):
            return None
        n = len(scenarios)

        floats = np.empty((len(_FLOAT_COLS), n), dtype=np.float64)
        ints = np.empty((len(_POOL_COLS), n), dtype=np.int64)
        pools: list[list[object]] = [[] for _ in _POOL_COLS]
        interns: list[dict[object, int]] = [{} for _ in _POOL_COLS]
        for j, sc in enumerate(scenarios):
            floats[0, j] = sc.rho
            floats[1, j] = (
                np.nan if sc.failstop_fraction is None else sc.failstop_fraction
            )
            floats[2, j] = np.nan if sc.error_rate is None else sc.error_rate
            values = (
                sc.config,
                sc.mode,
                sc.speeds,
                sc.sigma2_choices,
                sc.schedule,
                sc.errors,
                sc.backend,
                sc.label,
            )
            for c, value in enumerate(values):
                if value is None:
                    ints[c, j] = -1
                    continue
                pos = interns[c].get(value)
                if pos is None:
                    pos = len(pools[c])
                    interns[c][value] = pos
                    pools[c].append(value)
                ints[c, j] = pos

        blob = pickle.dumps(pools, protocol=pickle.HIGHEST_PROTOCOL)
        float_off = 0
        int_off = float_off + floats.nbytes
        blob_off = int_off + ints.nbytes
        layout = PackLayout(
            n=n,
            float_off=float_off,
            int_off=int_off,
            blob_off=blob_off,
            blob_len=len(blob),
        )
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=blob_off + len(blob))
        except (ImportError, OSError):  # pragma: no cover - platform-specific
            return None
        try:
            _fill_block(shm, layout, floats, ints, blob)
        except BaseException:
            # The segment exists in /dev/shm the moment create=True
            # succeeds: if filling it fails, it must be unlinked here
            # or it leaks until reboot (nothing else knows its name).
            try:
                shm.close()
            except BufferError:
                # The in-flight traceback pins _fill_block's frame —
                # and with it any numpy views over shm.buf — while
                # this handler runs, so close() can refuse.  The
                # mapping dies with the process; the unlink below is
                # the actual leak fix.
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            raise
        return cls(shm=shm, layout=layout)

    # ------------------------------------------------------------------
    def task(self, indices: Sequence[int]) -> tuple[str, PackLayout, list[int]]:
        """The picklable per-shard payload for :func:`solve_pack_shard`."""
        return (self.shm.name, self.layout, list(indices))

    def dispose(self) -> None:
        """Close and unlink the block (parent side, after the pool)."""
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _fill_block(
    shm: "SharedMemory",
    layout: PackLayout,
    floats: np.ndarray,
    ints: np.ndarray,
    blob: bytes,
) -> None:
    """Write the packed columns into a freshly created block.

    Module-level so the leak fault-injection test can monkeypatch it to
    raise mid-fill; :meth:`ScenarioPack.create` owns the cleanup.
    """
    buf = np.ndarray(
        floats.shape, dtype=np.float64, buffer=shm.buf, offset=layout.float_off
    )
    buf[:] = floats
    ibuf = np.ndarray(
        ints.shape, dtype=np.int64, buffer=shm.buf, offset=layout.int_off
    )
    ibuf[:] = ints
    shm.buf[layout.blob_off : layout.blob_off + layout.blob_len] = blob


def _read_rows(
    shm: "SharedMemory", layout: PackLayout, indices: Sequence[int]
) -> list[Scenario]:
    """Decode the requested rows of an attached pack block.

    The zero-copy numpy views over ``shm.buf`` are locals of this
    frame: by the time the caller closes the block they are gone, so
    the close cannot trip over exported buffer views.
    """
    floats = np.ndarray(
        (len(_FLOAT_COLS), layout.n),
        dtype=np.float64,
        buffer=shm.buf,
        offset=layout.float_off,
    )
    ints = np.ndarray(
        (len(_POOL_COLS), layout.n),
        dtype=np.int64,
        buffer=shm.buf,
        offset=layout.int_off,
    )
    blob = bytes(shm.buf[layout.blob_off : layout.blob_off + layout.blob_len])
    pools: list[list[object]] = pickle.loads(blob)

    def pool(c: int, j: int) -> object | None:
        k = int(ints[c, j])
        return None if k < 0 else pools[c][k]

    out: list[Scenario] = []
    for j in indices:
        fraction = float(floats[1, j])
        rate = float(floats[2, j])
        out.append(
            Scenario(
                config=pool(0, j),  # type: ignore[arg-type]
                rho=float(floats[0, j]),
                mode=pool(1, j),  # type: ignore[arg-type]
                failstop_fraction=None if np.isnan(fraction) else fraction,
                error_rate=None if np.isnan(rate) else rate,
                speeds=pool(2, j),  # type: ignore[arg-type]
                sigma2_choices=pool(3, j),  # type: ignore[arg-type]
                schedule=pool(4, j),  # type: ignore[arg-type]
                errors=pool(5, j),  # type: ignore[arg-type]
                backend=pool(6, j),  # type: ignore[arg-type]
                label=pool(7, j),  # type: ignore[arg-type]
            )
        )
    return out


def unpack_scenarios(
    shm_name: str, layout: PackLayout, indices: Sequence[int]
) -> list[Scenario]:
    """Rebuild the scenarios at ``indices`` from a pack's block.

    Runs in the worker: maps the columns zero-copy, reads only the
    requested rows, and goes back through the :class:`Scenario`
    constructor so the rebuilt scenarios pass the same validation and
    normalisation as the originals (round-trip tests pin equality).
    """
    shm = _attach(shm_name)
    try:
        return _read_rows(shm, layout, indices)
    finally:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - only on decode errors
            # A traceback from _read_rows still pins its frame (and the
            # buffer views) while this finally runs; never let the
            # close mask the real error — the mapping dies with the
            # worker process.
            pass


def solve_pack_shard(
    shm_name: str, layout: PackLayout, indices: list[int], backend_name: str
) -> list[Result]:
    """Worker entry point: rebuild one shard from the pack and solve it
    through the named backend's batch path (module-level so process
    pools can pickle it — the shared-memory twin of
    :func:`repro.api.study._solve_shard`)."""
    return get_backend(backend_name).solve_batch(
        unpack_scenarios(shm_name, layout, indices)
    )
