"""Unified solve API: declarative scenarios, pluggable backends, batches.

This package is the single front door to every solver in the library:

* :class:`~repro.api.scenario.Scenario` — a declarative problem spec
  (configuration + bound + error-model mode + optional restrictions);
* :mod:`~repro.api.backends` — the ``SolverBackend`` registry
  (``firstorder``, ``exact``, ``combined``, vectorised ``grid``,
  per-attempt ``schedule``, vectorised ``schedule-grid``);
* :class:`~repro.api.study.Study` — a batch of scenarios over a grid
  or a sweep axis, solved with caching, vectorised batching and
  optional multi-process fan-out;
* :class:`~repro.api.experiment.Experiment` — the lazy, composable
  pipeline on top: fluent grid builders, an
  :class:`~repro.api.experiment.ExecutionPlan` that deduplicates and
  groups scenarios into batched backend calls, shard-parallel
  execution with cache-backed resume and progress callbacks, and
  analysis verbs (``.frontier()``, ``.savings()``, …) on the result;
* :class:`~repro.api.result.Result` / ``ResultSet`` — uniform outputs
  with provenance, a ``simulate()`` validation hook and conversions
  into the reporting layers;
* :mod:`~repro.api.cache` — per-scenario memoisation.

The legacy entry points (``solve_bicrit``, ``solve_bicrit_exact``,
``solve_bicrit_combined``, ``solve_single_speed``, ``run_sweep*``)
remain available as thin wrappers over this package.
"""

from .backends import (
    CombinedBackend,
    ExactBackend,
    FirstOrderBackend,
    GridBackend,
    ScheduleBackend,
    ScheduleGridBackend,
    SolverBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .cache import DEFAULT_CACHE, SolveCache, clear_default_cache
from .experiment import ExecutionPlan, Experiment, PlanGroup, PlanProgress
from .result import GridPoint, Provenance, Result, ResultSet
from .scenario import MODES, Scenario
from .study import Study

__all__ = [
    "MODES",
    "Scenario",
    "Study",
    "Experiment",
    "ExecutionPlan",
    "PlanGroup",
    "PlanProgress",
    "Result",
    "ResultSet",
    "Provenance",
    "GridPoint",
    "SolverBackend",
    "FirstOrderBackend",
    "ExactBackend",
    "CombinedBackend",
    "GridBackend",
    "ScheduleBackend",
    "ScheduleGridBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "SolveCache",
    "DEFAULT_CACHE",
    "clear_default_cache",
]
