"""Sweep-aware shard ordering for :class:`~repro.api.experiment.ExecutionPlan`.

The incremental solve tier (:mod:`repro.schedules.incremental`) gets
its leverage from *chains*: runs of scenarios that differ in exactly
one numeric field, solved in axis order so each point warm-starts from
its neighbour's optimum.  A plan's scenario order, however, is whatever
the experiment builder produced — a cartesian product iterates its axes
in declaration order, a ``concat`` interleaves grids — and sharding a
scrambled batch across transport workers splits chains mid-run, so the
warm state dies at every shard boundary.

This module recovers the sweep structure *before* sharding: scenarios
are keyed by their solve-relevant invariants (mode, platform constants,
schedule, renewal model, speed restrictions) and ordered
lexicographically by (invariants, total error rate, fail-stop mix,
rho) — rho last, matching the chain detection inside the solver — so
every detectable sweep comes out contiguous and monotone.  Contiguous
``_shard`` chunks then cut each chain at most once per worker instead
of everywhere.

:meth:`ExecutionPlan.execute` applies :func:`order_for_sweeps` to a
group's cache misses whenever the group's backend declares
``sweep_aware = True`` (the ``schedule-grid-incremental`` backend);
:func:`detect_sweeps` is the introspection face of the same ordering,
used by diagnostics and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..errors.combined import CombinedErrors

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scenario import Scenario

__all__ = [
    "SweepChain",
    "detect_sweeps",
    "order_for_sweeps",
    "scenario_features",
]


#: The ordered numeric axes of the planner key, rho last (a chain's
#: remaining fields are invariant, so these names what a chain sweeps).
_AXES = ("error_rate", "failstop_fraction", "rho")


def scenario_features(
    sc: "Scenario",
) -> tuple[tuple, tuple[float, float, float]]:
    """Split a scenario into (invariant key, numeric axes).

    The invariant key mirrors what the grid solver's row signature
    holds constant along a chain: platform constants (minus the error
    rate, which is a numeric axis even when it arrives folded into the
    configuration), the canonical schedule, the renewal model identity
    for non-memoryless families, mode and speed restrictions.  The
    numeric part is ``(total error rate, fail-stop fraction, rho)``.
    """
    cfg = sc.resolved_config()
    errors = sc.resolved_errors()
    if isinstance(errors, CombinedErrors):
        rate = errors.total_rate
        frac = errors.failstop_fraction
        model_key: object = None
    elif errors is None:
        # Silent-only: the solve reads the configuration's own rate.
        rate = cfg.lam
        frac = 0.0
        model_key = None
    else:
        # General renewal family: the model is part of the invariant
        # identity (rates live inside its parameters).
        rate = 0.0
        frac = 0.0
        model_key = errors
    invariant = (
        sc.mode,
        cfg.checkpoint_time,
        cfg.verification_time,
        cfg.recovery_time,
        cfg.processor,
        cfg.io_power,
        cfg.speeds,
        sc.speeds,
        sc.sigma2_choices,
        sc.schedule,
        model_key,
    )
    return invariant, (float(rate), float(frac), float(sc.rho))


def order_for_sweeps(
    scenarios: Sequence["Scenario"], indices: Sequence[int] | None = None
) -> list[int]:
    """Indices reordered so detectable sweeps are contiguous and
    monotone.

    ``indices`` selects a subset of ``scenarios`` (a plan group's cache
    misses); ``None`` means all of them.  The returned list is a
    permutation of the input indices: scenarios sharing their invariant
    key are grouped (first-appearance group order, so the result is
    deterministic) and sorted by (error rate, fail-stop fraction, rho)
    within the group — the same invariants-first, rho-last order the
    incremental solver chains by.
    """
    idxs = list(range(len(scenarios))) if indices is None else list(indices)
    group_ids: dict[tuple, int] = {}
    keyed: list[tuple[int, float, float, float, int]] = []
    for i in idxs:
        invariant, axes = scenario_features(scenarios[i])
        gid = group_ids.setdefault(invariant, len(group_ids))
        keyed.append((gid, *axes, i))
    keyed.sort()
    return [k[-1] for k in keyed]


@dataclass(frozen=True)
class SweepChain:
    """One detected sweep: a run of scenarios varying a single axis.

    ``axis`` is one of ``error_rate`` / ``failstop_fraction`` / ``rho``
    (or ``None`` for a singleton or pure-duplicate run), ``indices``
    are the member positions in sweep order, and ``lo``/``hi`` bound
    the swept values.
    """

    axis: str | None
    indices: tuple[int, ...]
    lo: float
    hi: float

    def __len__(self) -> int:
        return len(self.indices)


def detect_sweeps(
    scenarios: Sequence["Scenario"], indices: Sequence[int] | None = None
) -> tuple[SweepChain, ...]:
    """The sweep chains :func:`order_for_sweeps` makes contiguous.

    Orders the scenarios, then cuts the order into maximal runs whose
    consecutive members share the invariant key and differ in at most
    one numeric axis — the same axis throughout the run.  Useful to
    check *why* a grid does (or does not) benefit from the incremental
    backend: one chain per (secondary-axis value) is the expected shape
    of a 2-axis grid.
    """
    ordered = order_for_sweeps(scenarios, indices)
    chains: list[SweepChain] = []
    run: list[int] = []
    run_inv: tuple | None = None
    run_axes: list[tuple[float, float, float]] = []
    axis_id: int | None = None

    def close() -> None:
        if not run:
            return
        if axis_id is None:
            chains.append(
                SweepChain(
                    axis=None, indices=tuple(run), lo=float("nan"), hi=float("nan")
                )
            )
        else:
            vals = [a[axis_id] for a in run_axes]
            chains.append(
                SweepChain(
                    axis=_AXES[axis_id],
                    indices=tuple(run),
                    lo=min(vals),
                    hi=max(vals),
                )
            )

    for i in ordered:
        invariant, axes = scenario_features(scenarios[i])
        if run:
            assert run_inv is not None
            diffs = [
                j for j in range(3) if axes[j] != run_axes[-1][j]
            ]
            linkable = invariant == run_inv and len(diffs) <= 1
            if linkable and diffs:
                if axis_id is None:
                    axis_id = diffs[0]
                elif axis_id != diffs[0]:
                    linkable = False
            if not linkable:
                close()
                run = []
                run_axes = []
                axis_id = None
        run.append(i)
        run_axes.append(axes)
        run_inv = invariant
    close()
    return tuple(chains)
