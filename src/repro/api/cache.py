"""Per-scenario memoisation for the unified solve API.

Every scenario is a small frozen dataclass, hence hashable; a solve is
fully determined by ``(scenario identity, backend name)``.  Scenarios
expose that identity via ``cache_key()`` — the solve-relevant fields
only, so presentation-only differences (the free-form ``label``, the
``backend`` *preference*, a catalog name vs its resolved
configuration) share one entry; any other hashable key object is used
as-is.  The cache keeps the :class:`~repro.api.result.Result` of each
miss and replays it on subsequent identical solves with ``cache_hit``
provenance, which makes repeated sweeps (Pareto frontiers, figure
regeneration, interactive sessions) effectively free after the first
pass.

A process-wide :data:`DEFAULT_CACHE` backs ``Scenario.solve`` /
``Study.solve`` unless the caller supplies a private
:class:`SolveCache` (or disables caching with ``cache=False``).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable
from typing import TYPE_CHECKING
from ..exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .result import Result

__all__ = ["SolveCache", "DEFAULT_CACHE", "clear_default_cache"]


def _key(scenario: Hashable, backend: str) -> tuple[Hashable, str]:
    """The cache key of one solve.

    Objects implementing the ``cache_key()`` protocol (``Scenario``)
    are keyed by that canonical tuple; anything else hashable is keyed
    directly, so tests and custom callers can use sentinel keys.
    """
    keyfn = getattr(scenario, "cache_key", None)
    if callable(keyfn):
        return (keyfn(), backend)
    return (scenario, backend)


class SolveCache:
    """A bounded LRU memo of solve results keyed by (scenario, backend).

    Parameters
    ----------
    maxsize:
        Maximum number of retained results; the least-recently-*used*
        entry is evicted first (a hit refreshes an entry's recency, so
        the hot scenarios of a repeated sweep survive a long tail of
        one-off solves).  ``None`` means unbounded.

    Examples
    --------
    >>> cache = SolveCache(maxsize=2)
    >>> cache.stats()
    (0, 0)
    """

    def __init__(self, maxsize: int | None = 8192):
        if maxsize is not None and maxsize <= 0:
            raise InvalidParameterError("maxsize must be positive or None")
        self._maxsize = maxsize
        self._entries: OrderedDict[Hashable, "Result"] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._by_backend: dict[str, list[int]] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def maxsize(self) -> int | None:
        """The eviction bound (``None`` = unbounded)."""
        return self._maxsize

    @property
    def hits(self) -> int:
        """Number of successful lookups so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups so far."""
        return self._misses

    def stats(self) -> tuple[int, int]:
        """``(hits, misses)`` counters as a tuple."""
        return (self._hits, self._misses)

    def stats_by_backend(self) -> dict[str, tuple[int, int]]:
        """Per-backend ``{backend: (hits, misses)}`` breakdown.

        Backends appear in first-lookup order; the totals across all
        backends equal :meth:`stats`.  This is how the incremental
        tier's cache behaviour stays observable: a sweep rerun should
        show its hits under ``schedule-grid-incremental``, not merged
        into a global counter.
        """
        return {name: (h, m) for name, (h, m) in self._by_backend.items()}

    # ------------------------------------------------------------------
    def get(self, scenario: Hashable, backend: str) -> "Result | None":
        """Look up a prior result; counts a hit or a miss.

        A hit moves the entry to the most-recently-used position, so
        hot entries outlive the FIFO horizon of a long one-off tail.
        """
        key = _key(scenario, backend)
        result = self._entries.get(key)
        counters = self._by_backend.setdefault(backend, [0, 0])
        if result is None:
            self._misses += 1
            counters[1] += 1
        else:
            self._hits += 1
            counters[0] += 1
            self._entries.move_to_end(key)
        return result

    def put(self, scenario: Hashable, backend: str, result: "Result") -> None:
        """Store a result, evicting the least-recently-used entry when
        full.  Re-storing an existing key refreshes its recency."""
        key = _key(scenario, backend)
        if key not in self._entries and self._maxsize is not None:
            while len(self._entries) >= self._maxsize:
                self._entries.popitem(last=False)
        self._entries[key] = result
        self._entries.move_to_end(key)

    def invalidate_backend(self, backend: str) -> int:
        """Drop every entry produced under ``backend``; returns the
        count.  Used when a backend is re-registered under the same
        name so the replacement is actually consulted."""
        keys = [key for key in self._entries if key[1] == backend]
        for key in keys:
            del self._entries[key]
        return len(keys)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._by_backend.clear()


#: Process-wide cache used by ``Scenario.solve`` / ``Study.solve`` when
#: the caller does not pass a private cache.
DEFAULT_CACHE = SolveCache()


def clear_default_cache() -> None:
    """Reset :data:`DEFAULT_CACHE` (mainly for tests and benchmarks)."""
    DEFAULT_CACHE.clear()
