"""Pluggable solver backends behind a process-wide registry.

A backend turns a :class:`~repro.api.scenario.Scenario` into a
:class:`~repro.api.result.Result`.  Eight ship by default:

``firstorder``
    The paper's Theorem-1 closed form + O(K^2) enumeration
    (:mod:`repro.core.solver` / :mod:`repro.core.singlespeed`).
``exact``
    Numeric optimisation of the exact Propositions 2/3
    (:mod:`repro.core.numeric`).
``combined``
    Numeric solve with both error sources (:mod:`repro.failstop.solver`).
``grid``
    The vectorised Theorem-1 kernel (:mod:`repro.sweep.vectorized`),
    which solves whole scenario *batches* in a handful of broadcast
    NumPy ops — the fast path for ``Study`` grids.
``schedule``
    Per-attempt speed schedules (:mod:`repro.schedules`): two-speed
    schedules keep the legacy closed-form/pair paths (byte-identical
    results), general schedules go through the exact attempt-series
    evaluator + numeric constrained solve.
``schedule-grid``
    The vectorised schedule kernel (:mod:`repro.schedules.vectorized`):
    ``solve_batch`` stacks every general-schedule scenario into one
    :class:`~repro.schedules.vectorized.ScheduleGrid` and solves the
    whole batch in lockstep broadcast passes — the general-schedule
    analogue of ``grid``, and the default for scheduled scenarios whose
    policy is not expressible as a two-speed pair.
``schedule-grid-jit``
    The native-speed tier (:mod:`repro.schedules.jit`): identical batch
    splitting to ``schedule-grid`` but stacking into a
    :class:`~repro.schedules.jit.JitScheduleGrid`, whose hot
    evaluation runs through a numba-compiled kernel when numba is
    installed (``pip install repro[jit]``) and falls back to the
    byte-identical NumPy path when it is not.
``schedule-grid-incremental``
    The incremental (variational) tier
    (:mod:`repro.schedules.incremental`): identical batch splitting to
    ``schedule-grid`` but the lockstep solve runs through
    :func:`~repro.schedules.incremental.solve_schedule_grid_incremental`,
    which deduplicates repeated parameter rows, chains the batch along
    its detected sweep axes and warm-starts each point from
    interpolated anchor optima — validated seeds only, cold fallback
    otherwise.  The sweep-aware planner orders ``ExecutionPlan`` shards
    so chains stay contiguous for this backend.

Registering a new backend (``register_backend``) is the single
extension point for new solve strategies; every consumer (legacy
wrappers, sweeps, CLI, studies) routes through the registry.
"""

from __future__ import annotations

import abc
import time
from dataclasses import replace
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..core.numeric import ExactSolution, solve_pair_exact
from ..core.singlespeed import _solve_single_speed_direct
from ..core.solver import _solve_bicrit_direct, evaluate_pair
from ..errors.combined import CombinedErrors
from ..errors.models import ErrorModel
from ..exceptions import (
    InfeasibleBoundError,
    InvalidParameterError,
    UnknownBackendError,
    UnsupportedScenarioError,
)
from ..failstop.solver import CombinedSolution, solve_pair_combined
from ..platforms.configuration import Configuration
from ..schedules.base import TwoSpeed
from ..schedules.incremental import (
    DeltaScheduleGrid,
    IncrementalStats,
    solve_schedule_grid_incremental,
)
from ..schedules.jit import JitScheduleGrid
from ..schedules.solver import ScheduleSolution, solve_schedule
from ..schedules.vectorized import ScheduleGrid, ScheduleGridSolution, solve_schedule_grid
from ..sweep.vectorized import GridSolution, solve_bicrit_grid
from .result import GridPoint, Provenance, Result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scenario import Scenario

__all__ = [
    "SolverBackend",
    "FirstOrderBackend",
    "ExactBackend",
    "CombinedBackend",
    "GridBackend",
    "ScheduleBackend",
    "ScheduleGridBackend",
    "ScheduleGridJitBackend",
    "ScheduleGridIncrementalBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]


class SolverBackend(abc.ABC):
    """Interface every solver backend implements.

    Subclasses set ``name`` (the registry key) and ``modes`` (the
    scenario modes they accept) and implement :meth:`_solve`.
    Batch-capable backends additionally override :meth:`solve_batch`.
    """

    #: Registry key.
    name: str = "abstract"
    #: Scenario modes this backend accepts.
    modes: frozenset[str] = frozenset()
    #: Whether scenarios carrying a per-attempt speed schedule are
    #: accepted (only the ``schedule``/``schedule-grid`` backends
    #: understand them).
    handles_schedules: bool = False
    #: Whether scenarios carrying an explicit ``errors`` model are
    #: accepted.  The legacy backends bake exponential arrivals into
    #: their closed forms, so only the schedule backends — whose
    #: evaluator dispatches through the model's renewal primitives —
    #: opt in.
    handles_error_models: bool = False
    #: Whether this backend routes its hot path through an optional
    #: native (jit-compiled) kernel tier when one is importable.  A
    #: ``uses_jit`` backend must degrade gracefully — identical results
    #: through a pure-NumPy fallback — when the jit dependency is
    #: absent; :func:`repro.schedules.jit.jit_available` reports which
    #: tier is live.
    uses_jit: bool = False
    #: Whether this backend's batch path benefits from sweep-ordered
    #: input: ``ExecutionPlan`` keeps detected sweep chains contiguous
    #: (via :mod:`repro.api.sweep_planner`) when sharding to a
    #: sweep-aware backend, so warm state survives shard boundaries.
    sweep_aware: bool = False

    @property
    def batched(self) -> bool:
        """True when this backend overrides :meth:`solve_batch` with a
        real vectorised batch path (vs the default per-scenario loop).
        ``Study.solve(processes=...)`` shards whole batches to such
        backends instead of fanning out scenario by scenario."""
        return type(self).solve_batch is not SolverBackend.solve_batch

    # ------------------------------------------------------------------
    def supports(self, scenario: "Scenario") -> bool:
        """True when this backend can solve ``scenario``."""
        return self.unsupported_reason(scenario) is None

    def unsupported_reason(self, scenario: "Scenario") -> str | None:
        """Why ``scenario`` cannot be solved here (``None`` = it can)."""
        if scenario.mode not in self.modes:
            return (
                f"mode {scenario.mode!r} not in supported modes "
                f"{sorted(self.modes)}"
            )
        if scenario.schedule is not None and not self.handles_schedules:
            return "per-attempt speed schedules require the 'schedule' backend"
        if scenario.errors is not None and not self.handles_error_models:
            return (
                "explicit error models require the 'schedule'/'schedule-grid' "
                "backends (their evaluator dispatches through the model's "
                "renewal primitives)"
            )
        return None

    def check_supports(self, scenario: "Scenario") -> None:
        """Raise :class:`UnsupportedScenarioError` when unsupported."""
        reason = self.unsupported_reason(scenario)
        if reason is not None:
            raise UnsupportedScenarioError(self.name, reason)

    # ------------------------------------------------------------------
    def solve(self, scenario: "Scenario") -> Result:
        """Solve one scenario (raises on infeasible bounds)."""
        self.check_supports(scenario)
        return self._solve(scenario)

    @abc.abstractmethod
    def _solve(self, scenario: "Scenario") -> Result:
        """Backend-specific solve; may raise InfeasibleBoundError."""

    def solve_batch(self, scenarios: Sequence["Scenario"]) -> list[Result]:
        """Solve many scenarios, mapping infeasible bounds to
        infeasible results instead of raising (batch semantics)."""
        out: list[Result] = []
        for sc in scenarios:
            t0 = time.perf_counter()
            try:
                res = self.solve(sc)
            except InfeasibleBoundError as exc:
                res = self.infeasible_result(sc, exc)
            wall = time.perf_counter() - t0
            out.append(
                replace(res, provenance=replace(res.provenance, wall_time=wall))
            )
        return out

    # ------------------------------------------------------------------
    def infeasible_result(
        self, scenario: "Scenario", exc: InfeasibleBoundError | None = None
    ) -> Result:
        """A best-less result recording an infeasible bound."""
        return Result(
            scenario=scenario,
            provenance=Provenance(backend=self.name),
            best=None,
            rho_min=exc.rho_min if exc is not None else None,
        )


# ----------------------------------------------------------------------
# Default backends
# ----------------------------------------------------------------------
class FirstOrderBackend(SolverBackend):
    """Theorem-1 closed form + O(K^2) enumeration (the paper's solver)."""

    name = "firstorder"
    modes = frozenset({"silent", "single-speed"})

    def _solve(self, scenario: "Scenario") -> Result:
        cfg = scenario.resolved_config()
        if scenario.mode == "single-speed":
            sol = _solve_single_speed_direct(cfg, scenario.rho, speeds=scenario.speeds)
        else:
            sol = _solve_bicrit_direct(
                cfg,
                scenario.rho,
                speeds=scenario.speeds,
                sigma2_choices=scenario.sigma2_choices,
            )
        return Result(
            scenario=scenario,
            provenance=Provenance(backend=self.name),
            best=sol.best,
            candidates=sol.candidates,
            raw=sol,
        )


class ExactBackend(SolverBackend):
    """Numeric optimisation of the exact Propositions 2/3."""

    name = "exact"
    modes = frozenset({"silent", "single-speed"})

    def _solve(self, scenario: "Scenario") -> Result:
        cfg = scenario.resolved_config()
        s1_set = scenario.speeds if scenario.speeds is not None else cfg.speeds
        if scenario.mode == "single-speed":
            pairs = [(s, s) for s in s1_set]
        else:
            s2_set = (
                scenario.sigma2_choices
                if scenario.sigma2_choices is not None
                else cfg.speeds
            )
            pairs = [(s1, s2) for s1 in s1_set for s2 in s2_set]
        best: ExactSolution | None = None
        for s1, s2 in pairs:
            sol = solve_pair_exact(cfg, s1, s2, scenario.rho)
            if sol is not None and (
                best is None or sol.energy_overhead < best.energy_overhead
            ):
                best = sol
        if best is None:
            raise InfeasibleBoundError(scenario.rho)
        return Result(
            scenario=scenario,
            provenance=Provenance(backend=self.name),
            best=best,
            raw=best,
        )


def _scenario_pair_axis(scenario: "Scenario") -> list[tuple[float, float]]:
    """The (sigma1, sigma2) enumeration of a scenario, in the legacy
    solvers' s1-major order (ties resolve the same way everywhere)."""
    cfg = scenario.resolved_config()
    s1_set = scenario.speeds if scenario.speeds is not None else cfg.speeds
    s2_set = (
        scenario.sigma2_choices
        if scenario.sigma2_choices is not None
        else cfg.speeds
    )
    return [(s1, s2) for s1 in s1_set for s2 in s2_set]


def _best_pair_combined(
    cfg: Configuration,
    errors: CombinedErrors,
    pairs: Sequence[tuple[float, float]],
    rho: float,
) -> CombinedSolution | None:
    """Strict-improvement scan of :func:`solve_pair_combined` over the
    pair axis — the single pair-enumeration loop shared by the
    ``combined`` backend and the ``schedule-grid`` backend's
    schedule-less exponential-model path, so the byte-identity pin
    between them cannot drift."""
    best: CombinedSolution | None = None
    for s1, s2 in pairs:
        sol = solve_pair_combined(cfg, errors, s1, s2, rho)
        if sol is not None and (
            best is None or sol.energy_overhead < best.energy_overhead
        ):
            best = sol
    return best


class CombinedBackend(SolverBackend):
    """Numeric solve with fail-stop + silent errors (Section 5)."""

    name = "combined"
    modes = frozenset({"combined", "failstop"})

    def _solve(self, scenario: "Scenario") -> Result:
        cfg = scenario.resolved_config()
        errors = scenario.resolved_errors()
        best = _best_pair_combined(
            cfg, errors, _scenario_pair_axis(scenario), scenario.rho
        )
        if best is None:
            raise InfeasibleBoundError(scenario.rho)
        return Result(
            scenario=scenario,
            provenance=Provenance(backend=self.name),
            best=best,
            raw=best,
        )


class GridBackend(SolverBackend):
    """Vectorised Theorem-1 kernel: whole batches in one broadcast pass.

    ``solve_batch`` groups scenarios by DVFS speed set, stacks their
    model parameters into arrays and calls
    :func:`repro.sweep.vectorized.solve_bicrit_grid` once per group.
    The winning pair of each scenario is then re-evaluated through the
    scalar path (:func:`repro.core.solver.evaluate_pair`) so ``best``
    is byte-identical to the ``firstorder`` backend's.
    """

    name = "grid"
    modes = frozenset({"silent", "single-speed"})

    def unsupported_reason(self, scenario: "Scenario") -> str | None:
        reason = super().unsupported_reason(scenario)
        if reason is not None:
            return reason
        if scenario.speeds is not None or scenario.sigma2_choices is not None:
            return "custom speed restrictions require the scalar backends"
        return None

    def _solve(self, scenario: "Scenario") -> Result:
        result = self.solve_batch([scenario])[0]
        if not result.feasible:
            raise InfeasibleBoundError(scenario.rho, result.rho_min)
        return result

    def solve_batch(self, scenarios: Sequence["Scenario"]) -> list[Result]:
        for sc in scenarios:
            self.check_supports(sc)
        t0 = time.perf_counter()
        results: list[Result | None] = [None] * len(scenarios)
        configs = [sc.resolved_config() for sc in scenarios]

        groups: dict[tuple[float, ...], list[int]] = {}
        for i, cfg in enumerate(configs):
            groups.setdefault(cfg.speeds, []).append(i)

        for speeds, idxs in groups.items():
            grid = solve_bicrit_grid(
                lam=np.array([configs[i].lam for i in idxs]),
                checkpoint=np.array([configs[i].checkpoint_time for i in idxs]),
                verification=np.array([configs[i].verification_time for i in idxs]),
                recovery=np.array([configs[i].recovery_time for i in idxs]),
                kappa=np.array([configs[i].processor.kappa for i in idxs]),
                idle_power=np.array([configs[i].processor.idle_power for i in idxs]),
                io_power=np.array([configs[i].io_power for i in idxs]),
                rho=np.array([scenarios[i].rho for i in idxs]),
                speeds=speeds,
            )
            for pos, i in enumerate(idxs):
                results[i] = self._materialise(scenarios[i], configs[i], grid, pos)

        wall = time.perf_counter() - t0
        share = wall / max(len(scenarios), 1)
        return [
            replace(
                r,
                provenance=replace(
                    r.provenance, wall_time=share, batch_size=len(scenarios)
                ),
            )
            for r in results
        ]

    def _materialise(
        self, scenario: "Scenario", cfg: Configuration, grid: GridSolution, pos: int
    ) -> Result:
        """One scenario's result from its row of the grid output."""
        point = GridPoint(
            sigma1=float(grid.sigma1[pos]),
            sigma2=float(grid.sigma2[pos]),
            work=float(grid.work[pos]),
            energy_overhead=float(grid.energy[pos]),
            time_overhead=float(grid.time[pos]),
            sigma_single=float(grid.sigma_single[pos]),
            work_single=float(grid.work_single[pos]),
            energy_single=float(grid.energy_single[pos]),
        )
        if scenario.mode == "single-speed":
            s1 = s2 = point.sigma_single
        else:
            s1, s2 = point.sigma1, point.sigma2
        if not np.isfinite(s1):
            return replace(self.infeasible_result(scenario), raw=point)
        # Re-evaluate through the scalar formulas: byte-identical fields
        # vs the firstorder backend, and the exact-overhead diagnostics.
        best = evaluate_pair(cfg, s1, s2, scenario.rho).solution
        if best is None:
            # Last-ulp disagreement at a feasibility boundary: the
            # kernel called the winning pair feasible, the scalar path
            # disagrees.  Defer entirely to the scalar enumeration so
            # grid results never diverge from the firstorder backend.
            try:
                if scenario.mode == "single-speed":
                    best = _solve_single_speed_direct(cfg, scenario.rho).best
                else:
                    best = _solve_bicrit_direct(cfg, scenario.rho).best
            except InfeasibleBoundError as exc:
                return replace(self.infeasible_result(scenario, exc), raw=point)
        return Result(
            scenario=scenario,
            provenance=Provenance(backend=self.name),
            best=best,
            raw=point,
        )


class ScheduleBackend(SolverBackend):
    """Per-attempt speed schedules (:mod:`repro.schedules`).

    A scheduled scenario pins every attempt speed, so the solve is a
    one-dimensional constrained optimisation over the pattern size.
    Two-speed schedules (``TwoSpeed``, ``Constant``, and any policy
    whose canonical form reduces to them) keep the legacy paths — the
    Theorem-1 closed form for silent errors, the Section-5 pair solver
    for combined errors — so their results are byte-identical to the
    ``firstorder``/``combined`` backends evaluated at the same pair.
    General schedules go through the exact attempt-series evaluator
    (:mod:`repro.schedules.evaluator`) and the numeric constrained
    solver (:func:`repro.schedules.solver.solve_schedule`).
    """

    name = "schedule"
    modes = frozenset({"silent", "combined", "failstop"})
    handles_schedules = True
    handles_error_models = True

    def unsupported_reason(self, scenario: "Scenario") -> str | None:
        reason = super().unsupported_reason(scenario)
        if reason is not None:
            return reason
        if scenario.schedule is None:
            return "scenario has no schedule; set Scenario(schedule=...)"
        return None

    def _solve(self, scenario: "Scenario") -> Result:
        cfg = scenario.resolved_config()
        schedule = scenario.schedule
        pair = schedule.as_two_speed()
        errors = scenario.resolved_errors()

        # Closed-form fast paths for two-speed schedules: byte-identical
        # to the legacy solvers for the same (sigma1, sigma2).  They
        # require memoryless arrivals — resolved_errors() already
        # collapsed memoryless models to CombinedErrors, so anything
        # still an ErrorModel here is a general renewal family and must
        # take the numeric attempt-series route (the closed forms would
        # raise UnsupportedErrorModelError).
        if pair is not None and not isinstance(errors, ErrorModel):
            if errors is None:
                outcome = evaluate_pair(cfg, pair[0], pair[1], scenario.rho)
                if outcome.solution is None:
                    raise InfeasibleBoundError(scenario.rho, outcome.rho_min)
                return Result(
                    scenario=scenario,
                    provenance=Provenance(backend=self.name),
                    best=outcome.solution,
                    candidates=(outcome,),
                    raw=outcome,
                )
            sol = solve_pair_combined(cfg, errors, pair[0], pair[1], scenario.rho)
            if sol is None:
                raise InfeasibleBoundError(scenario.rho)
            return Result(
                scenario=scenario,
                provenance=Provenance(backend=self.name),
                best=sol,
                raw=sol,
            )

        # errors=None means silent-only at cfg.lam; the schedule solver
        # and evaluator apply that default themselves (and dispatch
        # renewal models through their per-attempt primitives).  An
        # infeasible bound propagates with the schedule's own rho_min.
        sol = solve_schedule(cfg, schedule, scenario.rho, errors=errors)
        return Result(
            scenario=scenario,
            provenance=Provenance(backend=self.name),
            best=sol,
            raw=sol,
        )


class ScheduleGridBackend(SolverBackend):
    """Vectorised general-schedule kernel: whole batches in lockstep.

    ``solve_batch`` splits a batch three ways:

    * scenarios whose schedule reduces to a two-speed pair *and* whose
      error model is memoryless take the scalar ``schedule`` backend's
      closed-form fast paths, so their results stay byte-identical to
      the legacy solvers;
    * every other *scheduled* scenario — general schedules and renewal
      error models alike, mixed freely — is stacked into one
      :class:`~repro.schedules.vectorized.ScheduleGrid` and solved by
      :func:`~repro.schedules.vectorized.solve_schedule_grid` — the
      per-attempt primitives, geometric tails, and the constrained
      pattern-size search all run as broadcast passes over the whole
      sub-batch (a masked argmin instead of per-scenario SciPy loops);
    * *schedule-less* scenarios carrying an explicit error model are
      solved by enumerating their DVFS speed pairs as ``TwoSpeed``
      schedules: exponential models replay the ``combined`` backend's
      scalar pair loop (byte-identical to solving the equivalent
      ``mode="combined"`` scenario), renewal models ride the same
      batched grid as the scheduled rows, so a whole pair enumeration
      costs one lockstep pass.

    Results carry the same :class:`~repro.schedules.solver.ScheduleSolution`
    payload as the scalar backend and agree with it to the optimiser
    placement tolerance (``<= 1e-12`` relative on the energy objective;
    the equivalence tests pin this on randomized grids).
    """

    name = "schedule-grid"
    modes = frozenset({"silent", "combined", "failstop"})
    handles_schedules = True
    handles_error_models = True

    def unsupported_reason(self, scenario: "Scenario") -> str | None:
        reason = super().unsupported_reason(scenario)
        if reason is not None:
            return reason
        if scenario.schedule is None and scenario.errors is None:
            return (
                "scenario has no schedule; set Scenario(schedule=...) "
                "(or an explicit errors= model for pair enumeration)"
            )
        return None

    def _solve(self, scenario: "Scenario") -> Result:
        result = self.solve_batch([scenario])[0]
        if not result.feasible:
            raise InfeasibleBoundError(scenario.rho, result.rho_min)
        return result

    def _solve_pairs_scalar(self, scenario: "Scenario") -> Result:
        """Schedule-less scenario with a *memoryless* model: replay the
        ``combined`` backend's pair enumeration — literally the same
        :func:`_best_pair_combined` loop, so the result is
        byte-identical to solving the equivalent ``mode="combined"``
        scenario."""
        best = _best_pair_combined(
            scenario.resolved_config(),
            scenario.resolved_errors(),
            _scenario_pair_axis(scenario),
            scenario.rho,
        )
        if best is None:
            raise InfeasibleBoundError(scenario.rho)
        return Result(
            scenario=scenario,
            provenance=Provenance(backend=self.name),
            best=best,
            raw=best,
        )

    def solve_batch(self, scenarios: Sequence["Scenario"]) -> list[Result]:
        for sc in scenarios:
            self.check_supports(sc)
        t0 = time.perf_counter()
        results: list[Result | None] = [None] * len(scenarios)

        fast: list[int] = []
        general: list[int] = []
        enum: list[int] = []
        for i, sc in enumerate(scenarios):
            if sc.schedule is None:
                # Explicit error model, no schedule: pair enumeration.
                # Memoryless models take the scalar combined loop (fast
                # list); renewal models join the batched grid.
                if isinstance(sc.resolved_errors(), ErrorModel):
                    enum.append(i)
                else:
                    fast.append(i)
            elif sc.schedule.as_two_speed() is not None and not isinstance(
                sc.resolved_errors(), ErrorModel
            ):
                fast.append(i)
            else:
                general.append(i)

        # Scalar rows: closed-form/pair fast paths (byte-identical
        # results, re-stamped with this backend's name).
        if fast:
            scalar = get_backend("schedule")
            for i in fast:
                try:
                    if scenarios[i].schedule is None:
                        res = self._solve_pairs_scalar(scenarios[i])
                    else:
                        res = scalar._solve(scenarios[i])
                        res = replace(
                            res,
                            provenance=replace(res.provenance, backend=self.name),
                        )
                except InfeasibleBoundError as exc:
                    res = self.infeasible_result(scenarios[i], exc)
                results[i] = res

        if general or enum:
            # One grid for everything numeric: scheduled rows first,
            # then each enumerated scenario's pair block.
            points: list[tuple] = [
                (
                    scenarios[i].resolved_config(),
                    scenarios[i].schedule,
                    scenarios[i].resolved_errors(),
                )
                for i in general
            ]
            rhos: list[float] = [scenarios[i].rho for i in general]
            blocks: list[tuple[int, int, list[tuple[float, float]]]] = []
            for i in enum:
                sc = scenarios[i]
                cfg = sc.resolved_config()
                errors = sc.resolved_errors()
                pairs = _scenario_pair_axis(sc)
                if not pairs:
                    # Degenerate speed restriction (speeds=()): no
                    # candidate can satisfy any bound — infeasible, same
                    # as the memoryless enumeration returning no pair.
                    results[i] = self.infeasible_result(sc)
                    continue
                blocks.append((i, len(points), pairs))
                points.extend(
                    (cfg, TwoSpeed(s1, s2), errors) for s1, s2 in pairs
                )
                rhos.extend([sc.rho] * len(pairs))
            if points:
                grid = self._build_grid(points)
                sol = self._solve_grid(grid, np.asarray(rhos))
                for pos, i in enumerate(general):
                    results[i] = self._materialise(scenarios[i], sol, pos)
                for i, start, pairs in blocks:
                    results[i] = self._materialise_enum(
                        scenarios[i], sol, start, pairs
                    )

        wall = time.perf_counter() - t0
        share = wall / max(len(scenarios), 1)
        return [
            replace(
                r,
                provenance=replace(
                    r.provenance, wall_time=share, batch_size=len(scenarios)
                ),
            )
            for r in results
        ]

    def _build_grid(self, points: list[tuple]) -> ScheduleGrid:
        """Stack the batch's numeric points into the evaluation grid.

        The grid override point of the kernel tiers: the jit backend
        swaps in :class:`~repro.schedules.jit.JitScheduleGrid` here and
        inherits everything else (splitting, materialisation, the
        lockstep solver) unchanged.
        """
        return ScheduleGrid.from_points(points)

    def _solve_grid(
        self, grid: ScheduleGrid, rhos: np.ndarray
    ) -> ScheduleGridSolution:
        """Run the lockstep solve over the stacked batch.

        The solver override point of the kernel tiers: the incremental
        backend swaps in the warm-started sweep solver here and
        inherits the batch splitting and materialisation unchanged.
        """
        return solve_schedule_grid(grid, rhos)

    def _materialise(
        self, scenario: "Scenario", sol: ScheduleGridSolution, pos: int
    ) -> Result:
        """One scenario's result from its row of the grid solution."""
        if not sol.feasible[pos]:
            return Result(
                scenario=scenario,
                provenance=Provenance(backend=self.name),
                best=None,
                rho_min=float(sol.rho_min[pos]),
            )
        best = ScheduleSolution(
            schedule=scenario.schedule,
            work=float(sol.work[pos]),
            energy_overhead=float(sol.energy_overhead[pos]),
            time_overhead=float(sol.time_overhead[pos]),
            interval=(float(sol.w_lo[pos]), float(sol.w_hi[pos])),
            failstop_fraction=scenario.effective_failstop_fraction,
        )
        return Result(
            scenario=scenario,
            provenance=Provenance(backend=self.name),
            best=best,
            raw=best,
        )

    def _materialise_enum(
        self,
        scenario: "Scenario",
        sol: ScheduleGridSolution,
        start: int,
        pairs: list[tuple[float, float]],
    ) -> Result:
        """One schedule-less scenario's result from its block of pair rows.

        The winner is the feasible pair with the smallest energy
        overhead; ``argmin`` takes the first of equals, matching the
        legacy solvers' strict-improvement scan in the same s1-major
        order.  When no pair is feasible the block's smallest
        ``rho_min`` is the scenario's infeasibility diagnostic.
        """
        rows = slice(start, start + len(pairs))
        feas = sol.feasible[rows]
        if not feas.any():
            return Result(
                scenario=scenario,
                provenance=Provenance(backend=self.name),
                best=None,
                rho_min=float(np.min(sol.rho_min[rows])),
            )
        energy = np.where(feas, sol.energy_overhead[rows], np.inf)
        k = int(np.argmin(energy))
        pos = start + k
        s1, s2 = pairs[k]
        best = ScheduleSolution(
            schedule=TwoSpeed(s1, s2),
            work=float(sol.work[pos]),
            energy_overhead=float(sol.energy_overhead[pos]),
            time_overhead=float(sol.time_overhead[pos]),
            interval=(float(sol.w_lo[pos]), float(sol.w_hi[pos])),
            failstop_fraction=scenario.effective_failstop_fraction,
        )
        return Result(
            scenario=scenario,
            provenance=Provenance(backend=self.name),
            best=best,
            raw=best,
        )


class ScheduleGridJitBackend(ScheduleGridBackend):
    """``schedule-grid`` with the native-speed kernel tier.

    Identical batch splitting and materialisation to
    :class:`ScheduleGridBackend` — only the grid class differs: batches
    stack into a :class:`~repro.schedules.jit.JitScheduleGrid`, whose
    pure-exponential evaluations run through a numba-compiled kernel
    when numba is importable (``pip install repro[jit]``; results agree
    with the NumPy tier to ``<= 1e-12`` relative) and whose renewal
    rows reuse per-``(model, V, speed)`` primitive tables across the
    batch.  Without numba the fallback is byte-identical to
    ``schedule-grid`` — same code path, so choosing this backend is
    always safe.
    """

    name = "schedule-grid-jit"
    modes = frozenset({"silent", "combined", "failstop"})
    # handles_schedules / handles_error_models are inherited — this
    # tier accepts exactly what schedule-grid accepts.
    uses_jit = True

    def _build_grid(self, points: list[tuple]) -> ScheduleGrid:
        """Stack into the jit-tier grid (NumPy-identical fallback)."""
        return JitScheduleGrid.from_points(points)


class ScheduleGridIncrementalBackend(ScheduleGridBackend):
    """``schedule-grid`` with the incremental (variational) solve tier.

    Identical batch splitting and materialisation to
    :class:`ScheduleGridBackend` — only the lockstep solve differs:
    batches stack into a
    :class:`~repro.schedules.incremental.DeltaScheduleGrid` (repeated
    parameter rows deduplicate on the solver's shared coarse scan) and
    run through
    :func:`~repro.schedules.incremental.solve_schedule_grid_incremental`,
    which chains the batch along its detected sweep axes, solves
    anchors cold and warm-starts everything in between from
    interpolated anchor optima.  Every warm seed is validated by sign
    and convergence certificates, so rows fall back to the exact cold
    path rather than ever returning an uncertified optimum: cold-solved
    rows are byte-identical to ``schedule-grid``, warm rows agree to
    ``<= 1e-9`` absolute on the energy objective (pinned by the
    property suite).  Sweep-shaped batches get sublinear solve cost;
    scattered batches degrade to roughly the cold path plus a small
    chaining overhead, so choosing this backend is always safe.

    The provenance of the most recent batch is kept on
    ``last_stats`` (anchor/warm/fallback row counts), which is how the
    bench suite and the cache stats surface the warm-hit rate.
    """

    name = "schedule-grid-incremental"
    modes = frozenset({"silent", "combined", "failstop"})
    # handles_schedules / handles_error_models are inherited — this
    # tier accepts exactly what schedule-grid accepts.
    sweep_aware = True

    #: :class:`~repro.schedules.incremental.IncrementalStats` of the
    #: most recent batched solve (``None`` before the first one).
    last_stats: IncrementalStats | None = None

    def _build_grid(self, points: list[tuple]) -> ScheduleGrid:
        """Stack into the delta tier (dedup on shared-axis scans)."""
        return DeltaScheduleGrid.from_points(points)

    def _solve_grid(
        self, grid: ScheduleGrid, rhos: np.ndarray
    ) -> ScheduleGridSolution:
        """Warm-started sweep solve (exact cold fallback per row)."""
        sol = solve_schedule_grid_incremental(grid, rhos)
        self.last_stats = sol.stats
        return sol


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, SolverBackend] = {}


def register_backend(backend: SolverBackend, *, replace: bool = False) -> SolverBackend:
    """Add a backend to the registry under ``backend.name``.

    Returns the backend (usable as a post-instantiation decorator
    helper).  Re-registering an existing name raises unless
    ``replace=True``; replacing invalidates the default cache's
    entries for that name so stale results from the old
    implementation never replay (private ``SolveCache`` instances are
    the caller's responsibility).
    """
    if backend.name in _REGISTRY:
        if not replace:
            raise InvalidParameterError(
                f"backend {backend.name!r} is already registered; "
                f"pass replace=True to override"
            )
        from .cache import DEFAULT_CACHE

        DEFAULT_CACHE.invalidate_backend(backend.name)
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> SolverBackend:
    """Resolve a backend by registry name.

    Raises
    ------
    UnknownBackendError
        Listing the registered names.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, available_backends()) from None


def available_backends() -> tuple[str, ...]:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


register_backend(FirstOrderBackend())
register_backend(ExactBackend())
register_backend(CombinedBackend())
register_backend(GridBackend())
register_backend(ScheduleBackend())
register_backend(ScheduleGridBackend())
register_backend(ScheduleGridJitBackend())
register_backend(ScheduleGridIncrementalBackend())
