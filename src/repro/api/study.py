"""Batched evaluation: grids of scenarios solved through one engine.

A :class:`Study` is an ordered tuple of scenarios — typically the
cartesian grid configurations x rho values x modes, or the scenarios
implied by a sweep axis — solved together.  ``Study.solve``:

* consults the memo cache first (per scenario, per backend);
* routes the misses to their backends, letting batch-capable backends
  (the vectorised ``grid``) solve an entire group in one broadcast
  pass;
* optionally fans the misses out over worker processes for large
  grids of the expensive numeric backends.

The result is a :class:`~repro.api.result.ResultSet` aligned with the
scenario order.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

from ..platforms.catalog import configuration_names
from .backends import get_backend
from .cache import SolveCache
from .result import Result, ResultSet
from .scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..errors.combined import CombinedErrors
    from ..errors.models import ArrivalProcess, ErrorModel
    from ..exec.base import Transport
    from ..platforms.configuration import Configuration
    from ..schedules.base import SpeedSchedule
    from ..sweep.axes import SweepAxis

__all__ = ["Study"]


def _solve_shard(scenarios: list[Scenario], backend_name: str) -> list[Result]:
    """Solve one shard through its backend's batch path, mapping
    infeasible bounds to best-less results.  Module-level so process
    pools can pickle it."""
    return get_backend(backend_name).solve_batch(scenarios)


def _shard(indices: list[int], shards: int) -> list[list[int]]:
    """Split ``indices`` into at most ``shards`` contiguous chunks."""
    shards = max(1, min(shards, len(indices)))
    size = (len(indices) + shards - 1) // shards
    return [indices[j : j + size] for j in range(0, len(indices), size)]


@dataclass(frozen=True)
class Study:
    """An ordered batch of scenarios evaluated as one unit.

    Examples
    --------
    >>> study = Study.from_grid(configs=("hera-xscale",), rhos=(2.5, 3.0))
    >>> [r.best.speed_pair for r in study.solve(backend="grid")]
    [(0.6, 0.4), (0.4, 0.4)]
    """

    scenarios: tuple[Scenario, ...]
    name: str = "study"

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_grid(
        cls,
        configs: "Iterable[Configuration | str] | None" = None,
        rhos: Sequence[float] = (3.0,),
        *,
        modes: Sequence[str] = ("silent",),
        failstop_fractions: Sequence[float | None] = (None,),
        error_rates: Sequence[float | None] = (None,),
        schedules: "Sequence[SpeedSchedule | str | None]" = (None,),
        error_models: Sequence = (None,),
        backend: str | None = None,
        name: str = "grid-study",
    ) -> "Study":
        """The cartesian grid configs x rhos x modes x fractions x
        models x rates x schedules.

        ``configs`` defaults to the full eight-configuration catalog.
        Grid order is row-major in the parameter order above (the model
        axis nests *outside* the rate axis, which it suppresses), so
        the result set zips positionally against the same product.

        ``failstop_fractions`` is an axis only for the ``combined``
        mode; the other modes take no fraction (``failstop`` implies
        1), so they contribute one scenario per (config, rho, rate)
        rather than duplicating across the fraction axis.

        ``schedules`` entries may be :class:`SpeedSchedule` objects,
        spec strings (``"geom:0.4,1.5,1"``), or ``None`` for the
        speed-pair enumeration of the legacy solvers.  Like the
        fraction axis, the schedule axis only applies to modes that
        take one — ``single-speed`` enumerates the diagonal and
        contributes a single unscheduled scenario per grid point.

        ``error_models`` entries may be
        :class:`~repro.errors.models.ErrorModel` objects, spec strings
        (``"weibull:shape=0.7,mtbf=5e3,failstop=0.2"``), or ``None``
        for the mode's own error semantics.  An explicit model carries
        its own rate and split, so the axis applies only to ``silent``
        (default-mode) grid points and suppresses the ``error_rates``
        axis for its scenarios; mixed exponential/renewal model grids
        batch through the ``schedule-grid`` backend.
        """
        if configs is None:
            configs = configuration_names()
        elif isinstance(configs, str):
            # A lone catalog name is a config, not an iterable of them.
            configs = (configs,)
        scenarios = tuple(
            Scenario(
                config=cfg,
                rho=float(rho),
                mode=mode,
                failstop_fraction=fraction,
                error_rate=rate,
                schedule=schedule,
                errors=model,
                backend=backend,
            )
            for cfg in configs
            for rho in rhos
            for mode in modes
            for fraction in (failstop_fractions if mode == "combined" else (None,))
            for model in (error_models if mode == "silent" else (None,))
            for rate in (error_rates if model is None else (None,))
            for schedule in (schedules if mode != "single-speed" else (None,))
        )
        return cls(scenarios=scenarios, name=name)

    @classmethod
    def over_axis(
        cls,
        cfg: "Configuration",
        rho: float,
        axis: "SweepAxis",
        *,
        modes: Sequence[str] = ("silent",),
        schedule: "SpeedSchedule | str | None" = None,
        errors: "ErrorModel | ArrivalProcess | CombinedErrors | str | None" = None,
        name: str | None = None,
    ) -> "Study":
        """One scenario per (axis value, mode), axis-major order.

        Applies the axis rule to materialise the concrete
        ``(configuration, rho)`` of every point — the study equivalent
        of :func:`repro.sweep.runner.run_sweep`'s iteration.  An
        optional ``schedule`` pins the per-attempt speeds of every
        point (sweeping the model parameters *under* one policy); an
        optional ``errors`` model (object or spec string) likewise pins
        the error model of every point.
        """
        scenarios: list[Scenario] = []
        for value in axis.values:
            cfg_v, rho_v = axis.apply(cfg, rho, value)
            for mode in modes:
                scenarios.append(
                    Scenario(
                        config=cfg_v,
                        rho=rho_v,
                        mode=mode,
                        schedule=schedule,
                        errors=errors,
                        label=f"{axis.name}={value:g}",
                    )
                )
        return cls(
            scenarios=tuple(scenarios),
            name=name or f"sweep:{cfg.name}:{axis.name}",
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        backend: str | None = None,
        *,
        cache: bool | SolveCache = True,
        processes: int | None = None,
        strict: bool = False,
        transport: "Transport | str | None" = None,
    ) -> ResultSet:
        """Solve every scenario; returns results in scenario order.

        Parameters
        ----------
        backend:
            Registry name forced for *all* scenarios (raises
            :class:`UnsupportedScenarioError` if one cannot take it);
            ``None`` routes each scenario to its own backend.
        cache:
            As in :meth:`Scenario.solve`.  Cache hits skip solving
            entirely and are marked in provenance.
        processes:
            When > 1, fan the cache misses out over that many worker
            processes.  Misses routed to a batch-capable backend
            (``grid``, ``schedule-grid``) are sharded into contiguous
            sub-batches — each worker solves a whole shard in one
            vectorised pass — while per-scenario backends fan out one
            scenario per task.  Worth it for large grids of the
            numeric backends; the vectorised backends are often faster
            in-process for small grids.
        strict:
            When True, raise :class:`InfeasibleBoundError` if any
            scenario is infeasible instead of returning a best-less
            result for it.
        transport:
            Where the shards execute — a
            :class:`~repro.exec.base.Transport`, ``"inline"``,
            ``"pooled"``, ``"warm"``, or ``None`` for the historical
            ``processes=`` semantics.  See docs/execution.md for the
            transports and the ``fork``/``spawn`` backend-registry
            caveat that applies to all multi-process execution.
        """
        # One execution engine for studies and experiments: compile a
        # plan without dedup (a study answers every requested scenario
        # with its own cache lookup) and run it — cache replay,
        # batched-vs-per-scenario sharding, process fan-out and strict
        # handling all live in ExecutionPlan.execute.
        from .experiment import ExecutionPlan

        plan = ExecutionPlan.compile(
            self.scenarios, backend=backend, name=self.name, deduplicate=False
        )
        return plan.execute(
            cache=cache, processes=processes, strict=strict, transport=transport
        )
