"""Composable experiment pipeline: lazy plans over the batched backends.

The paper's deliverables are *derived analyses* — Pareto frontiers of
energy vs time, savings-over-baseline curves, crossover maps — not
single solves.  An :class:`Experiment` describes the scenario grid of
such an analysis declaratively (a fluent builder over configurations,
bounds, schedules and error models), and compiles it into an
:class:`ExecutionPlan` *before* anything is solved:

* duplicate scenarios (same :meth:`~repro.api.scenario.Scenario.cache_key`
  under the same backend) are solved **once** and replayed everywhere
  they appear — the variational-execution leverage of sharing one
  deduplicated plan across many near-identical evaluations;
* the remaining unique scenarios are grouped by backend, so
  batch-capable backends (``grid``, ``schedule-grid``) receive whole
  groups as single broadcast passes instead of per-point loops;
* execution is sharded — optionally over worker processes — with each
  completed shard written to the solve cache immediately, so an
  interrupted run *resumes* (re-executing the plan replays the
  completed shards from cache and only solves the remainder), and an
  optional ``progress`` callback observes shard completion.

The pipeline ends in the uniform :class:`~repro.api.result.ResultSet`,
whose analysis verbs (``.frontier()``, ``.savings()``,
``.sensitivity()``, ``.crossover()`` — see :mod:`repro.analysis.verbs`)
turn the solved grid into the typed, exportable analysis objects.

Examples
--------
>>> from repro.api import Experiment
>>> fr = (
...     Experiment.over(configs=("hera-xscale",), rhos=(2.5, 3.0, 4.0))
...     .solve()
...     .frontier()
... )
>>> fr.is_monotone()
True
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

from ..exceptions import InfeasibleBoundError, WorkerCrashError
from ..exec.base import Shard, ShardOutcome, Transport, resolve_transport
from .backends import get_backend
from .cache import DEFAULT_CACHE, SolveCache
from .result import Result, ResultSet
from .scenario import Scenario, _resolve_cache
from .study import Study, _shard

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..errors.combined import CombinedErrors
    from ..errors.models import ArrivalProcess, ErrorModel
    from ..platforms.configuration import Configuration
    from ..schedules.base import SpeedSchedule
    from ..sweep.axes import SweepAxis

__all__ = ["Experiment", "ExecutionPlan", "PlanGroup", "PlanProgress"]


@dataclass(frozen=True)
class PlanProgress:
    """One progress tick of :meth:`ExecutionPlan.execute`.

    Emitted after every completed *solve* shard, so a long frontier
    sweep can be observed — and, because completed shards are cached
    immediately, safely interrupted and resumed.  The counters cover
    only the work actually solved this run: cache replays are free and
    emit no ticks, so a fully-cached re-execution completes silently.
    """

    done_shards: int
    total_shards: int
    backend: str
    solved_scenarios: int
    total_scenarios: int

    @property
    def fraction(self) -> float:
        """Completed fraction of the plan's solve work in [0, 1]."""
        if self.total_scenarios == 0:
            return 1.0
        return self.solved_scenarios / self.total_scenarios


@dataclass(frozen=True)
class PlanGroup:
    """One batched backend call of an :class:`ExecutionPlan`.

    ``indices`` index into the plan's *unique* scenario tuple; every
    scenario of a group resolves to the same ``backend``, so the whole
    group can go through one ``solve_batch`` (one broadcast pass for
    the vectorised backends).
    """

    backend: str
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class ExecutionPlan:
    """A compiled, deduplicated solve plan for one experiment.

    Attributes
    ----------
    name:
        The experiment's name (carried into the result set).
    scenarios:
        Every requested scenario, in request order.
    unique:
        The deduplicated scenarios actually solved (first-occurrence
        order).  Two requested scenarios collapse into one unique entry
        when their :meth:`~repro.api.scenario.Scenario.cache_key` *and*
        resolved backend coincide — labels, backend preferences and
        equivalent spellings (catalog name vs resolved configuration,
        ``two:s,s`` vs ``const:s``) never cause a second solve.
    backend_names:
        The resolved backend per unique scenario.
    index_map:
        ``index_map[i]`` is the unique index serving requested
        scenario ``i``.
    groups:
        Unique indices grouped by backend, first-use order — the
        batched calls the plan will issue.
    """

    name: str
    scenarios: tuple[Scenario, ...]
    unique: tuple[Scenario, ...]
    backend_names: tuple[str, ...]
    index_map: tuple[int, ...]
    groups: tuple[PlanGroup, ...]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.scenarios)

    @property
    def n_unique(self) -> int:
        """Number of scenarios actually solved."""
        return len(self.unique)

    @property
    def n_deduplicated(self) -> int:
        """Requested scenarios served by another scenario's solve."""
        return len(self.scenarios) - len(self.unique)

    def describe(self) -> str:
        """Human-readable plan summary (CLI ``--explain`` style)."""
        lines = [
            f"plan {self.name!r}: {len(self.scenarios)} scenarios -> "
            f"{self.n_unique} unique solves ({self.n_deduplicated} deduplicated)"
        ]
        for group in self.groups:
            batched = get_backend(group.backend).batched
            kind = "batched" if batched else "per-scenario"
            lines.append(
                f"  {group.backend:13s} {len(group):5d} scenarios  [{kind}]"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        scenarios: Sequence[Scenario],
        *,
        backend: str | None = None,
        name: str = "experiment",
        deduplicate: bool = True,
    ) -> "ExecutionPlan":
        """Build the plan for ``scenarios``.

        ``backend`` forces one registry backend for every scenario
        (validated here, so bad routing fails before any solve);
        ``None`` routes each scenario to its own default.
        ``deduplicate=False`` keeps every requested scenario as its own
        solve — :meth:`Study.solve` uses this to preserve its
        one-lookup-per-scenario cache semantics while sharing this
        plan's execution engine.
        """
        if backend is not None:
            solver = get_backend(backend)
            for sc in scenarios:
                solver.check_supports(sc)

        unique: list[Scenario] = []
        names: list[str] = []
        index_map: list[int] = []
        seen: dict[tuple, int] = {}
        for sc in scenarios:
            bn = sc.resolve_backend_name(backend)
            key = (sc.cache_key(), bn) if deduplicate else None
            pos = seen.get(key) if deduplicate else None
            if pos is None:
                pos = len(unique)
                if deduplicate:
                    seen[key] = pos
                unique.append(sc)
                names.append(bn)
            index_map.append(pos)

        by_backend: dict[str, list[int]] = {}
        for u, bn in enumerate(names):
            by_backend.setdefault(bn, []).append(u)
        groups = tuple(
            PlanGroup(backend=bn, indices=tuple(idxs))
            for bn, idxs in by_backend.items()
        )
        return cls(
            name=name,
            scenarios=tuple(scenarios),
            unique=tuple(unique),
            backend_names=tuple(names),
            index_map=tuple(index_map),
            groups=groups,
        )

    # ------------------------------------------------------------------
    def execute(
        self,
        *,
        cache: bool | SolveCache = True,
        processes: int | None = None,
        strict: bool = False,
        progress: Callable[[PlanProgress], None] | None = None,
        transport: "Transport | str | None" = None,
    ) -> ResultSet:
        """Run the plan; returns results in *requested* scenario order.

        Parameters
        ----------
        cache:
            As in :meth:`Scenario.solve`.  Each completed shard is
            written to the cache **the moment it lands** — infeasible
            outcomes included — so re-executing a plan interrupted by
            ``KeyboardInterrupt``, a worker crash, or a poisoned shard
            resumes from every completed shard instead of starting
            over.
        processes:
            When > 1 (and no explicit ``transport``), fan cache-miss
            shards out over a per-call process pool of that many
            workers (batched backends are sharded into contiguous
            sub-batches, per-scenario backends fan out point-wise —
            the same policy as :meth:`Study.solve`).
        strict:
            Raise :class:`InfeasibleBoundError` on the first
            infeasible scenario instead of returning a best-less
            result for it.
        progress:
            Optional callback receiving a :class:`PlanProgress` after
            every completed shard, in actual completion order.
        transport:
            Where the shards execute: a
            :class:`~repro.exec.base.Transport` instance, ``"inline"``,
            ``"pooled"``, ``"warm"`` (the process-wide
            :func:`~repro.exec.warm.get_default_pool`), or ``None`` for
            the historical ``processes=`` semantics.  See
            docs/execution.md.

        Raises
        ------
        WorkerCrashError
            When shards were lost to crashed workers (beyond the warm
            pool's retry bound).  Raised only after the harvest drained
            and every completed shard was cached, so a re-execute
            solves just the lost remainder.
        """
        cache_obj = _resolve_cache(cache, DEFAULT_CACHE)
        unique_results: list[Result | None] = [None] * len(self.unique)
        # Resolving the transport is cheap (no worker spawns until
        # prepare) and its parallelism sizes the sharding below.
        tp = resolve_transport(transport, processes)
        fan_out = tp.parallelism > 1

        # Cache replay per unique scenario (dedup means one lookup per
        # distinct solve, not one per requested scenario).
        specs: list[tuple[str, list[int]]] = []
        for group in self.groups:
            misses: list[int] = []
            for u in group.indices:
                hit = (
                    cache_obj.get(self.unique[u], self.backend_names[u])
                    if cache_obj is not None
                    else None
                )
                if hit is not None:
                    unique_results[u] = replace(
                        hit,
                        scenario=self.unique[u],
                        provenance=replace(
                            hit.provenance, cache_hit=True, wall_time=0.0
                        ),
                    )
                else:
                    misses.append(u)
            if not misses:
                continue
            solver = get_backend(group.backend)
            if solver.batched:
                if solver.sweep_aware and len(misses) > 1:
                    # Sweep-aware backends warm-start along detected
                    # sweep chains: reorder the misses so chains are
                    # contiguous and monotone before the contiguous
                    # sharding below, so each chain is cut at most once
                    # per worker instead of scattered across shards.
                    from .sweep_planner import order_for_sweeps

                    misses = order_for_sweeps(self.unique, misses)
                specs.extend(
                    (group.backend, chunk)
                    for chunk in _shard(misses, tp.parallelism if fan_out else 1)
                )
            elif fan_out:
                specs.extend((group.backend, [u]) for u in misses)
            else:
                specs.append((group.backend, misses))

        shards = [
            Shard(shard_id=pos, backend=bn, indices=tuple(idxs))
            for pos, (bn, idxs) in enumerate(specs)
        ]
        total_solved = sum(len(s) for s in shards)
        done_scenarios = 0
        done_shards = 0

        def _complete(outcome: ShardOutcome) -> None:
            nonlocal done_scenarios, done_shards
            assert outcome.results is not None
            for u, res in zip(outcome.shard.indices, outcome.results):
                unique_results[u] = res
                # Cache per shard, not at the end — and infeasible
                # results too: a killed run keeps its completed shards
                # (including known-infeasible points) and resumes from
                # them.
                if cache_obj is not None:
                    cache_obj.put(self.unique[u], self.backend_names[u], res)
            done_scenarios += len(outcome.shard)
            done_shards += 1
            if progress is not None:
                progress(
                    PlanProgress(
                        done_shards=done_shards,
                        total_shards=len(shards),
                        backend=outcome.shard.backend,
                        solved_scenarios=done_scenarios,
                        total_scenarios=total_solved,
                    )
                )

        failures: list[ShardOutcome] = []
        if shards:
            tp.prepare(self.unique)
            try:
                for shard in shards:
                    tp.submit_shard(shard)
                # Harvest in completion order: every outcome is cached
                # (and its progress tick emitted) the moment it lands,
                # and a failed shard becomes an error *outcome* rather
                # than an exception — one crashed worker or poisoned
                # shard can no longer discard the others' finished
                # work.
                for outcome in tp.as_completed():
                    if outcome.ok:
                        _complete(outcome)
                    else:
                        failures.append(outcome)
            finally:
                tp.close()
        if failures:
            # Deterministic shard exceptions (a raising backend) would
            # fail identically on retry — re-raise the first one
            # as-is.  Pure worker crashes aggregate into a
            # WorkerCrashError that tells the caller a re-execute
            # resumes from the cached shards.
            from concurrent.futures.process import BrokenProcessPool

            for outcome in failures:
                assert outcome.error is not None
                if not isinstance(
                    outcome.error, (WorkerCrashError, BrokenProcessPool)
                ):
                    raise outcome.error
            raise WorkerCrashError(
                len(failures), sum(len(oc.shard) for oc in failures)
            )

        # Fan the unique solves back out to the requested scenarios.
        # Dedup replays keep the requesting scenario's own spelling
        # (labels, spec strings) and are marked as replays.
        first_owner: set[int] = set()
        results: list[Result] = []
        for i, u in enumerate(self.index_map):
            res = unique_results[u]
            assert res is not None
            if u in first_owner:
                res = replace(
                    res,
                    provenance=replace(res.provenance, cache_hit=True, wall_time=0.0),
                )
            else:
                first_owner.add(u)
            if self.scenarios[i] is not self.unique[u]:
                res = replace(res, scenario=self.scenarios[i])
            results.append(res)

        if strict:
            for res in results:
                if not res.feasible:
                    raise InfeasibleBoundError(res.scenario.rho, res.rho_min)
        return ResultSet(results=tuple(results), name=self.name)


@dataclass(frozen=True)
class Experiment:
    """A lazy, composable scenario pipeline.

    Nothing is solved until :meth:`solve` (or
    :meth:`plan` + :meth:`ExecutionPlan.execute`); until then the
    experiment is a cheap frozen value that can be filtered
    (:meth:`where`), extended (:meth:`concat`) and inspected.

    Examples
    --------
    >>> exp = Experiment.over(
    ...     configs=("hera-xscale",), rhos=(2.5, 3.0),
    ...     schedules=(None, "geom:0.4,1.5,1"),
    ... )
    >>> len(exp)
    4
    >>> exp.plan().n_unique
    4
    """

    scenarios: tuple[Scenario, ...] = field(default=())
    name: str = "experiment"

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def over(
        cls,
        configs: "Iterable[Configuration | str] | None" = None,
        rhos: Sequence[float] | float = (3.0,),
        *,
        rho: float | None = None,
        modes: Sequence[str] = ("silent",),
        failstop_fractions: Sequence[float | None] = (None,),
        error_rates: Sequence[float | None] = (None,),
        schedules: "Sequence[SpeedSchedule | str | None]" = (None,),
        error_models: Sequence = (None,),
        backend: str | None = None,
        name: str = "experiment",
    ) -> "Experiment":
        """The cartesian product configs x rhos x modes x fractions x
        models x rates x schedules — the grid of
        :meth:`Study.from_grid`, wrapped as a lazy experiment.

        ``rho=`` is scalar sugar for a one-value bound axis; ``rhos``
        also accepts a bare float.  Axis semantics (which axes apply
        to which modes) are exactly those of
        :meth:`repro.api.Study.from_grid`.
        """
        if rho is not None:
            rhos = (float(rho),)
        elif isinstance(rhos, (int, float)):
            rhos = (float(rhos),)
        study = Study.from_grid(
            configs=configs,
            rhos=tuple(rhos),
            modes=modes,
            failstop_fractions=failstop_fractions,
            error_rates=error_rates,
            schedules=schedules,
            error_models=error_models,
            backend=backend,
            name=name,
        )
        return cls(scenarios=study.scenarios, name=name)

    @classmethod
    def over_axis(
        cls,
        cfg: "Configuration",
        rho: float,
        axis: "SweepAxis",
        *,
        modes: Sequence[str] = ("silent",),
        schedule: "SpeedSchedule | str | None" = None,
        errors: "ErrorModel | ArrivalProcess | CombinedErrors | str | None" = None,
        name: str | None = None,
    ) -> "Experiment":
        """One scenario per (axis value, mode), axis-major order —
        :meth:`Study.over_axis` as a lazy experiment."""
        study = Study.over_axis(
            cfg, rho, axis, modes=modes, schedule=schedule, errors=errors, name=name
        )
        return cls(scenarios=study.scenarios, name=study.name)

    @classmethod
    def from_scenarios(
        cls, scenarios: Iterable[Scenario], *, name: str = "experiment"
    ) -> "Experiment":
        """Wrap explicit scenarios (any iterable) as an experiment."""
        return cls(scenarios=tuple(scenarios), name=name)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def where(self, predicate: Callable[[Scenario], bool]) -> "Experiment":
        """Keep only the scenarios satisfying ``predicate``.

        Examples
        --------
        >>> exp = Experiment.over(configs=("hera-xscale",), rhos=(2.0, 3.0))
        >>> len(exp.where(lambda sc: sc.rho > 2.5))
        1
        """
        return replace(
            self, scenarios=tuple(sc for sc in self.scenarios if predicate(sc))
        )

    def concat(self, other: "Experiment | Iterable[Scenario]") -> "Experiment":
        """This experiment followed by ``other``'s scenarios."""
        extra = tuple(other.scenarios if isinstance(other, Experiment) else other)
        return replace(self, scenarios=self.scenarios + extra)

    def with_name(self, name: str) -> "Experiment":
        """A renamed copy (the name flows into the result set)."""
        return replace(self, name=name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def plan(self, backend: str | None = None) -> ExecutionPlan:
        """Compile the deduplicated :class:`ExecutionPlan` (lazy: no
        solve happens here)."""
        return ExecutionPlan.compile(self.scenarios, backend=backend, name=self.name)

    def solve(
        self,
        backend: str | None = None,
        *,
        cache: bool | SolveCache = True,
        processes: int | None = None,
        strict: bool = False,
        progress: Callable[[PlanProgress], None] | None = None,
        transport: "Transport | str | None" = None,
    ) -> ResultSet:
        """Compile and execute in one call; see
        :meth:`ExecutionPlan.execute` for the parameters."""
        return self.plan(backend).execute(
            cache=cache,
            processes=processes,
            strict=strict,
            progress=progress,
            transport=transport,
        )
