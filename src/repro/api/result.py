"""Uniform solve results: one type across every backend.

Whatever backend solves a scenario — the Theorem-1 enumeration, the
exact numeric optimiser, the combined-error solver or the vectorised
grid — the caller receives the same :class:`Result`: the winning
candidate, the full candidate list when the backend enumerates one,
the backend-native payload under ``raw``, and :class:`Provenance`
(backend name, wall time, cache/batch flags).  A :class:`Study` solve
returns a :class:`ResultSet`, which adds NaN-encoded array accessors
and conversions into the existing reporting/serialize/CSV layers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from ..exceptions import InfeasibleBoundError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.verbs import (
        CrossoverResult,
        DiffResult,
        FrontierResult,
        SavingsResult,
        SensitivityResult,
    )
    from ..simulation.estimators import AgreementReport
    from .scenario import Scenario

__all__ = ["Provenance", "GridPoint", "Result", "ResultSet"]


@dataclass(frozen=True)
class Provenance:
    """How a result was obtained.

    Attributes
    ----------
    backend:
        Registry name of the backend that produced the result.
    wall_time:
        Seconds spent solving.  For batched solves this is the batch
        total divided by the batch size; ``0.0`` on cache hits.
    cache_hit:
        True when the result was replayed from a :class:`SolveCache`.
    batch_size:
        Number of scenarios solved together (1 = standalone solve).
    """

    backend: str
    wall_time: float = 0.0
    cache_hit: bool = False
    batch_size: int = 1


@dataclass(frozen=True)
class GridPoint:
    """Native payload of the vectorised ``grid`` backend for one scenario.

    Carries both the full speed-pair optimum and the diagonal
    (single-speed) optimum read off the same broadcast pass; NaN marks
    infeasibility.  The numbers come from the vectorised kernel and may
    differ from the scalar path in the last few ulps — ``Result.best``
    is always re-evaluated through the scalar formulas so downstream
    comparisons stay byte-identical.
    """

    sigma1: float
    sigma2: float
    work: float
    energy_overhead: float
    time_overhead: float
    sigma_single: float
    work_single: float
    energy_single: float

    @property
    def feasible(self) -> bool:
        """True when the two-speed problem is feasible at this point."""
        return math.isfinite(self.energy_overhead)


@dataclass(frozen=True)
class Result:
    """Uniform output of one scenario solve.

    Attributes
    ----------
    scenario:
        The spec that was solved.
    provenance:
        Backend name, wall time, cache/batch flags.
    best:
        The winning candidate (``PatternSolution``, ``ExactSolution``,
        ``CombinedSolution``, …) or ``None`` when the bound is
        infeasible.  All candidate types expose ``sigma1``, ``sigma2``,
        ``work``, ``energy_overhead`` and ``time_overhead``.
    candidates:
        Per-pair outcomes when the backend enumerates them
        (``firstorder``), else empty.
    raw:
        The backend-native full payload (e.g. a ``BiCritSolution``),
        for callers that need backend-specific detail.
    rho_min:
        Minimum feasible bound diagnostic, when the backend knows it.
    """

    scenario: "Scenario"
    provenance: Provenance
    best: Any | None
    candidates: tuple = field(default=(), repr=False)
    raw: Any = field(default=None, repr=False)
    rho_min: float | None = None

    # ------------------------------------------------------------------
    @property
    def feasible(self) -> bool:
        """True when the scenario admits a solution under its bound."""
        return self.best is not None

    def require(self) -> "Result":
        """Return ``self``, raising :class:`InfeasibleBoundError` if
        the solve found no feasible candidate."""
        if self.best is None:
            raise InfeasibleBoundError(self.scenario.rho, self.rho_min)
        return self

    # -- uniform accessors over the winning candidate -------------------
    @property
    def speed_pair(self) -> tuple[float, float] | None:
        """Winning ``(sigma1, sigma2)``, or ``None`` when infeasible."""
        if self.best is None:
            return None
        return (self.best.sigma1, self.best.sigma2)

    @property
    def work(self) -> float:
        """Winning pattern size (NaN when infeasible)."""
        return self.best.work if self.best is not None else math.nan

    @property
    def energy_overhead(self) -> float:
        """Winning energy per work unit (NaN when infeasible)."""
        return self.best.energy_overhead if self.best is not None else math.nan

    @property
    def time_overhead(self) -> float:
        """Achieved time per work unit (NaN when infeasible)."""
        return self.best.time_overhead if self.best is not None else math.nan

    # ------------------------------------------------------------------
    def simulate(
        self,
        n: int = 20_000,
        rng: "np.random.Generator | int | None" = None,
    ) -> "AgreementReport":
        """Monte-Carlo-validate this result against the model.

        Simulates ``n`` patterns of the winning ``(work, sigma1,
        sigma2)`` operating point under the scenario's error model and
        compares the sample means against the exact expectations — the
        same check as the CLI ``validate`` command, bound to the solved
        scenario.

        Raises
        ------
        InfeasibleBoundError
            When the result is infeasible (there is nothing to run).
        """
        from ..simulation.estimators import check_agreement

        self.require()
        cfg = self.scenario.resolved_config()
        if self.scenario.schedule is not None:
            return check_agreement(
                cfg,
                work=self.best.work,
                schedule=self.scenario.schedule,
                errors=self.scenario.resolved_errors(),
                n=n,
                rng=rng,
            )
        return check_agreement(
            cfg,
            work=self.best.work,
            sigma1=self.best.sigma1,
            sigma2=self.best.sigma2,
            errors=self.scenario.resolved_errors(),
            n=n,
            rng=rng,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable export (see ``reporting.serialize``)."""
        from ..reporting.serialize import result_to_dict

        return result_to_dict(self)


@dataclass(frozen=True)
class ResultSet:
    """An ordered batch of results — the output of ``Study.solve``.

    Order matches the study's scenario order, so positional zips
    against the scenario grid are safe.  Array accessors encode
    infeasible entries as NaN, mirroring ``SweepSeries``.
    """

    results: tuple[Result, ...]
    name: str = "study"

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[Result]:
        return iter(self.results)

    def __getitem__(self, index: int) -> Result:
        return self.results[index]

    # ------------------------------------------------------------------
    def feasible_mask(self) -> np.ndarray:
        """Boolean mask of feasible results, scenario order."""
        return np.array([r.feasible for r in self.results], dtype=bool)

    def speed_pairs(self) -> list[tuple[float, float] | None]:
        """Winning pairs per scenario (``None`` = infeasible)."""
        return [r.speed_pair for r in self.results]

    def works(self) -> np.ndarray:
        """Winning pattern sizes (NaN = infeasible)."""
        return np.array([r.work for r in self.results])

    def energy_overheads(self) -> np.ndarray:
        """Winning energy overheads (NaN = infeasible)."""
        return np.array([r.energy_overhead for r in self.results])

    def time_overheads(self) -> np.ndarray:
        """Achieved time overheads (NaN = infeasible)."""
        return np.array([r.time_overhead for r in self.results])

    # -- provenance aggregates ------------------------------------------
    def cache_hits(self) -> int:
        """How many results were replayed from cache."""
        return sum(1 for r in self.results if r.provenance.cache_hit)

    def total_wall_time(self) -> float:
        """Summed solver wall time across the batch (seconds)."""
        return sum(r.provenance.wall_time for r in self.results)

    def backends_used(self) -> tuple[str, ...]:
        """Distinct backend names, first-use order."""
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.provenance.backend, None)
        return tuple(seen)

    # -- analysis verbs (implemented in repro.analysis.verbs) -----------
    def frontier(
        self,
        x: str = "time_overhead",
        y: str = "energy_overhead",
        *,
        prune: bool = True,
    ) -> "FrontierResult":
        """The x-vs-y trade-off frontier of these results (default:
        achieved time vs energy — the paper's bi-criteria curve), with
        a well-defined knee.  ``prune=False`` keeps the result order
        and collapses only exact duplicates (the legacy
        ``pareto_frontier`` rule)."""
        from ..analysis.verbs import build_frontier

        return build_frontier(self, x, y, prune=prune)

    def savings(
        self,
        baseline: "ResultSet",
        *,
        values: "Sequence[float] | np.ndarray | None" = None,
        axis: str = "value",
        y: str = "energy_overhead",
    ) -> "SavingsResult":
        """Per-point percent savings of these results over a
        positionally-aligned ``baseline`` result set."""
        from ..analysis.verbs import build_savings

        return build_savings(self, baseline, values=values, axis=axis, y=y)

    def sensitivity(
        self,
        *,
        values: "Sequence[float] | np.ndarray | None" = None,
        axis: str = "rho",
        y: str = "energy_overhead",
    ) -> "SensitivityResult":
        """Central-difference log-log elasticities of ``y`` along the
        swept axis (defaults to the scenarios' ``rho``)."""
        from ..analysis.verbs import build_sensitivity

        return build_sensitivity(self, values=values, axis=axis, y=y)

    def crossover(
        self,
        *,
        values: "Sequence[float] | np.ndarray | None" = None,
        axis: str = "rho",
    ) -> "CrossoverResult":
        """All winning-speed-pair switches along the result order
        (feasibility transitions included)."""
        from ..analysis.verbs import build_crossover

        return build_crossover(self, values=values, axis=axis)

    def diff(self, a: int, b: int) -> "DiffResult":
        """Why results ``a`` and ``b`` differ: which scenario axis
        moved, whether the optimum stayed interior or jumped onto a
        feasibility crossing, how the feasible interval shifted — the
        variational trace of two (typically neighbouring) solves."""
        from ..analysis.verbs import build_diff

        return build_diff(self, a, b)

    # -- conversions into the reporting layers --------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-serialisable export, one dict per result."""
        return [r.to_dict() for r in self.results]

    def to_csv(self, path: str | Path) -> Path:
        """Write one CSV row per result (see ``reporting.csvio``)."""
        from ..reporting.csvio import write_results_csv

        return write_results_csv(path, self)
