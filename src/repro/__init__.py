"""repro — reproduction of "A different re-execution speed can help".

Benoit, Cavelan, Le Fèvre, Robert, Sun (ICPP 2016 / INRIA RR-8888).

The library models a divisible-load application checkpointing
periodically under silent (and optionally fail-stop) errors on a DVFS
platform, and solves the bi-criteria problem of minimising expected
energy per unit of work subject to a bound on expected time per unit of
work, allowing re-executions after failures to run at a *different*
speed.

Quickstart
----------
Declare *what* to solve as a :class:`Scenario`; the pluggable backend
registry decides *how* (``firstorder``, ``exact``, ``combined``, the
vectorised ``grid``, or the per-attempt ``schedule`` backend), with
memoised caching and provenance:

>>> import repro
>>> result = repro.Scenario(config="hera-xscale", rho=3.0).solve()
>>> result.best.speed_pair, round(result.best.work)
((0.4, 0.4), 2764)
>>> result.provenance.backend
'firstorder'

Batches of scenarios (grids over configurations, bounds, modes) are a
:class:`Study`, and the ``grid`` backend solves whole studies in a few
broadcast NumPy ops:

>>> study = repro.Study.from_grid(configs=("hera-xscale", "atlas-crusoe"))
>>> [r.best.speed_pair for r in study.solve(backend="grid")]
[(0.4, 0.4), (0.45, 0.45)]

Derived analyses compose through the lazy :class:`Experiment` pipeline
— a deduplicated, batched execution plan plus analysis verbs on the
result (``docs/experiments.md``):

>>> fr = (
...     repro.Experiment.over(configs=("hera-xscale",), rhos=(2.5, 3.0, 4.0))
...     .solve()
...     .frontier()
... )
>>> fr.is_monotone()
True

The legacy entry points remain as thin wrappers over the same registry:

>>> cfg = repro.get_configuration("hera-xscale")
>>> sol = repro.solve_bicrit(cfg, rho=3.0)
>>> sol.best.speed_pair, round(sol.best.work)
((0.4, 0.4), 2764)

Re-executions need not share one speed: a per-attempt
:class:`SpeedSchedule` (``TwoSpeed``, ``Constant``, ``Escalating``,
``Geometric``) generalises the paper's model — see ``docs/schedules.md``:

>>> sched = repro.Geometric(0.4, 1.5, sigma_max=1.0)
>>> sched.speeds_for_attempts(4)
(0.4, 0.6000000000000001, 0.9000000000000001, 1.0)

Nor must errors arrive memorylessly: pluggable renewal
:class:`ErrorModel` families (``exp``/``weibull``/``gamma``/``trace``)
replace the exponential assumption end to end — see ``docs/errors.md``:

>>> model = repro.parse_error_model("weibull:shape=0.7,mtbf=5e3,failstop=0.2")
>>> model.failstop_arrivals.mtbf
25000.0

See ``docs/api.md`` for the full Scenario/Study workflow and the
legacy-wrapper mapping table.
"""

from .core import (
    BiCritSolution,
    CandidateOutcome,
    Pattern,
    PatternSolution,
    energy_optimal_work,
    energy_overhead,
    energy_overhead_fo,
    expected_energy,
    expected_time,
    min_performance_bound,
    optimal_work,
    solve_bicrit,
    solve_bicrit_exact,
    solve_single_speed,
    time_overhead,
    time_overhead_fo,
)
from .errors import (
    ArrivalProcess,
    CombinedErrors,
    ErrorModel,
    ExponentialArrivals,
    ExponentialErrors,
    GammaArrivals,
    TraceArrivals,
    WeibullArrivals,
    error_model_kinds,
    parse_error_model,
)
from .schedules import (
    Constant,
    Escalating,
    Geometric,
    ScheduleGridSolution,
    ScheduleSolution,
    SpeedSchedule,
    TwoSpeed,
    evaluate_schedule,
    evaluate_schedule_batch,
    parse_schedule,
    schedule_kinds,
    solve_schedule,
    solve_schedule_batch,
)
from .exceptions import (
    ApproximationDomainError,
    ConvergenceError,
    InfeasibleBoundError,
    InvalidParameterError,
    InvalidTruncationError,
    ReproError,
    SpeedNotAvailableError,
    UnknownBackendError,
    UnsupportedErrorModelError,
    UnsupportedScenarioError,
)
from .platforms import (
    ATLAS,
    COASTAL,
    COASTAL_SSD,
    CRUSOE,
    HERA,
    XSCALE,
    Configuration,
    Platform,
    Processor,
    all_configurations,
    configuration_names,
    get_configuration,
)
from .power import PowerModel

# Extension surface (lazy-ish: these are light imports, re-exported for
# discoverability; the full APIs live in their subpackages).
from .analysis import (
    CrossoverResult,
    FrontierResult,
    ParetoFrontier,
    SavingsResult,
    SensitivityResult,
    fit_power_law,
    map_regions,
    optimal_pairs_by_rho,
    pareto_frontier,
    summarize_savings,
)
from .failstop import (
    solve_bicrit_combined,
    theorem2_work,
    time_optimal_work,
)
from .simulation import (
    ApplicationSimulator,
    PatternSimulator,
    check_agreement,
    simulate_until,
)
from .sweep import (
    run_figure,
    run_schedule_sweep_fast,
    run_sweep,
    run_sweep_fast,
    speed_pair_table,
    sweep_failstop_fraction,
)

# The unified solve API (imported last: its backends wrap the solver
# implementations above).
from .api import (
    ExecutionPlan,
    Experiment,
    Result,
    ResultSet,
    Scenario,
    SolveCache,
    SolverBackend,
    Study,
    available_backends,
    get_backend,
    register_backend,
)

__version__ = "1.10.0"

__all__ = [
    "__version__",
    # unified solve API
    "Scenario",
    "Study",
    "Experiment",
    "ExecutionPlan",
    "Result",
    "ResultSet",
    "SolverBackend",
    "SolveCache",
    "register_backend",
    "get_backend",
    "available_backends",
    # errors / exceptions
    "ReproError",
    "InvalidParameterError",
    "InvalidTruncationError",
    "InfeasibleBoundError",
    "SpeedNotAvailableError",
    "ApproximationDomainError",
    "ConvergenceError",
    "UnknownBackendError",
    "UnsupportedScenarioError",
    "UnsupportedErrorModelError",
    # substrates
    "ExponentialErrors",
    "CombinedErrors",
    # error models (renewal arrival processes)
    "ArrivalProcess",
    "ExponentialArrivals",
    "WeibullArrivals",
    "GammaArrivals",
    "TraceArrivals",
    "ErrorModel",
    "parse_error_model",
    "error_model_kinds",
    "PowerModel",
    "Platform",
    "Processor",
    "Configuration",
    "HERA",
    "ATLAS",
    "COASTAL",
    "COASTAL_SSD",
    "XSCALE",
    "CRUSOE",
    "all_configurations",
    "configuration_names",
    "get_configuration",
    # speed schedules
    "SpeedSchedule",
    "TwoSpeed",
    "Constant",
    "Escalating",
    "Geometric",
    "parse_schedule",
    "schedule_kinds",
    "evaluate_schedule",
    "solve_schedule",
    "ScheduleSolution",
    "evaluate_schedule_batch",
    "solve_schedule_batch",
    "ScheduleGridSolution",
    # core
    "Pattern",
    "PatternSolution",
    "CandidateOutcome",
    "BiCritSolution",
    "expected_time",
    "expected_energy",
    "time_overhead",
    "energy_overhead",
    "time_overhead_fo",
    "energy_overhead_fo",
    "energy_optimal_work",
    "optimal_work",
    "min_performance_bound",
    "solve_bicrit",
    "solve_bicrit_exact",
    "solve_single_speed",
    # failstop extensions
    "solve_bicrit_combined",
    "theorem2_work",
    "time_optimal_work",
    # simulation
    "PatternSimulator",
    "ApplicationSimulator",
    "check_agreement",
    "simulate_until",
    # sweeps / experiments
    "run_sweep",
    "run_sweep_fast",
    "run_schedule_sweep_fast",
    "run_figure",
    "speed_pair_table",
    "sweep_failstop_fraction",
    # analysis
    "pareto_frontier",
    "ParetoFrontier",
    "FrontierResult",
    "SavingsResult",
    "SensitivityResult",
    "CrossoverResult",
    "map_regions",
    "optimal_pairs_by_rho",
    "summarize_savings",
    "fit_power_law",
]
