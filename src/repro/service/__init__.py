"""Solver-as-a-service: the async HTTP job layer over the pipeline.

The service exposes the :class:`~repro.api.experiment.Experiment`
pipeline as an async job API — ``POST /v1/jobs`` accepts a JSON
experiment spec, execution happens on queue workers over the
process-wide warm worker pool against the shared solve cache, progress
streams as Server-Sent Events, and finished jobs leave CSV/JSON
artifacts in a pluggable store.  See docs/service.md.

The core (:mod:`repro.service.app`) is carrier-neutral and runs on the
stdlib threaded server (:mod:`repro.service.server`) with zero
third-party dependencies; the ``repro[service]`` extra adds the
FastAPI/uvicorn shell (:mod:`repro.service.asgi`).
"""

from .app import ServiceApp, ServiceRequest, ServiceResponse
from .artifacts import (
    ArtifactInfo,
    ArtifactNotFoundError,
    ArtifactStore,
    InMemoryArtifactStore,
    LocalDirArtifactStore,
)
from .auth import AuthOutcome, TokenAuthenticator
from .config import ServiceConfig
from .jobs import Job, JobEvent, JobNotFoundError, JobState, JobStore
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .queue import JobQueue, ServiceMetrics
from .server import ServiceServer, make_server, serve
from .specs import ExperimentSpec, parse_experiment_spec

__all__ = [
    "ArtifactInfo",
    "ArtifactNotFoundError",
    "ArtifactStore",
    "AuthOutcome",
    "Counter",
    "ExperimentSpec",
    "Gauge",
    "Histogram",
    "InMemoryArtifactStore",
    "Job",
    "JobEvent",
    "JobNotFoundError",
    "JobQueue",
    "JobState",
    "JobStore",
    "LocalDirArtifactStore",
    "MetricsRegistry",
    "ServiceApp",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceServer",
    "TokenAuthenticator",
    "make_server",
    "parse_experiment_spec",
    "serve",
]
