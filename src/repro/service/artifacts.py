"""Pluggable artifact storage for job result exports.

A finished job leaves its deliverables — the results CSV, the JSON
result set, analysis exports — in an :class:`ArtifactStore`, from
which ``GET /v1/jobs/{id}/artifacts/{name}`` serves them.  The
interface is the byte-oriented put/get/list contract of an object
store, so the local-directory backend shipping here can be swapped for
S3/GCS without touching the job layer; :class:`InMemoryArtifactStore`
backs tests and benchmarks that should not touch disk.

Artifact names are validated against a conservative character set and
job ids become one directory level each — a crafted name can never
traverse outside the store root.
"""

from __future__ import annotations

import abc
import re
import threading
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import InvalidParameterError

__all__ = [
    "ArtifactInfo",
    "ArtifactNotFoundError",
    "ArtifactStore",
    "LocalDirArtifactStore",
    "InMemoryArtifactStore",
    "content_type_for",
]

#: Allowed artifact/job-id shape: simple filenames, no separators, no
#: leading dot (hence no ``.``/``..`` path escapes).
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Extension -> content type of the exports the job layer writes.
_CONTENT_TYPES = {
    ".csv": "text/csv; charset=utf-8",
    ".json": "application/json",
    ".txt": "text/plain; charset=utf-8",
    ".md": "text/markdown; charset=utf-8",
}


class ArtifactNotFoundError(InvalidParameterError, KeyError):
    """No such artifact (or job) in the store — maps to HTTP 404."""

    def __init__(self, job_id: str, name: str | None = None):
        self.job_id = job_id
        self.name = name
        what = f"artifact {name!r} of job {job_id!r}" if name else f"job {job_id!r}"
        super().__init__(f"{what} not found in the artifact store")

    # KeyError.__str__ reprs the message; keep the plain rendering.
    __str__ = Exception.__str__

    def __reduce__(self) -> tuple[type, tuple[object, ...]]:
        return (type(self), (self.job_id, self.name))


def _validate_name(name: str, *, what: str) -> str:
    if not _NAME_RE.match(name):
        raise InvalidParameterError(
            f"invalid {what} {name!r}: expected [A-Za-z0-9._-]+ without a "
            f"leading dot"
        )
    return name


def content_type_for(name: str) -> str:
    """Content type served for artifact ``name`` (by extension)."""
    for ext, ctype in _CONTENT_TYPES.items():
        if name.endswith(ext):
            return ctype
    return "application/octet-stream"


@dataclass(frozen=True)
class ArtifactInfo:
    """One stored artifact's metadata row."""

    name: str
    size: int
    content_type: str


class ArtifactStore(abc.ABC):
    """The byte-oriented artifact contract (object-store shaped)."""

    @abc.abstractmethod
    def put(self, job_id: str, name: str, data: bytes) -> ArtifactInfo:
        """Store ``data`` under ``(job_id, name)``; overwrites (the
        idempotent-write semantics a retried job needs)."""

    @abc.abstractmethod
    def get(self, job_id: str, name: str) -> bytes:
        """The stored bytes; raises :class:`ArtifactNotFoundError`."""

    @abc.abstractmethod
    def list(self, job_id: str) -> tuple[ArtifactInfo, ...]:
        """All artifacts of one job, name order (empty when none)."""

    def info(self, job_id: str, name: str) -> ArtifactInfo:
        """Metadata of one artifact; raises :class:`ArtifactNotFoundError`."""
        for row in self.list(job_id):
            if row.name == name:
                return row
        raise ArtifactNotFoundError(job_id, name)


class LocalDirArtifactStore(ArtifactStore):
    """Artifacts on the local filesystem: ``<root>/<job_id>/<name>``.

    Writes go through a same-directory temp file + :func:`Path.rename`
    so a concurrently-served artifact is never read half-written.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _job_dir(self, job_id: str) -> Path:
        return self.root / _validate_name(job_id, what="job id")

    def put(self, job_id: str, name: str, data: bytes) -> ArtifactInfo:
        _validate_name(name, what="artifact name")
        job_dir = self._job_dir(job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        tmp = job_dir / f".{name}.tmp"
        tmp.write_bytes(data)
        tmp.rename(job_dir / name)
        return ArtifactInfo(name=name, size=len(data), content_type=content_type_for(name))

    def get(self, job_id: str, name: str) -> bytes:
        _validate_name(name, what="artifact name")
        path = self._job_dir(job_id) / name
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise ArtifactNotFoundError(job_id, name) from None

    def list(self, job_id: str) -> tuple[ArtifactInfo, ...]:
        job_dir = self._job_dir(job_id)
        if not job_dir.is_dir():
            return ()
        rows = [
            ArtifactInfo(
                name=path.name,
                size=path.stat().st_size,
                content_type=content_type_for(path.name),
            )
            for path in sorted(job_dir.iterdir())
            if path.is_file() and not path.name.startswith(".")
        ]
        return tuple(rows)


class InMemoryArtifactStore(ArtifactStore):
    """A dict-backed store for tests and benchmarks (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, dict[str, bytes]] = {}

    def put(self, job_id: str, name: str, data: bytes) -> ArtifactInfo:
        _validate_name(job_id, what="job id")
        _validate_name(name, what="artifact name")
        with self._lock:
            self._data.setdefault(job_id, {})[name] = bytes(data)
        return ArtifactInfo(name=name, size=len(data), content_type=content_type_for(name))

    def get(self, job_id: str, name: str) -> bytes:
        with self._lock:
            try:
                return self._data[job_id][name]
            except KeyError:
                raise ArtifactNotFoundError(job_id, name) from None

    def list(self, job_id: str) -> tuple[ArtifactInfo, ...]:
        with self._lock:
            rows = self._data.get(job_id, {})
            return tuple(
                ArtifactInfo(
                    name=name, size=len(data), content_type=content_type_for(name)
                )
                for name, data in sorted(rows.items())
            )
