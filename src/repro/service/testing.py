"""Test and benchmark clients for the solver service.

:class:`InProcessClient` exercises the carrier-neutral app directly —
no sockets, no threads beyond the queue's own — which is what the
spec/auth/metrics tests and the dispatch benchmarks want.
:func:`run_service` boots the stdlib server on an ephemeral port for
end-to-end tests over a real HTTP connection (SSE framing included),
using only :mod:`http.client` on the client side.
"""

from __future__ import annotations

import http.client
import json
import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from ..exceptions import ReproError
from .app import ServiceApp, ServiceRequest, ServiceResponse
from .server import ServiceServer, make_server

__all__ = ["ClientResponse", "InProcessClient", "run_service", "sse_events"]


@dataclass(frozen=True)
class ClientResponse:
    """One response as tests want to see it."""

    status: int
    headers: tuple[tuple[str, str], ...]
    body: bytes

    def header(self, name: str) -> str | None:
        """First header value of ``name`` (case-insensitive)."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None

    def json(self) -> Any:
        """The parsed JSON body."""
        return json.loads(self.body)

    @property
    def text(self) -> str:
        return self.body.decode()


class InProcessClient:
    """Call the app's router directly (no HTTP carrier).

    Streaming responses are drained eagerly, so SSE endpoints should be
    exercised with ``?stream=false`` (the JSON event list) or over
    :func:`run_service` — an in-process drain of a live job's stream
    would block until the job finishes.
    """

    def __init__(self, app: ServiceApp, *, token: str | None = None):
        self.app = app
        self.token = token

    def _headers(self, headers: Mapping[str, str] | None) -> dict[str, str]:
        merged = dict(headers or {})
        if self.token is not None and "authorization" not in {
            k.lower() for k in merged
        }:
            merged["Authorization"] = f"Bearer {self.token}"
        return merged

    def request(
        self,
        method: str,
        target: str,
        *,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> ClientResponse:
        response = self.app.handle(
            ServiceRequest.make(
                method, target, headers=self._headers(headers), body=body
            )
        )
        return _drain(response)

    def get(
        self, target: str, *, headers: Mapping[str, str] | None = None
    ) -> ClientResponse:
        return self.request("GET", target, headers=headers)

    def post_json(
        self,
        target: str,
        payload: Any,
        *,
        headers: Mapping[str, str] | None = None,
    ) -> ClientResponse:
        merged = {"Content-Type": "application/json", **(headers or {})}
        return self.request(
            "POST", target, headers=merged, body=json.dumps(payload).encode()
        )

    # -- conveniences over the job API ---------------------------------
    def submit(self, spec: Mapping[str, Any]) -> dict[str, Any]:
        """Submit a spec; returns the accepted job document (raises on
        any non-202 answer)."""
        response = self.post_json("/v1/jobs", spec)
        if response.status != 202:
            raise ReproError(
                f"job submission failed with {response.status}: {response.text}"
            )
        payload: dict[str, Any] = response.json()
        return payload

    def wait_job(
        self, job_id: str, *, timeout: float = 60.0, poll: float = 0.02
    ) -> dict[str, Any]:
        """Poll ``GET /v1/jobs/{id}`` until the job is terminal."""
        deadline = time.monotonic() + timeout
        while True:
            doc: dict[str, Any] = self.get(f"/v1/jobs/{job_id}").json()
            if doc["state"] in ("succeeded", "failed"):
                return doc
            if time.monotonic() > deadline:
                raise ReproError(
                    f"job {job_id} still {doc['state']!r} after {timeout}s"
                )
            time.sleep(poll)


def _drain(response: ServiceResponse) -> ClientResponse:
    body = (
        response.body
        if isinstance(response.body, bytes)
        else b"".join(response.body)
    )
    return ClientResponse(
        status=response.status, headers=tuple(response.headers), body=body
    )


@contextmanager
def run_service(
    app: ServiceApp, *, host: str = "127.0.0.1"
) -> Iterator[ServiceServer]:
    """Boot the stdlib carrier on an ephemeral port around ``app``."""
    server = make_server(app, host=host, port=0)
    server.start()
    try:
        yield server
    finally:
        server.stop()


def sse_events(
    server: ServiceServer,
    job_id: str,
    *,
    token: str | None = None,
    after: int = 0,
    timeout: float = 60.0,
) -> Iterator[dict[str, Any]]:
    """Consume a job's live SSE stream over a real HTTP connection.

    Yields one dict per event — ``{"id": seq, "event": kind, "data":
    payload}`` — until the server closes the stream (terminal job) or
    ``timeout`` elapses on the socket.
    """
    conn = http.client.HTTPConnection(server.host, server.port, timeout=timeout)
    headers = {"Accept": "text/event-stream"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    if after:
        headers["Last-Event-ID"] = str(after)
    try:
        conn.request("GET", f"/v1/jobs/{job_id}/events", headers=headers)
        response = conn.getresponse()
        if response.status != 200:
            raise ReproError(
                f"SSE stream refused with {response.status}: "
                f"{response.read().decode(errors='replace')}"
            )
        event: dict[str, Any] = {}
        for raw in response:
            line = raw.decode().rstrip("\n").rstrip("\r")
            if not line:
                if event:
                    yield event
                    event = {}
                continue
            if line.startswith(":"):
                continue  # keepalive comment
            field, _, value = line.partition(":")
            value = value.removeprefix(" ")
            if field == "id":
                event["id"] = int(value)
            elif field == "event":
                event["event"] = value
            elif field == "data":
                event["data"] = json.loads(value)
        if event:  # pragma: no cover - streams end on a blank line
            yield event
    finally:
        conn.close()
