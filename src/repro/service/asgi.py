"""ASGI adapter and the dependency-gated FastAPI factory.

The toolchain image ships without FastAPI/uvicorn, so the service core
is carrier-neutral and this module provides the bridge for
environments that *do* install the ``repro[service]`` extra:

* :class:`ASGIAdapter` — a hand-written, framework-free ASGI 3
  application around :class:`~repro.service.app.ServiceApp`.  Any ASGI
  server (uvicorn, hypercorn, daphne) can serve it directly::

      uvicorn "repro.service.asgi:make_asgi_app()" --factory

  Request handling (and streaming-body iteration) is pushed onto the
  default executor so the solver never blocks the event loop; ASGI
  ``lifespan`` events drive the app's startup/shutdown — the warm pool
  is tied to the server's lifespan, exactly as with the stdlib carrier.

* :func:`create_fastapi_app` — mounts the adapter inside a FastAPI
  application (for OpenAPI docs and middleware composition), raising a
  typed :class:`~repro.exceptions.MissingDependencyError` naming the
  extra when FastAPI is absent, instead of an ImportError from deep
  inside a web stack.
"""

from __future__ import annotations

import asyncio
from collections.abc import Iterator
from typing import Any

from ..exceptions import MissingDependencyError
from .app import ServiceApp, ServiceRequest
from .config import ServiceConfig

__all__ = ["ASGIAdapter", "create_fastapi_app", "make_asgi_app"]


class ASGIAdapter:
    """ASGI 3 single-callable around the carrier-neutral service app."""

    def __init__(self, app: ServiceApp):
        self.app = app

    async def __call__(
        self, scope: dict[str, Any], receive: Any, send: Any
    ) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - websockets unused
            raise MissingDependencyError(
                feature=f"ASGI scope {scope['type']!r}", extra="service",
                missing="websocket support",
            )
        await self._http(scope, receive, send)

    # ------------------------------------------------------------------
    async def _lifespan(self, receive: Any, send: Any) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await asyncio.get_running_loop().run_in_executor(
                    None, self.app.startup
                )
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await asyncio.get_running_loop().run_in_executor(
                    None, self.app.shutdown
                )
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _http(self, scope: dict[str, Any], receive: Any, send: Any) -> None:
        body = b""
        while True:
            message = await receive()
            body += message.get("body", b"")
            if not message.get("more_body", False):
                break
        headers = {
            name.decode("latin-1").lower(): value.decode("latin-1")
            for name, value in scope.get("headers", ())
        }
        query = scope.get("query_string", b"").decode("latin-1")
        target = scope["path"] + (f"?{query}" if query else "")
        request = ServiceRequest.make(
            scope["method"], target, headers=headers, body=body
        )
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(None, self.app.handle, request)
        await send(
            {
                "type": "http.response.start",
                "status": response.status,
                "headers": [
                    (name.encode("latin-1"), value.encode("latin-1"))
                    for name, value in response.headers
                ],
            }
        )
        if isinstance(response.body, bytes):
            await send(
                {"type": "http.response.body", "body": response.body}
            )
            return
        # Streaming (SSE): pull each chunk off the blocking iterator on
        # the executor so keepalive waits never stall the event loop.
        chunks: Iterator[bytes] = iter(response.body)
        while True:
            chunk = await loop.run_in_executor(None, next, chunks, None)
            if chunk is None:
                await send({"type": "http.response.body", "body": b""})
                return
            await send(
                {
                    "type": "http.response.body",
                    "body": chunk,
                    "more_body": True,
                }
            )


def make_asgi_app(config: ServiceConfig | None = None) -> ASGIAdapter:
    """An ASGI application over a fresh service app (uvicorn factory)."""
    return ASGIAdapter(ServiceApp(config or ServiceConfig.from_env()))


def create_fastapi_app(config: ServiceConfig | None = None) -> Any:
    """The service mounted inside a FastAPI application.

    Requires the ``repro[service]`` extra; raises
    :class:`~repro.exceptions.MissingDependencyError` otherwise.
    """
    try:
        from fastapi import FastAPI
    except ImportError:
        raise MissingDependencyError(
            feature="the FastAPI service shell", extra="service",
            missing="fastapi",
        ) from None
    service = ServiceApp(config or ServiceConfig.from_env())
    adapter = ASGIAdapter(service)
    api = FastAPI(
        title="repro solver service",
        description="Async job API over the re-execution-speed solver.",
    )
    api.mount("/", adapter)
    return api
