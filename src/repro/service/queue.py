"""The async job queue: accepted specs become executed plans.

Submissions land on a bounded in-process queue drained by a small pool
of worker threads.  Each worker compiles the job's
:class:`~repro.api.experiment.Experiment` into a deduplicated
:class:`~repro.api.experiment.ExecutionPlan` and executes it over the
configured transport — by default the process-wide warm worker pool —
against the *shared* process-wide solve cache, so a re-submitted grid
(or any grid overlapping an earlier one) serves its points from cache
instead of re-solving.

Crash recovery rides on the plan layer's per-shard cache writes: when
the transport reports a :class:`~repro.exceptions.WorkerCrashError`
(a pool worker was SIGKILLed / OOM-killed mid-shard), the worker
re-executes the same plan — completed shards replay from cache for
free, only the lost remainder is solved again — up to the configured
attempt budget.  The warm pool runs one plan at a time (its recycling
epoch is per-plan), so execution over a shared pool is serialised by a
transport lock; queue workers still overlap on validation, artifact
writing and analysis export.
"""

from __future__ import annotations

import json
import queue
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..api.experiment import PlanProgress
from ..exceptions import ReproError, WorkerCrashError
from ..reporting.csvio import write_results_csv
from .jobs import Job, JobState
from .jsonlog import get_logger, log_event
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.cache import SolveCache
    from ..api.result import ResultSet
    from ..exec.base import Transport
    from .artifacts import ArtifactStore
    from .config import ServiceConfig
    from .jobs import JobStore

__all__ = ["JobQueue", "ServiceMetrics"]

_log = get_logger("queue")


@dataclass(frozen=True)
class ServiceMetrics:
    """The instruments the job layer updates while executing."""

    jobs_submitted: Counter
    jobs_completed: Counter  # label: state
    jobs_inflight: Gauge
    shards_completed: Counter  # label: backend
    shard_seconds: Histogram  # label: backend
    scenarios_solved: Counter  # label: backend
    job_seconds: Histogram  # label: state

    @classmethod
    def create(cls, registry: MetricsRegistry) -> "ServiceMetrics":
        """Register the job instruments on ``registry``."""
        return cls(
            jobs_submitted=registry.counter(
                "repro_service_jobs_submitted_total", "Jobs accepted for execution"
            ),
            jobs_completed=registry.counter(
                "repro_service_jobs_completed_total",
                "Jobs finished, by terminal state",
                ("state",),
            ),
            jobs_inflight=registry.gauge(
                "repro_service_jobs_inflight", "Jobs currently executing"
            ),
            shards_completed=registry.counter(
                "repro_service_shards_completed_total",
                "Solve shards completed, by backend",
                ("backend",),
            ),
            shard_seconds=registry.histogram(
                "repro_service_shard_seconds",
                "Wall time between completed solve shards, by backend",
                ("backend",),
            ),
            scenarios_solved=registry.counter(
                "repro_service_scenarios_solved_total",
                "Scenarios newly solved (cache replays excluded), by backend",
                ("backend",),
            ),
            job_seconds=registry.histogram(
                "repro_service_job_seconds",
                "End-to-end job wall time, by terminal state",
                ("state",),
            ),
        )


class JobQueue:
    """Worker threads executing queued jobs over a shared transport."""

    def __init__(
        self,
        store: "JobStore",
        config: "ServiceConfig",
        *,
        cache: "SolveCache",
        artifacts: "ArtifactStore",
        metrics: ServiceMetrics | None = None,
        transport: "Transport | str | None" = None,
    ):
        self.store = store
        self.config = config
        self.cache = cache
        self.artifacts = artifacts
        self.metrics = metrics
        #: What ``plan.execute(transport=...)`` receives; defaults to
        #: the config's transport kind string.
        self.transport: "Transport | str" = (
            transport if transport is not None else config.transport
        )
        self._queue: "queue.Queue[Job | None]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopping = False
        # The warm pool executes one plan at a time (per-plan recycle
        # epochs), so plan execution over a shared transport serialises
        # here; inline transports do not need it but stay correct.
        self._transport_lock = threading.Lock()
        self._idle = threading.Condition()
        self._inflight = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._started:
            return
        self._started = True
        for i in range(self.config.job_workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-job-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers."""
        if not self._started or self._stopping:
            return
        self._stopping = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)

    def submit(self, job: Job) -> None:
        """Enqueue one accepted job."""
        if self._stopping:
            raise ReproError("the job queue is shutting down")
        if not self._started:
            self.start()
        with self._idle:
            self._inflight += 1
        if self.metrics is not None:
            self.metrics.jobs_submitted.inc()
        log_event(_log, "job.queued", job_id=job.id, scenarios=len(job.spec))
        self._queue.put(job)

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until every submitted job reached a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._run_job(job)
            finally:
                with self._idle:
                    self._inflight -= 1
                    self._idle.notify_all()

    def _run_job(self, job: Job) -> None:
        started = time.monotonic()
        if self.metrics is not None:
            self.metrics.jobs_inflight.inc()
        job.set_state(JobState.RUNNING)
        log_event(_log, "job.started", job_id=job.id, scenarios=len(job.spec))
        try:
            results = self._execute(job)
            self._export_artifacts(job, results)
            elapsed = time.monotonic() - started
            job.record_result(
                {
                    "scenarios": len(results),
                    "cache_hits": results.cache_hits(),
                    "backends": list(results.backends_used()),
                    "solve_wall_time": round(results.total_wall_time(), 6),
                    "elapsed_seconds": round(elapsed, 6),
                }
            )
            job.set_state(JobState.SUCCEEDED)
            self._finish(job, JobState.SUCCEEDED, started)
        except ReproError as exc:
            job.set_state(JobState.FAILED, error=f"{type(exc).__name__}: {exc}")
            self._finish(job, JobState.FAILED, started, error=exc)
        except Exception as exc:  # noqa: BLE001 - a job must not kill its worker
            job.set_state(JobState.FAILED, error=f"{type(exc).__name__}: {exc}")
            self._finish(job, JobState.FAILED, started, error=exc)

    def _finish(
        self,
        job: Job,
        state: JobState,
        started: float,
        error: BaseException | None = None,
    ) -> None:
        elapsed = time.monotonic() - started
        if self.metrics is not None:
            self.metrics.jobs_inflight.dec()
            self.metrics.jobs_completed.inc(state=state.value)
            self.metrics.job_seconds.observe(elapsed, state=state.value)
        if error is None:
            log_event(
                _log, "job.finished", job_id=job.id, state=state.value,
                seconds=round(elapsed, 6),
            )
        else:
            log_event(
                _log, "job.failed", job_id=job.id,
                error=f"{type(error).__name__}: {error}",
                seconds=round(elapsed, 6),
            )

    # ------------------------------------------------------------------
    def _execute(self, job: Job) -> "ResultSet":
        spec = job.spec
        plan = spec.experiment().plan(spec.backend)
        last_tick = time.monotonic()

        def tick(progress: PlanProgress) -> None:
            nonlocal last_tick
            now = time.monotonic()
            job.record_progress(
                {
                    "done_shards": progress.done_shards,
                    "total_shards": progress.total_shards,
                    "backend": progress.backend,
                    "solved_scenarios": progress.solved_scenarios,
                    "total_scenarios": progress.total_scenarios,
                    "fraction": round(progress.fraction, 6),
                }
            )
            if self.metrics is not None:
                self.metrics.shards_completed.inc(backend=progress.backend)
                self.metrics.shard_seconds.observe(
                    now - last_tick, backend=progress.backend
                )
                self.metrics.scenarios_solved.inc(
                    progress.solved_scenarios, backend=progress.backend
                )
            last_tick = now

        attempt = 0
        while True:
            try:
                with self._transport_lock:
                    return plan.execute(
                        cache=self.cache,
                        transport=self.transport,
                        progress=tick,
                    )
            except WorkerCrashError as exc:
                # Completed shards are already in the solve cache; the
                # re-execution replays them and solves the remainder.
                attempt += 1
                if attempt >= self.config.resume_attempts:
                    raise
                job.record_attempt(attempt, f"{type(exc).__name__}: {exc}")
                log_event(
                    _log, "job.resumed", job_id=job.id, attempt=attempt,
                    reason=str(exc),
                )

    # ------------------------------------------------------------------
    def _export_artifacts(self, job: Job, results: "ResultSet") -> None:
        spec = job.spec
        exports: list[tuple[str, bytes]] = []
        if "csv" in spec.artifacts:
            exports.append(("results.csv", _results_csv_bytes(results)))
        if "json" in spec.artifacts:
            payload = {
                "name": spec.name,
                "job_id": job.id,
                "results": results.to_dicts(),
            }
            exports.append(
                ("results.json", json.dumps(payload, indent=2).encode())
            )
        for verb in spec.analyses:
            exports.append((f"{verb}.json", _analysis_json_bytes(results, verb)))
        for name, data in exports:
            info = self.artifacts.put(job.id, name, data)
            job.record_artifact(info.name, info.size)


def _results_csv_bytes(results: "ResultSet") -> bytes:
    """The result-set CSV export, rendered to bytes via a temp file
    (the CSV writer's contract is path-oriented)."""
    with tempfile.TemporaryDirectory(prefix="repro-artifact-") as tmp:
        path = Path(tmp) / "results.csv"
        write_results_csv(path, results)
        return path.read_bytes()


def _analysis_json_bytes(results: "ResultSet", verb: str) -> bytes:
    """One analysis verb's JSON export."""
    if verb == "frontier":
        rendered = results.frontier().to_json()
    elif verb == "sensitivity":
        rendered = results.sensitivity().to_json()
    elif verb == "crossover":
        rendered = results.crossover().to_json()
    else:  # pragma: no cover - the spec codec rejects unknown verbs
        raise ReproError(f"unknown analysis verb {verb!r}")
    return str(rendered).encode()
