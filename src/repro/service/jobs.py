"""Job records, states and the event log behind the ``/v1/jobs`` API.

A *job* is one accepted experiment spec travelling through
``queued → running → succeeded | failed``.  Each job carries an
append-only, sequence-numbered event log (state changes, per-shard
:class:`~repro.api.experiment.PlanProgress` ticks, artifact
announcements); the SSE endpoint streams that log and uses the
sequence numbers as SSE event ids, so a client reconnecting with
``Last-Event-ID`` replays exactly the events it missed.

Everything here is plain threading — a :class:`threading.Condition`
per job lets any number of stream readers block until the writer (the
queue worker) appends — with no HTTP awareness, so the queue and the
app layers both talk to the same store.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any

from ..exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .specs import ExperimentSpec

__all__ = ["Job", "JobEvent", "JobNotFoundError", "JobState", "JobStore"]


class JobState(Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change."""
        return self in (JobState.SUCCEEDED, JobState.FAILED)


class JobNotFoundError(InvalidParameterError, KeyError):
    """No such job id — maps to HTTP 404."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        super().__init__(f"job {job_id!r} not found")

    # KeyError.__str__ reprs the message; keep the plain rendering.
    __str__ = Exception.__str__

    def __reduce__(self) -> tuple[type, tuple[object, ...]]:
        return (type(self), (self.job_id,))


@dataclass(frozen=True)
class JobEvent:
    """One append-only log entry of a job.

    ``seq`` is the job-local, strictly increasing sequence number (the
    SSE event id); ``kind`` is the SSE event name (``state``,
    ``progress``, ``artifact``, ``result``, ``error``).
    """

    seq: int
    kind: str
    data: dict[str, Any]
    created: float

    def as_payload(self) -> dict[str, Any]:
        """JSON-ready rendering (also used by the JSON event list)."""
        return {"seq": self.seq, "event": self.kind, **self.data}


class Job:
    """One submitted job: mutable state plus its event log.

    Mutations happen under the job's condition and notify every waiting
    stream reader; reads take consistent snapshots.  The queue worker
    is the only writer after submission, so event ``seq`` values are
    dense and strictly increasing.
    """

    def __init__(self, job_id: str, spec: "ExperimentSpec"):
        self.id = job_id
        self.spec = spec
        self.created = time.time()
        self._cond = threading.Condition()
        self._state = JobState.QUEUED
        self._error: str | None = None
        self._progress: dict[str, Any] | None = None
        self._result: dict[str, Any] | None = None
        self._artifacts: list[str] = []
        self._attempts = 0
        self._events: list[JobEvent] = []
        self._append("state", {"state": JobState.QUEUED.value})

    # -- writes --------------------------------------------------------
    def _append(self, kind: str, data: dict[str, Any]) -> JobEvent:
        # Callers either hold the condition already or are the
        # constructor; re-entrant acquisition keeps both simple.
        with self._cond:
            event = JobEvent(
                seq=len(self._events) + 1,
                kind=kind,
                data=data,
                created=time.time(),
            )
            self._events.append(event)
            self._cond.notify_all()
            return event

    def set_state(self, state: JobState, *, error: str | None = None) -> None:
        """Transition the job and log the ``state`` event."""
        with self._cond:
            if self._state.terminal:
                raise InvalidParameterError(
                    f"job {self.id} already {self._state.value}; cannot move "
                    f"to {state.value}"
                )
            self._state = state
            self._error = error
            data: dict[str, Any] = {"state": state.value}
            if error is not None:
                data["error"] = error
            self._append("state", data)

    def record_progress(self, data: dict[str, Any]) -> None:
        """Log one per-shard progress tick."""
        with self._cond:
            self._progress = data
            self._append("progress", data)

    def record_artifact(self, name: str, size: int) -> None:
        """Announce one stored artifact."""
        with self._cond:
            self._artifacts.append(name)
            self._append("artifact", {"name": name, "size": size})

    def record_result(self, summary: dict[str, Any]) -> None:
        """Attach the result summary of a finished solve."""
        with self._cond:
            self._result = summary
            self._append("result", summary)

    def record_attempt(self, attempt: int, reason: str) -> None:
        """Log one crash-recovery re-execution."""
        with self._cond:
            self._attempts = attempt
            self._append("retry", {"attempt": attempt, "reason": reason})

    # -- reads ---------------------------------------------------------
    @property
    def state(self) -> JobState:
        with self._cond:
            return self._state

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready status document (the ``GET /v1/jobs/{id}`` body)."""
        with self._cond:
            doc: dict[str, Any] = {
                "id": self.id,
                "state": self._state.value,
                "created": round(self.created, 6),
                "spec": self.spec.summary(),
                "events": len(self._events),
                "attempts": self._attempts,
                "artifacts": list(self._artifacts),
            }
            if self._progress is not None:
                doc["progress"] = dict(self._progress)
            if self._result is not None:
                doc["result"] = dict(self._result)
            if self._error is not None:
                doc["error"] = self._error
            return doc

    def events_since(self, after_seq: int) -> tuple[JobEvent, ...]:
        """All events with ``seq > after_seq`` (non-blocking)."""
        with self._cond:
            return tuple(e for e in self._events if e.seq > after_seq)

    def wait_events(
        self, after_seq: int, timeout: float | None = None
    ) -> tuple[JobEvent, ...]:
        """Events after ``after_seq``, blocking up to ``timeout``.

        Returns immediately when events are already pending or the job
        is terminal (a terminal job appends nothing further); an empty
        tuple means the timeout elapsed — the streamer's cue to emit a
        keepalive.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                pending = tuple(e for e in self._events if e.seq > after_seq)
                if pending or self._state.terminal:
                    return pending
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return ()
                self._cond.wait(remaining)


class JobStore:
    """The in-memory registry of all jobs this process accepted."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}

    def create(self, spec: "ExperimentSpec") -> Job:
        """Register a new queued job for ``spec``."""
        job_id = f"job-{uuid.uuid4().hex[:16]}"
        job = Job(job_id, spec)
        with self._lock:
            self._jobs[job_id] = job
        return job

    def get(self, job_id: str) -> Job:
        """The job, or :class:`JobNotFoundError`."""
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise JobNotFoundError(job_id) from None

    def list(self) -> tuple[Job, ...]:
        """All jobs, oldest first."""
        with self._lock:
            return tuple(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Jobs per state (the ``repro_service_jobs`` gauge source)."""
        out = dict.fromkeys((s.value for s in JobState), 0)
        with self._lock:
            for job in self._jobs.values():
                out[job.state.value] += 1
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
