"""Structured JSON logging for the solver service.

One event per line, one JSON object per event — the shape log
aggregators ingest directly.  The formatter serialises the standard
record fields (timestamp, level, logger) plus whatever key/value
context the call site attached through :func:`log_event`; nothing here
depends on the HTTP layer, so the queue, the artifact store and the
CLI share the same logger.

The ``repro.service`` logger stays un-configured (propagating, no
handlers) until :func:`configure_json_logging` is called — importing
the service must not hijack the host application's logging setup.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Any

__all__ = [
    "SERVICE_LOGGER",
    "JsonLogFormatter",
    "configure_json_logging",
    "get_logger",
    "log_event",
]

#: Name of the service's logger tree.
SERVICE_LOGGER = "repro.service"

#: Attribute under which :func:`log_event` stores its context fields.
_FIELDS_ATTR = "repro_fields"


class JsonLogFormatter(logging.Formatter):
    """Render one log record as a single JSON line.

    The object always carries ``ts`` (Unix seconds), ``level``,
    ``logger`` and ``event`` (the log message); context fields attached
    by :func:`log_event` are merged at the top level (they may not
    shadow the four reserved keys).  Values that are not JSON
    serialisable are degraded to their ``repr`` — a log line must never
    raise.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                if key not in payload:
                    payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        try:
            return json.dumps(payload, default=repr, separators=(",", ":"))
        except (TypeError, ValueError):  # pragma: no cover - repr fallback
            return json.dumps({"ts": time.time(), "event": "unserialisable-log"})


def get_logger(name: str | None = None) -> logging.Logger:
    """The service logger (or a child of it)."""
    if name:
        return logging.getLogger(f"{SERVICE_LOGGER}.{name}")
    return logging.getLogger(SERVICE_LOGGER)


def configure_json_logging(
    stream: "IO[str] | None" = None, *, level: int = logging.INFO
) -> logging.Handler:
    """Attach a JSON-line handler to the service logger (idempotent).

    Returns the handler so callers (tests, the CLI) can detach it.
    The logger stops propagating while configured — the service's
    structured lines must not be double-rendered by a root handler.
    """
    logger = logging.getLogger(SERVICE_LOGGER)
    for existing in logger.handlers:
        if isinstance(existing.formatter, JsonLogFormatter):
            return existing
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return handler


def log_event(
    logger: logging.Logger,
    event: str,
    *,
    level: int = logging.INFO,
    **fields: Any,
) -> None:
    """Log ``event`` with structured context ``fields``.

    With the JSON formatter attached the fields become top-level JSON
    keys; with ordinary formatters they ride along unrendered — call
    sites never need to know which is active.
    """
    logger.log(level, event, extra={_FIELDS_ATTR: fields})
