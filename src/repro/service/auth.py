"""Bearer-token authentication for the ``/v1`` API.

Deliberately minimal: a static token set checked with constant-time
comparison.  The authenticator is a value object — the app decides
which routes it guards (``/v1/*``; health and metrics stay open for
probes and scrapers) and maps a refusal to ``401`` with the matching
``WWW-Authenticate`` challenge.
"""

from __future__ import annotations

import hmac
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from enum import Enum

__all__ = ["AuthOutcome", "TokenAuthenticator", "parse_bearer_token"]


class AuthOutcome(Enum):
    """Why a request was admitted or refused."""

    ALLOWED = "allowed"
    ANONYMOUS = "anonymous"  # auth disabled (no tokens configured)
    MISSING = "missing-credentials"
    INVALID = "invalid-token"

    @property
    def ok(self) -> bool:
        """True when the request may proceed."""
        return self in (AuthOutcome.ALLOWED, AuthOutcome.ANONYMOUS)


def parse_bearer_token(header_value: str | None) -> str | None:
    """The token of an ``Authorization: Bearer <token>`` header, or
    ``None`` when the header is absent or not a bearer credential."""
    if not header_value:
        return None
    scheme, _, credential = header_value.strip().partition(" ")
    if scheme.lower() != "bearer" or not credential.strip():
        return None
    return credential.strip()


@dataclass(frozen=True)
class TokenAuthenticator:
    """Static bearer-token check with constant-time comparison.

    An empty token set disables auth (development mode): every request
    is admitted as :attr:`AuthOutcome.ANONYMOUS`.  With tokens
    configured, the presented credential must match one of them —
    compared via :func:`hmac.compare_digest` so the check does not leak
    prefix-length timing.
    """

    tokens: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tokens", tuple(self.tokens))

    @property
    def enabled(self) -> bool:
        """True when requests must present a token."""
        return bool(self.tokens)

    def check_token(self, token: str | None) -> AuthOutcome:
        """Classify one presented credential."""
        if not self.enabled:
            return AuthOutcome.ANONYMOUS
        if token is None:
            return AuthOutcome.MISSING
        for accepted in self.tokens:
            if hmac.compare_digest(token.encode(), accepted.encode()):
                return AuthOutcome.ALLOWED
        return AuthOutcome.INVALID

    def check_headers(self, headers: Mapping[str, str]) -> AuthOutcome:
        """Classify a request by its (lower-cased-key) header mapping."""
        return self.check_token(parse_bearer_token(headers.get("authorization")))

    @classmethod
    def from_tokens(cls, tokens: Sequence[str]) -> "TokenAuthenticator":
        """An authenticator over ``tokens`` (order-insensitive)."""
        return cls(tokens=tuple(tokens))
