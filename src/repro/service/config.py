"""Service configuration: one frozen value wiring the whole app.

A :class:`ServiceConfig` is everything the solver service needs to
know about its environment — auth tokens, the artifact directory, the
execution transport, queue sizing, payload limits.  It is deliberately
a plain frozen dataclass (no framework settings machinery): tests
construct one directly, the CLI builds one from flags, and
:meth:`ServiceConfig.from_env` fills the common deployment knobs from
``REPRO_SERVICE_*`` environment variables.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

from ..exceptions import InvalidParameterError

__all__ = ["ServiceConfig", "TRANSPORTS"]

#: Transport kinds a job may execute on (docs/execution.md).
TRANSPORTS: tuple[str, ...] = ("warm", "pooled", "inline")

#: Environment variable carrying a comma-separated bearer-token list.
TOKENS_ENV = "REPRO_SERVICE_TOKENS"

#: Environment variable carrying the artifact-store root directory.
ARTIFACT_DIR_ENV = "REPRO_SERVICE_ARTIFACT_DIR"

#: Environment variable selecting the execution transport.
TRANSPORT_ENV = "REPRO_SERVICE_TRANSPORT"


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable configuration of one :class:`~repro.service.app.ServiceApp`.

    Parameters
    ----------
    tokens:
        Accepted bearer tokens for the ``/v1`` API.  Empty means the
        service runs *open* (development mode); any non-empty tuple
        makes every ``/v1`` request require ``Authorization: Bearer
        <token>``.  ``/healthz`` and ``/metrics`` stay open either way
        (probes and scrapers don't carry credentials).
    artifact_dir:
        Root directory of the local artifact store; ``None`` creates a
        private temporary directory at app construction.
    transport:
        Where job plans execute: ``"warm"`` (the process-wide
        :class:`~repro.exec.warm.WarmWorkerPool`, spawned at app
        startup and drained at shutdown), ``"pooled"`` (a per-plan
        process pool), or ``"inline"`` (the calling thread — what
        tests use).
    max_workers:
        Fleet size for the warm/pooled transports (``None`` = the
        pool's CPU-capped default).
    job_workers:
        Executor threads draining the job queue.  Plans routed through
        the shared warm pool serialise on it regardless (the pool runs
        one plan at a time), so extra workers only overlap
        non-transport work (artifact writes, analyses).
    max_points:
        Per-job scenario cap; a spec whose grid exceeds it is rejected
        with a 422 instead of occupying the queue.
    resume_attempts:
        How many times a job re-executes its plan after a
        :class:`~repro.exceptions.WorkerCrashError`.  Each re-execute
        resumes from the per-shard cache writes, so only the lost
        remainder is re-solved — the service's crash-recovery story.
    json_logs:
        Emit structured JSON log lines on the ``repro.service`` logger
        (the ``repro serve`` default; tests keep it off).
    keepalive_seconds:
        SSE idle interval after which a comment frame is emitted to
        hold the connection open through proxies.
    """

    tokens: tuple[str, ...] = ()
    artifact_dir: Path | None = None
    transport: str = "warm"
    max_workers: int | None = None
    job_workers: int = 2
    max_points: int = 200_000
    resume_attempts: int = 3
    json_logs: bool = False
    keepalive_seconds: float = 15.0

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORTS:
            raise InvalidParameterError(
                f"unknown service transport {self.transport!r}; "
                f"expected one of: {', '.join(TRANSPORTS)}"
            )
        if self.job_workers < 1:
            raise InvalidParameterError("job_workers must be >= 1")
        if self.max_points < 1:
            raise InvalidParameterError("max_points must be >= 1")
        if self.resume_attempts < 0:
            raise InvalidParameterError("resume_attempts must be >= 0")
        if self.keepalive_seconds <= 0:
            raise InvalidParameterError("keepalive_seconds must be positive")
        object.__setattr__(self, "tokens", tuple(self.tokens))
        if self.artifact_dir is not None:
            object.__setattr__(self, "artifact_dir", Path(self.artifact_dir))

    @property
    def auth_enabled(self) -> bool:
        """True when bearer-token auth guards the ``/v1`` API."""
        return bool(self.tokens)

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServiceConfig":
        """A config seeded from ``REPRO_SERVICE_*`` variables.

        ``REPRO_SERVICE_TOKENS`` (comma-separated bearer tokens),
        ``REPRO_SERVICE_ARTIFACT_DIR`` and ``REPRO_SERVICE_TRANSPORT``
        are read when set; explicit keyword ``overrides`` win over the
        environment.
        """
        env: dict[str, Any] = {}
        raw_tokens = os.environ.get(TOKENS_ENV)
        if raw_tokens:
            env["tokens"] = tuple(
                tok for tok in (t.strip() for t in raw_tokens.split(",")) if tok
            )
        raw_dir = os.environ.get(ARTIFACT_DIR_ENV)
        if raw_dir:
            env["artifact_dir"] = Path(raw_dir)
        raw_transport = os.environ.get(TRANSPORT_ENV)
        if raw_transport:
            env["transport"] = raw_transport
        env.update(overrides)
        return cls(**env)

    def with_tokens(self, *tokens: str) -> "ServiceConfig":
        """A copy accepting exactly ``tokens``."""
        return replace(self, tokens=tuple(tokens))
