"""Dependency-free HTTP carrier: the stdlib threaded server.

Serves a :class:`~repro.service.app.ServiceApp` over
:class:`http.server.ThreadingHTTPServer` — one thread per connection,
which is exactly what the service needs: request handlers are cheap
(solving happens on the queue workers) and SSE streams each hold one
thread while blocked on the job's condition variable.

This is the carrier behind ``repro serve`` when the ``repro[service]``
extra (FastAPI + uvicorn) is not installed, and behind the e2e test
suite — the full submit → stream → download path runs over a real
socket with zero third-party packages.

Streaming responses are framed by connection close (``Connection:
close``, no ``Content-Length``): the universally-compatible SSE
framing for an HTTP/1.1 server without chunked-encoding support.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from .app import ServiceApp, ServiceRequest, ServiceResponse
from .jsonlog import get_logger, log_event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterator

__all__ = ["ServiceServer", "make_server", "serve"]

_log = get_logger("http")


class _Handler(BaseHTTPRequestHandler):
    """Bridge one stdlib-server request into the carrier-neutral app."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"
    app: ServiceApp  # injected by make_server via subclassing

    def _dispatch(self) -> None:
        try:
            body = b""
            length = int(self.headers.get("Content-Length") or 0)
            if length > 0:
                body = self.rfile.read(length)
            request = ServiceRequest.make(
                self.command,
                self.path,
                headers=dict(self.headers.items()),
                body=body,
            )
            response = self.app.handle(request)
            self._send(response)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-stream; nothing to answer

    # The stdlib server dispatches on ``do_<METHOD>``; every method the
    # router knows funnels into the same bridge (unknown methods on
    # known routes become the app's 405, not a hung connection).
    do_GET = _dispatch
    do_POST = _dispatch
    do_PUT = _dispatch
    do_DELETE = _dispatch
    do_PATCH = _dispatch
    do_HEAD = _dispatch
    do_OPTIONS = _dispatch

    def _send(self, response: ServiceResponse) -> None:
        self.send_response(response.status)
        for name, value in response.headers:
            self.send_header(name, value)
        if response.streaming:
            # SSE: no length is knowable — frame by connection close
            # and flush each event as it is produced.
            self.send_header("Connection", "close")
            self.end_headers()
            body: "Iterator[bytes]" = iter(response.body)  # type: ignore[arg-type]
            for chunk in body:
                self.wfile.write(chunk)
                self.wfile.flush()
            self.close_connection = True
        else:
            assert isinstance(response.body, bytes)
            self.send_header("Content-Length", str(len(response.body)))
            self.end_headers()
            if self.command != "HEAD":
                self.wfile.write(response.body)

    def log_message(self, format: str, *args: object) -> None:
        log_event(
            _log, "http.access",
            client=self.client_address[0], line=format % args,
        )


def _make_handler(app: ServiceApp) -> type[_Handler]:
    return type("BoundHandler", (_Handler,), {"app": app})


class ServiceServer:
    """A running (or startable) stdlib server around one app."""

    def __init__(self, app: ServiceApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.httpd = ThreadingHTTPServer((host, port), _make_handler(app))
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return str(self.httpd.server_address[0])

    @property
    def port(self) -> int:
        return int(self.httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """App startup + serve on a background thread."""
        self.app.startup()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-service-http", daemon=True
        )
        self._thread.start()
        log_event(_log, "http.listening", url=self.url)
        return self

    def serve_forever(self) -> None:
        """App startup + serve on the calling thread (the CLI path)."""
        self.app.startup()
        log_event(_log, "http.listening", url=self.url)
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Stop accepting, join the serving thread, drain the app."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.app.shutdown()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def make_server(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """A not-yet-started :class:`ServiceServer` bound to ``host:port``
    (port 0 picks a free port — the test-suite default)."""
    return ServiceServer(app, host, port)


def serve(app: ServiceApp, host: str = "127.0.0.1", port: int = 8337) -> None:
    """Run the service in the foreground until interrupted."""
    make_server(app, host, port).serve_forever()
