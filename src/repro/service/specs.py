"""The typed JSON spec codec: payloads in, ``Experiment``s out.

``POST /v1/jobs`` accepts a JSON *experiment spec* and this module is
the only place that interprets it.  Parsing is strict and total: every
problem in the payload is collected with its JSON field path
(``grid.schedules[2]``, ``scenarios[3].rho``) and reported in one
:class:`~repro.exceptions.InvalidSpecError` — the HTTP layer maps that
to ``422`` with the field paths, so a malformed payload never
surfaces as a 500 from deep inside :class:`~repro.api.scenario.Scenario`
parsing, and a client fixing a spec sees all its mistakes at once.

Spec grammar (see docs/service.md for the full reference)::

    {
      "name": "frontier-sweep",              // optional
      "grid": {                              // either grid ...
        "configs": ["hera-xscale"],
        "rhos": [2.8, 3.0] | {"start": 2.8, "stop": 5.5, "count": 100},
        "modes": ["silent"],
        "failstop_fractions": [0.2],
        "error_rates": [3.4e-6] | {"start": ..., "stop": ..., "count": ..,
                                   "scale": "log"},
        "schedules": ["geom:0.4,1.5,1", null],
        "error_models": ["weibull:shape=0.7,mtbf=3e5", null]
      },
      "scenarios": [ {"config": ..., "rho": ...,  ...} ],  // ... or list
      "backend": "schedule-grid",            // optional registry name
      "analyses": ["frontier"],              // optional verb exports
      "artifacts": ["csv", "json"]           // result export formats
    }

The codec resolves schedules/error models through their existing spec
grammars (``repro schedules`` / ``repro errors``) and validates
backend names against the live registry, so what parses here is
exactly what the solver layers accept.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..api.backends import available_backends
from ..api.experiment import Experiment
from ..api.scenario import MODES, Scenario
from ..api.study import Study
from ..errors.models import as_error_model
from ..exceptions import InvalidSpecError, ReproError
from ..platforms.catalog import configuration_names, get_configuration
from ..schedules.base import as_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..errors.combined import CombinedErrors
    from ..errors.models import ArrivalProcess, ErrorModel
    from ..platforms.configuration import Configuration
    from ..schedules.base import SpeedSchedule

__all__ = ["ExperimentSpec", "parse_experiment_spec", "ANALYSES", "ARTIFACT_FORMATS"]

#: Analysis verbs a job may request as exports.
ANALYSES: tuple[str, ...] = ("frontier", "sensitivity", "crossover")

#: Result-set export formats a job may request.
ARTIFACT_FORMATS: tuple[str, ...] = ("csv", "json")

_TOP_LEVEL_KEYS = frozenset(
    {"name", "grid", "scenarios", "backend", "analyses", "artifacts"}
)
_GRID_KEYS = frozenset(
    {
        "configs",
        "rhos",
        "modes",
        "failstop_fractions",
        "error_rates",
        "schedules",
        "error_models",
    }
)
_SCENARIO_KEYS = frozenset(
    {
        "config",
        "rho",
        "mode",
        "failstop_fraction",
        "error_rate",
        "schedule",
        "errors",
        "backend",
        "label",
    }
)
_RANGE_KEYS = frozenset({"start", "stop", "count", "scale"})


class _Issues:
    """Field-path-tagged problem collector."""

    def __init__(self) -> None:
        self.rows: list[tuple[str, str]] = []

    def add(self, path: str, message: str) -> None:
        self.rows.append((path, message))

    def raise_if_any(self) -> None:
        if self.rows:
            raise InvalidSpecError(self.rows)


@dataclass(frozen=True)
class ExperimentSpec:
    """A validated job request, ready to compile and execute.

    ``scenarios`` are fully-constructed :class:`Scenario` values (all
    schedule/error-model strings resolved), so building the
    :class:`~repro.api.experiment.Experiment` can no longer fail —
    validation happened here, in one place, with field paths.
    """

    name: str
    scenarios: tuple[Scenario, ...]
    backend: str | None = None
    analyses: tuple[str, ...] = ()
    artifacts: tuple[str, ...] = ARTIFACT_FORMATS

    def __len__(self) -> int:
        return len(self.scenarios)

    def experiment(self) -> Experiment:
        """The lazy pipeline this spec describes."""
        return Experiment.from_scenarios(self.scenarios, name=self.name)

    def summary(self) -> dict[str, Any]:
        """JSON-ready description echoed in job status payloads."""
        return {
            "name": self.name,
            "scenarios": len(self.scenarios),
            "backend": self.backend,
            "analyses": list(self.analyses),
            "artifacts": list(self.artifacts),
        }


# ----------------------------------------------------------------------
# Scalar field helpers
# ----------------------------------------------------------------------
def _expect_mapping(value: Any, path: str, issues: _Issues) -> dict[str, Any] | None:
    if not isinstance(value, dict):
        issues.add(path, f"expected an object, got {type(value).__name__}")
        return None
    return value

def _expect_str(value: Any, path: str, issues: _Issues) -> str | None:
    if not isinstance(value, str) or not value.strip():
        issues.add(path, f"expected a non-empty string, got {value!r}")
        return None
    return value

def _expect_number(value: Any, path: str, issues: _Issues) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        issues.add(path, f"expected a number, got {value!r}")
        return None
    out = float(value)
    if not math.isfinite(out):
        issues.add(path, f"expected a finite number, got {value!r}")
        return None
    return out

def _expect_list(value: Any, path: str, issues: _Issues) -> list[Any] | None:
    if not isinstance(value, list):
        issues.add(path, f"expected an array, got {type(value).__name__}")
        return None
    if not value:
        issues.add(path, "expected a non-empty array")
        return None
    return value


def _unknown_keys(
    payload: dict[str, Any], allowed: frozenset[str], path: str, issues: _Issues
) -> None:
    for key in sorted(set(payload) - allowed):
        where = f"{path}.{key}" if path else key
        issues.add(where, f"unknown field (allowed: {', '.join(sorted(allowed))})")


# ----------------------------------------------------------------------
# Axis parsers
# ----------------------------------------------------------------------
def _parse_numeric_axis(
    value: Any, path: str, issues: _Issues, *, positive: bool
) -> tuple[float, ...] | None:
    """A numeric axis: an array of numbers, or a range object
    ``{"start", "stop", "count"[, "scale": "linear"|"log"]}``."""
    if isinstance(value, dict):
        _unknown_keys(value, _RANGE_KEYS, path, issues)
        start = _expect_number(value.get("start"), f"{path}.start", issues)
        stop = _expect_number(value.get("stop"), f"{path}.stop", issues)
        count = value.get("count")
        if isinstance(count, bool) or not isinstance(count, int) or count < 2:
            issues.add(f"{path}.count", f"expected an integer >= 2, got {count!r}")
            count = None
        scale = value.get("scale", "linear")
        if scale not in ("linear", "log"):
            issues.add(f"{path}.scale", f"expected 'linear' or 'log', got {scale!r}")
            scale = None
        if start is None or stop is None or count is None or scale is None:
            return None
        if scale == "log":
            if start <= 0 or stop <= 0:
                issues.add(path, "log-scale ranges need positive start/stop")
                return None
            axis = np.geomspace(start, stop, count)
        else:
            axis = np.linspace(start, stop, count)
        values = tuple(float(v) for v in axis)
    else:
        items = _expect_list(value, path, issues)
        if items is None:
            return None
        out: list[float] = []
        ok = True
        for i, item in enumerate(items):
            num = _expect_number(item, f"{path}[{i}]", issues)
            if num is None:
                ok = False
            else:
                out.append(num)
        if not ok:
            return None
        values = tuple(out)
    if positive and any(v <= 0 for v in values):
        issues.add(path, "all values must be positive")
        return None
    return values


def _parse_optional_numeric_axis(
    value: Any, path: str, issues: _Issues, *, low: float = 0.0, high: float | None = None
) -> tuple[float | None, ...] | None:
    """An axis of numbers-or-null (fractions, rate overrides)."""
    items = _expect_list(value, path, issues)
    if items is None:
        return None
    out: list[float | None] = []
    ok = True
    for i, item in enumerate(items):
        if item is None:
            out.append(None)
            continue
        num = _expect_number(item, f"{path}[{i}]", issues)
        if num is None:
            ok = False
            continue
        if num < low or (high is not None and num > high):
            bound = f"[{low:g}, {high:g}]" if high is not None else f">= {low:g}"
            issues.add(f"{path}[{i}]", f"expected {bound}, got {num!r}")
            ok = False
            continue
        out.append(num)
    return tuple(out) if ok else None


def _parse_config(value: Any, path: str, issues: _Issues) -> "Configuration | None":
    name = _expect_str(value, path, issues)
    if name is None:
        return None
    try:
        return get_configuration(name)
    except (ReproError, KeyError):  # the catalog refuses with KeyError
        issues.add(
            path,
            f"unknown configuration {name!r}; catalog: "
            f"{', '.join(configuration_names())}",
        )
        return None


def _parse_schedule(
    value: Any, path: str, issues: _Issues
) -> "SpeedSchedule | None":
    if value is None:
        return None
    spec = _expect_str(value, path, issues)
    if spec is None:
        return None
    try:
        return as_schedule(spec)
    except ReproError as exc:
        issues.add(path, f"bad schedule spec: {exc}")
        return None


def _parse_errors(
    value: Any, path: str, issues: _Issues
) -> "ErrorModel | ArrivalProcess | CombinedErrors | None":
    if value is None:
        return None
    spec = _expect_str(value, path, issues)
    if spec is None:
        return None
    try:
        return as_error_model(spec)
    except ReproError as exc:
        issues.add(path, f"bad error-model spec: {exc}")
        return None


def _parse_backend(value: Any, path: str, issues: _Issues) -> str | None:
    name = _expect_str(value, path, issues)
    if name is None:
        return None
    registered = available_backends()
    if name not in registered:
        issues.add(
            path,
            f"unknown backend {name!r}; registered: {', '.join(registered)}",
        )
        return None
    return name


def _parse_choice_list(
    value: Any, path: str, issues: _Issues, *, allowed: tuple[str, ...], what: str
) -> tuple[str, ...] | None:
    items = _expect_list(value, path, issues)
    if items is None:
        return None
    out: list[str] = []
    ok = True
    for i, item in enumerate(items):
        if item not in allowed:
            issues.add(
                f"{path}[{i}]",
                f"unknown {what} {item!r}; allowed: {', '.join(allowed)}",
            )
            ok = False
        elif item not in out:
            out.append(item)
    return tuple(out) if ok else None


# ----------------------------------------------------------------------
# Branch parsers
# ----------------------------------------------------------------------
def _parse_grid(
    grid: dict[str, Any], name: str, backend: str | None, issues: _Issues
) -> tuple[Scenario, ...] | None:
    _unknown_keys(grid, _GRID_KEYS, "grid", issues)

    configs: "tuple[Configuration, ...] | None" = None
    if "configs" in grid:
        items = _expect_list(grid["configs"], "grid.configs", issues)
        if items is not None:
            parsed = [
                _parse_config(item, f"grid.configs[{i}]", issues)
                for i, item in enumerate(items)
            ]
            if all(cfg is not None for cfg in parsed):
                configs = tuple(cfg for cfg in parsed if cfg is not None)
    else:
        issues.add("grid.configs", "required: at least one catalog configuration name")

    rhos = _parse_numeric_axis(
        grid.get("rhos", [3.0]), "grid.rhos", issues, positive=True
    )

    modes: tuple[str, ...] | None = ("silent",)
    if "modes" in grid:
        modes = _parse_choice_list(
            grid["modes"], "grid.modes", issues, allowed=MODES, what="mode"
        )

    fractions: tuple[float | None, ...] | None = (None,)
    if "failstop_fractions" in grid:
        fractions = _parse_optional_numeric_axis(
            grid["failstop_fractions"],
            "grid.failstop_fractions",
            issues,
            low=0.0,
            high=1.0,
        )

    rates: tuple[float | None, ...] | None = (None,)
    if "error_rates" in grid:
        raw = grid["error_rates"]
        if isinstance(raw, dict):
            parsed_rates = _parse_numeric_axis(
                raw, "grid.error_rates", issues, positive=True
            )
            rates = parsed_rates if parsed_rates is None else tuple(parsed_rates)
        else:
            opt = _parse_optional_numeric_axis(
                raw, "grid.error_rates", issues, low=math.ulp(0.0)
            )
            rates = opt

    schedules: "tuple[SpeedSchedule | None, ...] | None" = (None,)
    if "schedules" in grid:
        items = _expect_list(grid["schedules"], "grid.schedules", issues)
        if items is None:
            schedules = None
        else:
            before = len(issues.rows)
            schedules = tuple(
                _parse_schedule(item, f"grid.schedules[{i}]", issues)
                for i, item in enumerate(items)
            )
            if len(issues.rows) > before:
                schedules = None

    models: "tuple[ErrorModel | ArrivalProcess | CombinedErrors | None, ...] | None" = (
        None,
    )
    if "error_models" in grid:
        items = _expect_list(grid["error_models"], "grid.error_models", issues)
        if items is None:
            models = None
        else:
            before = len(issues.rows)
            models = tuple(
                _parse_errors(item, f"grid.error_models[{i}]", issues)
                for i, item in enumerate(items)
            )
            if len(issues.rows) > before:
                models = None

    if None in (configs, rhos, modes, fractions, rates, schedules, models):
        return None
    assert configs is not None and rhos is not None and modes is not None
    assert fractions is not None and rates is not None
    assert schedules is not None and models is not None
    try:
        study = Study.from_grid(
            configs=configs,
            rhos=rhos,
            modes=modes,
            failstop_fractions=fractions,
            error_rates=rates,
            schedules=schedules,
            error_models=models,
            backend=backend,
            name=name,
        )
    except ReproError as exc:
        # Cross-field constraints (a schedule with single-speed mode, a
        # fraction-less combined mode, ...) surface from Scenario
        # construction; the axis values themselves validated above.
        issues.add("grid", str(exc))
        return None
    return study.scenarios


def _parse_scenario(
    payload: Any, path: str, backend: str | None, issues: _Issues
) -> Scenario | None:
    obj = _expect_mapping(payload, path, issues)
    if obj is None:
        return None
    _unknown_keys(obj, _SCENARIO_KEYS, path, issues)
    before = len(issues.rows)

    if "config" not in obj:
        issues.add(f"{path}.config", "required: a catalog configuration name")
    if "rho" not in obj:
        issues.add(f"{path}.rho", "required: the performance bound")
    cfg = (
        _parse_config(obj["config"], f"{path}.config", issues)
        if "config" in obj
        else None
    )
    rho = (
        _expect_number(obj["rho"], f"{path}.rho", issues) if "rho" in obj else None
    )
    mode = "silent"
    if "mode" in obj:
        parsed_mode = _expect_str(obj["mode"], f"{path}.mode", issues)
        if parsed_mode is not None and parsed_mode not in MODES:
            issues.add(
                f"{path}.mode",
                f"unknown mode {parsed_mode!r}; valid modes: {', '.join(MODES)}",
            )
        elif parsed_mode is not None:
            mode = parsed_mode
    fraction = None
    if obj.get("failstop_fraction") is not None:
        fraction = _expect_number(
            obj["failstop_fraction"], f"{path}.failstop_fraction", issues
        )
    rate = None
    if obj.get("error_rate") is not None:
        rate = _expect_number(obj["error_rate"], f"{path}.error_rate", issues)
    schedule = _parse_schedule(obj.get("schedule"), f"{path}.schedule", issues)
    errors = _parse_errors(obj.get("errors"), f"{path}.errors", issues)
    sc_backend = (
        _parse_backend(obj["backend"], f"{path}.backend", issues)
        if obj.get("backend") is not None
        else None
    )
    label = None
    if obj.get("label") is not None:
        label = _expect_str(obj["label"], f"{path}.label", issues)

    if len(issues.rows) > before or cfg is None or rho is None:
        return None
    try:
        return Scenario(
            config=cfg,
            rho=rho,
            mode=mode,
            failstop_fraction=fraction,
            error_rate=rate,
            schedule=schedule,
            errors=errors,
            backend=sc_backend or backend,
            label=label,
        )
    except ReproError as exc:
        # Cross-field constraints (fraction vs mode, schedule vs
        # explicit error model, ...) — the per-field values parsed.
        issues.add(path, str(exc))
        return None


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def parse_experiment_spec(
    payload: Any, *, max_points: int | None = None
) -> ExperimentSpec:
    """Validate one JSON job payload into an :class:`ExperimentSpec`.

    Raises :class:`~repro.exceptions.InvalidSpecError` carrying *every*
    problem found, each tagged with its JSON field path.  ``max_points``
    bounds the scenario count (the service's per-job cap).
    """
    issues = _Issues()
    obj = _expect_mapping(payload, "", issues)
    if obj is None:
        issues.add("", "the request body must be a JSON object")
        issues.raise_if_any()
    assert obj is not None
    _unknown_keys(obj, _TOP_LEVEL_KEYS, "", issues)

    name = "experiment"
    if "name" in obj:
        parsed_name = _expect_str(obj["name"], "name", issues)
        if parsed_name is not None:
            name = parsed_name.strip()

    backend = (
        _parse_backend(obj["backend"], "backend", issues)
        if obj.get("backend") is not None
        else None
    )

    analyses: tuple[str, ...] = ()
    if "analyses" in obj:
        parsed = _parse_choice_list(
            obj["analyses"], "analyses", issues, allowed=ANALYSES, what="analysis"
        )
        if parsed is not None:
            analyses = parsed

    artifacts: tuple[str, ...] = ARTIFACT_FORMATS
    if "artifacts" in obj:
        parsed = _parse_choice_list(
            obj["artifacts"],
            "artifacts",
            issues,
            allowed=ARTIFACT_FORMATS,
            what="artifact format",
        )
        if parsed is not None:
            artifacts = parsed

    has_grid = "grid" in obj
    has_scenarios = "scenarios" in obj
    scenarios: tuple[Scenario, ...] = ()
    if has_grid == has_scenarios:
        issues.add(
            "", "exactly one of 'grid' or 'scenarios' must be provided"
        )
    elif has_grid:
        grid = _expect_mapping(obj["grid"], "grid", issues)
        if grid is not None:
            parsed_grid = _parse_grid(grid, name, backend, issues)
            if parsed_grid is not None:
                scenarios = parsed_grid
    else:
        items = _expect_list(obj["scenarios"], "scenarios", issues)
        if items is not None:
            parsed_rows = [
                _parse_scenario(item, f"scenarios[{i}]", backend, issues)
                for i, item in enumerate(items)
            ]
            if all(sc is not None for sc in parsed_rows):
                scenarios = tuple(sc for sc in parsed_rows if sc is not None)

    if scenarios and max_points is not None and len(scenarios) > max_points:
        issues.add(
            "grid" if has_grid else "scenarios",
            f"spec expands to {len(scenarios)} scenarios, above the service "
            f"cap of {max_points}; split the job",
        )

    issues.raise_if_any()
    return ExperimentSpec(
        name=name,
        scenarios=scenarios,
        backend=backend,
        analyses=analyses,
        artifacts=artifacts,
    )
