"""Prometheus instrumentation without the client dependency.

The service exposes ``/metrics`` in the Prometheus text exposition
format (version 0.0.4 — the format every scraper speaks).  The
toolchain image does not carry ``prometheus_client``, so this module
implements the small subset the service needs natively: labelled
:class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments on a
:class:`MetricsRegistry`, plus *callback collectors* for values that
live elsewhere and are only read at scrape time (the shared
:class:`~repro.api.cache.SolveCache` counters, the warm pool's
lifetime stats).

Everything is thread-safe: instruments are updated from request
threads and queue workers concurrently with scrapes.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass

from ..exceptions import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets for shard/job latencies (seconds): tight
#: sub-second resolution (dispatch overheads) through multi-minute
#: grid solves.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise InvalidParameterError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise InvalidParameterError(f"metric name cannot start with a digit: {name!r}")
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(str(val))}"' for key, val in labels)
    return "{" + inner + "}"


class _Instrument:
    """Base of the three instrument kinds: a labelled family of series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str]):
        self.name = _validate_name(name)
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _label_key(
        self, labels: Mapping[str, str] | None
    ) -> tuple[tuple[str, str], ...]:
        given = dict(labels or {})
        if set(given) != set(self.labelnames):
            raise InvalidParameterError(
                f"metric {self.name!r} takes labels {self.labelnames!r}, "
                f"got {tuple(given)!r}"
            )
        return tuple((name, str(given[name])) for name in self.labelnames)

    def samples(self) -> "list[Sample]":  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing labelled counter."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to the labelled series."""
        if amount < 0:
            raise InvalidParameterError("counters only go up")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0 when never touched)."""
        with self._lock:
            return self._values.get(self._label_key(labels), 0.0)

    def samples(self) -> "list[Sample]":
        with self._lock:
            return [
                Sample(self.name, key, value) for key, value in self._values.items()
            ]


class Gauge(_Instrument):
    """A labelled value that can go both ways."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value``."""
        with self._lock:
            self._values[self._label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (either sign) to the labelled series."""
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the labelled series."""
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        """Current value of one labelled series (0 when never touched)."""
        with self._lock:
            return self._values.get(self._label_key(labels), 0.0)

    def samples(self) -> "list[Sample]":
        with self._lock:
            return [
                Sample(self.name, key, value) for key, value in self._values.items()
            ]


class Histogram(_Instrument):
    """A labelled cumulative histogram (``_bucket``/``_sum``/``_count``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise InvalidParameterError(
                "histogram buckets must be a non-empty strictly increasing sequence"
            )
        self.buckets = bounds
        self._counts: dict[tuple[tuple[str, str], ...], list[int]] = {}
        self._sums: dict[tuple[tuple[str, str], ...], float] = {}
        self._totals: dict[tuple[tuple[str, str], ...], int] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation."""
        key = self._label_key(labels)
        # Cumulative buckets: ``le=b`` counts observations <= b, so an
        # observation lands in every bucket from the first bound that
        # fits it onwards.
        first = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.setdefault(key, [0] * len(self.buckets))
            for i in range(first, len(self.buckets)):
                counts[i] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        """Total observations of one labelled series."""
        with self._lock:
            return self._totals.get(self._label_key(labels), 0)

    def samples(self) -> "list[Sample]":
        out: list[Sample] = []
        with self._lock:
            for key, counts in self._counts.items():
                for bound, cumulative in zip(self.buckets, counts):
                    out.append(
                        Sample(
                            f"{self.name}_bucket",
                            (*key, ("le", _format_value(bound))),
                            float(cumulative),
                        )
                    )
                out.append(
                    Sample(
                        f"{self.name}_bucket",
                        (*key, ("le", "+Inf")),
                        float(self._totals[key]),
                    )
                )
                out.append(Sample(f"{self.name}_sum", key, self._sums[key]))
                out.append(
                    Sample(f"{self.name}_count", key, float(self._totals[key]))
                )
        return out


class MetricsRegistry:
    """The scrape surface: instruments plus scrape-time callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._callbacks: list[Callable[[], Iterable[tuple[str, str, Iterable[Sample]]]]] = []

    # ------------------------------------------------------------------
    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Register (or fetch the existing) counter ``name``."""
        return self._register(Counter(name, help_text, labelnames))  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Register (or fetch the existing) gauge ``name``."""
        return self._register(Gauge(name, help_text, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Register (or fetch the existing) histogram ``name``."""
        return self._register(Histogram(name, help_text, labelnames, buckets=buckets))  # type: ignore[return-value]

    def _register(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is not None:
                if type(existing) is not type(instrument):
                    raise InvalidParameterError(
                        f"metric {instrument.name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._instruments[instrument.name] = instrument
            return instrument

    def register_callback(
        self,
        callback: Callable[[], Iterable[tuple[str, str, Iterable[Sample]]]],
    ) -> None:
        """Register a scrape-time collector.

        ``callback`` is invoked at every :meth:`render` and yields
        ``(metric_name, kind, samples)`` families — how externally-owned
        monotone values (cache hit counters, pool crash totals) are
        exposed without double bookkeeping.
        """
        with self._lock:
            self._callbacks.append(callback)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        with self._lock:
            instruments = list(self._instruments.values())
            callbacks = list(self._callbacks)
        for instrument in instruments:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            for sample in instrument.samples():
                lines.append(
                    f"{sample.name}{_render_labels(sample.labels)} "
                    f"{_format_value(sample.value)}"
                )
        for callback in callbacks:
            for name, kind, samples in callback():
                lines.append(f"# TYPE {_validate_name(name)} {kind}")
                for sample in samples:
                    lines.append(
                        f"{sample.name}{_render_labels(sample.labels)} "
                        f"{_format_value(sample.value)}"
                    )
        return "\n".join(lines) + "\n"
