"""The solver service core: routes, auth, lifespan — no web framework.

:class:`ServiceApp` is the whole HTTP surface expressed over two small
value types (:class:`ServiceRequest` in, :class:`ServiceResponse` out)
so it binds to any carrier: the stdlib threaded server
(:mod:`repro.service.server`), the hand-rolled ASGI adapter
(:mod:`repro.service.asgi`) under uvicorn/FastAPI when the
``repro[service]`` extra is installed, or directly in-process for tests
(:mod:`repro.service.testing`).

Routes::

    GET  /healthz                          liveness (open)
    GET  /metrics                          Prometheus text format (open)
    POST /v1/jobs                          submit an experiment spec -> 202
    GET  /v1/jobs                          list job statuses
    GET  /v1/jobs/{id}                     one job's status document
    GET  /v1/jobs/{id}/events              SSE stream of the job's event log
    GET  /v1/jobs/{id}/artifacts           list a job's artifacts
    GET  /v1/jobs/{id}/artifacts/{name}    download one artifact
    GET  /v1/backends                      registered solver backends
    GET  /v1/configs                       platform configuration catalog
    GET  /v1/stats                         cache / pool / queue statistics

Everything under ``/v1`` is bearer-token guarded when tokens are
configured.  Error mapping is total and typed: a malformed spec is a
422 carrying field paths (:class:`~repro.exceptions.InvalidSpecError`),
unknown ids are 404s, bad parameters 400s — a client mistake is never
a 500.

The app owns the lifespan of its moving parts: :meth:`startup` starts
the queue workers and pre-warms the process-wide worker pool, and
:meth:`shutdown` drains both — the pool is tied to the app, not to
interpreter exit.
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from ..api.backends import available_backends
from ..api.cache import DEFAULT_CACHE, SolveCache
from ..exceptions import InvalidParameterError, InvalidSpecError, ReproError
from ..platforms.catalog import configuration_names, get_configuration
from .artifacts import (
    ArtifactNotFoundError,
    ArtifactStore,
    InMemoryArtifactStore,
    LocalDirArtifactStore,
)
from .auth import AuthOutcome, TokenAuthenticator
from .config import ServiceConfig
from .jobs import Job, JobNotFoundError, JobStore
from .jsonlog import configure_json_logging, get_logger, log_event
from .metrics import MetricsRegistry, Sample
from .queue import JobQueue, ServiceMetrics
from .specs import parse_experiment_spec

__all__ = ["ServiceApp", "ServiceRequest", "ServiceResponse"]

_log = get_logger("app")

#: Response body iterator chunk type for streaming routes (SSE).
Body = bytes | Iterator[bytes]


@dataclass(frozen=True)
class ServiceRequest:
    """One HTTP request, carrier-neutral.

    ``headers`` keys are lower-cased by every adapter; ``path`` is the
    decoded path without the query string.
    """

    method: str
    path: str
    query: Mapping[str, str] = field(default_factory=dict)
    headers: Mapping[str, str] = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def make(
        cls,
        method: str,
        target: str,
        *,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
    ) -> "ServiceRequest":
        """Build a request from a raw ``method`` + request target."""
        parts = urlsplit(target)
        return cls(
            method=method.upper(),
            path=parts.path or "/",
            query=dict(parse_qsl(parts.query)),
            headers={k.lower(): v for k, v in (headers or {}).items()},
            body=body,
        )

    def json(self) -> Any:
        """The parsed JSON body; :class:`InvalidParameterError` on
        syntax errors (mapped to 400 by the router)."""
        if not self.body:
            raise InvalidParameterError("request body is empty; expected JSON")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(f"request body is not valid JSON: {exc}") from None


@dataclass(frozen=True)
class ServiceResponse:
    """One HTTP response: status, headers, bytes-or-stream body."""

    status: int
    headers: tuple[tuple[str, str], ...]
    body: Body

    @property
    def streaming(self) -> bool:
        """True when the body is an iterator (SSE): the carrier must
        flush chunk by chunk and frame by connection close."""
        return not isinstance(self.body, bytes)

    @classmethod
    def json(
        cls,
        payload: Any,
        *,
        status: int = 200,
        headers: tuple[tuple[str, str], ...] = (),
    ) -> "ServiceResponse":
        body = json.dumps(payload, indent=2).encode() + b"\n"
        return cls(
            status=status,
            headers=(("Content-Type", "application/json"), *headers),
            body=body,
        )

    @classmethod
    def text(
        cls,
        content: str,
        *,
        status: int = 200,
        content_type: str = "text/plain; charset=utf-8",
    ) -> "ServiceResponse":
        return cls(
            status=status,
            headers=(("Content-Type", content_type),),
            body=content.encode(),
        )


class ServiceApp:
    """The solver-as-a-service application (carrier-neutral core)."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        cache: SolveCache | None = None,
        artifacts: ArtifactStore | None = None,
        transport: Any = None,
    ):
        self.config = config or ServiceConfig()
        #: The process-wide solve cache by default: repeated or
        #: overlapping submissions across requests share solved points.
        self.cache = cache if cache is not None else DEFAULT_CACHE
        if artifacts is not None:
            self.artifacts = artifacts
        elif self.config.artifact_dir is not None:
            self.artifacts = LocalDirArtifactStore(self.config.artifact_dir)
        else:
            self.artifacts = InMemoryArtifactStore()
        self.auth = TokenAuthenticator.from_tokens(self.config.tokens)
        self.registry = MetricsRegistry()
        self.store = JobStore()
        self.metrics = ServiceMetrics.create(self.registry)
        self.queue = JobQueue(
            self.store,
            self.config,
            cache=self.cache,
            artifacts=self.artifacts,
            metrics=self.metrics,
            transport=transport,
        )
        self._auth_refused = self.registry.counter(
            "repro_service_auth_refused_total",
            "Requests refused authentication, by reason",
            ("reason",),
        )
        self._requests = self.registry.counter(
            "repro_service_requests_total",
            "HTTP requests handled, by route and status",
            ("route", "status"),
        )
        self.registry.register_callback(self._collect_cache_metrics)
        self.registry.register_callback(self._collect_job_metrics)
        self.registry.register_callback(self._collect_pool_metrics)
        self._started = False

    # ------------------------------------------------------------------
    # Lifespan
    # ------------------------------------------------------------------
    def startup(self) -> None:
        """Start queue workers; pre-warm the shared worker pool."""
        if self._started:
            return
        self._started = True
        if self.config.json_logs:
            configure_json_logging()
        self.queue.start()
        if self.queue.transport == "warm":
            from ..exec.warm import warm_default_pool

            warm_default_pool(self.config.max_workers)
        log_event(
            _log, "service.started",
            transport=str(self.queue.transport),
            job_workers=self.config.job_workers,
            auth=self.auth.enabled,
        )

    def shutdown(self) -> None:
        """Drain the queue, then the warm pool (graceful lifespan end)."""
        if not self._started:
            return
        self._started = False
        self.queue.shutdown(wait=True)
        if self.queue.transport == "warm":
            from ..exec.warm import shutdown_default_pool

            shutdown_default_pool()
        log_event(_log, "service.stopped")

    def __enter__(self) -> "ServiceApp":
        self.startup()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Route one request; every error is mapped to a status."""
        route, response = self._dispatch(request)
        self._requests.inc(route=route, status=str(response.status))
        return response

    def _dispatch(self, request: ServiceRequest) -> tuple[str, ServiceResponse]:
        parts = tuple(p for p in request.path.split("/") if p)
        try:
            match parts:
                case ("healthz",):
                    return "healthz", self._healthz(request)
                case ("metrics",):
                    return "metrics", self._metrics(request)
                case ("v1", *_):
                    outcome = self.auth.check_headers(request.headers)
                    if not outcome.ok:
                        return "v1", self._refuse(outcome)
                    return self._dispatch_v1(request, parts[1:])
                case _:
                    return "unknown", _error(404, "not-found", f"no route for {request.path!r}")
        except InvalidSpecError as exc:
            issues = [{"path": path, "message": msg} for path, msg in exc.issues]
            return "v1", _error(
                422, "invalid-spec",
                f"the experiment spec has {len(issues)} problem(s)",
                issues=issues,
            )
        except (JobNotFoundError, ArtifactNotFoundError) as exc:
            return "v1", _error(404, "not-found", str(exc))
        except InvalidParameterError as exc:
            return "v1", _error(400, "bad-request", str(exc))
        except ReproError as exc:
            log_event(_log, "request.error", path=request.path, error=str(exc))
            return "v1", _error(500, "internal-error", f"{type(exc).__name__}: {exc}")

    def _dispatch_v1(
        self, request: ServiceRequest, parts: tuple[str, ...]
    ) -> tuple[str, ServiceResponse]:
        match parts:
            case ("jobs",):
                if request.method == "POST":
                    return "jobs.submit", self._submit_job(request)
                if request.method == "GET":
                    return "jobs.list", self._list_jobs(request)
                return "jobs", _method_not_allowed(("GET", "POST"))
            case ("jobs", job_id):
                if request.method != "GET":
                    return "jobs.get", _method_not_allowed(("GET",))
                return "jobs.get", ServiceResponse.json(self.store.get(job_id).snapshot())
            case ("jobs", job_id, "events"):
                if request.method != "GET":
                    return "jobs.events", _method_not_allowed(("GET",))
                return "jobs.events", self._job_events(request, job_id)
            case ("jobs", job_id, "artifacts"):
                if request.method != "GET":
                    return "jobs.artifacts", _method_not_allowed(("GET",))
                return "jobs.artifacts", self._list_artifacts(job_id)
            case ("jobs", job_id, "artifacts", name):
                if request.method != "GET":
                    return "jobs.artifact", _method_not_allowed(("GET",))
                return "jobs.artifact", self._get_artifact(job_id, name)
            case ("backends",):
                return "backends", ServiceResponse.json(
                    {"backends": list(available_backends())}
                )
            case ("configs",):
                return "configs", self._configs()
            case ("stats",):
                return "stats", self._stats()
            case _:
                return "v1", _error(
                    404, "not-found", f"no route for /v1/{'/'.join(parts)}"
                )

    # ------------------------------------------------------------------
    # Route handlers
    # ------------------------------------------------------------------
    def _healthz(self, request: ServiceRequest) -> ServiceResponse:
        return ServiceResponse.json(
            {
                "status": "ok",
                "jobs": self.store.counts(),
                "auth": self.auth.enabled,
            }
        )

    def _metrics(self, request: ServiceRequest) -> ServiceResponse:
        return ServiceResponse.text(
            self.registry.render(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _refuse(self, outcome: AuthOutcome) -> ServiceResponse:
        self._auth_refused.inc(reason=outcome.value)
        detail = (
            "missing bearer token"
            if outcome is AuthOutcome.MISSING
            else "invalid bearer token"
        )
        return _error(
            401, "unauthorized", detail,
            headers=(("WWW-Authenticate", 'Bearer realm="repro-service"'),),
        )

    def _submit_job(self, request: ServiceRequest) -> ServiceResponse:
        spec = parse_experiment_spec(
            request.json(), max_points=self.config.max_points
        )
        job = self.store.create(spec)
        self.queue.submit(job)
        return ServiceResponse.json(
            job.snapshot(),
            status=202,
            headers=(("Location", f"/v1/jobs/{job.id}"),),
        )

    def _list_jobs(self, request: ServiceRequest) -> ServiceResponse:
        return ServiceResponse.json(
            {"jobs": [job.snapshot() for job in self.store.list()]}
        )

    def _job_events(self, request: ServiceRequest, job_id: str) -> ServiceResponse:
        job = self.store.get(job_id)
        after = _after_seq(request)
        if request.query.get("stream", "true").lower() in ("false", "0", "no"):
            payload = [e.as_payload() for e in job.events_since(after)]
            return ServiceResponse.json({"id": job.id, "events": payload})
        return ServiceResponse(
            status=200,
            headers=(
                ("Content-Type", "text/event-stream"),
                ("Cache-Control", "no-cache"),
                ("X-Accel-Buffering", "no"),
            ),
            body=self._sse_stream(job, after),
        )

    def _sse_stream(self, job: Job, after: int) -> Iterator[bytes]:
        """Frame the job's event log as Server-Sent Events.

        Sequence numbers become SSE ids, so ``Last-Event-ID``
        reconnects replay exactly the missed suffix.  The stream closes
        once the job is terminal and fully drained; while the job runs,
        silence is padded with comment keepalives.
        """
        last = after
        yield b": repro-service event stream\n\n"
        while True:
            events = job.wait_events(last, timeout=self.config.keepalive_seconds)
            for event in events:
                data = json.dumps(event.as_payload(), separators=(",", ":"))
                yield (
                    f"id: {event.seq}\nevent: {event.kind}\ndata: {data}\n\n"
                ).encode()
                last = event.seq
            if not events:
                if job.state.terminal:
                    return
                yield b": keepalive\n\n"

    def _list_artifacts(self, job_id: str) -> ServiceResponse:
        self.store.get(job_id)  # 404 for unknown jobs, even with artifacts absent
        rows = [
            {"name": a.name, "size": a.size, "content_type": a.content_type}
            for a in self.artifacts.list(job_id)
        ]
        return ServiceResponse.json({"id": job_id, "artifacts": rows})

    def _get_artifact(self, job_id: str, name: str) -> ServiceResponse:
        self.store.get(job_id)
        data = self.artifacts.get(job_id, name)
        info = self.artifacts.info(job_id, name)
        return ServiceResponse(
            status=200,
            headers=(
                ("Content-Type", info.content_type),
                ("Content-Disposition", f'attachment; filename="{name}"'),
            ),
            body=data,
        )

    def _configs(self) -> ServiceResponse:
        rows = []
        for name in configuration_names():
            cfg = get_configuration(name)
            rows.append({"name": name, "speeds": list(cfg.speeds)})
        return ServiceResponse.json({"configs": rows})

    def _stats(self) -> ServiceResponse:
        hits, misses = self.cache.stats()
        payload: dict[str, Any] = {
            "jobs": self.store.counts(),
            "cache": {
                "size": len(self.cache),
                "hits": hits,
                "misses": misses,
                "by_backend": {
                    backend: {"hits": h, "misses": m}
                    for backend, (h, m) in self.cache.stats_by_backend().items()
                },
            },
        }
        payload["pool"] = self._pool_stats()
        return ServiceResponse.json(payload)

    def _pool_stats(self) -> dict[str, Any] | None:
        status = _default_pool_status()
        if status is None:
            return None
        return {
            "started": status.started,
            "healthy": status.healthy,
            "max_workers": status.max_workers,
            "workers": [
                {
                    "id": w.worker_id,
                    "pid": w.pid,
                    "alive": w.alive,
                    "busy": w.busy,
                    "tasks_done": w.tasks_done,
                }
                for w in status.workers
            ],
            "tasks_completed": status.tasks_completed,
            "worker_crashes": status.worker_crashes,
            "workers_recycled": status.workers_recycled,
            "shard_retries": status.shard_retries,
            "inline_fallbacks": status.inline_fallbacks,
        }

    # ------------------------------------------------------------------
    # Scrape-time collectors
    # ------------------------------------------------------------------
    def _collect_cache_metrics(
        self,
    ) -> Iterator[tuple[str, str, list[Sample]]]:
        by_backend = self.cache.stats_by_backend()
        hits = [
            Sample("repro_service_cache_hits_total", (("backend", b),), float(h))
            for b, (h, _) in by_backend.items()
        ]
        misses = [
            Sample("repro_service_cache_misses_total", (("backend", b),), float(m))
            for b, (_, m) in by_backend.items()
        ]
        yield "repro_service_cache_hits_total", "counter", hits
        yield "repro_service_cache_misses_total", "counter", misses
        yield (
            "repro_service_cache_entries",
            "gauge",
            [Sample("repro_service_cache_entries", (), float(len(self.cache)))],
        )

    def _collect_job_metrics(self) -> Iterator[tuple[str, str, list[Sample]]]:
        yield (
            "repro_service_jobs",
            "gauge",
            [
                Sample("repro_service_jobs", (("state", state),), float(count))
                for state, count in self.store.counts().items()
            ],
        )

    def _collect_pool_metrics(self) -> Iterator[tuple[str, str, list[Sample]]]:
        status = _default_pool_status()
        if status is None:
            return
        counters = {
            "repro_service_pool_tasks_completed_total": status.tasks_completed,
            "repro_service_pool_worker_crashes_total": status.worker_crashes,
            "repro_service_pool_workers_recycled_total": status.workers_recycled,
            "repro_service_pool_shard_retries_total": status.shard_retries,
            "repro_service_pool_inline_fallbacks_total": status.inline_fallbacks,
        }
        for name, value in counters.items():
            yield name, "counter", [Sample(name, (), float(value))]
        yield (
            "repro_service_pool_workers_alive",
            "gauge",
            [
                Sample(
                    "repro_service_pool_workers_alive",
                    (),
                    float(sum(1 for w in status.workers if w.alive)),
                )
            ],
        )


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _default_pool_status() -> Any:
    """The default warm pool's status, or ``None`` when no pool exists
    (inline transports never create one)."""
    from ..exec import warm

    pool = warm._default_pool
    return None if pool is None else pool.status()


def _after_seq(request: ServiceRequest) -> int:
    """The replay cursor: ``Last-Event-ID`` header or ``after`` query."""
    raw = request.headers.get("last-event-id", request.query.get("after", "0"))
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise InvalidParameterError(
            f"invalid event cursor {raw!r}: expected an integer sequence number"
        ) from None
    if value < 0:
        raise InvalidParameterError("event cursor must be >= 0")
    return value


def _error(
    status: int,
    code: str,
    detail: str,
    *,
    headers: tuple[tuple[str, str], ...] = (),
    **extra: Any,
) -> ServiceResponse:
    return ServiceResponse.json(
        {"error": code, "detail": detail, **extra}, status=status, headers=headers
    )


def _method_not_allowed(allowed: tuple[str, ...]) -> ServiceResponse:
    return _error(
        405, "method-not-allowed",
        f"allowed methods: {', '.join(allowed)}",
        headers=(("Allow", ", ".join(allowed)),),
    )
