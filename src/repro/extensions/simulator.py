"""Monte-Carlo validation of the multi-verification model.

A vectorised simulator for the q-verification pattern of
:mod:`repro.extensions.multiverif`, mirroring the base engine's
semantics (silent errors only; error struck in segment ``i`` is caught
by the first succeeding verification ``j >= i``, intermediate
verifications catch with probability ``recall``, the final one always
catches).  Used by the test suite to certify the extension's closed
forms the same way the base model is certified.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConvergenceError, InvalidParameterError
from ..platforms.configuration import Configuration
from ..quantities import require_positive, require_probability
from ..simulation.outcomes import PatternBatch

__all__ = ["MultiVerifSimulator"]

_MAX_ROUNDS = 100_000


class MultiVerifSimulator:
    """Simulate q-verification patterns under silent errors.

    Examples
    --------
    >>> from repro.platforms import get_configuration
    >>> sim = MultiVerifSimulator(get_configuration("hera-xscale"), rng=0)
    >>> batch = sim.run(work=3000.0, q=3, sigma1=0.4, n=100)
    >>> batch.size
    100
    """

    def __init__(
        self,
        cfg: Configuration,
        rng: np.random.Generator | int | None = None,
    ):
        self.cfg = cfg
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    def _attempt(
        self, m: int, work: float, q: int, sigma: float, recall: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised single attempt for ``m`` samples at ``sigma``.

        Returns ``(elapsed_cpu_seconds, failed)`` arrays.  Elapsed time
        covers executed segments + their verifications up to (and
        including) the detecting verification, or all ``q`` on success.
        """
        cfg = self.cfg
        lam = cfg.lam
        w = work / q
        tau = (w + cfg.verification_time) / sigma
        x = lam * w / sigma
        p_seg = -np.expm1(-x)

        # Segment where the error first strikes (q+1 = no error), drawn
        # from the truncated geometric implied by per-segment exposure.
        u = self.rng.random(m)
        # P(no error in first k segments) = e^{-k x}.
        # strike_segment = smallest i with error; inverse-CDF sampling:
        surv = np.exp(-x)
        if p_seg == 0.0:
            strike = np.full(m, q + 1)
        else:
            # u < 1 - surv**q  <=> an error strikes somewhere.
            strike = np.floor(np.log1p(-u) / np.log(surv)).astype(np.int64) + 1
            strike = np.where(strike > q, q + 1, strike)

        failed = strike <= q
        # Detection verification: first j >= strike that catches.
        detect = np.full(m, q, dtype=np.int64)
        idx = np.flatnonzero(failed)
        if idx.size:
            s = strike[idx]
            if recall >= 1.0:
                detect_j = s
            else:
                # Geometric number of missed verifications, capped at q.
                extra = self.rng.geometric(recall, idx.size) - 1 if recall > 0 else None
                if recall == 0.0:
                    detect_j = np.full(idx.size, q)
                else:
                    detect_j = np.minimum(s + extra, q)
            detect[idx] = detect_j
        segments = np.where(failed, detect, q)
        elapsed = segments * tau
        return elapsed, failed

    def run(
        self,
        work: float,
        q: int,
        sigma1: float,
        sigma2: float | None = None,
        *,
        recall: float = 1.0,
        n: int = 10_000,
    ) -> PatternBatch:
        """Simulate ``n`` independent q-verification patterns."""
        require_positive(work, "work")
        require_positive(sigma1, "sigma1")
        if sigma2 is None:
            sigma2 = sigma1
        require_positive(sigma2, "sigma2")
        require_probability(recall, "recall")
        if q < 1:
            raise InvalidParameterError("q must be >= 1")
        if n < 1:
            raise InvalidParameterError("n must be >= 1")

        cfg = self.cfg
        pm = cfg.power
        p_io = pm.io_total_power()
        R, C = cfg.recovery_time, cfg.checkpoint_time

        times = np.zeros(n)
        energies = np.zeros(n)
        attempts = np.zeros(n, dtype=np.int64)
        silent = np.zeros(n, dtype=np.int64)

        active = np.arange(n)
        speed = sigma1
        rounds = 0
        while active.size:
            rounds += 1
            if rounds > _MAX_ROUNDS:  # pragma: no cover
                raise ConvergenceError("multi-verif patterns failed to complete")
            elapsed, failed = self._attempt(active.size, work, q, speed, recall)
            times[active] += elapsed
            energies[active] += elapsed * pm.compute_power(speed)
            attempts[active] += 1
            silent[active] += failed

            failed_idx = active[failed]
            done_idx = active[~failed]
            times[failed_idx] += R
            energies[failed_idx] += R * p_io
            times[done_idx] += C
            energies[done_idx] += C * p_io
            active = failed_idx
            speed = sigma2

        return PatternBatch(
            times=times,
            energies=energies,
            attempts=attempts,
            failstop_errors=np.zeros(n, dtype=np.int64),
            silent_errors=silent,
        )
