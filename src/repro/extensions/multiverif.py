"""Multi-verification patterns: q verifications per checkpoint.

The paper verifies exactly once per pattern (just before the
checkpoint).  Its related work (Benoit, Robert & Raina, "Efficient
checkpoint/verification patterns") shows that *interleaving several
verifications* within a pattern can pay off: an error struck in segment
``i`` of ``q`` is caught after ``i`` segments instead of after the whole
pattern, at the price of ``q`` verification costs.  This module extends
that idea to the paper's two-speed re-execution model — the natural
"further work" combination.

Model
-----
A pattern is ``q`` equal segments of ``W/q`` work, each followed by a
verification (cost ``V`` work-like); a checkpoint follows the last
verification.  Intermediate verifications may be *partial* (recall
``r``: they catch an error with probability ``r``); the final
verification is always guaranteed, so no corrupted checkpoint is ever
stored — exactly the guarantee of the base model.  On detection the
application recovers and re-executes the whole pattern at ``sigma2``
(and keeps re-executing at ``sigma2`` until success).

With ``q = 1`` (and any ``r``) this reduces *exactly* to the paper's
model (Propositions 1-3), which the tests assert.

Notation: per segment at speed ``s``: work ``w = W/q``, segment time
``tau = (w + V)/s``, exposure ``x = lam*w/s``, failure ``p = 1 - e^-x``.
An error first strikes segment ``i`` with probability ``e^{-(i-1)x} p``
and is detected at verification ``j >= i`` with probability
``r (1-r)^{j-i}`` for ``j < q`` and with the remaining mass at ``j = q``
(the guaranteed final verification).  Detection after ``j`` segments
costs elapsed time ``j * tau``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InfeasibleBoundError, InvalidParameterError
from ..platforms.configuration import Configuration
from ..quantities import require_probability

__all__ = [
    "segment_detection_profile",
    "expected_time",
    "expected_energy",
    "time_overhead",
    "energy_overhead",
    "MultiVerifSolution",
    "solve_pattern",
    "solve_bicrit_multiverif",
]


def _validate(work: float, q: int, sigma1: float, sigma2: float, recall: float) -> None:
    if work <= 0:
        raise InvalidParameterError(f"work must be > 0, got {work!r}")
    if not isinstance(q, (int, np.integer)) or q < 1:
        raise InvalidParameterError(f"q must be an integer >= 1, got {q!r}")
    if sigma1 <= 0 or sigma2 <= 0:
        raise InvalidParameterError("speeds must be > 0")
    require_probability(recall, "recall")


def segment_detection_profile(q: int, x: float, recall: float) -> tuple[np.ndarray, float]:
    """Distribution of the detection point of a failed execution.

    Returns ``(d, p_fail)`` where ``d[j-1]`` is the probability that the
    execution fails *and* the error is detected right after segment
    ``j`` (``j = 1..q``), and ``p_fail = d.sum()`` is the total failure
    probability ``1 - e^{-q x}``.

    ``x`` is the per-segment exposure ``lam * (W/q) / sigma``.
    """
    if q < 1:
        raise InvalidParameterError(f"q must be >= 1, got {q!r}")
    i = np.arange(1, q + 1)
    strike = np.exp(-(i - 1) * x) * (-np.expm1(-x))  # error first in segment i
    d = np.zeros(q)
    for ii in range(1, q + 1):
        mass = strike[ii - 1]
        if mass == 0.0:
            continue
        remaining = mass
        for j in range(ii, q):
            caught = remaining * recall
            d[j - 1] += caught
            remaining -= caught
        d[q - 1] += remaining  # guaranteed final verification
    return d, float(-np.expm1(-q * x))


def _attempt_stats(
    cfg: Configuration, work: float, q: int, sigma: float, recall: float
) -> tuple[float, float, float]:
    """One attempt at speed ``sigma``: (p_fail, E[time], E[CPU seconds]).

    ``E[time]`` and CPU seconds coincide here (all attempt phases are
    CPU phases); kept separate for clarity at the call sites.
    """
    lam = cfg.lam
    V = cfg.verification_time
    w = work / q
    tau = (w + V) / sigma
    x = lam * w / sigma
    d, p_fail = segment_detection_profile(q, x, recall)
    j = np.arange(1, q + 1)
    t_fail = float(np.dot(d, j)) * tau          # failed attempts: j segments
    t_ok = (1.0 - p_fail) * q * tau             # clean attempt: q segments
    elapsed = t_fail + t_ok
    return p_fail, elapsed, elapsed


def expected_time(
    cfg: Configuration,
    work: float,
    q: int,
    sigma1: float,
    sigma2: float | None = None,
    *,
    recall: float = 1.0,
) -> float:
    """Exact expected pattern time with ``q`` verifications per checkpoint.

    Reduces to Proposition 2 at ``q = 1``.  Derivation mirrors the
    paper's recursion: a failed first attempt (probability ``p1``) pays
    its elapsed-time profile plus ``R`` plus the all-``sigma2`` fixed
    point; the fixed point solves the same one-speed recursion.
    """
    if sigma2 is None:
        sigma2 = sigma1
    _validate(work, q, sigma1, sigma2, recall)

    p1, m1, _ = _attempt_stats(cfg, work, q, sigma1, recall)
    p2, m2, _ = _attempt_stats(cfg, work, q, sigma2, recall)
    R, C = cfg.recovery_time, cfg.checkpoint_time
    q2 = 1.0 - p2
    # Fixed point at sigma2: T2 = m2 + p2 (R + T2) + (1-p2) C.  For
    # extreme exposures q2 underflows to 0 and the expectation is
    # rightly +inf (success almost never happens).
    with np.errstate(divide="ignore"):
        t2 = (m2 + p2 * R + q2 * C) / q2 if q2 > 0 else np.inf
    return m1 + p1 * (R + t2) + (1.0 - p1) * C


def expected_energy(
    cfg: Configuration,
    work: float,
    q: int,
    sigma1: float,
    sigma2: float | None = None,
    *,
    recall: float = 1.0,
) -> float:
    """Exact expected pattern energy (mJ) with ``q`` verifications."""
    if sigma2 is None:
        sigma2 = sigma1
    _validate(work, q, sigma1, sigma2, recall)
    pm = cfg.power
    p_io = pm.io_total_power()
    R, C = cfg.recovery_time, cfg.checkpoint_time

    p1, _, cpu1 = _attempt_stats(cfg, work, q, sigma1, recall)
    p2, _, cpu2 = _attempt_stats(cfg, work, q, sigma2, recall)
    e1 = cpu1 * pm.compute_power(sigma1)
    e2 = cpu2 * pm.compute_power(sigma2)
    q2 = 1.0 - p2
    # Fixed point at sigma2 for energy (inf when success is impossible).
    with np.errstate(divide="ignore"):
        e_fix = (e2 + p2 * R * p_io + q2 * C * p_io) / q2 if q2 > 0 else np.inf
    return e1 + p1 * (R * p_io + e_fix) + (1.0 - p1) * C * p_io


def time_overhead(
    cfg: Configuration,
    work: float,
    q: int,
    sigma1: float,
    sigma2: float | None = None,
    *,
    recall: float = 1.0,
) -> float:
    """Expected time per unit of work."""
    return expected_time(cfg, work, q, sigma1, sigma2, recall=recall) / work


def energy_overhead(
    cfg: Configuration,
    work: float,
    q: int,
    sigma1: float,
    sigma2: float | None = None,
    *,
    recall: float = 1.0,
) -> float:
    """Expected energy (mJ) per unit of work."""
    return expected_energy(cfg, work, q, sigma1, sigma2, recall=recall) / work


@dataclass(frozen=True)
class MultiVerifSolution:
    """Optimal multi-verification pattern for one (or the best) q."""

    sigma1: float
    sigma2: float
    q: int
    work: float
    energy_overhead: float
    time_overhead: float
    recall: float


def solve_pattern(
    cfg: Configuration,
    q: int,
    sigma1: float,
    sigma2: float,
    rho: float,
    *,
    recall: float = 1.0,
) -> MultiVerifSolution | None:
    """Best pattern size for fixed ``(q, sigma1, sigma2)`` under ``rho``.

    Same minimise/bracket/minimise scheme as the exact solvers; returns
    ``None`` when the bound is unattainable for this combination.
    """
    import math

    from scipy.optimize import brentq, minimize_scalar

    from ..core.numeric import minimize_unimodal

    def t_over(w: float) -> float:
        with np.errstate(over="ignore"):
            return time_overhead(cfg, w, q, sigma1, sigma2, recall=recall)

    w_star, t_min = minimize_unimodal(t_over)
    if t_min > rho:
        return None

    def shifted(w: float) -> float:
        v = t_over(w) - rho
        return v if math.isfinite(v) else 1e300

    lo = 1e-3
    w1 = lo if shifted(lo) <= 0 else float(brentq(shifted, lo, w_star, xtol=1e-9))
    hi = w_star
    while shifted(hi) <= 0:
        hi *= 2.0
    w2 = float(brentq(shifted, w_star, hi, xtol=1e-9))

    def e_over(w: float) -> float:
        with np.errstate(over="ignore"):
            return energy_overhead(cfg, w, q, sigma1, sigma2, recall=recall)

    res = minimize_scalar(e_over, bounds=(w1, w2), method="bounded")
    cands = [(float(res.x), float(res.fun)), (w1, e_over(w1)), (w2, e_over(w2))]
    w_opt, e_opt = min(cands, key=lambda p: p[1])
    return MultiVerifSolution(
        sigma1=sigma1,
        sigma2=sigma2,
        q=q,
        work=w_opt,
        energy_overhead=e_opt,
        time_overhead=t_over(w_opt),
        recall=recall,
    )


def solve_bicrit_multiverif(
    cfg: Configuration,
    rho: float,
    *,
    max_q: int = 8,
    recall: float = 1.0,
) -> MultiVerifSolution:
    """BiCrit over speed pairs *and* the verification count ``q``.

    Enumerates ``q = 1..max_q`` on top of the O(K^2) speed grid.  With
    ``q = 1`` included in the search, the result can only improve on
    (or match) the paper's single-verification optimum — the ablation
    bench quantifies by how much.

    Raises
    ------
    InfeasibleBoundError
        When no combination meets ``rho``.
    """
    best: MultiVerifSolution | None = None
    for q in range(1, max_q + 1):
        for s1 in cfg.speeds:
            for s2 in cfg.speeds:
                sol = solve_pattern(cfg, q, s1, s2, rho, recall=recall)
                if sol is not None and (
                    best is None or sol.energy_overhead < best.energy_overhead
                ):
                    best = sol
    if best is None:
        raise InfeasibleBoundError(rho)
    return best
