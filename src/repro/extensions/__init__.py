"""Extensions beyond the paper's evaluated scope.

* :mod:`~repro.extensions.multiverif` — q verifications per checkpoint
  (the related-work direction of Benoit/Robert/Raina) combined with the
  paper's two-speed re-execution, including partial verifications;
* :mod:`~repro.extensions.simulator` — Monte-Carlo validation engine
  for the multi-verification model.
"""

from .multiverif import (
    MultiVerifSolution,
    energy_overhead,
    expected_energy,
    expected_time,
    segment_detection_profile,
    solve_bicrit_multiverif,
    solve_pattern,
    time_overhead,
)
from .simulator import MultiVerifSimulator

__all__ = [
    "expected_time",
    "expected_energy",
    "time_overhead",
    "energy_overhead",
    "segment_detection_profile",
    "MultiVerifSolution",
    "solve_pattern",
    "solve_bicrit_multiverif",
    "MultiVerifSimulator",
]
