"""Shared fixtures for the benchmark harness.

Every bench writes its regenerated artefact (table/series CSV) under
``results/`` so the repository carries the reproduced data alongside
the timings.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where regenerated paper artefacts are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
