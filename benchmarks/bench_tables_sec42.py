"""Bench: the four Section-4.2 speed-pair tables (Hera/XScale).

Regenerates each table, checks every row against the paper's printed
values (exactly — the evaluation is analytic), writes the CSV artefact,
and times the O(K^2) solve.

Paper reference values (sigma1 -> best sigma2, Wopt, E/W; '-' rows are
None):

rho = 8     : 0.15->(0.4,1711,466) 0.4->(0.4,2764,416) 0.6->(0.4,3639,674)
              0.8->(0.4,4627,1082) 1.0->(0.4,5742,1625); best (0.4,0.4)
rho = 3     : 0.15 infeasible, rest as above; best (0.4,0.4)
rho = 1.775 : 0.6->(0.8,4251,690) 0.8/1.0 as above; best (0.6,0.8)
rho = 1.4   : only 0.8 and 1.0 feasible; best (0.8,0.4)
"""

from __future__ import annotations

import pytest

from repro.platforms import get_configuration
from repro.reporting.csvio import write_table_csv
from repro.reporting.tables import format_speed_pair_table
from repro.sweep.tables import speed_pair_table

PAPER_ROWS = {
    8.0: {
        0.15: (0.4, 1711, 466),
        0.4: (0.4, 2764, 416),
        0.6: (0.4, 3639, 674),
        0.8: (0.4, 4627, 1082),
        1.0: (0.4, 5742, 1625),
    },
    3.0: {
        0.15: None,
        0.4: (0.4, 2764, 416),
        0.6: (0.4, 3639, 674),
        0.8: (0.4, 4627, 1082),
        1.0: (0.4, 5742, 1625),
    },
    1.775: {
        0.15: None,
        0.4: None,
        0.6: (0.8, 4251, 690),
        0.8: (0.4, 4627, 1082),
        1.0: (0.4, 5742, 1625),
    },
    1.4: {
        0.15: None,
        0.4: None,
        0.6: None,
        0.8: (0.4, 4627, 1082),
        1.0: (0.4, 5742, 1625),
    },
}

BEST_PAIRS = {8.0: (0.4, 0.4), 3.0: (0.4, 0.4), 1.775: (0.6, 0.8), 1.4: (0.8, 0.4)}


def _check_table(table, rho: float) -> None:
    for s1, expected in PAPER_ROWS[rho].items():
        row = table.row_for(s1)
        if expected is None:
            assert not row.feasible
        else:
            s2, wopt, energy = expected
            assert row.best_sigma2 == s2
            assert row.work == pytest.approx(wopt, abs=1.5)
            assert row.energy_overhead == pytest.approx(energy, abs=1.5)
    assert table.best_row.solution.speed_pair == BEST_PAIRS[rho]


@pytest.mark.parametrize("rho", [8.0, 3.0, 1.775, 1.4], ids=lambda r: f"rho{r}")
def test_table_sec42(benchmark, results_dir, rho):
    cfg = get_configuration("hera-xscale")
    table = benchmark(speed_pair_table, cfg, rho)
    _check_table(table, rho)
    write_table_csv(results_dir / f"table_sec42_rho{rho:g}.csv", table)
    print()
    print(format_speed_pair_table(table))
