"""Bench: Figures 8-14 — all six sweeps for the other seven configurations.

Each test regenerates one figure (six panels: C, V, lambda, rho, Pidle,
Pio), writes one CSV per panel, asserts the cross-configuration
invariants plus the figure-specific observations of Section 4.3.4, and
times the full-figure run.

Section 4.3.4 spot claims:

* Crusoe with platforms other than Atlas (Figs 12-14): the pair stays
  (0.45, 0.45) across the whole C range (smaller error rates).
* Coastal SSD/XScale (Fig 11): Pio *does* move the optimal pair (large
  C, small dynamic CPU power).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.reporting.csvio import write_series_csv
from repro.sweep.figures import figure_spec, run_figure

FIGS = ["fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"]


def _check_common(panels) -> None:
    """Invariants every figure must satisfy."""
    for name, series in panels.items():
        e2, e1 = series.energy_two(), series.energy_single()
        ok = np.isfinite(e2) & np.isfinite(e1)
        assert ok.any(), f"panel {name}: no feasible point"
        # Two speeds never lose to one speed.
        assert np.all(e2[ok] <= e1[ok] + 1e-9)
        # Wopt positive wherever feasible.
        w = series.work_two()
        assert np.all(w[np.isfinite(w)] > 0)


@pytest.mark.parametrize("figure_id", FIGS)
def test_figure_all_panels(benchmark, results_dir, figure_id):
    panels = benchmark.pedantic(
        run_figure, args=(figure_id,), kwargs={"n": 26}, rounds=1, iterations=1
    )
    _check_common(panels)
    for panel, series in panels.items():
        write_series_csv(results_dir / f"{figure_id}_{panel}.csv", series)

    spec = figure_spec(figure_id)
    # Figure-specific observations from Section 4.3.4.
    if figure_id in ("fig12", "fig13", "fig14"):
        # Crusoe + non-Atlas platform: pair pinned at (0.45, 0.45) vs C.
        assert all(p == (0.45, 0.45) for p in panels["C"].speed_pairs())
    if figure_id == "fig11":
        # Coastal SSD/XScale: Pio moves the pair.
        assert len(set(panels["Pio"].speed_pairs())) > 1
    if figure_id in ("fig8", "fig9"):
        # XScale + high-rate platforms: lambda panel eventually infeasible
        # at rho = 3 within the 1e-2 range.
        assert not panels["lambda"].feasible_mask()[-1]
    if figure_id in ("fig10", "fig13"):
        # Coastal (lambda axis capped at 1e-3): feasible over almost the
        # whole axis; with C = 1051 s the rho = 3 bound becomes
        # unattainable just below 1e-3 (2 sqrt(C lambda / (s1 s2)) alone
        # exceeds the slack), which is why the paper narrows this axis.
        lam_series = panels["lambda"]
        mask = lam_series.feasible_mask()
        assert mask[0]
        last_feasible = lam_series.values[mask][-1]
        assert last_feasible > 3e-4

    summary = ", ".join(
        f"{p}: pair@end={panels[p].speed_pairs()[-1]}" for p in ("C", "lambda")
    )
    print(f"\n{figure_id} ({spec.config_name}): {summary}")
