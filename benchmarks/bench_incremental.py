"""Bench: the incremental (warm-started) solve tier vs the cold pass.

The ``schedule-grid-incremental`` backend claims sublinear sweep cost:
along a dense sweep the delta tier dedups the per-(V, s) evaluation
work to one scan per distinct row and warm-starts every point's
crossing brackets and golden-section interval from its neighbour's
optimum, falling back to the exact cold solve whenever a validation
probe fails.  This bench measures that claim on the two acceptance
shapes (through :func:`repro.perf.workloads.build_suite`, shared with
the ``repro bench`` CLI and the CI smoke gate):

* ``sweep_1axis`` — a dense 10k-point rho sweep of one
  (config, schedule) row; the tier must be >= 5x the cold solve;
* ``grid_2axis`` — a 64 x 96 error-rate x rho grid (one warm chain
  per rate); the tier must be >= 2x.

Accuracy is pinned before any timing: energies within 1e-9 absolute
of the cold solve on every row, identical feasibility, and the rows
the tier solves cold (anchors + fallbacks) byte-identical to the cold
pass.  The full report lands in ``results/BENCH_incremental.json``;
the summary CSV in ``results/incremental_bench.csv``.
"""

from __future__ import annotations

import numpy as np

from repro.perf import BenchRunner, build_suite
from repro.perf.workloads import incremental_axis_points, incremental_grid_points
from repro.reporting.csvio import write_rows_csv
from repro.schedules.incremental import (
    DeltaScheduleGrid,
    solve_schedule_grid_incremental,
)
from repro.schedules.vectorized import ScheduleGrid, solve_schedule_grid

ENERGY_ATOL = 1e-9

_CSV_FIELDS = (
    "shape",
    "rows",
    "path",
    "seconds_total",
    "speedup_vs_cold",
    "warm_rows",
    "fallback_rows",
    "max_abs_energy_error",
)


def _equivalence(points, rhos):
    """Solve one shape both ways; returns (stats, max abs energy error)
    after asserting feasibility agreement and cold-row byte identity."""
    cold = solve_schedule_grid(ScheduleGrid.from_points(points), rhos)
    warm = solve_schedule_grid_incremental(
        DeltaScheduleGrid.from_points(points), rhos
    )
    assert np.array_equal(cold.feasible, warm.feasible)
    err = np.abs(np.where(cold.feasible, warm.energy_overhead - cold.energy_overhead, 0.0))
    # Rows the tier solved cold (anchors and fallbacks) ride the exact
    # cold path and must match bit-for-bit.
    cold_rows = ~warm.warm & cold.feasible
    assert np.array_equal(warm.energy_overhead[cold_rows], cold.energy_overhead[cold_rows])
    return warm.stats, float(err.max(initial=0.0))


def test_incremental_speedup(results_dir):
    """10k-point sweep >= 5x, 64 x 96 grid >= 2x, energies <= 1e-9."""
    axis_pts, axis_rhos = incremental_axis_points()
    grid_pts, grid_rhos = incremental_grid_points()
    assert len(axis_pts) == 10_000
    assert len(grid_pts) == 64 * 96

    axis_stats, axis_err = _equivalence(axis_pts, axis_rhos)
    grid_stats, grid_err = _equivalence(grid_pts, grid_rhos)
    assert axis_err <= ENERGY_ATOL, f"1-axis energy disagreement {axis_err:.2e}"
    assert grid_err <= ENERGY_ATOL, f"2-axis energy disagreement {grid_err:.2e}"
    # The sweeps must actually exercise the warm path, not fall back.
    assert axis_stats.warm > 0.9 * axis_stats.n
    assert grid_stats.warm > 0.8 * grid_stats.n

    report = BenchRunner(repetitions=5, warmup=1).run(
        "incremental", build_suite("incremental")
    )
    report.write(results_dir)

    rows = []
    for shape, n, stats, err in (
        ("sweep_1axis", len(axis_pts), axis_stats, axis_err),
        ("grid_2axis", len(grid_pts), grid_stats, grid_err),
    ):
        cold_ws = report.workload(f"{shape}_cold")
        warm_ws = report.workload(f"{shape}_incremental")
        rows.append(
            {
                "shape": shape,
                "rows": n,
                "path": "cold",
                "seconds_total": cold_ws.median,
                "speedup_vs_cold": 1.0,
                "warm_rows": None,
                "fallback_rows": None,
                "max_abs_energy_error": None,
            }
        )
        rows.append(
            {
                "shape": shape,
                "rows": n,
                "path": "incremental",
                "seconds_total": warm_ws.median,
                "speedup_vs_cold": warm_ws.speedup,
                "warm_rows": stats.warm,
                "fallback_rows": stats.fallback,
                "max_abs_energy_error": err,
            }
        )
    write_rows_csv(results_dir / "incremental_bench.csv", _CSV_FIELDS, rows)

    axis_ws = report.workload("sweep_1axis_incremental")
    grid_ws = report.workload("grid_2axis_incremental")
    assert axis_ws.speedup >= 5.0, (
        f"1-axis sweep only {axis_ws.speedup:.2f}x over the cold solve"
    )
    assert axis_ws.speedup_ci[0] > 1.0, "1-axis speedup CI overlaps parity"
    assert grid_ws.speedup >= 2.0, (
        f"2-axis grid only {grid_ws.speedup:.2f}x over the cold solve"
    )
    assert grid_ws.speedup_ci[0] > 1.0, "2-axis speedup CI overlaps parity"
