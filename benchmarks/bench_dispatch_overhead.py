"""Bench: warm-worker pool vs per-call process-pool plan dispatch.

The transport-layer perf claim, measured through the :mod:`repro.perf`
harness (median wall times, bootstrap CIs): a sequence of small
multi-process plans dispatched through the persistent
:class:`~repro.exec.warm.WarmWorkerPool` (``transport="warm"``) must
beat the same sequence through a fresh per-call
``ProcessPoolExecutor`` (``processes=2``), because the warm fleet pays
worker spawn once instead of once per plan.  The plans are small and
per-scenario-backend on purpose — dispatch, not solving, dominates —
and caching is disabled on both sides.  The grid is shared with the
``repro bench`` CLI via :func:`repro.perf.workloads.build_suite`; the
full report lands in ``results/BENCH_dispatch_overhead.json``.
"""

from __future__ import annotations

from repro.api.experiment import Experiment
from repro.exec import WarmWorkerPool
from repro.perf import BenchRunner, build_suite
from repro.perf.workloads import dispatch_scenarios
from repro.reporting.csvio import write_rows_csv


def test_warm_pool_vs_cold_pool_dispatch(results_dir):
    """Measure both dispatch paths, pin equivalence, record the gap."""
    scenarios = dispatch_scenarios()
    exp = Experiment.from_scenarios(scenarios, name="dispatch-equiv")

    cold = exp.solve(cache=False, processes=2)
    pool = WarmWorkerPool(max_workers=2)
    try:
        warm = exp.solve(cache=False, transport=pool)
    finally:
        pool.shutdown()

    # Same results out of both transports.
    for c, w in zip(cold, warm):
        assert c.scenario == w.scenario
        assert c.feasible == w.feasible
        if c.feasible:
            assert w.best == c.best

    report = BenchRunner(repetitions=3, warmup=1).run(
        "dispatch_overhead", build_suite("dispatch_overhead")
    )
    report.write(results_dir)

    cold_ws = report.workload("cold_pool")
    warm_ws = report.workload("warm_pool")
    write_rows_csv(
        results_dir / "dispatch_overhead_speedup.csv",
        ("scenarios", "t_cold_s", "t_warm_s", "speedup"),
        [
            {
                "scenarios": len(scenarios),
                "t_cold_s": cold_ws.median,
                "t_warm_s": warm_ws.median,
                "speedup": warm_ws.speedup,
            }
        ],
    )

    # Conservative floor: warm dispatch must at least not lose to the
    # per-plan spawn cost (typically ~2x faster).
    assert warm_ws.speedup > 1.0, (
        f"warm pool only {warm_ws.speedup:.2f}x vs per-call pool dispatch"
    )
