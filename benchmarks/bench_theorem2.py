"""Bench: Theorem 2 — the Theta(lambda^{-2/3}) checkpointing law.

Regenerates the paper's Section-5.3 result numerically: with fail-stop
errors only and sigma2 = 2 sigma1, the time-optimal pattern size fitted
across four decades of error rate scales with exponent -2/3 (the
Young/Daly baseline at sigma2 = sigma1 scales with -1/2).  Also checks
the asymptotic constant: Wopt -> (12C/lambda^2)^{1/3} sigma.
"""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.analysis.scaling import fit_power_law
from repro.core.youngdaly import work_failstop
from repro.errors import CombinedErrors
from repro.failstop.secondorder import theorem2_work
from repro.failstop.solver import time_optimal_work
from repro.platforms import Configuration, Platform, XSCALE

CHECKPOINT = 300.0
SIGMA = 0.4
LAMBDAS = np.logspace(-7, -4, 8)


def _exact_optima(sigma2_ratio: float) -> np.ndarray:
    works = []
    for lam in LAMBDAS:
        cfg = Configuration(
            platform=Platform(
                "failstop", error_rate=float(lam),
                checkpoint_time=CHECKPOINT, verification_time=0.0,
            ),
            processor=XSCALE,
        )
        works.append(
            time_optimal_work(
                cfg, CombinedErrors(float(lam), 1.0), SIGMA, sigma2_ratio * SIGMA
            )
        )
    return np.array(works)


def test_theorem2_scaling(benchmark, results_dir):
    works = benchmark.pedantic(_exact_optima, args=(2.0,), rounds=1, iterations=1)
    fit = fit_power_law(LAMBDAS, works)
    # The headline: exponent -2/3, not -1/2.
    assert fit.exponent == pytest.approx(-2 / 3, abs=0.01)
    assert fit.r_squared > 0.9999
    # Asymptotic constant: the exact optimum converges to the formula.
    ratios = works / np.array(
        [theorem2_work(float(lam), CHECKPOINT, SIGMA) for lam in LAMBDAS]
    )
    assert abs(ratios[0] - 1.0) < 5e-3          # smallest lambda: sub-0.5%
    assert abs(ratios[0] - 1.0) < abs(ratios[-1] - 1.0)  # converging

    with (results_dir / "theorem2_scaling.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["lambda", "w_exact", "w_theorem2", "w_youngdaly"])
        for lam, wx in zip(LAMBDAS, works):
            w.writerow([
                f"{lam:.6g}", f"{wx:.6g}",
                f"{theorem2_work(float(lam), CHECKPOINT, SIGMA):.6g}",
                f"{work_failstop(CHECKPOINT, float(lam), SIGMA):.6g}",
            ])
    print(f"\nTheorem 2: fitted exponent {fit.exponent:+.4f} (predicted -2/3)")


def test_young_daly_baseline_scaling(benchmark):
    works = benchmark.pedantic(_exact_optima, args=(1.0,), rounds=1, iterations=1)
    fit = fit_power_law(LAMBDAS, works)
    # Equal speeds: the classical square-root law, clearly distinct
    # from -2/3 (the exact optimum drifts slightly from -1/2 at the
    # high-rate end of the range, hence the 0.02 tolerance).
    assert fit.exponent == pytest.approx(-0.5, abs=0.02)
    print(f"\nYoung/Daly baseline: fitted exponent {fit.exponent:+.4f} (predicted -1/2)")


def test_crossover_between_laws(benchmark):
    # At small lambda the 2x-re-execution optimum grows strictly faster
    # than Young/Daly: their ratio scales as lambda^{-1/6}.
    def ratios():
        w2 = _exact_optima(2.0)
        w1 = _exact_optima(1.0)
        return w2 / w1

    r = benchmark.pedantic(ratios, rounds=1, iterations=1)
    fit = fit_power_law(LAMBDAS, r)
    assert fit.exponent == pytest.approx(-1 / 6, abs=0.02)
    print(f"\nratio exponent {fit.exponent:+.4f} (predicted -1/6)")
