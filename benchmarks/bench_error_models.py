"""Bench: batched mixed-error-model grids vs the per-scenario loop.

The PR-4 acceptance bench: a (model x schedule x rho) grid mixing
exponential, Weibull, Gamma and trace-driven error models — every row a
general schedule, so nothing short-circuits into a two-speed closed
form — is solved twice:

* ``scalar_loop`` — the ``schedule`` backend's per-scenario
  ``solve_batch`` (minimise/bracket/minimise per scenario, SciPy scalar
  calls, model primitives one float at a time);
* ``schedule_grid`` — one ``schedule-grid`` batched pass: exponential
  rows ride the broadcast rate columns, renewal rows evaluate their
  CDF primitives row-wise but vectorised along the whole work axis, and
  the constrained solve runs in lockstep for all rows at once.

Both result sets must agree: feasibility identical, energy overheads to
1e-9 relative.  The grid sticks to the *smooth* families — a
trace-driven ECDF makes the overheads jump at each sample threshold, so
two correct solvers can land on opposite sides of the same step with
different objective values, and "agreement" is ill-defined there (the
trace evaluator itself is pinned exactly by the unit/Monte-Carlo tests;
see docs/errors.md).  The speedup and the max relative energy
disagreement land in ``results/error_model_bench.csv``, following
``bench_schedule_grid.py``.
"""

from __future__ import annotations

import csv
import time

import numpy as np

from repro.api.backends import get_backend
from repro.api.scenario import Scenario
from repro.errors import parse_error_model

ENERGY_RTOL = 1e-9

MODELS = (
    "exp:rate=3.38e-06",
    "exp:rate=3.38e-06,failstop=0.5",
    "weibull:shape=0.7,mtbf=3e5",
    "weibull:shape=0.7,mtbf=3e5,failstop=0.2",
    "weibull:shape=1.5,mtbf=1e5",
    "gamma:shape=2,mtbf=3e5",
    "gamma:shape=0.5,mtbf=3e5,failstop=0.5",
    "gamma:shape=3,mtbf=2e5",
)
SCHEDULES = (
    "esc:0.4,0.6,0.8",
    "geom:0.4,1.5,1",
    "geom:0.8,0.5,1,0.2",
    "esc:0.6,0.4,0.8@1",
    "geom:0.45,1.4,0.9",
)
RHOS = np.linspace(2.8, 5.0, 10)


def _scenarios() -> list[Scenario]:
    return [
        Scenario(
            config="hera-xscale",
            rho=float(rho),
            errors=parse_error_model(model),
            schedule=sched,
        )
        for model in MODELS
        for sched in SCHEDULES
        for rho in RHOS
    ]


def test_error_model_grid_speedup(results_dir):
    """400-scenario mixed-model grid: batched pass >= 5x the scalar
    loop, <= 1e-9 relative energy disagreement on the smooth families."""
    scenarios = _scenarios()
    assert len(scenarios) == 400

    t0 = time.perf_counter()
    scalar = get_backend("schedule").solve_batch(scenarios)
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = get_backend("schedule-grid").solve_batch(scenarios)
    t_grid = time.perf_counter() - t0

    n_feasible = 0
    max_rel = 0.0
    for s, b in zip(scalar, batched):
        assert b.feasible == s.feasible
        if not s.feasible:
            continue
        n_feasible += 1
        rel = abs(b.best.energy_overhead - s.best.energy_overhead) / abs(
            s.best.energy_overhead
        )
        max_rel = max(max_rel, rel)
    assert n_feasible > 200, "grid degenerated: most scenarios infeasible"
    assert max_rel <= ENERGY_RTOL, f"energy disagreement {max_rel:.2e}"

    speedup = t_scalar / t_grid
    per_scalar = t_scalar / len(scenarios)
    per_grid = t_grid / len(scenarios)

    with (results_dir / "error_model_bench.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(
            ["path", "scenarios", "models", "seconds_total",
             "seconds_per_scenario", "speedup_vs_scalar_loop",
             "max_rel_energy_error_smooth"]
        )
        w.writerow(
            ["scalar_loop", len(scenarios), len(MODELS), f"{t_scalar:.3f}",
             f"{per_scalar:.3e}", "1.0", ""]
        )
        w.writerow(
            ["schedule_grid", len(scenarios), len(MODELS), f"{t_grid:.3f}",
             f"{per_grid:.3e}", f"{speedup:.1f}", f"{max_rel:.2e}"]
        )

    assert speedup >= 5.0, f"schedule-grid only {speedup:.1f}x over the loop"
