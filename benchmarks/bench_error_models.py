"""Bench: batched mixed-error-model grids vs the per-scenario loop.

The PR-4 acceptance bench, re-measured through the :mod:`repro.perf`
harness (median wall times over repeated runs, bootstrap CIs).  A
(model x schedule x rho) grid mixing exponential, Weibull and Gamma
error models — every row a general schedule, so nothing short-circuits
into a two-speed closed form — is shared with the ``repro bench`` CLI
via :func:`repro.perf.workloads.build_suite` and solved three ways:

* ``scalar_loop`` — the ``schedule`` backend's per-scenario
  ``solve_batch`` (minimise/bracket/minimise per scenario, SciPy scalar
  calls, model primitives one float at a time);
* ``schedule_grid`` — one ``schedule-grid`` batched pass: exponential
  rows ride the broadcast rate columns, renewal rows evaluate their
  CDF primitives row-wise but vectorised along the whole work axis, and
  the constrained solve runs in lockstep for all rows at once;
* ``schedule_grid_jit`` — the ``schedule-grid-jit`` tier, whose
  renewal rows additionally reuse per-(speed, checkpoint) primitive
  tables across grid rows sharing an error model.

All result sets must agree: feasibility identical, energy overheads to
1e-9 relative.  The grid sticks to the *smooth* families — a
trace-driven ECDF makes the overheads jump at each sample threshold, so
two correct solvers can land on opposite sides of the same step with
different objective values, and "agreement" is ill-defined there (the
trace evaluator itself is pinned exactly by the unit/Monte-Carlo tests;
see docs/errors.md).  The full report lands in
``results/BENCH_error_models.json``; the legacy summary stays in
``results/error_model_bench.csv``.
"""

from __future__ import annotations

from repro.api.backends import get_backend
from repro.perf import BenchRunner, build_suite
from repro.perf.workloads import error_model_scenarios
from repro.reporting.csvio import write_rows_csv

ENERGY_RTOL = 1e-9

N_MODELS = 8

_CSV_FIELDS = (
    "path",
    "scenarios",
    "models",
    "seconds_total",
    "seconds_per_scenario",
    "speedup_vs_scalar_loop",
    "max_rel_energy_error_smooth",
)


def _max_rel_energy(reference, candidate):
    n_feasible = 0
    max_rel = 0.0
    for r, c in zip(reference, candidate):
        assert c.feasible == r.feasible
        if not r.feasible:
            continue
        n_feasible += 1
        rel = abs(c.best.energy_overhead - r.best.energy_overhead) / abs(
            r.best.energy_overhead
        )
        max_rel = max(max_rel, rel)
    return n_feasible, max_rel


def test_error_model_grid_speedup(results_dir):
    """400-scenario mixed-model grid: batched pass >= 5x the scalar
    loop, <= 1e-9 relative energy disagreement on the smooth families."""
    scenarios = error_model_scenarios()
    assert len(scenarios) == 400

    scalar = get_backend("schedule").solve_batch(scenarios)
    batched = get_backend("schedule-grid").solve_batch(scenarios)
    jitted = get_backend("schedule-grid-jit").solve_batch(scenarios)

    n_feasible, max_rel = _max_rel_energy(scalar, batched)
    assert n_feasible > 200, "grid degenerated: most scenarios infeasible"
    assert max_rel <= ENERGY_RTOL, f"energy disagreement {max_rel:.2e}"

    _, max_rel_jit = _max_rel_energy(scalar, jitted)
    assert max_rel_jit <= ENERGY_RTOL, f"jit disagreement {max_rel_jit:.2e}"

    report = BenchRunner(repetitions=3, warmup=0).run(
        "error_models", build_suite("error_models")
    )
    report.write(results_dir)

    n = len(scenarios)
    rows = []
    for ws in report.workloads:
        rows.append(
            {
                "path": ws.name,
                "scenarios": n,
                "models": N_MODELS,
                "seconds_total": ws.median,
                "seconds_per_scenario": ws.median / n,
                "speedup_vs_scalar_loop": 1.0 if ws.speedup is None else ws.speedup,
                "max_rel_energy_error_smooth": {
                    "schedule_grid": max_rel,
                    "schedule_grid_jit": max_rel_jit,
                }.get(ws.name),
            }
        )
    write_rows_csv(results_dir / "error_model_bench.csv", _CSV_FIELDS, rows)

    speedup = report.workload("schedule_grid").speedup
    assert speedup >= 5.0, f"schedule-grid only {speedup:.1f}x over the loop"
    jit_speedup = report.workload("schedule_grid_jit").speedup
    assert jit_speedup >= 5.0, (
        f"schedule-grid-jit only {jit_speedup:.1f}x over the loop"
    )
