"""Bench: a batched Experiment frontier vs the legacy per-point loop.

The acceptance case of PR 5: a Pareto frontier over a *renewal* error
model (Weibull, shape 0.7) under a *non-two-speed* schedule (geometric
escalation) — a combination the pre-pipeline ``repro.analysis.pareto``
could not express at all.  The same rho grid is solved twice:

* ``per_point_loop`` — one ``Scenario.solve(cache=False)`` per bound,
  the way the legacy analysis modules drove their solvers (each call
  pays a full backend round-trip; the vectorised kernel sees batches
  of one);
* ``batched_plan`` — one ``Experiment`` plan whose single
  ``schedule-grid`` group solves the whole frontier in lockstep
  broadcast passes.

Both paths must agree to 1e-12 relative on the energy objective (the
kernel's rows are batch-composition independent); the speedup lands in
``results/experiment_plan_bench.csv`` and must be >= 10x.
"""

from __future__ import annotations

import csv
import time

import numpy as np

from repro.api import Experiment, Scenario

CONFIG = "hera-xscale"
SCHEDULE = "geom:0.4,1.5,1"
ERRORS = "weibull:shape=0.7,mtbf=3e5"
# Spans the schedule's constrained region (feasibility edge ~2.76, the
# bound goes inactive ~2.89) plus the plateau, so the frontier carries
# several distinct trade-offs.
RHOS = tuple(float(r) for r in np.linspace(2.76, 4.0, 96))
ENERGY_RTOL = 1e-12


def _scenarios() -> list[Scenario]:
    return [
        Scenario(config=CONFIG, rho=rho, schedule=SCHEDULE, errors=ERRORS)
        for rho in RHOS
    ]


def test_experiment_plan_speedup(results_dir):
    """Renewal-model x general-schedule frontier: the batched plan must
    be >= 10x the per-point loop at <= 1e-12 energy disagreement."""
    scenarios = _scenarios()

    # Legacy shape: one solve per frontier point, no batching, no cache.
    t0 = time.perf_counter()
    per_point = []
    for sc in scenarios:
        try:
            per_point.append(sc.solve(cache=False))
        except Exception:  # infeasible head points mirror frontier skips
            per_point.append(None)
    t_loop = time.perf_counter() - t0

    # The pipeline: one deduplicated plan, one schedule-grid group.
    experiment = Experiment.from_scenarios(scenarios, name="bench-frontier")
    plan = experiment.plan()
    assert plan.n_unique == len(scenarios)
    assert [g.backend for g in plan.groups] == ["schedule-grid"]
    t0 = time.perf_counter()
    batched = plan.execute(cache=False)
    t_plan = time.perf_counter() - t0

    frontier = batched.frontier()
    assert len(frontier) >= 1
    assert frontier.is_monotone()

    n_feasible = 0
    max_rel = 0.0
    for loop_res, batch_res in zip(per_point, batched):
        if loop_res is None:
            assert not batch_res.feasible
            continue
        n_feasible += 1
        rel = abs(
            batch_res.best.energy_overhead - loop_res.best.energy_overhead
        ) / abs(loop_res.best.energy_overhead)
        max_rel = max(max_rel, rel)
    assert n_feasible >= len(scenarios) // 2, "frontier grid mostly infeasible"
    assert max_rel <= ENERGY_RTOL, f"energy disagreement {max_rel:.2e}"

    speedup = t_loop / t_plan
    with (results_dir / "experiment_plan_bench.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(
            ["path", "scenarios", "frontier_points", "seconds_total",
             "seconds_per_scenario", "speedup_vs_per_point_loop",
             "max_rel_energy_error"]
        )
        w.writerow(
            ["per_point_loop", len(scenarios), len(frontier),
             f"{t_loop:.3f}", f"{t_loop / len(scenarios):.3e}", "1.0", ""]
        )
        w.writerow(
            ["batched_plan", len(scenarios), len(frontier),
             f"{t_plan:.3f}", f"{t_plan / len(scenarios):.3e}",
             f"{speedup:.1f}", f"{max_rel:.2e}"]
        )

    assert speedup >= 10.0, f"batched plan only {speedup:.1f}x over the loop"
