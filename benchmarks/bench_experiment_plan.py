"""Bench: a batched Experiment frontier vs the legacy per-point loop.

The acceptance case of PR 5, re-measured through the :mod:`repro.perf`
harness: a Pareto frontier over a *renewal* error model (Weibull,
shape 0.7) under a *non-two-speed* schedule (geometric escalation) — a
combination the pre-pipeline ``repro.analysis.pareto`` could not
express at all.  The rho grid is shared with the ``repro bench`` CLI
via :func:`repro.perf.workloads.build_suite` and solved twice:

* ``per_point_loop`` — one ``Scenario.solve(cache=False)`` per bound,
  the way the legacy analysis modules drove their solvers (each call
  pays a full backend round-trip; the vectorised kernel sees batches
  of one);
* ``batched_plan`` — one ``Experiment`` plan whose single
  ``schedule-grid`` group solves the whole frontier in lockstep
  broadcast passes.

Both paths must agree to 1e-12 relative on the energy objective (the
kernel's rows are batch-composition independent); the full report lands
in ``results/BENCH_experiment_plan.json`` and the legacy summary in
``results/experiment_plan_bench.csv``.
"""

from __future__ import annotations

from repro.api import Experiment
from repro.perf import BenchRunner, build_suite
from repro.perf.workloads import experiment_plan_scenarios
from repro.reporting.csvio import write_rows_csv

ENERGY_RTOL = 1e-12

_CSV_FIELDS = (
    "path",
    "scenarios",
    "frontier_points",
    "seconds_total",
    "seconds_per_scenario",
    "speedup_vs_per_point_loop",
    "max_rel_energy_error",
)


def test_experiment_plan_speedup(results_dir):
    """Renewal-model x general-schedule frontier: the batched plan must
    be >= 10x the per-point loop at <= 1e-12 energy disagreement."""
    scenarios = experiment_plan_scenarios()
    assert len(scenarios) == 96

    # Legacy shape: one solve per frontier point, no batching, no cache.
    per_point = []
    for sc in scenarios:
        try:
            per_point.append(sc.solve(cache=False))
        except Exception:  # infeasible head points mirror frontier skips
            per_point.append(None)

    # The pipeline: one deduplicated plan, one schedule-grid group.
    experiment = Experiment.from_scenarios(scenarios, name="bench-frontier")
    plan = experiment.plan()
    assert plan.n_unique == len(scenarios)
    assert [g.backend for g in plan.groups] == ["schedule-grid"]
    batched = plan.execute(cache=False)

    frontier = batched.frontier()
    assert len(frontier) >= 1
    assert frontier.is_monotone()

    n_feasible = 0
    max_rel = 0.0
    for loop_res, batch_res in zip(per_point, batched):
        if loop_res is None:
            assert not batch_res.feasible
            continue
        n_feasible += 1
        rel = abs(
            batch_res.best.energy_overhead - loop_res.best.energy_overhead
        ) / abs(loop_res.best.energy_overhead)
        max_rel = max(max_rel, rel)
    assert n_feasible >= len(scenarios) // 2, "frontier grid mostly infeasible"
    assert max_rel <= ENERGY_RTOL, f"energy disagreement {max_rel:.2e}"

    report = BenchRunner(repetitions=3, warmup=0).run(
        "experiment_plan", build_suite("experiment_plan")
    )
    report.write(results_dir)

    loop_ws = report.workload("per_point_loop")
    plan_ws = report.workload("batched_plan")
    n = len(scenarios)
    write_rows_csv(
        results_dir / "experiment_plan_bench.csv",
        _CSV_FIELDS,
        [
            {
                "path": "per_point_loop",
                "scenarios": n,
                "frontier_points": len(frontier),
                "seconds_total": loop_ws.median,
                "seconds_per_scenario": loop_ws.median / n,
                "speedup_vs_per_point_loop": 1.0,
                "max_rel_energy_error": None,
            },
            {
                "path": "batched_plan",
                "scenarios": n,
                "frontier_points": len(frontier),
                "seconds_total": plan_ws.median,
                "seconds_per_scenario": plan_ws.median / n,
                "speedup_vs_per_point_loop": plan_ws.speedup,
                "max_rel_energy_error": max_rel,
            },
        ],
    )

    assert plan_ws.speedup >= 10.0, (
        f"batched plan only {plan_ws.speedup:.1f}x over the loop"
    )
