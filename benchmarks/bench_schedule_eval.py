"""Bench: the general schedule evaluator vs the Theorem-1 closed forms.

The schedule subsystem keeps the paper's closed forms as the two-speed
fast path and falls back to the attempt-series evaluator (explicit head
+ exact geometric tail) for general schedules.  This bench quantifies
what the generality costs:

* ``eval``: expected time+energy of a work grid, closed form
  (Propositions 2/3) vs the evaluator on the same ``TwoSpeed`` policy
  vs the evaluator on a 4-attempt ``Geometric`` ramp;
* ``solve``: a scheduled scenario solved through the closed-form fast
  path (``TwoSpeed``) vs the numeric constrained solve (``Geometric``).

Results land in ``results/schedule_eval_bench.csv`` (the BENCH
trajectory alongside ``study_batch_speedup.csv``).
"""

from __future__ import annotations

import csv
import time

import numpy as np

from repro.api import Scenario
from repro.core import exact as silent_exact
from repro.platforms import get_configuration
from repro.schedules import Geometric, TwoSpeed, evaluate_schedule

WORKS = np.logspace(1, 5, 512)
PAIR = (0.4, 0.6)
REPEATS = 200


def _time_calls(fn, repeats: int = REPEATS) -> float:
    """Best-of-3 mean seconds per call of ``fn`` over ``repeats`` calls."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, (time.perf_counter() - t0) / repeats)
    return best


def test_evaluator_vs_closed_form(results_dir):
    """Pin numeric equivalence and record the generality overhead."""
    cfg = get_configuration("hera-xscale")
    two = TwoSpeed(*PAIR)
    geom = Geometric(0.4, 1.5, sigma_max=1.0)

    def closed_form():
        return (
            silent_exact.expected_time(cfg, WORKS, *PAIR),
            silent_exact.expected_energy(cfg, WORKS, *PAIR),
        )

    def eval_two():
        ex = evaluate_schedule(cfg, two, WORKS)
        return ex.time, ex.energy

    def eval_geom():
        ex = evaluate_schedule(cfg, geom, WORKS)
        return ex.time, ex.energy

    # Equivalence first: the evaluator *is* the closed form for TwoSpeed.
    t_cf, e_cf = closed_form()
    t_ev, e_ev = eval_two()
    np.testing.assert_allclose(t_ev, t_cf, rtol=1e-12)
    np.testing.assert_allclose(e_ev, e_cf, rtol=1e-12)

    t_closed = _time_calls(closed_form)
    t_two = _time_calls(eval_two)
    t_geom = _time_calls(eval_geom)

    # Solve-level comparison: fast path vs numeric constrained solve.
    def solve_two():
        return Scenario(config=cfg, rho=3.0, schedule=two).solve(cache=False)

    def solve_geom():
        return Scenario(config=cfg, rho=3.0, schedule=geom).solve(cache=False)

    t_solve_two = _time_calls(solve_two, repeats=20)
    t_solve_geom = _time_calls(solve_geom, repeats=20)

    with (results_dir / "schedule_eval_bench.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["path", "seconds_per_call", "slowdown_vs_closed_form"])
        w.writerow(["closed_form_eval", f"{t_closed:.3e}", "1.0"])
        w.writerow(["evaluator_two_speed", f"{t_two:.3e}", f"{t_two / t_closed:.2f}"])
        w.writerow(["evaluator_geometric", f"{t_geom:.3e}", f"{t_geom / t_closed:.2f}"])
        w.writerow(["solve_two_speed_fastpath", f"{t_solve_two:.3e}", ""])
        w.writerow(["solve_geometric_numeric", f"{t_solve_geom:.3e}", ""])

    # The generality tax must stay bounded: a handful of broadcast ops
    # per head attempt, not an accidental Python-level blowup.
    assert t_two / t_closed < 50, f"TwoSpeed evaluator {t_two / t_closed:.0f}x slower"
    assert t_geom / t_closed < 100, f"Geometric evaluator {t_geom / t_closed:.0f}x slower"


def test_truncated_evaluation_tracks_exact(results_dir):
    """Truncation at N attempts converges geometrically to the exact value."""
    cfg = get_configuration("hera-xscale")
    geom = Geometric(0.4, 1.5, sigma_max=1.0)
    w = 2764.0
    exact_val = evaluate_schedule(cfg, geom, w)
    rows = []
    fp_noise = 1e-12 * exact_val.time  # subtraction rounding floor
    for n in (4, 6, 8, 12):
        trunc = evaluate_schedule(cfg, geom, w, max_attempts=n)
        err = abs(exact_val.time - trunc.time)
        rows.append((n, err, float(trunc.tail_bound_time)))
        assert err <= trunc.tail_bound_time + fp_noise
    with (results_dir / "schedule_truncation.csv").open("w", newline="") as fh:
        csv_w = csv.writer(fh)
        csv_w.writerow(["max_attempts", "abs_time_error", "tail_bound"])
        for n, err, bound in rows:
            csv_w.writerow([n, f"{err:.3e}", f"{bound:.3e}"])
    # Geometric decay: each step of 2 attempts shrinks the bound sharply.
    bounds = [r[2] for r in rows]
    assert bounds[-1] < bounds[0] * 1e-6
