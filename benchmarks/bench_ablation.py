"""Bench: ablations of the design choices called out in DESIGN.md.

1. **First-order closed form vs exact numeric optimisation** — the paper
   optimises the Taylor overheads (Theorem 1); how much energy does that
   leave on the table versus optimising the exact Propositions 2/3?
   (Answer: far below 0.1% across the catalog — the approximation is the
   right call, and this bench proves it.)
2. **Solver cost vs K** — the O(K^2) enumeration's measured scaling.
3. **Two-speed benefit across all configurations** — the savings
   distribution behind the paper's "up to 35%" (which is the max over
   the Atlas/Crusoe C sweep; other configs/axes give less).
"""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.analysis.savings import summarize_savings
from repro.core.numeric import solve_bicrit_exact
from repro.core.solver import solve_bicrit
from repro.platforms import configuration_names, get_configuration
from repro.sweep.axes import checkpoint_axis
from repro.sweep.runner import run_sweep


def test_first_order_vs_exact_optimum(benchmark, results_dir):
    """Energy left on the table by Theorem 1's first-order optimisation."""

    def run_all():
        rows = []
        for name in configuration_names():
            cfg = get_configuration(name)
            fo = solve_bicrit(cfg, 3.0).best
            ex = solve_bicrit_exact(cfg, 3.0)
            # Compare the *exact* energies of both operating points.
            gap = fo.energy_overhead_exact / ex.energy_overhead - 1.0
            rows.append((name, fo.work, ex.work, gap))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with (results_dir / "ablation_first_order_gap.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["config", "w_first_order", "w_exact", "relative_energy_gap"])
        for name, w_fo, w_ex, gap in rows:
            w.writerow([name, f"{w_fo:.2f}", f"{w_ex:.2f}", f"{gap:.3e}"])
    for name, _, _, gap in rows:
        # Theorem 1's choice never loses more than 0.1% exact energy.
        assert 0.0 <= gap < 1e-3, f"{name}: gap {gap:.2e}"
    worst = max(gap for *_, gap in rows)
    print(f"\nworst first-order-vs-exact energy gap: {worst:.2e}")


@pytest.mark.parametrize("k", [5, 10, 20, 40])
def test_solver_scaling_with_k(benchmark, k):
    """O(K^2) enumeration cost: time the solve at synthetic K-speed sets."""
    cfg = get_configuration("hera-xscale")
    speeds = tuple(np.round(np.linspace(0.3, 1.0, k), 6))
    from repro.platforms import Configuration

    cfg_k = Configuration(
        platform=cfg.platform, processor=cfg.processor.with_speeds(speeds)
    )
    sol = benchmark(solve_bicrit, cfg_k, 3.0)
    assert len(sol.candidates) == k * k


def test_savings_distribution_across_configs(benchmark, results_dir):
    """Max two-speed saving per configuration on the C sweep."""

    def run_all():
        out = {}
        for name in configuration_names():
            cfg = get_configuration(name)
            series = run_sweep(cfg, 3.0, checkpoint_axis(lo=50.0, hi=5000.0, n=40))
            out[name] = summarize_savings(series)
        return out

    summaries = benchmark.pedantic(run_all, rounds=1, iterations=1)
    with (results_dir / "ablation_savings_by_config.csv").open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["config", "max_savings_percent", "at_C", "mean_savings_percent"])
        for name, s in summaries.items():
            w.writerow([
                name, f"{s.max_savings_percent:.2f}",
                f"{s.argmax_value:g}", f"{s.mean_savings_percent:.2f}",
            ])
    # The paper's headline config/axis delivers the headline number...
    assert summaries["atlas-crusoe"].max_savings_percent > 28.0
    # ...and no configuration ever loses from having the second speed.
    for s in summaries.values():
        assert s.max_savings_percent >= -1e-9
    best = max(summaries.items(), key=lambda kv: kv[1].max_savings_percent)
    print(f"\nbest saving: {best[1].max_savings_percent:.1f}% on {best[0]}")
